"""Per-locality-pair ghost bundles: coalesced flat-buffer messages.

The un-coalesced distributed step sends one message per remote ghost face
per RK stage — O(leaf faces) messages, each paying the per-message action
overhead (and, under the reliable transport, its own seq/ack/timer).  This
module groups every ghost-band transfer by its ordered
``(source_locality, dest_locality)`` pair into one :class:`PairBundle`
backed by a single flat numpy payload buffer, so one step phase sends
O(neighbor localities) messages instead.

The pack/unpack index arrays are *traced* from the reference fill
functions of :mod:`repro.octree.ghost`, exactly like
:class:`~repro.octree.ghost.GhostIndexPlan` but grouped by locality pair
rather than by exchange class:

* ``same`` / ``coarse`` / ``boundary`` fills are pure gathers — tracing a
  fill over cubes of flat-arena indices leaves the ghost band holding the
  arena index of its source cell;
* a ``fine`` fill is the fixed eight-term restriction average of
  :data:`~repro.octree.ghost._RESTRICT_OFFSETS`.  Every output cell's
  eight source cells belong to exactly *one* face child, so a fine face
  whose children straddle localities splits cleanly: each child's output
  cells ride the bundle of that child's locality.  The **sender** performs
  the restriction (accumulate the eight gather rows in stencil order, then
  multiply by 0.125 — the exact arithmetic of
  :func:`repro.octree.ghost._restrict2`), so the wire carries the
  restricted band, an 8x payload reduction, and the unpack side is a pure
  scatter.

Both sides are bit-identical to the per-face reference fills; the
distributed-driver equivalence tests assert ``np.array_equal`` between the
coalesced and un-coalesced paths.

A bundle plan is rebuilt only when the mesh's content
:meth:`~repro.octree.mesh.AmrMesh.fingerprint` moves — the same
invalidation contract as the hydro/FMM execution plans (see
``docs/plan_lifecycle.md``), and rebuilds reuse the per-face
:class:`~repro.octree.ghost.FaceTraceCache` entries a regrid left intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.octree.fields import NFIELDS
from repro.octree.ghost import FaceTraceCache, trace_face
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey

#: Ordered (source_locality, dest_locality).
PairKey = Tuple[int, int]


def adopt_arena(
    mesh: AmrMesh, nfields: int = NFIELDS, out: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, Dict[NodeKey, int]]:
    """Move every leaf sub-grid into one flat storage arena.

    Returns ``(arena, offsets)`` where ``offsets[key]`` is the flat offset
    of that leaf's ``(nfields, M, M, M)`` chunk; each leaf's
    ``subgrid.data`` is rebound to a view of the arena (values preserved),
    so all existing kernels keep working while pack/unpack can fancy-index
    the whole mesh at once.  Same layout as the batched hydro plan: leaves
    sorted by key, one chunk per slot.

    ``out`` supplies the storage instead of a fresh allocation — the
    process backend passes a shared-memory view here, which is what lets
    forked workers see the adopted mesh without any copies.
    """
    leaves = sorted(mesh.leaves(), key=lambda nd: nd.key)
    m = mesh.n + 2 * mesh.ghost
    chunk = nfields * m**3
    if out is not None:
        if out.dtype != np.float64 or out.size != len(leaves) * chunk:
            raise ValueError(
                f"out buffer must be float64 with {len(leaves) * chunk} "
                f"elements, got {out.dtype} with {out.size}"
            )
        arena = out.reshape(-1)
    else:
        arena = np.empty(len(leaves) * chunk)
    offsets: Dict[NodeKey, int] = {}
    for slot, leaf in enumerate(leaves):
        base = slot * chunk
        offsets[leaf.key] = base
        view = arena[base : base + chunk].reshape(nfields, m, m, m)
        np.copyto(view, leaf.subgrid.data)
        leaf.subgrid.data = view
    return arena, offsets


def neighbor_locality_pairs(mesh: AmrMesh) -> List[PairKey]:
    """The closed form the coalesced message count is tested against.

    Every ordered ``(donor_locality, dest_locality)`` pair, donor != dest,
    with at least one ghost-band transfer crossing it — fine faces
    contribute one donor locality per face child.  A coalesced step phase
    sends exactly one payload message per pair.
    """
    pairs = set()
    for leaf in mesh.leaves():
        for axis in range(3):
            for side in (0, 1):
                kind, other = mesh.face_neighbor(leaf, axis, side)
                if kind == "boundary":
                    continue
                donors = [other] if kind in ("same", "coarse") else list(other)
                for donor in donors:
                    if donor.locality != leaf.locality:
                        pairs.add((donor.locality, leaf.locality))
    return sorted(pairs)


@dataclass
class PairBundle:
    """Every ghost transfer from one locality to another, as one message.

    ``copy_src/copy_dst`` cover the pure-gather classes (same, coarse,
    boundary); ``fine_src`` holds the eight restriction gather rows whose
    stencil-ordered average lands on ``fine_dst``.  ``pack`` gathers (and
    restricts) into the preallocated payload buffer on the source side;
    ``unpack`` scatters it into the destination ghost bands.
    """

    src_locality: int
    dst_locality: int
    copy_src: np.ndarray  # (C,) flat-arena gather indices
    copy_dst: np.ndarray  # (C,) flat-arena scatter indices
    fine_src: np.ndarray  # (8, K) restriction gather rows
    fine_dst: np.ndarray  # (K,) flat-arena scatter indices
    #: Leaves whose interiors this bundle reads / whose ghosts it writes,
    #: in deterministic (sorted-key) order — the driver's dependency and
    #: anti-dependency wiring.
    donor_keys: Tuple[NodeKey, ...]
    dest_keys: Tuple[NodeKey, ...]
    #: Member (dest_key, axis, side) faces; a fine face straddling
    #: localities is a member of each contributing pair.
    faces: Tuple[Tuple[NodeKey, int, int], ...]
    payload: np.ndarray = field(init=False, repr=False)
    _payloads: Tuple[np.ndarray, np.ndarray] = field(init=False, repr=False)
    _fine_accs: Tuple[np.ndarray, np.ndarray] = field(init=False, repr=False)
    _fine_acc: np.ndarray = field(init=False, repr=False)
    _fine_tmp: np.ndarray = field(init=False, repr=False)
    _active: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        # Double-buffered payloads: ``flip()`` swaps which buffer ``pack``
        # fills, so the overlap schedule can start packing stage s+1 while
        # stage s's packed payload is still in flight (queued on the wire
        # or pending a late drain) without clobbering it.  The barrier
        # path never flips and sees exactly one buffer.
        size = self.copy_src.size + self.fine_dst.size
        self._payloads = (np.empty(size), np.empty(size))
        self._fine_accs = tuple(
            buf[self.copy_src.size :] for buf in self._payloads
        )
        self._active = 0
        self.payload = self._payloads[0]
        self._fine_acc = self._fine_accs[0]
        self._fine_tmp = np.empty(self.fine_dst.size)

    def flip(self) -> None:
        """Switch to the other payload buffer (the previously packed one
        survives until the *next* flip)."""
        self._active ^= 1
        self.payload = self._payloads[self._active]
        self._fine_acc = self._fine_accs[self._active]

    def __getstate__(self) -> dict:
        # The scratch buffers must not cross a pickle boundary: _fine_acc
        # is a *view* of payload, and a round-trip silently flattens it to
        # an independent array — pack() would then write the restricted
        # fine data nowhere and unpack() scatter uninitialized memory.
        # (The replan broadcast pickles bundles; fork inherits them intact.)
        state = self.__dict__.copy()
        for scratch in ("payload", "_payloads", "_fine_accs", "_fine_acc",
                        "_fine_tmp", "_active"):
            state.pop(scratch, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__post_init__()

    @property
    def local(self) -> bool:
        return self.src_locality == self.dst_locality

    @property
    def nbytes(self) -> int:
        """Wire size: one float64 per packed ghost cell (all fields)."""
        return self.payload.size * 8

    @property
    def n_faces(self) -> int:
        return len(self.faces)

    def pack(self, arena: np.ndarray) -> np.ndarray:
        """Gather (and sender-side restrict) into the payload buffer."""
        c = self.copy_src.size
        np.take(arena, self.copy_src, out=self.payload[:c])
        if self.fine_dst.size:
            np.take(arena, self.fine_src[0], out=self._fine_acc)
            for row in range(1, 8):
                np.take(arena, self.fine_src[row], out=self._fine_tmp)
                np.add(self._fine_acc, self._fine_tmp, out=self._fine_acc)
            np.multiply(0.125, self._fine_acc, out=self._fine_acc)
        return self.payload

    def unpack(self, arena: np.ndarray) -> None:
        """Scatter the payload into the destination ghost bands."""
        c = self.copy_dst.size
        arena[self.copy_dst] = self.payload[:c]
        if self.fine_dst.size:
            arena[self.fine_dst] = self.payload[c:]

    def apply(self, arena: np.ndarray) -> None:
        """Local (same-locality) path: pack + unpack in one step — the
        promise-guarded direct read, but batched over every local face."""
        self.pack(arena)
        self.unpack(arena)


@dataclass
class GhostBundlePlan:
    """All pair bundles of one mesh topology, plus the membership maps the
    distributed driver wires dependencies through."""

    topology_version: int
    bundles: Dict[PairKey, PairBundle]
    #: dest leaf key -> pair keys whose bundles fill (part of) its ghosts.
    cover: Dict[NodeKey, Tuple[PairKey, ...]]
    #: donor leaf key -> pair keys whose bundles read its interior.
    donor_of: Dict[NodeKey, Tuple[PairKey, ...]]
    #: Content hash of the topology this plan was traced for (see
    #: :meth:`repro.octree.mesh.AmrMesh.fingerprint`); ``matches`` compares
    #: it instead of the monotonic counter, so a mesh that regrids back to
    #: a previously-seen topology revalidates instead of rebuilding.
    fingerprint: str = ""

    @property
    def remote_pairs(self) -> List[PairKey]:
        return sorted(k for k in self.bundles if k[0] != k[1])

    @property
    def local_pairs(self) -> List[PairKey]:
        return sorted(k for k in self.bundles if k[0] == k[1])

    @property
    def remote_payload_bytes(self) -> int:
        return sum(self.bundles[k].nbytes for k in self.remote_pairs)

    def matches(self, mesh: AmrMesh) -> bool:
        return self.fingerprint == mesh.fingerprint()


class _PairAccumulator:
    """Per-pair lists collected during the face walk."""

    __slots__ = ("copy_src", "copy_dst", "fine_src", "fine_dst",
                 "donor_keys", "dest_keys", "faces")

    def __init__(self) -> None:
        self.copy_src: List[np.ndarray] = []
        self.copy_dst: List[np.ndarray] = []
        self.fine_src: List[np.ndarray] = []
        self.fine_dst: List[np.ndarray] = []
        self.donor_keys: Dict[NodeKey, None] = {}
        self.dest_keys: Dict[NodeKey, None] = {}
        self.faces: List[Tuple[NodeKey, int, int]] = []


def _cat(arrays: List[np.ndarray]) -> np.ndarray:
    if not arrays:
        return np.empty(0, dtype=np.intp)
    return np.concatenate(arrays).astype(np.intp, copy=False)


def build_bundle_plan(
    mesh: AmrMesh,
    offsets: Dict[NodeKey, int],
    nfields: int = NFIELDS,
    trace_cache: Optional[FaceTraceCache] = None,
) -> GhostBundlePlan:
    """Trace the reference fills into per-locality-pair bundles.

    ``offsets`` maps each leaf key to its flat-arena chunk offset (see
    :func:`adopt_arena`).  Consumes the same per-face traces as
    :func:`repro.octree.ghost.ghost_index_plan` — leaf-local index cubes
    relocated into the arena layout — but grouped by
    ``(donor_locality, dest_locality)``.  Passing a
    :class:`~repro.octree.ghost.FaceTraceCache` (typically the one the
    hydro plan already populated) reuses the traces of faces a regrid did
    not touch.
    """
    leaves = sorted(mesh.leaves(), key=lambda nd: nd.key)
    n, g = mesh.n, mesh.ghost
    m = n + 2 * g
    chunk = nfields * m**3
    locality: Dict[NodeKey, int] = {leaf.key: leaf.locality for leaf in leaves}

    acc: Dict[PairKey, _PairAccumulator] = {}

    def pair_acc(src_loc: int, dst_loc: int) -> _PairAccumulator:
        entry = acc.get((src_loc, dst_loc))
        if entry is None:
            entry = acc[(src_loc, dst_loc)] = _PairAccumulator()
        return entry

    for leaf in leaves:
        dest_base = offsets[leaf.key]
        for axis in range(3):
            for side in (0, 1):
                if trace_cache is not None:
                    trace = trace_cache.face(mesh, leaf, axis, side)
                else:
                    trace = trace_face(mesh, leaf, axis, side, nfields)
                bases = np.array(
                    [offsets[k] for k in trace.participants], dtype=np.intp
                )
                if trace.kind == "fine":
                    for child_key, rows, dst in trace.fine_parts:
                        entry = pair_acc(locality[child_key], leaf.locality)
                        entry.fine_src.append(trace.relocate(rows, bases, chunk))
                        entry.fine_dst.append(dst + dest_base)
                        entry.donor_keys[child_key] = None
                        entry.dest_keys[leaf.key] = None
                        entry.faces.append((leaf.key, axis, side))
                    continue
                donor_key = trace.participants[1] if len(
                    trace.participants
                ) > 1 else leaf.key
                entry = pair_acc(locality[donor_key], leaf.locality)
                entry.copy_src.append(trace.relocate(trace.copy_src, bases, chunk))
                entry.copy_dst.append(trace.copy_dst + dest_base)
                entry.donor_keys[donor_key] = None
                entry.dest_keys[leaf.key] = None
                entry.faces.append((leaf.key, axis, side))

    bundles: Dict[PairKey, PairBundle] = {}
    cover: Dict[NodeKey, List[PairKey]] = {leaf.key: [] for leaf in leaves}
    donor_of: Dict[NodeKey, List[PairKey]] = {leaf.key: [] for leaf in leaves}
    for pair in sorted(acc):
        entry = acc[pair]
        if entry.fine_src:
            fine_src = np.concatenate(entry.fine_src, axis=1).astype(
                np.intp, copy=False
            )
        else:
            fine_src = np.empty((8, 0), dtype=np.intp)
        bundles[pair] = PairBundle(
            src_locality=pair[0],
            dst_locality=pair[1],
            copy_src=_cat(entry.copy_src),
            copy_dst=_cat(entry.copy_dst),
            fine_src=fine_src,
            fine_dst=_cat(entry.fine_dst),
            donor_keys=tuple(entry.donor_keys),
            dest_keys=tuple(entry.dest_keys),
            faces=tuple(entry.faces),
        )
        for key in entry.dest_keys:
            cover[key].append(pair)
        for key in entry.donor_keys:
            donor_of[key].append(pair)

    return GhostBundlePlan(
        topology_version=mesh.topology_version,
        bundles=bundles,
        cover={k: tuple(v) for k, v in cover.items()},
        donor_of={k: tuple(v) for k, v in donor_of.items()},
        fingerprint=mesh.fingerprint(),
    )
