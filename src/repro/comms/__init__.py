"""Locality-aware message coalescing (the paper's SVII-B at bundle scale).

One :class:`~repro.comms.bundle.PairBundle` per ordered
``(source_locality, dest_locality)`` pair aggregates every ghost-band
transfer crossing that cut into a single flat-buffer message, so a step
sends O(neighbor localities) payload messages instead of O(leaf faces).
See ``docs/comms.md``.
"""

from repro.comms.bundle import (
    GhostBundlePlan,
    PairBundle,
    adopt_arena,
    build_bundle_plan,
    neighbor_locality_pairs,
)

__all__ = [
    "GhostBundlePlan",
    "PairBundle",
    "adopt_arena",
    "build_bundle_plan",
    "neighbor_locality_pairs",
]
