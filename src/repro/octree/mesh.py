"""The AMR mesh: an octree of sub-grids with refinement and restriction.

Invariants maintained (and tested):

* every non-leaf node has all eight children (Octo-Tiger nodes are either
  leaves or *fully refined* interiors),
* 2:1 balance: adjacent leaves differ by at most one level (enforced
  recursively on refinement, checked on derefinement),
* interior nodes hold the conservative restriction (2x2x2 average) of their
  children after :meth:`AmrMesh.restrict_all`.
"""

from __future__ import annotations

import hashlib

from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.octree.fields import Field, NFIELDS
from repro.octree.node import NodeKey, OctreeNode
from repro.util.morton import morton_encode3, morton_neighbors, morton_parent


def pack_key(key: NodeKey) -> int:
    """Pack ``(level, morton code)`` into one int: ``level << 58 | code``.

    Morton codes use 3 bits per level, so codes at the maximum practical
    depth (19 levels, 57 bits) still fit below bit 58, and packed keys sort
    exactly like ``(level, code)`` tuples within a level.
    """
    level, code = key
    return (level << 58) | code


def pack_keys(keys) -> np.ndarray:
    """Vectorized :func:`pack_key` over an iterable of keys -> int64 array."""
    arr = np.asarray(list(keys), dtype=np.int64)
    if arr.size == 0:
        return np.empty(0, dtype=np.int64)
    return (arr[:, 0] << 58) | arr[:, 1]


def unpack_key(packed: int) -> NodeKey:
    """Inverse of :func:`pack_key`."""
    return (int(packed) >> 58, int(packed) & ((1 << 58) - 1))


class AmrMesh:
    """Octree of :class:`OctreeNode` addressed by ``(level, code)``.

    ``topology_version`` is a monotonically increasing counter bumped by
    every structural mutation (:meth:`refine` / :meth:`derefine`).  Anything
    derived purely from the tree *topology* — notably the cached
    :class:`repro.gravity.plan.FmmPlan` — keys its cache on this counter and
    rebuilds automatically after a regrid.  **Invalidation contract:** any
    new mutator that adds or removes nodes, or toggles ``is_leaf``, must
    bump ``topology_version`` (field data updates need not).
    """

    def __init__(self, n: int = 8, ghost: int = 2, domain_size: float = 2.0) -> None:
        if n % 2:
            raise ValueError("sub-grid edge must be even for 2x2x2 restriction")
        self.n = n
        self.ghost = ghost
        self.domain_size = domain_size
        self.topology_version = 0
        self.nodes: Dict[NodeKey, OctreeNode] = {}
        root = OctreeNode(0, 0, n=n, ghost=ghost, domain_size=domain_size)
        self.nodes[root.key] = root
        #: (topology_version, digest) memo for :meth:`fingerprint`.
        self._fingerprint_cache: Optional[Tuple[int, str]] = None

    # -- basic queries ---------------------------------------------------------
    @property
    def root(self) -> OctreeNode:
        return self.nodes[(0, 0)]

    def __contains__(self, key: NodeKey) -> bool:
        return key in self.nodes

    def get(self, key: NodeKey) -> Optional[OctreeNode]:
        return self.nodes.get(key)

    def leaves(self) -> List[OctreeNode]:
        return [n for n in self.nodes.values() if n.is_leaf]

    def leaf_keys(self) -> List[NodeKey]:
        return [n.key for n in self.nodes.values() if n.is_leaf]

    def max_level(self) -> int:
        return max(level for level, _ in self.nodes)

    def n_subgrids(self) -> int:
        """Number of leaf sub-grids (the paper's 'sub-grid' count)."""
        return sum(1 for n in self.nodes.values() if n.is_leaf)

    def n_cells(self) -> int:
        """Evolved (leaf interior) cell count."""
        return self.n_subgrids() * self.n**3

    def __iter__(self) -> Iterator[OctreeNode]:
        return iter(self.nodes.values())

    # -- topology fingerprint --------------------------------------------------
    def fingerprint(self) -> str:
        """Deterministic content hash of the mesh *topology*.

        SHA-256 over the structural header (sub-grid edge, ghost width,
        domain size, field count) and the sorted packed leaf keys.  Two
        meshes — in the same process, across processes, or across runs —
        have equal fingerprints iff they have identical leaf sets and
        identical sub-grid geometry; the interior-node set is implied
        (every non-leaf ancestor of a leaf exists and is fully refined).

        Unlike ``topology_version`` (a process-local mutation counter),
        the fingerprint is stable content addressing: it keys the on-disk
        plan cache (:mod:`repro.core.plancache`) and the process backend's
        replan protocol.  Memoised per ``topology_version``.
        """
        cache = self._fingerprint_cache
        if cache is not None and cache[0] == self.topology_version:
            return cache[1]
        h = hashlib.sha256()
        h.update(
            np.array(
                [self.n, self.ghost, NFIELDS], dtype=np.int64
            ).tobytes()
        )
        h.update(np.float64(self.domain_size).tobytes())
        packed = pack_keys(self.leaf_keys())
        packed.sort()
        h.update(packed.tobytes())
        digest = h.hexdigest()
        self._fingerprint_cache = (self.topology_version, digest)
        return digest

    # -- refinement ---------------------------------------------------------------
    def refine(self, key: NodeKey) -> List[OctreeNode]:
        """Refine a leaf into eight children, prolonging its data.

        Recursively refines coarser neighbours first so the 2:1 balance
        holds.  Returns the newly created children.
        """
        node = self.nodes[key]
        if not node.is_leaf:
            raise ValueError(f"node {key} is already refined")
        self._ensure_balance_for_refine(node)

        node.is_leaf = False
        children: List[OctreeNode] = []
        for child_key in node.children_keys():
            level, code = child_key
            child = OctreeNode(
                level, code, n=self.n, ghost=self.ghost, domain_size=self.domain_size
            )
            child.locality = node.locality
            self._prolong_into_child(node, child)
            self.nodes[child_key] = child
            children.append(child)
        self.topology_version += 1
        return children

    def _ensure_balance_for_refine(self, node: OctreeNode) -> None:
        """Refining ``node`` creates level ``node.level+1`` leaves; every
        neighbour region of ``node`` must therefore exist at level
        ``node.level`` or finer, i.e. coarser leaf neighbours get refined
        first (recursively)."""
        if node.level == 0:
            return
        for ncode in morton_neighbors(node.code, node.level):
            # The neighbour region must exist at node.level before children
            # at node.level + 1 appear next to it.  Each pass refines the
            # deepest existing ancestor of the missing region, descending one
            # level per pass (each refine recursively re-balances itself).
            while (node.level, ncode) not in self.nodes:
                level, code = node.level, ncode
                while level > 0 and (level, code) not in self.nodes:
                    level, code = level - 1, morton_parent(code)
                ancestor = self.nodes[(level, code)]
                assert ancestor.is_leaf, "non-leaf ancestor with missing child"
                self.refine(ancestor.key)

    def _prolong_into_child(self, parent: OctreeNode, child: OctreeNode) -> None:
        """Piecewise-constant conservative prolongation: each parent cell in
        the child's octant maps onto a 2x2x2 block of child cells."""
        oct_idx = child.octant
        half = self.n // 2
        ox = (oct_idx >> 0) & 1
        oy = (oct_idx >> 1) & 1
        oz = (oct_idx >> 2) & 1
        g = self.ghost
        block = parent.subgrid.data[
            :,
            g + ox * half : g + (ox + 1) * half,
            g + oy * half : g + (oy + 1) * half,
            g + oz * half : g + (oz + 1) * half,
        ]
        fine = np.repeat(np.repeat(np.repeat(block, 2, axis=1), 2, axis=2), 2, axis=3)
        s = child.subgrid.interior
        child.subgrid.data[:, s, s, s] = fine

    def derefine(self, key: NodeKey) -> None:
        """Collapse a node's children back into it (restriction applied).

        All children must be leaves, and removing them must not break 2:1
        balance with any finer neighbour.
        """
        node = self.nodes[key]
        if node.is_leaf:
            raise ValueError(f"node {key} is a leaf")
        child_keys = node.children_keys()
        children = [self.nodes[k] for k in child_keys]
        if any(not c.is_leaf for c in children):
            raise ValueError(f"cannot derefine {key}: children are refined")
        for child in children:
            for ncode in morton_neighbors(child.code, child.level):
                neighbor = self.nodes.get((child.level, ncode))
                if neighbor is not None and not neighbor.is_leaf:
                    raise ValueError(
                        f"derefining {key} would violate 2:1 balance at "
                        f"level {child.level} code {ncode}"
                    )
        self._restrict_from_children(node)
        for k in child_keys:
            del self.nodes[k]
        node.is_leaf = True
        self.topology_version += 1

    # -- restriction -----------------------------------------------------------------
    def _restrict_from_children(self, node: OctreeNode) -> None:
        """Conservative 2x2x2 average of children interiors into ``node``."""
        g, half, n = self.ghost, self.n // 2, self.n
        for child_key in node.children_keys():
            child = self.nodes[child_key]
            oct_idx = child.octant
            ox, oy, oz = (oct_idx >> 0) & 1, (oct_idx >> 1) & 1, (oct_idx >> 2) & 1
            s = child.subgrid.interior
            fine = child.subgrid.data[:, s, s, s]
            coarse = 0.125 * (
                fine[:, 0::2, 0::2, 0::2]
                + fine[:, 1::2, 0::2, 0::2]
                + fine[:, 0::2, 1::2, 0::2]
                + fine[:, 0::2, 0::2, 1::2]
                + fine[:, 1::2, 1::2, 0::2]
                + fine[:, 1::2, 0::2, 1::2]
                + fine[:, 0::2, 1::2, 1::2]
                + fine[:, 1::2, 1::2, 1::2]
            )
            node.subgrid.data[
                :,
                g + ox * half : g + (ox + 1) * half,
                g + oy * half : g + (oy + 1) * half,
                g + oz * half : g + (oz + 1) * half,
            ] = coarse

    def restrict_all(self) -> None:
        """Bottom-up restriction so interior nodes mirror their children."""
        for level in range(self.max_level() - 1, -1, -1):
            for node in self.nodes_at_level(level):
                if not node.is_leaf:
                    self._restrict_from_children(node)

    def nodes_at_level(self, level: int) -> List[OctreeNode]:
        return [n for (l, _), n in self.nodes.items() if l == level]

    # -- neighbour lookup ------------------------------------------------------------
    def face_neighbor(
        self, node: OctreeNode, axis: int, side: int
    ) -> Tuple[str, Union[None, OctreeNode, List[OctreeNode]]]:
        """Classify the neighbour across a face of a leaf.

        Returns one of
        ``("boundary", None)`` — physical domain boundary,
        ``("same", node)`` — same-level leaf,
        ``("fine", [children...])`` — refined neighbour (its 4 face-adjacent
        children, which are leaves by 2:1 balance),
        ``("coarse", node)`` — leaf one level up.
        """
        coords = node.face_neighbor_coords(axis, side)
        if coords is None:
            return ("boundary", None)
        code = morton_encode3(*coords)
        same = self.nodes.get((node.level, code))
        if same is not None:
            if same.is_leaf:
                return ("same", same)
            # Refined: collect the 4 children touching our shared face.
            touching: List[OctreeNode] = []
            for child_key in same.children_keys():
                child = self.nodes[child_key]
                child_bit = (child.octant >> axis) & 1
                # Neighbour is on our `side`; its children facing us sit on
                # the opposite side of *its* interior.
                if child_bit != side:
                    touching.append(child)
            return ("fine", touching)
        # Walk to the parent level.
        if node.level == 0:
            return ("boundary", None)
        coarse = self.nodes.get((node.level - 1, morton_parent(code)))
        if coarse is not None and coarse.is_leaf:
            return ("coarse", coarse)
        if coarse is not None:
            raise RuntimeError(
                f"broken octree: neighbour of {node.key} exists refined at "
                f"level {node.level - 1} but not at level {node.level}"
            )
        raise RuntimeError(f"broken octree: no neighbour node for {node.key} face {(axis, side)}")

    # -- criterion-driven refinement ----------------------------------------------------
    def refine_by(
        self,
        criterion: Callable[[OctreeNode], bool],
        max_level: int,
        max_rounds: int = 64,
    ) -> int:
        """Refine leaves for which ``criterion`` holds, up to ``max_level``.

        Repeats until a fixed point (new leaves may satisfy the criterion
        too).  Returns the number of refinements performed.
        """
        total = 0
        for _ in range(max_rounds):
            to_refine = [
                leaf.key
                for leaf in self.leaves()
                if leaf.level < max_level and criterion(leaf)
            ]
            if not to_refine:
                break
            for key in to_refine:
                if key in self.nodes and self.nodes[key].is_leaf:
                    self.refine(key)
                    total += 1
        return total

    # -- invariant checks (used by tests and property checks) ----------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is violated."""
        for node in self.nodes.values():
            if node.is_leaf:
                for child_key in node.children_keys():
                    assert child_key not in self.nodes, f"leaf {node.key} has child"
            else:
                for child_key in node.children_keys():
                    assert child_key in self.nodes, (
                        f"interior {node.key} missing child {child_key}"
                    )
            if node.level > 0:
                assert node.parent_key in self.nodes, f"orphan node {node.key}"
        for leaf in self.leaves():
            for axis in range(3):
                for side in (0, 1):
                    kind, _ = self.face_neighbor(leaf, axis, side)
                    assert kind in ("boundary", "same", "fine", "coarse")

    # -- integrals ------------------------------------------------------------------------
    def integral(self, field: Field) -> float:
        """Domain integral of a field over leaf interiors."""
        return sum(
            leaf.subgrid.integral(field, leaf.cell_volume) for leaf in self.leaves()
        )

    def total_mass(self) -> float:
        return self.integral(Field.RHO)
