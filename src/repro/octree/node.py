"""Octree node: topology, geometry and per-node payload.

A node is addressed by ``(level, morton_code)``.  Geometry derives from the
address: the root covers a cube of edge ``domain_size`` centred on the
origin; a node at level ``l`` covers ``domain_size / 2**l`` and its sub-grid
cells are ``node_size / n`` across.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.octree.subgrid import SubGrid
from repro.util.morton import morton_children, morton_decode3, morton_parent


NodeKey = Tuple[int, int]  # (level, morton code)


class OctreeNode:
    """One octant of the AMR tree."""

    __slots__ = (
        "level",
        "code",
        "subgrid",
        "is_leaf",
        "locality",
        "domain_size",
    )

    def __init__(
        self,
        level: int,
        code: int,
        n: int = 8,
        ghost: int = 2,
        domain_size: float = 2.0,
    ) -> None:
        self.level = level
        self.code = code
        self.subgrid = SubGrid(n, ghost)
        self.is_leaf = True
        self.locality = 0
        self.domain_size = domain_size

    # -- addressing ----------------------------------------------------------
    @property
    def key(self) -> NodeKey:
        return (self.level, self.code)

    @property
    def parent_key(self) -> Optional[NodeKey]:
        if self.level == 0:
            return None
        return (self.level - 1, morton_parent(self.code))

    def children_keys(self) -> List[NodeKey]:
        return [(self.level + 1, c) for c in morton_children(self.code)]

    @property
    def coords(self) -> Tuple[int, int, int]:
        return morton_decode3(self.code)

    @property
    def octant(self) -> int:
        """This node's index (0..7) within its parent."""
        return self.code & 0b111

    # -- geometry --------------------------------------------------------------
    @property
    def node_size(self) -> float:
        return self.domain_size / (1 << self.level)

    @property
    def dx(self) -> float:
        return self.node_size / self.subgrid.n

    @property
    def cell_volume(self) -> float:
        return self.dx**3

    @property
    def origin(self) -> np.ndarray:
        """Lower corner of the node in physical coordinates."""
        ix, iy, iz = self.coords
        half = self.domain_size / 2.0
        return np.array([ix, iy, iz], dtype=np.float64) * self.node_size - half

    @property
    def center(self) -> np.ndarray:
        return self.origin + self.node_size / 2.0

    def cell_centers(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Meshgrids (N, N, N) of interior cell-centre coordinates."""
        n = self.subgrid.n
        edges = self.origin[:, None] + self.dx * (np.arange(n) + 0.5)[None, :]
        return np.meshgrid(edges[0], edges[1], edges[2], indexing="ij")

    def face_neighbor_coords(self, axis: int, side: int) -> Optional[Tuple[int, int, int]]:
        """Integer coords of the same-level face neighbour, or None at the
        domain boundary."""
        ix, iy, iz = self.coords
        delta = [0, 0, 0]
        delta[axis] = 1 if side == 1 else -1
        jx, jy, jz = ix + delta[0], iy + delta[1], iz + delta[2]
        n = 1 << self.level
        if not (0 <= jx < n and 0 <= jy < n and 0 <= jz < n):
            return None
        return (jx, jy, jz)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "interior"
        return f"<OctreeNode L{self.level} code={self.code} {kind} loc={self.locality}>"
