"""Dynamic regridding: refinement criteria evaluated during evolution.

Octo-Tiger adapts its mesh on the density field and on the tracer fields
that track the binary components' original mass fractions (paper SIII-C).
A :class:`RefinementCriterion` decides per leaf whether it should refine or
may coarsen; :func:`regrid` applies the decisions while preserving the
2:1 balance and conservation (prolongation/restriction are conservative,
tested).

Every :func:`regrid` call also emits a :class:`RegridDelta` — the exact
old/new topology difference the plan layers (:mod:`repro.gravity.plan`,
:mod:`repro.hydro.plan`, :mod:`repro.comms.bundle`) consume to rebuild only
the affected plan segments instead of paying a cold rebuild
(see ``docs/plan_lifecycle.md``).
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Protocol

import numpy as np

from repro.octree.fields import Field
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey, OctreeNode


def _validate_threshold(name: str, value: float) -> float:
    """Typed validation for regrid thresholds.

    Mirrors the ``Engine.post`` non-finite guard: a NaN threshold makes
    every comparison silently ``False`` (the criterion never refines and
    always coarsens), and a negative one inverts the hysteresis band — both
    previously reached the criteria unvalidated and produced wrong meshes
    instead of an error at construction time.  ``+inf`` stays legal as the
    explicit "never fires" sentinel.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float, np.floating)):
        raise TypeError(
            f"{name} must be a real number, got {type(value).__name__}"
        )
    value = float(value)
    if math.isnan(value):
        raise ValueError(f"{name} must not be NaN")
    if value < 0.0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


class RefinementCriterion(Protocol):
    """Per-leaf refinement decision."""

    def wants_refinement(self, leaf: OctreeNode) -> bool: ...  # noqa: D102, E704

    def allows_coarsening(self, leaf: OctreeNode) -> bool: ...  # noqa: D102, E704


@dataclass(frozen=True)
class DensityCriterion:
    """Refine where the density exceeds a threshold (Octo-Tiger's primary
    criterion); allow coarsening well below it (hysteresis avoids refine/
    coarsen flapping at the threshold)."""

    refine_above: float = 1e-3
    coarsen_below: Optional[float] = None  # default: refine_above / 10

    def __post_init__(self) -> None:
        _validate_threshold("refine_above", self.refine_above)
        if self.coarsen_below is not None:
            coarsen = _validate_threshold("coarsen_below", self.coarsen_below)
            if coarsen > self.refine_above:
                raise ValueError(
                    "coarsen_below must not exceed refine_above "
                    f"({coarsen!r} > {self.refine_above!r}): the hysteresis "
                    "band would invert and leaves would flap every regrid"
                )

    def wants_refinement(self, leaf: OctreeNode) -> bool:
        return leaf.subgrid.max_abs(Field.RHO) > self.refine_above

    def allows_coarsening(self, leaf: OctreeNode) -> bool:
        threshold = (
            self.refine_above / 10.0 if self.coarsen_below is None else self.coarsen_below
        )
        return leaf.subgrid.max_abs(Field.RHO) < threshold


@dataclass(frozen=True)
class TracerCriterion:
    """Refine where a component's tracer fraction is significant — the
    paper's 'refine the mesh on the basis of the density field and a field
    of tracer variables' (e.g. resolving the accretion stream by donor
    material rather than total density)."""

    field: Field = Field.FRAC2
    refine_above: float = 1e-4

    def __post_init__(self) -> None:
        _validate_threshold("refine_above", self.refine_above)

    def wants_refinement(self, leaf: OctreeNode) -> bool:
        rho = np.maximum(leaf.subgrid.interior_view(Field.RHO), 1e-300)
        fraction = leaf.subgrid.interior_view(self.field) / rho
        return bool((fraction * rho > self.refine_above).any())

    def allows_coarsening(self, leaf: OctreeNode) -> bool:
        return not self.wants_refinement(leaf)


@dataclass(frozen=True)
class CombinedCriterion:
    """Refine if any member wants it; coarsen only if all members allow."""

    members: tuple

    def wants_refinement(self, leaf: OctreeNode) -> bool:
        return any(m.wants_refinement(leaf) for m in self.members)

    def allows_coarsening(self, leaf: OctreeNode) -> bool:
        return all(m.allows_coarsening(leaf) for m in self.members)


@dataclass(frozen=True)
class RegridDelta:
    """Exact topology difference between two mesh snapshots.

    Built from before/after snapshots of the node and leaf key sets
    (:meth:`between`).  The derived sets drive the plan layers' incremental
    rebuilds:

    * ``refined`` — old leaves that became interior nodes,
    * ``coarsened`` — old interior nodes that became leaves,
    * ``removed_nodes`` / ``added_nodes`` — nodes deleted / created,
    * ``unchanged_leaves`` — leaves present on both sides with data and
      neighbour-band geometry potentially affected only through the
      changed sets,
    * ``drop_set`` / ``emit_set`` — the exact invalidation and
      re-traversal frontiers for pair-based plans: any cached pair with an
      endpoint in ``drop_set`` is stale, and every pair of the new
      topology not cached has at least one endpoint in ``emit_set``
      (endpoints untouched by the regrid keep identical traversal
      decisions, since their ancestors exist and keep their leaf/interior
      status on both sides).
    """

    old_leaves: FrozenSet[NodeKey]
    new_leaves: FrozenSet[NodeKey]
    refined: FrozenSet[NodeKey]
    coarsened: FrozenSet[NodeKey]
    removed_nodes: FrozenSet[NodeKey]
    added_nodes: FrozenSet[NodeKey]
    drop_set: FrozenSet[NodeKey] = field(repr=False)
    emit_set: FrozenSet[NodeKey] = field(repr=False)

    @classmethod
    def between(
        cls,
        old_nodes: FrozenSet[NodeKey],
        old_leaves: FrozenSet[NodeKey],
        new_nodes: FrozenSet[NodeKey],
        new_leaves: FrozenSet[NodeKey],
    ) -> "RegridDelta":
        refined = frozenset(old_leaves & (new_nodes - new_leaves))
        coarsened = frozenset((old_nodes - old_leaves) & new_leaves)
        removed = frozenset(old_nodes - new_nodes)
        added = frozenset(new_nodes - old_nodes)
        return cls(
            old_leaves=frozenset(old_leaves),
            new_leaves=frozenset(new_leaves),
            refined=refined,
            coarsened=coarsened,
            removed_nodes=removed,
            added_nodes=added,
            drop_set=frozenset(refined | coarsened | removed),
            emit_set=frozenset(refined | coarsened | added),
        )

    @classmethod
    def from_mesh(
        cls, old_nodes: FrozenSet[NodeKey], old_leaves: FrozenSet[NodeKey], mesh: AmrMesh
    ) -> "RegridDelta":
        return cls.between(
            old_nodes, old_leaves, frozenset(mesh.nodes), frozenset(mesh.leaf_keys())
        )

    @property
    def unchanged_leaves(self) -> FrozenSet[NodeKey]:
        return (self.old_leaves & self.new_leaves) - self.coarsened

    @property
    def changed(self) -> bool:
        return bool(self.drop_set or self.emit_set)

    @property
    def changed_fraction(self) -> float:
        """Changed leaves (either side) over the new leaf count — the plan
        layers' cold-rebuild fallback heuristic."""
        if not self.new_leaves:
            return 1.0
        touched = (
            self.refined
            | self.coarsened
            | (self.new_leaves - self.old_leaves)
            | (self.old_leaves - self.new_leaves)
        )
        return len(touched) / len(self.new_leaves)


@dataclass
class RegridResult:
    refined: int
    coarsened: int
    #: Exact old/new topology difference for incremental plan maintenance.
    delta: Optional[RegridDelta] = None

    @property
    def changed(self) -> bool:
        return bool(self.refined or self.coarsened)


def regrid(
    mesh: AmrMesh,
    criterion: RefinementCriterion,
    max_level: int,
    min_level: int = 0,
    max_rounds: int = 8,
) -> RegridResult:
    """Apply a refinement criterion to the evolving mesh.

    Refinement first (cascades preserve 2:1 balance automatically), then
    conservative coarsening of sibling groups whose eight leaves all allow
    it.  Coarsening that would violate balance is skipped, not forced.

    The returned :class:`RegridResult` carries a :class:`RegridDelta`
    covering the net effect of the whole call (refine cascades and
    coarsening included).
    """
    old_nodes = frozenset(mesh.nodes)
    old_leaves = frozenset(mesh.leaf_keys())
    refined = 0
    for _ in range(max_rounds):
        to_refine = [
            leaf.key
            for leaf in mesh.leaves()
            if leaf.level < max_level and criterion.wants_refinement(leaf)
        ]
        if not to_refine:
            break
        for key in to_refine:
            node = mesh.get(key)
            if node is not None and node.is_leaf:
                mesh.refine(key)
                refined += 1

    coarsened = 0
    # Visit parents of leaf octets, deepest level first.
    for level in range(mesh.max_level(), min_level, -1):
        parents = {
            leaf.parent_key
            for leaf in mesh.leaves()
            if leaf.level == level and leaf.parent_key is not None
        }
        for parent_key in sorted(parents):
            parent = mesh.get(parent_key)
            if parent is None or parent.is_leaf:
                continue
            children = [mesh.get(k) for k in parent.children_keys()]
            if any(c is None or not c.is_leaf for c in children):
                continue
            if not all(criterion.allows_coarsening(c) for c in children):
                continue
            try:
                mesh.derefine(parent_key)
            except ValueError:
                continue  # would break 2:1 balance; keep refined
            coarsened += 1
    return RegridResult(
        refined=refined,
        coarsened=coarsened,
        delta=RegridDelta.from_mesh(old_nodes, old_leaves, mesh),
    )
