"""Dynamic regridding: refinement criteria evaluated during evolution.

Octo-Tiger adapts its mesh on the density field and on the tracer fields
that track the binary components' original mass fractions (paper SIII-C).
A :class:`RefinementCriterion` decides per leaf whether it should refine or
may coarsen; :func:`regrid` applies the decisions while preserving the
2:1 balance and conservation (prolongation/restriction are conservative,
tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

import numpy as np

from repro.octree.fields import Field
from repro.octree.mesh import AmrMesh
from repro.octree.node import OctreeNode


class RefinementCriterion(Protocol):
    """Per-leaf refinement decision."""

    def wants_refinement(self, leaf: OctreeNode) -> bool: ...  # noqa: D102, E704

    def allows_coarsening(self, leaf: OctreeNode) -> bool: ...  # noqa: D102, E704


@dataclass(frozen=True)
class DensityCriterion:
    """Refine where the density exceeds a threshold (Octo-Tiger's primary
    criterion); allow coarsening well below it (hysteresis avoids refine/
    coarsen flapping at the threshold)."""

    refine_above: float = 1e-3
    coarsen_below: Optional[float] = None  # default: refine_above / 10

    def wants_refinement(self, leaf: OctreeNode) -> bool:
        return leaf.subgrid.max_abs(Field.RHO) > self.refine_above

    def allows_coarsening(self, leaf: OctreeNode) -> bool:
        threshold = (
            self.refine_above / 10.0 if self.coarsen_below is None else self.coarsen_below
        )
        return leaf.subgrid.max_abs(Field.RHO) < threshold


@dataclass(frozen=True)
class TracerCriterion:
    """Refine where a component's tracer fraction is significant — the
    paper's 'refine the mesh on the basis of the density field and a field
    of tracer variables' (e.g. resolving the accretion stream by donor
    material rather than total density)."""

    field: Field = Field.FRAC2
    refine_above: float = 1e-4

    def wants_refinement(self, leaf: OctreeNode) -> bool:
        rho = np.maximum(leaf.subgrid.interior_view(Field.RHO), 1e-300)
        fraction = leaf.subgrid.interior_view(self.field) / rho
        return bool((fraction * rho > self.refine_above).any())

    def allows_coarsening(self, leaf: OctreeNode) -> bool:
        return not self.wants_refinement(leaf)


@dataclass(frozen=True)
class CombinedCriterion:
    """Refine if any member wants it; coarsen only if all members allow."""

    members: tuple

    def wants_refinement(self, leaf: OctreeNode) -> bool:
        return any(m.wants_refinement(leaf) for m in self.members)

    def allows_coarsening(self, leaf: OctreeNode) -> bool:
        return all(m.allows_coarsening(leaf) for m in self.members)


@dataclass
class RegridResult:
    refined: int
    coarsened: int

    @property
    def changed(self) -> bool:
        return bool(self.refined or self.coarsened)


def regrid(
    mesh: AmrMesh,
    criterion: RefinementCriterion,
    max_level: int,
    min_level: int = 0,
    max_rounds: int = 8,
) -> RegridResult:
    """Apply a refinement criterion to the evolving mesh.

    Refinement first (cascades preserve 2:1 balance automatically), then
    conservative coarsening of sibling groups whose eight leaves all allow
    it.  Coarsening that would violate balance is skipped, not forced.
    """
    refined = 0
    for _ in range(max_rounds):
        to_refine = [
            leaf.key
            for leaf in mesh.leaves()
            if leaf.level < max_level and criterion.wants_refinement(leaf)
        ]
        if not to_refine:
            break
        for key in to_refine:
            node = mesh.get(key)
            if node is not None and node.is_leaf:
                mesh.refine(key)
                refined += 1

    coarsened = 0
    # Visit parents of leaf octets, deepest level first.
    for level in range(mesh.max_level(), min_level, -1):
        parents = {
            leaf.parent_key
            for leaf in mesh.leaves()
            if leaf.level == level and leaf.parent_key is not None
        }
        for parent_key in sorted(parents):
            parent = mesh.get(parent_key)
            if parent is None or parent.is_leaf:
                continue
            children = [mesh.get(k) for k in parent.children_keys()]
            if any(c is None or not c.is_leaf for c in children):
                continue
            if not all(criterion.allows_coarsening(c) for c in children):
                continue
            try:
                mesh.derefine(parent_key)
            except ValueError:
                continue  # would break 2:1 balance; keep refined
            coarsened += 1
    return RegridResult(refined=refined, coarsened=coarsened)
