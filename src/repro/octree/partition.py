"""Space-filling-curve load balancing across localities.

Octo-Tiger distributes octree nodes over HPX localities along a space
filling curve so each locality owns a spatially compact, contiguous run of
sub-grids.  We sort leaves by their Morton key normalised to the finest
level and split the run into weight-balanced contiguous chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey, OctreeNode


def sfc_key(node: OctreeNode, max_level: int) -> int:
    """Morton key lifted to ``max_level`` so leaves of mixed depth order
    consistently along one curve (a leaf precedes the region its finer
    neighbours occupy)."""
    return node.code << (3 * (max_level - node.level))


def sfc_partition(
    mesh: AmrMesh,
    n_localities: int,
    weights: Optional[Dict[NodeKey, float]] = None,
) -> Dict[NodeKey, int]:
    """Assign each leaf to a locality; writes ``node.locality`` and returns
    the mapping.

    ``weights`` defaults to uniform (every sub-grid has the same cell
    count).  The split is the classic SFC prefix-sum partition: locality
    ``i`` receives leaves whose cumulative weight midpoint falls in
    ``[i * W / P, (i + 1) * W / P)``.
    """
    if n_localities < 1:
        raise ValueError("n_localities must be >= 1")
    max_level = mesh.max_level()
    leaves = sorted(mesh.leaves(), key=lambda nd: (sfc_key(nd, max_level), nd.level))
    if not leaves:
        return {}
    total = 0.0
    w: List[float] = []
    for leaf in leaves:
        weight = 1.0 if weights is None else weights.get(leaf.key, 1.0)
        if weight <= 0:
            raise ValueError(f"non-positive weight for {leaf.key}")
        w.append(weight)
        total += weight
    assignment: Dict[NodeKey, int] = {}
    acc = 0.0
    for leaf, weight in zip(leaves, w):
        midpoint = acc + weight / 2.0
        loc = min(int(midpoint * n_localities / total), n_localities - 1)
        assignment[leaf.key] = loc
        leaf.locality = loc
        acc += weight
    # Interior nodes live with their first child (Octo-Tiger keeps tree
    # internals near the data they aggregate).
    for level in range(max_level - 1, -1, -1):
        for node in mesh.nodes_at_level(level):
            if not node.is_leaf:
                first_child = mesh.nodes[node.children_keys()[0]]
                node.locality = first_child.locality
    return assignment


def round_robin_partition(mesh: AmrMesh, n_localities: int) -> Dict[NodeKey, int]:
    """Naive baseline partition: leaves dealt to localities in hash order.

    Deliberately locality-oblivious — the ablation benchmark compares its
    remote-exchange fraction against the SFC partition to show why
    Octo-Tiger distributes along a space-filling curve.
    """
    if n_localities < 1:
        raise ValueError("n_localities must be >= 1")
    assignment: Dict[NodeKey, int] = {}
    for i, leaf in enumerate(sorted(mesh.leaves(), key=lambda nd: hash(nd.key))):
        assignment[leaf.key] = i % n_localities
        leaf.locality = i % n_localities
    for level in range(mesh.max_level() - 1, -1, -1):
        for node in mesh.nodes_at_level(level):
            if not node.is_leaf:
                node.locality = mesh.nodes[node.children_keys()[0]].locality
    return assignment


@dataclass
class PartitionStats:
    n_localities: int
    subgrids_per_locality: List[int]
    imbalance: float  # max / mean subgrids
    remote_exchanges: int
    local_exchanges: int

    @property
    def remote_fraction(self) -> float:
        total = self.remote_exchanges + self.local_exchanges
        return self.remote_exchanges / total if total else 0.0


def partition_stats(mesh: AmrMesh, n_localities: int) -> PartitionStats:
    """Balance and communication statistics for the current assignment."""
    from repro.octree.ghost import exchange_plan

    counts = [0] * n_localities
    for leaf in mesh.leaves():
        counts[leaf.locality] += 1
    mean = sum(counts) / n_localities if n_localities else 0.0
    imbalance = (max(counts) / mean) if mean > 0 else 0.0
    remote = local = 0
    for ex in exchange_plan(mesh):
        if ex.src is None:
            continue
        if ex.same_locality:
            local += 1
        else:
            remote += 1
    return PartitionStats(n_localities, counts, imbalance, remote, local)
