"""Ghost-layer exchange between leaf sub-grids.

Each leaf fills six face bands of ghost cells before a hydro step:

* **same-level neighbour** — direct copy of the neighbour's donor band,
* **coarse neighbour** (leaf one level up) — piecewise-constant prolongation
  of the adjacent coarse layer,
* **fine neighbour** (refined, four face children) — conservative 2x2x2
  restriction of the children's donor bands,
* **physical boundary** — zero-gradient (outflow) replication of the edge
  layer, matching Octo-Tiger's isolated-star boundaries.

The paper's §VII-B communication optimization concerns exactly these
transfers: between sub-grids on the same locality the donor band can be read
directly from memory instead of going through an HPX action.
:func:`exchange_plan` enumerates every transfer with its payload size and
locality so both the functional driver and the performance simulator consume
one description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.effects import ANY, declare_effects
from repro.octree.fields import NFIELDS
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey, OctreeNode
from repro.octree.subgrid import SubGrid


@dataclass(frozen=True)
class GhostExchange:
    """One face transfer: fill ``dst``'s ghost band on ``(axis, side)``."""

    dst: NodeKey
    src: Optional[NodeKey]  # None for physical boundaries
    axis: int
    side: int
    kind: str  # "same" | "coarse" | "fine" | "boundary"
    size_bytes: int
    same_locality: bool


def _transverse_axes(axis: int) -> Tuple[int, int]:
    return tuple(a for a in range(3) if a != axis)  # type: ignore[return-value]


#: Child-cell offsets of the 2x2x2 restriction stencil, in summation order.
#: :func:`_restrict2` and :meth:`GhostIndexPlan.fill_ghosts_kernel` must add
#: the eight terms in exactly this order so the two paths stay bit-identical.
_RESTRICT_OFFSETS = (
    (0, 0, 0),
    (1, 0, 0),
    (0, 1, 0),
    (0, 0, 1),
    (1, 1, 0),
    (1, 0, 1),
    (0, 1, 1),
    (1, 1, 1),
)


def _restrict2(band: np.ndarray) -> np.ndarray:
    """2x2x2 conservative average over the three spatial axes of
    ``(F, a, b, c)`` with even extents."""
    i, j, k = _RESTRICT_OFFSETS[0]
    total = band[:, i::2, j::2, k::2]
    for i, j, k in _RESTRICT_OFFSETS[1:]:
        total = total + band[:, i::2, j::2, k::2]
    return 0.125 * total


def _fill_boundary(leaf: OctreeNode, axis: int, side: int) -> None:
    """Zero-gradient: replicate the outermost interior layer into ghosts."""
    sg = leaf.subgrid
    g = sg.ghost
    ghost = sg.ghost_slices(axis, side)
    edge_index = g if side == 0 else g + sg.n - 1
    edge = [sg.interior] * 3
    edge[axis] = slice(edge_index, edge_index + 1)
    layer = sg.data[(slice(None),) + tuple(edge)]
    reps = [1, 1, 1, 1]
    reps[axis + 1] = g
    sg.data[(slice(None),) + ghost] = np.tile(layer, reps)


def _fill_same(leaf: OctreeNode, neighbor: OctreeNode, axis: int, side: int) -> None:
    band = neighbor.subgrid.extract(neighbor.subgrid.donor_slices(axis, 1 - side))
    leaf.subgrid.insert(leaf.subgrid.ghost_slices(axis, side), band)


def _fill_coarse(leaf: OctreeNode, coarse: OctreeNode, axis: int, side: int) -> None:
    """Prolong the coarse neighbour's adjacent interior layer(s).

    The fine leaf spans half of the coarse node in each transverse
    direction; which half follows from the parity of the fine node's integer
    coordinates.
    """
    sg, csg = leaf.subgrid, coarse.subgrid
    g, n = sg.ghost, sg.n
    half = n // 2
    n_coarse_layers = (g + 1) // 2  # fine ghost layers covered per coarse cell pair
    cg = csg.ghost

    # Donor slices in the coarse grid.
    donor = [None, None, None]
    if side == 0:  # our low face; coarse neighbour below us donates its top layers
        donor[axis] = slice(cg + n - n_coarse_layers, cg + n)
    else:
        donor[axis] = slice(cg, cg + n_coarse_layers)
    coords = leaf.coords
    for t in _transverse_axes(axis):
        bit = coords[t] & 1
        donor[t] = slice(cg + bit * half, cg + (bit + 1) * half)
    band = csg.data[(slice(None),) + tuple(donor)]

    # Prolong by 2 in every direction, then crop the axis to g fine layers
    # adjacent to the shared face.
    fine = np.repeat(np.repeat(np.repeat(band, 2, axis=1), 2, axis=2), 2, axis=3)
    ax = axis + 1
    if side == 0:
        # Ghost band runs away from the face toward -axis; keep the layers
        # nearest the face, i.e. the last g along the axis.
        fine = np.take(fine, range(fine.shape[ax] - g, fine.shape[ax]), axis=ax)
    else:
        fine = np.take(fine, range(0, g), axis=ax)
    leaf.subgrid.insert(leaf.subgrid.ghost_slices(axis, side), fine)


def _fill_fine(
    leaf: OctreeNode, children: List[OctreeNode], axis: int, side: int
) -> None:
    """Restrict the refined neighbour's face children into our ghost band."""
    sg = leaf.subgrid
    g, n = sg.ghost, sg.n
    half = n // 2
    t1, t2 = _transverse_axes(axis)
    out = np.empty(
        (sg.data.shape[0],) + tuple(
            g if a == axis else n for a in range(3)
        ),
        dtype=sg.data.dtype,
    )
    for child in children:
        csg = child.subgrid
        cg = csg.ghost
        donor = [None, None, None]
        # The children sit across our face; their donor band faces us.
        if side == 0:
            donor[axis] = slice(cg + csg.n - 2 * g, cg + csg.n)
        else:
            donor[axis] = slice(cg, cg + 2 * g)
        donor[t1] = csg.interior
        donor[t2] = csg.interior
        band = csg.data[(slice(None),) + tuple(donor)]
        coarse = _restrict2(band)  # (F, g, half, half)
        b1 = (child.octant >> t1) & 1
        b2 = (child.octant >> t2) & 1
        dest = [None, None, None]
        dest[axis] = slice(0, g)
        dest[t1] = slice(b1 * half, (b1 + 1) * half)
        dest[t2] = slice(b2 * half, (b2 + 1) * half)
        out[(slice(None),) + tuple(dest)] = coarse
    leaf.subgrid.insert(sg.ghost_slices(axis, side), out)


def fill_leaf_ghosts(mesh: AmrMesh, leaf: OctreeNode) -> None:
    """Fill all six ghost bands of one leaf from the current mesh state."""
    for axis in range(3):
        for side in (0, 1):
            kind, other = mesh.face_neighbor(leaf, axis, side)
            if kind == "boundary":
                _fill_boundary(leaf, axis, side)
            elif kind == "same":
                _fill_same(leaf, other, axis, side)
            elif kind == "coarse":
                _fill_coarse(leaf, other, axis, side)
            else:
                _fill_fine(leaf, other, axis, side)


def fill_all_ghosts(mesh: AmrMesh) -> None:
    """Ghost exchange over the whole mesh (sequential reference path).

    Reads are ordered against a snapshot-free scheme: donors are interior
    cells only, which no fill writes, so a single pass is race-free — the
    same argument that lets the paper's optimization read neighbours'
    memory directly once a promise signals the interior is up to date.
    """
    for leaf in mesh.leaves():
        fill_leaf_ghosts(mesh, leaf)


def exchange_plan(mesh: AmrMesh) -> List[GhostExchange]:
    """Enumerate every ghost transfer with payload size and locality info.

    Used by the distributed driver (to route messages or use the local
    direct path) and by the performance simulator (message counts/volumes).
    """
    plan: List[GhostExchange] = []
    for leaf in mesh.leaves():
        face_bytes = leaf.subgrid.nbytes_face()
        for axis in range(3):
            for side in (0, 1):
                kind, other = mesh.face_neighbor(leaf, axis, side)
                if kind == "boundary":
                    plan.append(
                        GhostExchange(leaf.key, None, axis, side, kind, 0, True)
                    )
                elif kind == "fine":
                    for child in other:
                        plan.append(
                            GhostExchange(
                                leaf.key,
                                child.key,
                                axis,
                                side,
                                kind,
                                face_bytes // 4,
                                child.locality == leaf.locality,
                            )
                        )
                else:
                    plan.append(
                        GhostExchange(
                            leaf.key,
                            other.key,
                            axis,
                            side,
                            kind,
                            face_bytes,
                            other.locality == leaf.locality,
                        )
                    )
    return plan


# -- vectorized ghost index plan ---------------------------------------------
#
# When every leaf's storage lives in one flat arena (repro.hydro.plan), each
# ghost band fill above is a pure gather: boundary/same/coarse fills move
# values with slicing, np.repeat, np.take and np.tile only, and the fine fill
# is a fixed 8-term average.  Tracing those *same* fill functions over cubes
# of flat arena indices (instead of field values) therefore yields, per
# class, a source-index array and a destination-index array such that
# ``arena[dst] = arena[src]`` reproduces the fill exactly.  The whole-mesh
# exchange collapses to four fancy-indexed copies.


class _IndexSubGrid(SubGrid):
    """A SubGrid whose ``data`` holds flat arena indices, for fill tracing."""

    def __init__(self, n: int, ghost: int, cube: np.ndarray) -> None:
        super().__init__(n, ghost)
        self.data = cube


class _IndexNode:
    """Just enough of :class:`OctreeNode` for the fill functions above."""

    __slots__ = ("subgrid", "coords", "octant")

    def __init__(self, subgrid: _IndexSubGrid, coords, octant: int) -> None:
        self.subgrid = subgrid
        self.coords = coords
        self.octant = octant


def _as_index(arrays: List[np.ndarray]) -> np.ndarray:
    if not arrays:
        return np.empty(0, dtype=np.intp)
    return np.concatenate(arrays).astype(np.intp, copy=False)


class GhostIndexPlan:
    """Vectorized whole-mesh ghost exchange as class-grouped index copies.

    Built by :func:`ghost_index_plan` for meshes whose leaf sub-grids share
    one flat storage arena.  Faces group into the four exchange classes
    (``same``, ``coarse``, ``boundary`` each as one src/dst gather pair;
    ``fine`` as eight gathers averaged in :func:`_restrict2`'s summation
    order), and :meth:`fill_ghosts_kernel` applies all of them with
    preallocated buffers — no per-leaf Python walk, no hot-loop allocation.
    """

    def __init__(
        self,
        same: Tuple[np.ndarray, np.ndarray],
        coarse: Tuple[np.ndarray, np.ndarray],
        boundary: Tuple[np.ndarray, np.ndarray],
        fine: Tuple[np.ndarray, np.ndarray],
        face_counts: Dict[str, int],
    ) -> None:
        self.same_src, self.same_dst = same
        self.coarse_src, self.coarse_dst = coarse
        self.boundary_src, self.boundary_dst = boundary
        self.fine_src, self.fine_dst = fine  # (8, K) and (K,)
        self.face_counts = face_counts
        self._same_buf = np.empty(self.same_dst.size)
        self._coarse_buf = np.empty(self.coarse_dst.size)
        self._boundary_buf = np.empty(self.boundary_dst.size)
        self._fine_buf = np.empty(self.fine_dst.size)
        self._fine_acc = np.empty(self.fine_dst.size)

    @property
    def n_ghost_cells(self) -> int:
        """Total arena slots written per exchange (all fields)."""
        return (
            self.same_dst.size
            + self.coarse_dst.size
            + self.boundary_dst.size
            + self.fine_dst.size
        )

    _FACE_KINDS = ("same", "coarse", "boundary", "fine")

    def to_payload(self) -> Dict[str, np.ndarray]:
        """Flat array payload for the persistent plan cache
        (:mod:`repro.core.plancache`).  The arrays are absolute indices
        into the canonical sorted-leaf arena layout, which is itself a
        pure function of topology — so a payload keyed on the mesh
        fingerprint reconstructs this plan bit for bit."""
        return {
            "same_src": self.same_src,
            "same_dst": self.same_dst,
            "coarse_src": self.coarse_src,
            "coarse_dst": self.coarse_dst,
            "boundary_src": self.boundary_src,
            "boundary_dst": self.boundary_dst,
            "fine_src": self.fine_src,
            "fine_dst": self.fine_dst,
            "face_counts": np.array(
                [self.face_counts[k] for k in self._FACE_KINDS], dtype=np.int64
            ),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, np.ndarray]) -> "GhostIndexPlan":
        def idx(name: str) -> np.ndarray:
            return np.asarray(payload[name]).astype(np.intp, copy=False)

        counts = np.asarray(payload["face_counts"], dtype=np.int64)
        return cls(
            same=(idx("same_src"), idx("same_dst")),
            coarse=(idx("coarse_src"), idx("coarse_dst")),
            boundary=(idx("boundary_src"), idx("boundary_dst")),
            fine=(idx("fine_src").reshape(8, -1), idx("fine_dst")),
            face_counts={
                k: int(c) for k, c in zip(cls._FACE_KINDS, counts)
            },
        )

    @declare_effects(reads=[(ANY, "U", "Host")], writes=[(ANY, "U.ghost", "Host")])
    def fill_ghosts_kernel(self, flat: np.ndarray) -> None:
        """Whole-mesh ghost exchange over the flat storage arena.

        Equivalent to :func:`fill_all_ghosts` bit for bit: sources are
        interior cells only (which no fill writes) and each ghost band has
        exactly one writer, so class application order is irrelevant.
        """
        np.take(flat, self.same_src, out=self._same_buf)
        flat[self.same_dst] = self._same_buf
        np.take(flat, self.coarse_src, out=self._coarse_buf)
        flat[self.coarse_dst] = self._coarse_buf
        np.take(flat, self.boundary_src, out=self._boundary_buf)
        flat[self.boundary_dst] = self._boundary_buf
        if self.fine_dst.size:
            np.take(flat, self.fine_src[0], out=self._fine_acc)
            for row in range(1, 8):
                np.take(flat, self.fine_src[row], out=self._fine_buf)
                np.add(self._fine_acc, self._fine_buf, out=self._fine_acc)
            np.multiply(0.125, self._fine_acc, out=self._fine_acc)
            flat[self.fine_dst] = self._fine_acc


def _child_fine_rows(
    leaf: _IndexNode, child: _IndexNode, axis: int, side: int
) -> Tuple[np.ndarray, np.ndarray]:
    """One face child's restriction gather rows and destination indices.

    Mirrors :func:`_fill_fine` for a single child: row ``t`` holds the
    arena indices of the ``t``-th :data:`_RESTRICT_OFFSETS` term, ``dst``
    the ghost cells its average lands on.  Eight source rows of an output
    cell always come from the same child, which is what lets a fine face
    split across locality bundles.
    """
    sg = leaf.subgrid
    g, n = sg.ghost, sg.n
    half = n // 2
    t1, t2 = _transverse_axes(axis)
    csg = child.subgrid
    cg = csg.ghost
    donor: List[Optional[slice]] = [None, None, None]
    if side == 0:
        donor[axis] = slice(cg + csg.n - 2 * g, cg + csg.n)
    else:
        donor[axis] = slice(cg, cg + 2 * g)
    donor[t1] = csg.interior
    donor[t2] = csg.interior
    band = csg.data[(slice(None),) + tuple(donor)]
    rows = np.stack([band[:, i::2, j::2, k::2] for i, j, k in _RESTRICT_OFFSETS])

    b1 = (child.octant >> t1) & 1
    b2 = (child.octant >> t2) & 1
    dest: List[Optional[slice]] = [None, None, None]
    dest[axis] = slice(0, g)
    dest[t1] = slice(b1 * half, (b1 + 1) * half)
    dest[t2] = slice(b2 * half, (b2 + 1) * half)
    dst_band = sg.data[(slice(None),) + sg.ghost_slices(axis, side)]
    dst = dst_band[(slice(None),) + tuple(dest)]
    return rows.reshape(8, -1), dst.ravel()


@dataclass(frozen=True)
class FaceTrace:
    """One face's fill, traced in **leaf-local** arena indices.

    ``participants`` lists the dest leaf first, then the donor leaves in
    fill order; the trace's index cubes place participant ``q`` at base
    ``q * chunk``, so a local index decomposes as ``q, r = divmod(i,
    chunk)`` and relocates to any arena layout as ``offsets[participants
    [q]] + r``.  That makes a trace a pure function of the participant
    *keys* (geometry enters only via coords parity and octants, which the
    keys determine) — valid for reuse across plan rebuilds until a regrid
    touches one of its participants.

    ``copy_src/copy_dst`` serve the gather classes (same/coarse/boundary);
    ``fine_parts`` holds per-child ``(child_key, rows (8, K), dst)`` so a
    locality-straddling fine face can split across message bundles.
    """

    kind: str
    participants: Tuple[NodeKey, ...]
    copy_src: Optional[np.ndarray]
    copy_dst: Optional[np.ndarray]
    fine_parts: Tuple[Tuple[NodeKey, np.ndarray, np.ndarray], ...]
    #: Memoised ``divmod(local, chunk)`` splits, keyed on the identity of
    #: the trace-owned index array — the split never changes for a given
    #: trace, but relocation reruns on every plan rebuild, so caching it
    #: removes the divmod from the incremental-rebuild hot path.
    _splits: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def relocate(self, local: np.ndarray, bases: np.ndarray, chunk: int) -> np.ndarray:
        """Translate local trace indices into absolute arena indices."""
        key = (id(local), chunk)
        split = self._splits.get(key)
        if split is None:
            split = np.divmod(local, chunk)
            self._splits[key] = split
        q, r = split
        return bases[q] + r


def trace_face(
    mesh: AmrMesh,
    leaf: OctreeNode,
    axis: int,
    side: int,
    nfields: int = NFIELDS,
) -> FaceTrace:
    """Trace one face's reference fill over leaf-local index cubes."""
    n, g = mesh.n, mesh.ghost
    m = n + 2 * g
    chunk = nfields * m**3
    kind, other = mesh.face_neighbor(leaf, axis, side)
    donors = [] if kind == "boundary" else ([other] if kind != "fine" else list(other))

    def proxy(node: OctreeNode, slot: int) -> _IndexNode:
        cube = np.arange(slot * chunk, (slot + 1) * chunk, dtype=np.intp).reshape(
            nfields, m, m, m
        )
        return _IndexNode(_IndexSubGrid(n, g, cube), node.coords, node.octant)

    dest = proxy(leaf, 0)
    donor_proxies = [proxy(d, i + 1) for i, d in enumerate(donors)]
    participants = (leaf.key,) + tuple(d.key for d in donors)
    sg = dest.subgrid
    if kind == "fine":
        parts = []
        for donor, dp in zip(donors, donor_proxies):
            rows, dst = _child_fine_rows(dest, dp, axis, side)
            parts.append((donor.key, rows, dst))
        return FaceTrace(kind, participants, None, None, tuple(parts))
    band = (slice(None),) + sg.ghost_slices(axis, side)
    dst = sg.data[band].ravel().copy()
    if kind == "boundary":
        _fill_boundary(dest, axis, side)
    elif kind == "same":
        _fill_same(dest, donor_proxies[0], axis, side)
    else:
        _fill_coarse(dest, donor_proxies[0], axis, side)
    src = sg.data[band].ravel().copy()
    return FaceTrace(kind, participants, src, dst, ())


class FaceTraceCache:
    """Per-face fill traces reused across plan rebuilds.

    Keyed by ``(dest_key, axis, side)``.  A trace stays valid as long as no
    participant was touched by a regrid: a face's donor set can only change
    if the neighbouring topology changed, and every node involved in such a
    change appears in the :class:`~repro.octree.regrid.RegridDelta`'s
    drop/emit sets — so :meth:`invalidate` drops exactly the stale entries.
    Shared by :func:`ghost_index_plan` and
    :func:`repro.comms.bundle.build_bundle_plan`, which consume the same
    traces grouped differently.
    """

    def __init__(self, nfields: int = NFIELDS) -> None:
        self.nfields = nfields
        self._traces: Dict[Tuple[NodeKey, int, int], FaceTrace] = {}
        self.hits = 0
        self.misses = 0

    def face(self, mesh: AmrMesh, leaf: OctreeNode, axis: int, side: int) -> FaceTrace:
        key = (leaf.key, axis, side)
        trace = self._traces.get(key)
        if trace is None:
            self.misses += 1
            trace = trace_face(mesh, leaf, axis, side, self.nfields)
            self._traces[key] = trace
        else:
            self.hits += 1
        return trace

    def invalidate(self, delta) -> int:
        """Drop traces with a participant in the regrid delta's changed
        sets; returns how many entries were dropped."""
        touched = delta.drop_set | delta.emit_set
        if not touched:
            return 0
        stale = [
            key
            for key, trace in self._traces.items()
            if any(p in touched for p in trace.participants)
        ]
        for key in stale:
            del self._traces[key]
        return len(stale)

    def clear(self) -> None:
        self._traces.clear()

    def __len__(self) -> int:
        return len(self._traces)


def ghost_index_plan(
    mesh: AmrMesh,
    offsets: Dict[NodeKey, int],
    nfields: int = NFIELDS,
    trace_cache: Optional[FaceTraceCache] = None,
) -> GhostIndexPlan:
    """Trace the reference fills into a :class:`GhostIndexPlan`.

    ``offsets`` maps each leaf key to the flat-arena offset of its
    ``(nfields, M, M, M)`` chunk.  Every face's fill is traced in
    leaf-local indices (:func:`trace_face`) and relocated into the arena
    layout; passing a :class:`FaceTraceCache` reuses the traces of faces a
    regrid did not touch, which is the bulk of an incremental rebuild.
    The walk is over **sorted** leaf keys, so the plan arrays are a pure
    function of topology (not of mesh construction order).
    """
    leaves = sorted(mesh.leaves(), key=lambda nd: nd.key)
    n, g = mesh.n, mesh.ghost
    m = n + 2 * g
    chunk = nfields * m**3

    src: Dict[str, List[np.ndarray]] = {"same": [], "coarse": [], "boundary": []}
    dst: Dict[str, List[np.ndarray]] = {"same": [], "coarse": [], "boundary": []}
    fine_src: List[np.ndarray] = []
    fine_dst: List[np.ndarray] = []
    face_counts = {"same": 0, "coarse": 0, "boundary": 0, "fine": 0}
    for leaf in leaves:
        dest_base = offsets[leaf.key]
        for axis in range(3):
            for side in (0, 1):
                if trace_cache is not None:
                    trace = trace_cache.face(mesh, leaf, axis, side)
                else:
                    trace = trace_face(mesh, leaf, axis, side, nfields)
                face_counts[trace.kind] += 1
                bases = np.array(
                    [offsets[k] for k in trace.participants], dtype=np.intp
                )
                if trace.kind == "fine":
                    for _child_key, rows, part_dst in trace.fine_parts:
                        fine_src.append(trace.relocate(rows, bases, chunk))
                        fine_dst.append(part_dst + dest_base)
                    continue
                src[trace.kind].append(trace.relocate(trace.copy_src, bases, chunk))
                dst[trace.kind].append(trace.copy_dst + dest_base)

    if fine_src:
        fine = (np.concatenate(fine_src, axis=1), _as_index(fine_dst))
    else:
        fine = (np.empty((8, 0), dtype=np.intp), np.empty(0, dtype=np.intp))
    return GhostIndexPlan(
        same=(_as_index(src["same"]), _as_index(dst["same"])),
        coarse=(_as_index(src["coarse"]), _as_index(dst["coarse"])),
        boundary=(_as_index(src["boundary"]), _as_index(dst["boundary"])),
        fine=fine,
        face_counts=face_counts,
    )
