"""Ghost-layer exchange between leaf sub-grids.

Each leaf fills six face bands of ghost cells before a hydro step:

* **same-level neighbour** — direct copy of the neighbour's donor band,
* **coarse neighbour** (leaf one level up) — piecewise-constant prolongation
  of the adjacent coarse layer,
* **fine neighbour** (refined, four face children) — conservative 2x2x2
  restriction of the children's donor bands,
* **physical boundary** — zero-gradient (outflow) replication of the edge
  layer, matching Octo-Tiger's isolated-star boundaries.

The paper's §VII-B communication optimization concerns exactly these
transfers: between sub-grids on the same locality the donor band can be read
directly from memory instead of going through an HPX action.
:func:`exchange_plan` enumerates every transfer with its payload size and
locality so both the functional driver and the performance simulator consume
one description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.effects import ANY, declare_effects
from repro.octree.fields import NFIELDS
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey, OctreeNode
from repro.octree.subgrid import SubGrid


@dataclass(frozen=True)
class GhostExchange:
    """One face transfer: fill ``dst``'s ghost band on ``(axis, side)``."""

    dst: NodeKey
    src: Optional[NodeKey]  # None for physical boundaries
    axis: int
    side: int
    kind: str  # "same" | "coarse" | "fine" | "boundary"
    size_bytes: int
    same_locality: bool


def _transverse_axes(axis: int) -> Tuple[int, int]:
    return tuple(a for a in range(3) if a != axis)  # type: ignore[return-value]


#: Child-cell offsets of the 2x2x2 restriction stencil, in summation order.
#: :func:`_restrict2` and :meth:`GhostIndexPlan.fill_ghosts_kernel` must add
#: the eight terms in exactly this order so the two paths stay bit-identical.
_RESTRICT_OFFSETS = (
    (0, 0, 0),
    (1, 0, 0),
    (0, 1, 0),
    (0, 0, 1),
    (1, 1, 0),
    (1, 0, 1),
    (0, 1, 1),
    (1, 1, 1),
)


def _restrict2(band: np.ndarray) -> np.ndarray:
    """2x2x2 conservative average over the three spatial axes of
    ``(F, a, b, c)`` with even extents."""
    i, j, k = _RESTRICT_OFFSETS[0]
    total = band[:, i::2, j::2, k::2]
    for i, j, k in _RESTRICT_OFFSETS[1:]:
        total = total + band[:, i::2, j::2, k::2]
    return 0.125 * total


def _fill_boundary(leaf: OctreeNode, axis: int, side: int) -> None:
    """Zero-gradient: replicate the outermost interior layer into ghosts."""
    sg = leaf.subgrid
    g = sg.ghost
    ghost = sg.ghost_slices(axis, side)
    edge_index = g if side == 0 else g + sg.n - 1
    edge = [sg.interior] * 3
    edge[axis] = slice(edge_index, edge_index + 1)
    layer = sg.data[(slice(None),) + tuple(edge)]
    reps = [1, 1, 1, 1]
    reps[axis + 1] = g
    sg.data[(slice(None),) + ghost] = np.tile(layer, reps)


def _fill_same(leaf: OctreeNode, neighbor: OctreeNode, axis: int, side: int) -> None:
    band = neighbor.subgrid.extract(neighbor.subgrid.donor_slices(axis, 1 - side))
    leaf.subgrid.insert(leaf.subgrid.ghost_slices(axis, side), band)


def _fill_coarse(leaf: OctreeNode, coarse: OctreeNode, axis: int, side: int) -> None:
    """Prolong the coarse neighbour's adjacent interior layer(s).

    The fine leaf spans half of the coarse node in each transverse
    direction; which half follows from the parity of the fine node's integer
    coordinates.
    """
    sg, csg = leaf.subgrid, coarse.subgrid
    g, n = sg.ghost, sg.n
    half = n // 2
    n_coarse_layers = (g + 1) // 2  # fine ghost layers covered per coarse cell pair
    cg = csg.ghost

    # Donor slices in the coarse grid.
    donor = [None, None, None]
    if side == 0:  # our low face; coarse neighbour below us donates its top layers
        donor[axis] = slice(cg + n - n_coarse_layers, cg + n)
    else:
        donor[axis] = slice(cg, cg + n_coarse_layers)
    coords = leaf.coords
    for t in _transverse_axes(axis):
        bit = coords[t] & 1
        donor[t] = slice(cg + bit * half, cg + (bit + 1) * half)
    band = csg.data[(slice(None),) + tuple(donor)]

    # Prolong by 2 in every direction, then crop the axis to g fine layers
    # adjacent to the shared face.
    fine = np.repeat(np.repeat(np.repeat(band, 2, axis=1), 2, axis=2), 2, axis=3)
    ax = axis + 1
    if side == 0:
        # Ghost band runs away from the face toward -axis; keep the layers
        # nearest the face, i.e. the last g along the axis.
        fine = np.take(fine, range(fine.shape[ax] - g, fine.shape[ax]), axis=ax)
    else:
        fine = np.take(fine, range(0, g), axis=ax)
    leaf.subgrid.insert(leaf.subgrid.ghost_slices(axis, side), fine)


def _fill_fine(
    leaf: OctreeNode, children: List[OctreeNode], axis: int, side: int
) -> None:
    """Restrict the refined neighbour's face children into our ghost band."""
    sg = leaf.subgrid
    g, n = sg.ghost, sg.n
    half = n // 2
    t1, t2 = _transverse_axes(axis)
    out = np.empty(
        (sg.data.shape[0],) + tuple(
            g if a == axis else n for a in range(3)
        ),
        dtype=sg.data.dtype,
    )
    for child in children:
        csg = child.subgrid
        cg = csg.ghost
        donor = [None, None, None]
        # The children sit across our face; their donor band faces us.
        if side == 0:
            donor[axis] = slice(cg + csg.n - 2 * g, cg + csg.n)
        else:
            donor[axis] = slice(cg, cg + 2 * g)
        donor[t1] = csg.interior
        donor[t2] = csg.interior
        band = csg.data[(slice(None),) + tuple(donor)]
        coarse = _restrict2(band)  # (F, g, half, half)
        b1 = (child.octant >> t1) & 1
        b2 = (child.octant >> t2) & 1
        dest = [None, None, None]
        dest[axis] = slice(0, g)
        dest[t1] = slice(b1 * half, (b1 + 1) * half)
        dest[t2] = slice(b2 * half, (b2 + 1) * half)
        out[(slice(None),) + tuple(dest)] = coarse
    leaf.subgrid.insert(sg.ghost_slices(axis, side), out)


def fill_leaf_ghosts(mesh: AmrMesh, leaf: OctreeNode) -> None:
    """Fill all six ghost bands of one leaf from the current mesh state."""
    for axis in range(3):
        for side in (0, 1):
            kind, other = mesh.face_neighbor(leaf, axis, side)
            if kind == "boundary":
                _fill_boundary(leaf, axis, side)
            elif kind == "same":
                _fill_same(leaf, other, axis, side)
            elif kind == "coarse":
                _fill_coarse(leaf, other, axis, side)
            else:
                _fill_fine(leaf, other, axis, side)


def fill_all_ghosts(mesh: AmrMesh) -> None:
    """Ghost exchange over the whole mesh (sequential reference path).

    Reads are ordered against a snapshot-free scheme: donors are interior
    cells only, which no fill writes, so a single pass is race-free — the
    same argument that lets the paper's optimization read neighbours'
    memory directly once a promise signals the interior is up to date.
    """
    for leaf in mesh.leaves():
        fill_leaf_ghosts(mesh, leaf)


def exchange_plan(mesh: AmrMesh) -> List[GhostExchange]:
    """Enumerate every ghost transfer with payload size and locality info.

    Used by the distributed driver (to route messages or use the local
    direct path) and by the performance simulator (message counts/volumes).
    """
    plan: List[GhostExchange] = []
    for leaf in mesh.leaves():
        face_bytes = leaf.subgrid.nbytes_face()
        for axis in range(3):
            for side in (0, 1):
                kind, other = mesh.face_neighbor(leaf, axis, side)
                if kind == "boundary":
                    plan.append(
                        GhostExchange(leaf.key, None, axis, side, kind, 0, True)
                    )
                elif kind == "fine":
                    for child in other:
                        plan.append(
                            GhostExchange(
                                leaf.key,
                                child.key,
                                axis,
                                side,
                                kind,
                                face_bytes // 4,
                                child.locality == leaf.locality,
                            )
                        )
                else:
                    plan.append(
                        GhostExchange(
                            leaf.key,
                            other.key,
                            axis,
                            side,
                            kind,
                            face_bytes,
                            other.locality == leaf.locality,
                        )
                    )
    return plan


# -- vectorized ghost index plan ---------------------------------------------
#
# When every leaf's storage lives in one flat arena (repro.hydro.plan), each
# ghost band fill above is a pure gather: boundary/same/coarse fills move
# values with slicing, np.repeat, np.take and np.tile only, and the fine fill
# is a fixed 8-term average.  Tracing those *same* fill functions over cubes
# of flat arena indices (instead of field values) therefore yields, per
# class, a source-index array and a destination-index array such that
# ``arena[dst] = arena[src]`` reproduces the fill exactly.  The whole-mesh
# exchange collapses to four fancy-indexed copies.


class _IndexSubGrid(SubGrid):
    """A SubGrid whose ``data`` holds flat arena indices, for fill tracing."""

    def __init__(self, n: int, ghost: int, cube: np.ndarray) -> None:
        super().__init__(n, ghost)
        self.data = cube


class _IndexNode:
    """Just enough of :class:`OctreeNode` for the fill functions above."""

    __slots__ = ("subgrid", "coords", "octant")

    def __init__(self, subgrid: _IndexSubGrid, coords, octant: int) -> None:
        self.subgrid = subgrid
        self.coords = coords
        self.octant = octant


def _as_index(arrays: List[np.ndarray]) -> np.ndarray:
    if not arrays:
        return np.empty(0, dtype=np.intp)
    return np.concatenate(arrays).astype(np.intp, copy=False)


class GhostIndexPlan:
    """Vectorized whole-mesh ghost exchange as class-grouped index copies.

    Built by :func:`ghost_index_plan` for meshes whose leaf sub-grids share
    one flat storage arena.  Faces group into the four exchange classes
    (``same``, ``coarse``, ``boundary`` each as one src/dst gather pair;
    ``fine`` as eight gathers averaged in :func:`_restrict2`'s summation
    order), and :meth:`fill_ghosts_kernel` applies all of them with
    preallocated buffers — no per-leaf Python walk, no hot-loop allocation.
    """

    def __init__(
        self,
        same: Tuple[np.ndarray, np.ndarray],
        coarse: Tuple[np.ndarray, np.ndarray],
        boundary: Tuple[np.ndarray, np.ndarray],
        fine: Tuple[np.ndarray, np.ndarray],
        face_counts: Dict[str, int],
    ) -> None:
        self.same_src, self.same_dst = same
        self.coarse_src, self.coarse_dst = coarse
        self.boundary_src, self.boundary_dst = boundary
        self.fine_src, self.fine_dst = fine  # (8, K) and (K,)
        self.face_counts = face_counts
        self._same_buf = np.empty(self.same_dst.size)
        self._coarse_buf = np.empty(self.coarse_dst.size)
        self._boundary_buf = np.empty(self.boundary_dst.size)
        self._fine_buf = np.empty(self.fine_dst.size)
        self._fine_acc = np.empty(self.fine_dst.size)

    @property
    def n_ghost_cells(self) -> int:
        """Total arena slots written per exchange (all fields)."""
        return (
            self.same_dst.size
            + self.coarse_dst.size
            + self.boundary_dst.size
            + self.fine_dst.size
        )

    @declare_effects(reads=[(ANY, "U", "Host")], writes=[(ANY, "U.ghost", "Host")])
    def fill_ghosts_kernel(self, flat: np.ndarray) -> None:
        """Whole-mesh ghost exchange over the flat storage arena.

        Equivalent to :func:`fill_all_ghosts` bit for bit: sources are
        interior cells only (which no fill writes) and each ghost band has
        exactly one writer, so class application order is irrelevant.
        """
        np.take(flat, self.same_src, out=self._same_buf)
        flat[self.same_dst] = self._same_buf
        np.take(flat, self.coarse_src, out=self._coarse_buf)
        flat[self.coarse_dst] = self._coarse_buf
        np.take(flat, self.boundary_src, out=self._boundary_buf)
        flat[self.boundary_dst] = self._boundary_buf
        if self.fine_dst.size:
            np.take(flat, self.fine_src[0], out=self._fine_acc)
            for row in range(1, 8):
                np.take(flat, self.fine_src[row], out=self._fine_buf)
                np.add(self._fine_acc, self._fine_buf, out=self._fine_acc)
            np.multiply(0.125, self._fine_acc, out=self._fine_acc)
            flat[self.fine_dst] = self._fine_acc


def _fine_index_rows(
    leaf: _IndexNode, children: List[_IndexNode], axis: int, side: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Eight source-index rows + destination indices for one fine-class face.

    Mirrors :func:`_fill_fine` exactly, except the 2x2x2 average is kept
    symbolic: row ``t`` holds the indices of the ``t``-th
    :data:`_RESTRICT_OFFSETS` term.
    """
    sg = leaf.subgrid
    g, n = sg.ghost, sg.n
    half = n // 2
    t1, t2 = _transverse_axes(axis)
    band_shape = tuple(g if a == axis else n for a in range(3))
    out = np.empty((8, sg.data.shape[0]) + band_shape, dtype=np.intp)
    for child in children:
        csg = child.subgrid
        cg = csg.ghost
        donor = [None, None, None]
        if side == 0:
            donor[axis] = slice(cg + csg.n - 2 * g, cg + csg.n)
        else:
            donor[axis] = slice(cg, cg + 2 * g)
        donor[t1] = csg.interior
        donor[t2] = csg.interior
        band = csg.data[(slice(None),) + tuple(donor)]
        b1 = (child.octant >> t1) & 1
        b2 = (child.octant >> t2) & 1
        dest = [None, None, None]
        dest[axis] = slice(0, g)
        dest[t1] = slice(b1 * half, (b1 + 1) * half)
        dest[t2] = slice(b2 * half, (b2 + 1) * half)
        for t, (i, j, k) in enumerate(_RESTRICT_OFFSETS):
            out[(t, slice(None)) + tuple(dest)] = band[:, i::2, j::2, k::2]
    dst = sg.data[(slice(None),) + sg.ghost_slices(axis, side)]
    return out.reshape(8, -1), dst.ravel()


def ghost_index_plan(
    mesh: AmrMesh, offsets: Dict[NodeKey, int], nfields: int = NFIELDS
) -> GhostIndexPlan:
    """Trace the reference fills into a :class:`GhostIndexPlan`.

    ``offsets`` maps each leaf key to the flat-arena offset of its
    ``(nfields, M, M, M)`` chunk.  Each leaf gets a cube of its own arena
    indices; running the reference fill functions over those cubes leaves
    every traced ghost band holding the arena index of its source cell
    (fills read interiors only, so cubes stay pristine where it matters).
    """
    leaves = mesh.leaves()
    n, g = mesh.n, mesh.ghost
    m = n + 2 * g
    chunk = nfields * m**3
    proxies: Dict[NodeKey, _IndexNode] = {}
    for leaf in leaves:
        base = offsets[leaf.key]
        cube = np.arange(base, base + chunk, dtype=np.intp).reshape(nfields, m, m, m)
        proxies[leaf.key] = _IndexNode(
            _IndexSubGrid(n, g, cube), leaf.coords, leaf.octant
        )

    src: Dict[str, List[np.ndarray]] = {"same": [], "coarse": [], "boundary": []}
    dst: Dict[str, List[np.ndarray]] = {"same": [], "coarse": [], "boundary": []}
    fine_src: List[np.ndarray] = []
    fine_dst: List[np.ndarray] = []
    face_counts = {"same": 0, "coarse": 0, "boundary": 0, "fine": 0}
    for leaf in leaves:
        proxy = proxies[leaf.key]
        sg = proxy.subgrid
        for axis in range(3):
            for side in (0, 1):
                kind, other = mesh.face_neighbor(leaf, axis, side)
                face_counts[kind] += 1
                band = (slice(None),) + sg.ghost_slices(axis, side)
                if kind == "fine":
                    rows, band_dst = _fine_index_rows(
                        proxy, [proxies[c.key] for c in other], axis, side
                    )
                    fine_src.append(rows)
                    fine_dst.append(band_dst)
                    continue
                # The band is pristine until its own fill below runs.
                dst[kind].append(sg.data[band].ravel().copy())
                if kind == "boundary":
                    _fill_boundary(proxy, axis, side)
                elif kind == "same":
                    _fill_same(proxy, proxies[other.key], axis, side)
                else:
                    _fill_coarse(proxy, proxies[other.key], axis, side)
                src[kind].append(sg.data[band].ravel().copy())

    if fine_src:
        fine = (np.concatenate(fine_src, axis=1), _as_index(fine_dst))
    else:
        fine = (np.empty((8, 0), dtype=np.intp), np.empty(0, dtype=np.intp))
    return GhostIndexPlan(
        same=(_as_index(src["same"]), _as_index(dst["same"])),
        coarse=(_as_index(src["coarse"]), _as_index(dst["coarse"])),
        boundary=(_as_index(src["boundary"]), _as_index(dst["boundary"])),
        fine=fine,
        face_counts=face_counts,
    )
