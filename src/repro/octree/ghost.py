"""Ghost-layer exchange between leaf sub-grids.

Each leaf fills six face bands of ghost cells before a hydro step:

* **same-level neighbour** — direct copy of the neighbour's donor band,
* **coarse neighbour** (leaf one level up) — piecewise-constant prolongation
  of the adjacent coarse layer,
* **fine neighbour** (refined, four face children) — conservative 2x2x2
  restriction of the children's donor bands,
* **physical boundary** — zero-gradient (outflow) replication of the edge
  layer, matching Octo-Tiger's isolated-star boundaries.

The paper's §VII-B communication optimization concerns exactly these
transfers: between sub-grids on the same locality the donor band can be read
directly from memory instead of going through an HPX action.
:func:`exchange_plan` enumerates every transfer with its payload size and
locality so both the functional driver and the performance simulator consume
one description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey, OctreeNode


@dataclass(frozen=True)
class GhostExchange:
    """One face transfer: fill ``dst``'s ghost band on ``(axis, side)``."""

    dst: NodeKey
    src: Optional[NodeKey]  # None for physical boundaries
    axis: int
    side: int
    kind: str  # "same" | "coarse" | "fine" | "boundary"
    size_bytes: int
    same_locality: bool


def _transverse_axes(axis: int) -> Tuple[int, int]:
    return tuple(a for a in range(3) if a != axis)  # type: ignore[return-value]


def _restrict2(band: np.ndarray) -> np.ndarray:
    """2x2x2 conservative average over the three spatial axes of
    ``(F, a, b, c)`` with even extents."""
    return 0.125 * (
        band[:, 0::2, 0::2, 0::2]
        + band[:, 1::2, 0::2, 0::2]
        + band[:, 0::2, 1::2, 0::2]
        + band[:, 0::2, 0::2, 1::2]
        + band[:, 1::2, 1::2, 0::2]
        + band[:, 1::2, 0::2, 1::2]
        + band[:, 0::2, 1::2, 1::2]
        + band[:, 1::2, 1::2, 1::2]
    )


def _fill_boundary(leaf: OctreeNode, axis: int, side: int) -> None:
    """Zero-gradient: replicate the outermost interior layer into ghosts."""
    sg = leaf.subgrid
    g = sg.ghost
    ghost = sg.ghost_slices(axis, side)
    edge_index = g if side == 0 else g + sg.n - 1
    edge = [sg.interior] * 3
    edge[axis] = slice(edge_index, edge_index + 1)
    layer = sg.data[(slice(None),) + tuple(edge)]
    reps = [1, 1, 1, 1]
    reps[axis + 1] = g
    sg.data[(slice(None),) + ghost] = np.tile(layer, reps)


def _fill_same(leaf: OctreeNode, neighbor: OctreeNode, axis: int, side: int) -> None:
    band = neighbor.subgrid.extract(neighbor.subgrid.donor_slices(axis, 1 - side))
    leaf.subgrid.insert(leaf.subgrid.ghost_slices(axis, side), band)


def _fill_coarse(leaf: OctreeNode, coarse: OctreeNode, axis: int, side: int) -> None:
    """Prolong the coarse neighbour's adjacent interior layer(s).

    The fine leaf spans half of the coarse node in each transverse
    direction; which half follows from the parity of the fine node's integer
    coordinates.
    """
    sg, csg = leaf.subgrid, coarse.subgrid
    g, n = sg.ghost, sg.n
    half = n // 2
    n_coarse_layers = (g + 1) // 2  # fine ghost layers covered per coarse cell pair
    cg = csg.ghost

    # Donor slices in the coarse grid.
    donor = [None, None, None]
    if side == 0:  # our low face; coarse neighbour below us donates its top layers
        donor[axis] = slice(cg + n - n_coarse_layers, cg + n)
    else:
        donor[axis] = slice(cg, cg + n_coarse_layers)
    coords = leaf.coords
    for t in _transverse_axes(axis):
        bit = coords[t] & 1
        donor[t] = slice(cg + bit * half, cg + (bit + 1) * half)
    band = csg.data[(slice(None),) + tuple(donor)]

    # Prolong by 2 in every direction, then crop the axis to g fine layers
    # adjacent to the shared face.
    fine = np.repeat(np.repeat(np.repeat(band, 2, axis=1), 2, axis=2), 2, axis=3)
    ax = axis + 1
    if side == 0:
        # Ghost band runs away from the face toward -axis; keep the layers
        # nearest the face, i.e. the last g along the axis.
        fine = np.take(fine, range(fine.shape[ax] - g, fine.shape[ax]), axis=ax)
    else:
        fine = np.take(fine, range(0, g), axis=ax)
    leaf.subgrid.insert(leaf.subgrid.ghost_slices(axis, side), fine)


def _fill_fine(
    leaf: OctreeNode, children: List[OctreeNode], axis: int, side: int
) -> None:
    """Restrict the refined neighbour's face children into our ghost band."""
    sg = leaf.subgrid
    g, n = sg.ghost, sg.n
    half = n // 2
    t1, t2 = _transverse_axes(axis)
    out = np.empty(
        (sg.data.shape[0],) + tuple(
            g if a == axis else n for a in range(3)
        ),
        dtype=sg.data.dtype,
    )
    for child in children:
        csg = child.subgrid
        cg = csg.ghost
        donor = [None, None, None]
        # The children sit across our face; their donor band faces us.
        if side == 0:
            donor[axis] = slice(cg + csg.n - 2 * g, cg + csg.n)
        else:
            donor[axis] = slice(cg, cg + 2 * g)
        donor[t1] = csg.interior
        donor[t2] = csg.interior
        band = csg.data[(slice(None),) + tuple(donor)]
        coarse = _restrict2(band)  # (F, g, half, half)
        b1 = (child.octant >> t1) & 1
        b2 = (child.octant >> t2) & 1
        dest = [None, None, None]
        dest[axis] = slice(0, g)
        dest[t1] = slice(b1 * half, (b1 + 1) * half)
        dest[t2] = slice(b2 * half, (b2 + 1) * half)
        out[(slice(None),) + tuple(dest)] = coarse
    leaf.subgrid.insert(sg.ghost_slices(axis, side), out)


def fill_leaf_ghosts(mesh: AmrMesh, leaf: OctreeNode) -> None:
    """Fill all six ghost bands of one leaf from the current mesh state."""
    for axis in range(3):
        for side in (0, 1):
            kind, other = mesh.face_neighbor(leaf, axis, side)
            if kind == "boundary":
                _fill_boundary(leaf, axis, side)
            elif kind == "same":
                _fill_same(leaf, other, axis, side)
            elif kind == "coarse":
                _fill_coarse(leaf, other, axis, side)
            else:
                _fill_fine(leaf, other, axis, side)


def fill_all_ghosts(mesh: AmrMesh) -> None:
    """Ghost exchange over the whole mesh (sequential reference path).

    Reads are ordered against a snapshot-free scheme: donors are interior
    cells only, which no fill writes, so a single pass is race-free — the
    same argument that lets the paper's optimization read neighbours'
    memory directly once a promise signals the interior is up to date.
    """
    for leaf in mesh.leaves():
        fill_leaf_ghosts(mesh, leaf)


def exchange_plan(mesh: AmrMesh) -> List[GhostExchange]:
    """Enumerate every ghost transfer with payload size and locality info.

    Used by the distributed driver (to route messages or use the local
    direct path) and by the performance simulator (message counts/volumes).
    """
    plan: List[GhostExchange] = []
    for leaf in mesh.leaves():
        face_bytes = leaf.subgrid.nbytes_face()
        for axis in range(3):
            for side in (0, 1):
                kind, other = mesh.face_neighbor(leaf, axis, side)
                if kind == "boundary":
                    plan.append(
                        GhostExchange(leaf.key, None, axis, side, kind, 0, True)
                    )
                elif kind == "fine":
                    for child in other:
                        plan.append(
                            GhostExchange(
                                leaf.key,
                                child.key,
                                axis,
                                side,
                                kind,
                                face_bytes // 4,
                                child.locality == leaf.locality,
                            )
                        )
                else:
                    plan.append(
                        GhostExchange(
                            leaf.key,
                            other.key,
                            axis,
                            side,
                            kind,
                            face_bytes,
                            other.locality == leaf.locality,
                        )
                    )
    return plan
