"""Evolved field inventory.

Matches Octo-Tiger's state vector: density, three momentum components, gas
energy, the entropy tracer ``tau`` (dual-energy formalism), and two passive
tracer fields tracking the mass fractions of the binary components (used by
the refinement criterion and by merger diagnostics).
"""

from __future__ import annotations

import enum


class Field(enum.IntEnum):
    RHO = 0  # mass density
    SX = 1  # x momentum density
    SY = 2  # y momentum density
    SZ = 3  # z momentum density
    EGAS = 4  # total gas energy density (kinetic + internal)
    TAU = 5  # entropy tracer (rho * eps)**(1/gamma), dual-energy formalism
    FRAC1 = 6  # passive tracer: mass fraction from star 1
    FRAC2 = 7  # passive tracer: mass fraction from star 2


NFIELDS = len(Field)

#: Fields whose domain integral must be conserved to machine precision on a
#: uniform mesh (the paper's conservation claims).
CONSERVED = (Field.RHO, Field.SX, Field.SY, Field.SZ, Field.EGAS)

MOMENTA = (Field.SX, Field.SY, Field.SZ)
TRACERS = (Field.FRAC1, Field.FRAC2)
