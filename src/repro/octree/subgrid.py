"""The per-node field block: N^3 interior cells plus ghost layers.

Storage layout is ``(NFIELDS, M, M, M)`` with ``M = N + 2 * ghost`` —
structure-of-arrays, so per-field kernels get contiguous memory (the
data-structure porting of paper ref. [4]).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.octree.fields import NFIELDS, Field


class SubGrid:
    """Field storage for one octree node."""

    __slots__ = ("n", "ghost", "data")

    def __init__(self, n: int = 8, ghost: int = 2) -> None:
        if n < 2:
            raise ValueError("sub-grid edge must be >= 2 cells")
        if ghost < 1:
            raise ValueError("need at least one ghost layer")
        self.n = n
        self.ghost = ghost
        m = n + 2 * ghost
        self.data = np.zeros((NFIELDS, m, m, m), dtype=np.float64)

    @property
    def m(self) -> int:
        """Total edge length including ghosts."""
        return self.n + 2 * self.ghost

    @property
    def interior(self) -> slice:
        return slice(self.ghost, self.ghost + self.n)

    def interior_view(self, field: Field = None) -> np.ndarray:  # noqa: RUF013
        """Writable view of the interior cells (one field or all)."""
        s = self.interior
        if field is None:
            return self.data[:, s, s, s]
        return self.data[field, s, s, s]

    def set_interior(self, field: Field, values: np.ndarray) -> None:
        s = self.interior
        if values.shape != (self.n, self.n, self.n):
            raise ValueError(
                f"expected interior shape {(self.n,) * 3}, got {values.shape}"
            )
        self.data[field, s, s, s] = values

    # -- face bands (ghost exchange geometry) -------------------------------
    def ghost_slices(self, axis: int, side: int) -> Tuple[slice, slice, slice]:
        """Index of this grid's ghost band on face ``(axis, side)``.

        ``side`` 0 is the low face, 1 the high face.  Transverse directions
        cover the interior only (face-adjacent exchange; the dimensionally
        swept stencils never read edge/corner ghosts).
        """
        g, n = self.ghost, self.n
        band = slice(0, g) if side == 0 else slice(g + n, 2 * g + n)
        out = [self.interior] * 3
        out[axis] = band
        return tuple(out)

    def donor_slices(self, axis: int, side: int) -> Tuple[slice, slice, slice]:
        """Interior band a neighbour reads to fill *its* ghost band.

        For a neighbour on our high face (their low ghosts), they read our
        topmost ``ghost`` interior layers, and vice versa.
        """
        g, n = self.ghost, self.n
        band = slice(g, 2 * g) if side == 0 else slice(n, g + n)
        out = [self.interior] * 3
        out[axis] = band
        return tuple(out)

    def extract(self, slices: Tuple[slice, slice, slice]) -> np.ndarray:
        """Copy of a band across all fields (what goes on the wire)."""
        return self.data[(slice(None),) + slices].copy()

    def insert(self, slices: Tuple[slice, slice, slice], values: np.ndarray) -> None:
        self.data[(slice(None),) + slices] = values

    # -- integrals -----------------------------------------------------------
    def integral(self, field: Field, cell_volume: float) -> float:
        """Volume integral of one field over the interior."""
        return float(self.interior_view(field).sum()) * cell_volume

    def max_abs(self, field: Field) -> float:
        return float(np.abs(self.interior_view(field)).max())

    def copy(self) -> "SubGrid":
        out = SubGrid(self.n, self.ghost)
        np.copyto(out.data, self.data)
        return out

    def nbytes_face(self, with_ghost_width: int = None) -> int:  # noqa: RUF013
        """Bytes of one face band message (feeds the communication model)."""
        g = self.ghost if with_ghost_width is None else with_ghost_width
        return NFIELDS * g * self.n * self.n * 8
