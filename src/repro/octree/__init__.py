"""Adaptive-mesh-refinement octree of N^3 sub-grids (Octo-Tiger's mesh).

Octo-Tiger's grid is an octree whose nodes each carry an ``N x N x N``
sub-grid of hydrodynamic state (N = 8 by default).  Interior nodes are fully
refined (all eight children exist); leaves evolve, interiors hold
restrictions of their children.  This package provides:

* :class:`~repro.octree.subgrid.SubGrid` — the per-node field block with
  ghost layers,
* :class:`~repro.octree.node.OctreeNode` — tree topology + geometry,
* :class:`~repro.octree.mesh.AmrMesh` — refinement, 2:1 balance,
  restriction/prolongation, neighbour lookup,
* :mod:`~repro.octree.ghost` — ghost-layer exchange (same-level copies,
  coarse-fine interpolation, physical boundaries),
* :mod:`~repro.octree.partition` — Morton space-filling-curve partitioning
  across localities.
"""

from repro.octree.fields import Field, NFIELDS
from repro.octree.subgrid import SubGrid
from repro.octree.node import OctreeNode
from repro.octree.mesh import AmrMesh
from repro.octree.ghost import fill_all_ghosts, exchange_plan, GhostExchange
from repro.octree.partition import sfc_partition, partition_stats
from repro.octree.regrid import (
    DensityCriterion,
    TracerCriterion,
    CombinedCriterion,
    RegridResult,
    regrid,
)

__all__ = [
    "Field",
    "NFIELDS",
    "SubGrid",
    "OctreeNode",
    "AmrMesh",
    "fill_all_ghosts",
    "exchange_plan",
    "GhostExchange",
    "sfc_partition",
    "partition_stats",
    "DensityCriterion",
    "TracerCriterion",
    "CombinedCriterion",
    "RegridResult",
    "regrid",
]
