"""Scaling sweeps: the curves the paper's figures plot.

``scaling_curve`` evaluates the model over a node-count series;
``speedup_series`` normalises to the smallest node count the scenario fits
in — exactly how Figs. 4b and 5b define S.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.distsim.model import (
    DEFAULT_CONSTANTS,
    ModelConstants,
    StepBreakdown,
    simulate_step,
)
from repro.distsim.runconfig import RunConfig  # noqa: F401 - re-exported
from repro.machines.specs import MachineModel
from repro.scenarios.spec import ScenarioSpec


def node_series(start: int, stop: int) -> List[int]:
    """Powers of two from ``start`` to ``stop`` inclusive."""
    if start < 1 or stop < start:
        raise ValueError("need 1 <= start <= stop")
    out = []
    n = start
    while n <= stop:
        out.append(n)
        n *= 2
    return out


def scaling_curve(
    spec: ScenarioSpec,
    machine: MachineModel,
    nodes: Iterable[int],
    constants: ModelConstants = DEFAULT_CONSTANTS,
    **config_kwargs,  # noqa: ANN003
) -> List[StepBreakdown]:
    """Evaluate the step model across node counts on one machine."""
    out = []
    for n in nodes:
        cfg = RunConfig(machine=machine, nodes=n, **config_kwargs)
        out.append(simulate_step(spec, cfg, constants))
    return out


def speedup_series(curve: Sequence[StepBreakdown]) -> List[float]:
    """Speedup relative to the first (smallest-node) entry, scaled by its
    node count — S(N) = rate(N) / rate(N_min)."""
    if not curve:
        return []
    base = curve[0].cells_per_second
    return [point.cells_per_second / base for point in curve]


def weak_scaling_curve(
    spec: ScenarioSpec,
    machine: MachineModel,
    nodes: Iterable[int],
    subgrids_per_node: Optional[int] = None,
    constants: ModelConstants = DEFAULT_CONSTANTS,
    **config_kwargs,  # noqa: ANN003
) -> List[StepBreakdown]:
    """Weak scaling: the workload grows with the node count.

    Not one of the paper's plots, but the natural companion study — perfect
    weak scaling means constant time per step; the sync and surface terms
    make it degrade logarithmically/geometrically instead.
    """
    if subgrids_per_node is None:
        subgrids_per_node = max(spec.n_subgrids, 1)
    out = []
    for n in nodes:
        scaled = spec.with_subgrids(subgrids_per_node * n)
        cfg = RunConfig(machine=machine, nodes=n, **config_kwargs)
        out.append(simulate_step(scaled, cfg, constants))
    return out


def comm_ablation_curves(
    spec: ScenarioSpec,
    machine: MachineModel,
    nodes: Iterable[int],
    constants: ModelConstants = DEFAULT_CONSTANTS,
    **config_kwargs,  # noqa: ANN003
):
    """The paper's communication-optimization ablation (Fig. 8 shape), on
    the discrete-event simulator.

    Executes the per-step task graph across node counts for the four
    combinations of ± message coalescing (``RunConfig.coalesce``, see
    ``docs/comms.md``) and ± the §VII-B local-communication optimization,
    returning ``{label: [TaskGraphResult, ...]}``.  The curve separation —
    bundled runs degrade later as the per-message action overhead stops
    dominating — is the simulated analogue of the paper's with/without
    scaling plot.
    """
    from repro.distsim.taskgraph import TaskGraphSimulator

    variants = {
        "coalesce+local_opt": {"coalesce": True, "comm_local_optimization": True},
        "coalesce": {"coalesce": True, "comm_local_optimization": False},
        "local_opt": {"coalesce": False, "comm_local_optimization": True},
        "baseline": {"coalesce": False, "comm_local_optimization": False},
    }
    out = {}
    for label, flags in variants.items():
        curve = []
        for n in nodes:
            cfg = RunConfig(
                machine=machine, nodes=n, **{**config_kwargs, **flags}
            )
            curve.append(TaskGraphSimulator(spec, cfg, constants).run_step())
        out[label] = curve
    return out


def min_nodes_for(
    spec: ScenarioSpec, machine: MachineModel, power_of_two: bool = True
) -> int:
    """Smallest node count whose memory holds the scenario (Fig. 4's
    starting points: Summit 1, Piz Daint 4, Fugaku 16 for v1309)."""
    need = spec.memory_bytes
    node_mem = machine.node.memory_gb * 1e9
    nodes = 1
    while nodes * node_mem < need:
        nodes = nodes * 2 if power_of_two else nodes + 1
    return nodes
