"""Hang/deadlock reliability analysis (paper SVI-D and SVII).

The paper reports two failure observations it could not debug before the
allocations ended: Octo-Tiger *hanging* on Fugaku at the largest node
counts under Fujitsu MPI, and *rare deadlocks* ("about 1 out of 20 runs")
on distributed Ookami runs.  Both are consistent with a small per-message
loss/race probability: a run survives only if every ghost message round
completes, so

    P(hang) = 1 - (1 - p)^M  ~  1 - exp(-p M)

with M the number of messages a run exchanges.  Calibrating p to the
Ookami observation predicts how the hang probability explodes with node
count — the qualitative behaviour the paper saw on Fugaku.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.distsim.model import DEFAULT_CONSTANTS, ModelConstants
from repro.distsim.runconfig import RunConfig
from repro.scenarios.spec import ScenarioSpec


def messages_per_step(
    spec: ScenarioSpec,
    config: RunConfig,
    constants: ModelConstants = DEFAULT_CONSTANTS,
) -> float:
    """Remote ghost messages per timestep across the whole job."""
    p = config.nodes
    if p == 1:
        return 0.0
    s_p = spec.n_subgrids / p
    remote_fraction = min(1.0, constants.sfc_surface_coeff * s_p ** (-1.0 / 3.0))
    faces = spec.n_subgrids * spec.ghost_faces_per_subgrid * 3.0  # RK stages
    return faces * remote_fraction


@dataclass(frozen=True)
class ReliabilityModel:
    """Per-message failure probability lambda, with run-level predictions."""

    per_message_probability: float

    def hang_probability(self, messages: float) -> float:
        if messages < 0:
            raise ValueError("message count must be non-negative")
        return 1.0 - math.exp(-self.per_message_probability * messages)

    def expected_attempts(self, messages: float) -> float:
        """Mean number of run attempts until one completes."""
        survive = 1.0 - self.hang_probability(messages)
        if survive <= 0.0:
            return math.inf
        return 1.0 / survive

    @classmethod
    def calibrate(
        cls, observed_hang_fraction: float, messages: float
    ) -> "ReliabilityModel":
        """Fit lambda from an observed hang rate at a known message count
        (e.g. the paper's 1/20 deadlocks on Ookami runs)."""
        if not 0.0 < observed_hang_fraction < 1.0:
            raise ValueError("observed fraction must be in (0, 1)")
        if messages <= 0:
            raise ValueError("messages must be positive")
        lam = -math.log(1.0 - observed_hang_fraction) / messages
        return cls(per_message_probability=lam)


@dataclass(frozen=True)
class EmpiricalHangResult:
    """Monte Carlo cross-check of the closed-form hang model."""

    hang_fraction: float
    runs: int
    hangs: int
    #: Remote messages one clean (fault-free) run of the step sends — the
    #: empirical counterpart of :func:`messages_per_step`.
    messages_per_clean_step: int

    def predicted_hang_probability(self, drop_rate: float) -> float:
        """The analytic prediction for this workload at ``drop_rate``.

        Per-message Bernoulli loss maps onto the exponential model with
        lambda = -ln(1 - p), so P(hang) = 1 - (1-p)^M exactly.
        """
        model = ReliabilityModel(-math.log(1.0 - drop_rate))
        return model.hang_probability(self.messages_per_clean_step)


def empirical_hang_probability(
    spec: ScenarioSpec,
    config: RunConfig,
    drop_rate: float,
    seeds: Iterable[int],
    constants: ModelConstants = DEFAULT_CONSTANTS,
) -> EmpiricalHangResult:
    """Measure the hang fraction by running the step task graph under a
    seeded per-message drop schedule, one run per seed, without recovery.

    Every dropped ghost message wedges the dependency graph (the watchdog
    raises :class:`~repro.resilience.watchdog.DeadlockError`), so a run
    hangs iff any of its messages is dropped — exactly the event the
    closed-form ``P(hang) = 1 - (1-p)^M`` describes.  Because the drop
    draws are i.i.d. per message index, the Monte Carlo fraction converges
    on the analytic curve; :mod:`tests.test_reliability` asserts it.
    """
    from repro.distsim.taskgraph import TaskGraphSimulator
    from repro.resilience.faults import FaultSpec
    from repro.resilience.watchdog import DeadlockError

    clean = TaskGraphSimulator(spec, config, constants).run_step()
    hangs = 0
    runs = 0
    for seed in seeds:
        runs += 1
        simulator = TaskGraphSimulator(
            spec,
            config,
            constants,
            faults=FaultSpec(drop_rate=drop_rate, seed=seed),
        )
        try:
            simulator.run_step()
        except DeadlockError:
            hangs += 1
    return EmpiricalHangResult(
        hang_fraction=hangs / runs if runs else 0.0,
        runs=runs,
        hangs=hangs,
        messages_per_clean_step=clean.messages,
    )


def hang_probability_curve(
    spec: ScenarioSpec,
    model: ReliabilityModel,
    machine,  # noqa: ANN001
    node_counts,  # noqa: ANN001
    steps: int = 100,
) -> list:
    """P(hang within ``steps`` steps) across node counts."""
    out = []
    for nodes in node_counts:
        config = RunConfig(machine=machine, nodes=nodes)
        messages = messages_per_step(spec, config) * steps
        out.append((nodes, model.hang_probability(messages)))
    return out
