"""Text rendering of scaling curves: the figures, as ASCII.

The benches persist raw series; this module renders them the way the
paper's log-log plots read, so a terminal user can eyeball the knees and
crossovers without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

#: Glyphs assigned to series in insertion order.
_GLYPHS = "ox+*#@%&"


def ascii_loglog(
    curves: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    x_label: str = "nodes",
    y_label: str = "cells/s",
) -> List[str]:
    """Render ``{name: [(x, y), ...]}`` as a log-log scatter.

    Returns the plot as a list of lines (legend first).  Raises on
    non-positive coordinates — log axes cannot show them.
    """
    if not curves:
        raise ValueError("no curves to plot")
    points = [(x, y) for series in curves.values() for x, y in series]
    if not points:
        raise ValueError("curves contain no points")
    if any(x <= 0 or y <= 0 for x, y in points):
        raise ValueError("log-log plot needs positive coordinates")

    lx = [math.log10(x) for x, _ in points]
    ly = [math.log10(y) for _, y in points]
    x_lo, x_hi = min(lx), max(lx)
    y_lo, y_hi = min(ly), max(ly)
    x_span = max(x_hi - x_lo, 1e-9)
    y_span = max(y_hi - y_lo, 1e-9)

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, series) in enumerate(curves.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        legend.append(f"{glyph} = {name}")
        for x, y in series:
            col = int((math.log10(x) - x_lo) / x_span * (width - 1))
            row = int((math.log10(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = ["   ".join(legend)]
    top = f"{10 ** y_hi:.2e}"
    bottom = f"{10 ** y_lo:.2e}"
    pad = max(len(top), len(bottom))
    for i, row in enumerate(grid):
        label = top if i == 0 else (bottom if i == height - 1 else "")
        lines.append(f"{label:>{pad}} |{''.join(row)}|")
    lines.append(
        f"{'':>{pad}} +{'-' * width}+  {y_label} vs {x_label} "
        f"[{10 ** x_lo:g} .. {10 ** x_hi:g}]"
    )
    return lines


def curve_to_points(curve) -> List[Tuple[float, float]]:  # noqa: ANN001
    """(nodes, cells/s) pairs from a list of StepBreakdown."""
    return [(p.nodes, p.cells_per_second) for p in curve]
