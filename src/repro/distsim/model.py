"""The analytic per-timestep performance model.

One Octo-Tiger timestep decomposes into:

* **hydro compute** — three RK stages of reconstruction/flux/update over
  every local cell; vectorizable, so the SIMD factor applies,
* **gravity compute** — P2P near-field plus the Multipole (M2L) kernel;
  the Multipole part is modelled per tree level because its parallelism
  shrinks towards the root (core starvation, Fig. 9),
* **ghost communication** — face messages per RK stage, remote fraction
  from the SFC partition's surface-to-volume ratio, overlapped with compute
  by the task runtime, with the local-communication optimization trading
  per-message action overhead against promise/future synchronisation
  (Fig. 8),
* **synchronisation** — log2(P) message rounds per solver phase (tree
  traversals and the global timestep reduction); this is what bends the
  scaling curves at the paper's knee positions (Fig. 6),
* a **memory-bandwidth roofline** and a sub-linear frequency sensitivity
  (cache/latency stalls do not speed up with clock), which is why boost
  mode only helps marginally (Fig. 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.distsim.runconfig import RunConfig
from repro.scenarios.spec import ScenarioSpec


@dataclass(frozen=True)
class ModelConstants:
    """Calibrated constants; each notes the observation that pins it."""

    #: DRAM traffic per cell per step (field loads/stores + stencil scratch).
    bytes_per_cell_traffic: float = 1_200.0
    #: Flops of one same-level multipole (M2L) interaction between sub-grids.
    flops_per_interaction: float = 25_000.0
    #: HPX task spawn/schedule overhead; visible when a kernel is split into
    #: many tasks on an un-starved node (Fig. 9's "OFF better at 1 node").
    task_overhead_s: float = 2.0e-6
    #: Single-core CPU cost of handling one ghost face through the HPX
    #: action path (serialization + dispatch + buffer copy) versus the
    #: direct-access path guarded by a promise/future (the "overhead of a
    #: different kind", Fig. 8).  Their 3:1 ratio puts the optimization's
    #: break-even at ~8 nodes for the level-5 rotating star (Fig. 8).
    face_action_cpu_s: float = 6.0e-6
    face_sync_cpu_s: float = 2.0e-6
    #: GPU machines stage ghosts through pinned buffers; the effective CPU
    #: cost per face is reduced and the work overlaps the device kernels.
    gpu_ghost_staging_factor: float = 0.25
    #: Synchronisation rounds per timestep: 3 RK ghost phases + 3 gravity
    #: tree phases + timestep reduction.
    barrier_rounds_per_step: float = 7.0
    #: Remote-face fraction of the Morton partition:
    #: min(1, coeff * s_p^(-1/3)).  The coefficient folds in the raggedness
    #: of Morton chunks over density-refined meshes; calibrated so the
    #: local-communication optimization's break-even lands at 8 nodes for
    #: the level-5 rotating star on Ookami (Fig. 8).
    sfc_surface_coeff: float = 5.8
    #: Fraction of wire time hidden under compute by task-based overlap.
    overlap_fraction: float = 0.7
    #: Exponent of the sustained-rate vs clock relation; < 1 because part of
    #: the stall time is memory latency (boost mode is "marginal", Fig. 3).
    frequency_sensitivity: float = 0.4
    #: Per-core parallel efficiency roll-off within a node (shared L2/HBM
    #: contention on A64FX CMGs).
    core_contention: float = 0.0022


DEFAULT_CONSTANTS = ModelConstants()


@dataclass(frozen=True)
class StepBreakdown:
    """Timing of one simulated timestep on one configuration."""

    spec_name: str
    machine: str
    nodes: int
    subgrids_per_node: float
    hydro_s: float
    gravity_s: float
    multipole_s: float
    comm_s: float
    exposed_comm_s: float
    sync_s: float
    total_s: float
    cells_per_second: float
    utilization: float
    node_power_w: float
    job_power_w: float

    @property
    def subgrids_per_second(self) -> float:
        return self.cells_per_second / 512.0


def _cpu_rate(config: RunConfig, constants: ModelConstants) -> float:
    """Sustained node flop rate of the active CPU cores."""
    node = config.machine.node
    base = node.sustained_cpu_flops(simd=False, boost=False)
    if config.simd:
        from repro.simd.abi import get_abi

        ideal = get_abi(node.simd_abi).speedup_factor()
        base *= 1.0 + (ideal - 1.0) * config.simd_maturity
    # Frequency sensitivity: boost raises the clock but only part of the
    # stall budget scales with it.
    if config.boost and node.boost_freq_ghz:
        base *= (node.boost_freq_ghz / node.freq_ghz) ** constants.frequency_sensitivity
    # Core count scaling with mild contention roll-off.
    cores = config.active_cores
    eff_cores = cores / (1.0 + constants.core_contention * cores)
    full_cores = node.cores / (1.0 + constants.core_contention * node.cores)
    return base * eff_cores / full_cores


def _tree_levels(spec: ScenarioSpec) -> list:
    """(level, node_count) pairs of an idealised complete octree holding
    ``spec.n_subgrids`` leaves."""
    levels = []
    count = spec.n_subgrids
    level = spec.max_level
    while level >= 0 and count >= 1:
        levels.append((level, max(int(count), 1)))
        count /= 8.0
        level -= 1
    return levels


def _multipole_time(
    spec: ScenarioSpec, config: RunConfig, constants: ModelConstants, core_rate: float
) -> float:
    """Per-level Multipole (M2L) kernel time with starvation and the
    tasks-per-kernel knob.

    At each tree level a locality owns ``n_l / P`` octree nodes; each node's
    kernel splits into K tasks.  If that is fewer concurrent tasks than
    cores, the remaining cores starve and the level runs at reduced
    parallelism.  K > 1 adds task-spawn overhead, which is why splitting
    only pays off once nodes are starved (Fig. 9).
    """
    cores = config.active_cores
    k = config.tasks_per_multipole_kernel
    p = config.nodes
    per_core_rate = core_rate / cores
    total = 0.0
    for _level, n_l in _tree_levels(spec):
        local_nodes = n_l / p
        work = (
            local_nodes
            * spec.fmm_interactions_per_subgrid
            * constants.flops_per_interaction
        )
        concurrency = min(cores, max(local_nodes * k, 1e-9))
        time = work / (per_core_rate * concurrency)
        # Task overhead: every kernel launch spawns k tasks.
        time += local_nodes * k * constants.task_overhead_s / cores
        total += time
    return total


def _communication(
    spec: ScenarioSpec, config: RunConfig, constants: ModelConstants
) -> tuple:
    """Ghost communication of one step per node.

    Returns ``(wire_s, cpu_s)``: wire time is overlappable with compute by
    the task runtime; the local-path cost (buffer copies / action dispatch /
    promise-future synchronisation) occupies worker cores and adds to
    compute.
    """
    p = config.nodes
    net = config.machine.interconnect
    s_p = spec.n_subgrids / p
    stages = 3.0  # RK stages each exchange ghosts

    faces_total = s_p * spec.ghost_faces_per_subgrid * stages
    if p == 1:
        remote_fraction = 0.0
    else:
        remote_fraction = min(1.0, constants.sfc_surface_coeff * s_p ** (-1.0 / 3.0))
    remote_faces = faces_total * remote_fraction
    local_faces = faces_total - remote_faces

    wire = remote_faces * (
        (net.latency_us + net.action_overhead_us) * 1e-6
        + spec.face_bytes / (net.bandwidth_gbs * 1e9)
    )
    if config.comm_local_optimization:
        # Local neighbours read memory directly; every face (local and
        # remote alike) pays the promise/future synchronisation instead.
        cpu_core_seconds = faces_total * constants.face_sync_cpu_s
    else:
        # Local transfers go through the HPX action path with buffers;
        # remote faces' host-side costs ride in the wire term.
        cpu_core_seconds = local_faces * constants.face_action_cpu_s
    # Ghost handling is parallel work across the node's cores.
    cpu = cpu_core_seconds / config.active_cores
    if config.use_gpus:
        cpu *= constants.gpu_ghost_staging_factor
    return wire, cpu


def _sync_time(config: RunConfig, constants: ModelConstants) -> float:
    """log2(P) message rounds per solver phase per step."""
    p = config.nodes
    if p == 1:
        return 0.0
    net = config.machine.interconnect
    round_cost = (net.latency_us + net.action_overhead_us) * 1e-6
    return constants.barrier_rounds_per_step * math.ceil(math.log2(p)) * round_cost


def simulate_step(
    spec: ScenarioSpec,
    config: RunConfig,
    constants: ModelConstants = DEFAULT_CONSTANTS,
) -> StepBreakdown:
    """Model one timestep of ``spec`` under ``config``."""
    p = config.nodes
    s_p = spec.n_subgrids / p
    cells_per_node = s_p * spec.subgrid_n**3
    node = config.machine.node

    if config.use_gpus:
        gpu_rate = node.sustained_gpu_flops()
        flops = cells_per_node * (
            spec.hydro_flops_per_cell + spec.gravity_flops_per_cell
        ) + s_p * spec.fmm_interactions_per_subgrid * constants.flops_per_interaction
        launches = s_p * spec.kernels_per_subgrid_per_step / config.gpu_aggregation
        streams = 4.0 * max(len(node.gpus), 1)
        launch_lat = node.gpus[0].kernel_launch_latency_us * 1e-6 if node.gpus else 0.0
        hydro_time = (
            cells_per_node * spec.hydro_flops_per_cell / gpu_rate
            + launches * launch_lat / streams * 0.6
        )
        gravity_time = (
            cells_per_node * spec.gravity_flops_per_cell / gpu_rate
            + launches * launch_lat / streams * 0.4
        )
        multipole_time = (
            s_p
            * spec.fmm_interactions_per_subgrid
            * constants.flops_per_interaction
            / gpu_rate
        )
        roofline = 0.0  # HBM on device; not the binding constraint here
    else:
        rate = _cpu_rate(config, constants)
        hydro_flops = cells_per_node * spec.hydro_flops_per_cell
        gravity_flops = cells_per_node * spec.gravity_flops_per_cell
        hydro_time = hydro_flops / rate
        gravity_time = gravity_flops / rate
        multipole_time = _multipole_time(spec, config, constants, rate)
        roofline = (
            cells_per_node
            * constants.bytes_per_cell_traffic
            / (node.memory_bw_gbs * 1e9)
        )

    wire, comm_cpu = _communication(spec, config, constants)
    if config.use_gpus:
        # Host-side ghost staging overlaps the device kernels; whichever is
        # longer binds the step (the host side is the known scaling limit of
        # GPU AMR codes, which is what work aggregation [paper ref. 9]
        # attacks).
        compute = max(hydro_time + gravity_time + multipole_time, comm_cpu)
    else:
        compute = hydro_time + gravity_time + multipole_time + comm_cpu
    compute = max(compute, roofline)

    comm = wire + comm_cpu
    sync = _sync_time(config, constants)
    if config.overlap:
        exposed = max(0.0, wire - constants.overlap_fraction * compute)
    else:
        # BSP ablation: every wire microsecond sits on the critical path.
        exposed = wire

    total = compute + exposed + sync
    cells_per_second = spec.n_cells / total  # aggregate over the whole job
    utilization = min(1.0, compute / total)

    power = config.machine.power
    node_power = power.node_power(utilization, config.frequency_ghz)
    return StepBreakdown(
        spec_name=spec.name,
        machine=config.machine.name,
        nodes=p,
        subgrids_per_node=s_p,
        hydro_s=hydro_time,
        gravity_s=gravity_time,
        multipole_s=multipole_time,
        comm_s=comm,
        exposed_comm_s=exposed,
        sync_s=sync,
        total_s=total,
        cells_per_second=cells_per_second,
        utilization=utilization,
        node_power_w=node_power,
        job_power_w=node_power * p,
    )
