"""Run configuration: which machine, how many nodes, which optimizations.

Mirrors the knobs the paper turns: SVE vectorization on/off (Fig. 7), the
local-communication optimization on/off (Fig. 8), multipole tasks per
kernel (Fig. 9), boost mode (Fig. 3), and CPU-only versus GPU execution
(Figs. 4/5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.specs import MachineModel


@dataclass(frozen=True)
class RunConfig:
    machine: MachineModel
    nodes: int = 1
    use_gpus: bool = False
    simd: bool = True  # explicit SIMD types (SVE/AVX) in compute kernels
    boost: bool = False  # Fugaku 2.2 GHz boost mode
    comm_local_optimization: bool = True  # paper SVII-B
    #: Coalesce all ghost transfers between a locality pair into one
    #: flat-buffer bundle message per step phase (see ``docs/comms.md``):
    #: O(neighbor localities) payload messages instead of O(leaf faces).
    coalesce: bool = True
    #: Futurized communication/compute overlap (HPX's raison d'être and the
    #: process backend's ``--overlap`` schedule): when off, the full ghost
    #: wire time is exposed on the critical path instead of being hidden
    #: behind interior compute.
    overlap: bool = True
    tasks_per_multipole_kernel: int = 1  # paper SVII-C ("OFF"=1, "ON"=16)
    gpu_aggregation: int = 16  # kernel launches fused per device launch
    cores: int = 0  # 0 = all node cores (Fig. 3 sweeps this)
    #: Fraction of the ideal SIMD-type speedup realised; the paper's Fugaku
    #: runs used "an older version of SVE vectorization" than the later
    #: Ookami runs (Fig. 10), modelled as maturity < 1.
    simd_maturity: float = 1.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.tasks_per_multipole_kernel < 1:
            raise ValueError("tasks_per_multipole_kernel must be >= 1")
        if self.use_gpus and not self.machine.node.gpus:
            raise ValueError(f"{self.machine.name} nodes have no GPUs")
        if self.boost and self.machine.node.boost_freq_ghz is None:
            raise ValueError(f"{self.machine.name} has no boost mode")
        if self.cores < 0 or self.cores > self.machine.node.cores:
            raise ValueError(
                f"cores must be in [0, {self.machine.node.cores}]"
            )
        if not 0.0 <= self.simd_maturity <= 1.0:
            raise ValueError("simd_maturity must be in [0, 1]")

    @property
    def active_cores(self) -> int:
        return self.cores or self.machine.node.cores

    @property
    def frequency_ghz(self) -> float:
        node = self.machine.node
        return (node.boost_freq_ghz or node.freq_ghz) if self.boost else node.freq_ghz
