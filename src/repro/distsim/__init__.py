"""Distributed performance simulation (the substituted testbeds).

Two tiers share one cost model:

* :mod:`repro.distsim.model` — an analytic per-timestep model evaluated at
  any scale (1 to 1024+ nodes).  Every term is physical: compute from the
  machine's sustained flop rates, a memory-bandwidth roofline, ghost-layer
  messages over the interconnect with task-based overlap, per-level tree
  traversal with core starvation, and log(P) barrier rounds per solver
  phase.  All the paper's figures regenerate from this model.
* :mod:`repro.distsim.taskgraph` — a fine-grained discrete-event execution
  of one timestep's real task graph on the AMT runtime, usable at small
  scale.  Tests cross-validate it against the analytic model, so the big
  curves rest on a mechanism that is exercised directly.

Calibrated constants live in :class:`~repro.distsim.model.ModelConstants`
with the paper observation that pinned each one.
"""

from repro.distsim.runconfig import RunConfig
from repro.distsim.model import (
    ModelConstants,
    StepBreakdown,
    simulate_step,
    DEFAULT_CONSTANTS,
)
from repro.distsim.sweep import scaling_curve, speedup_series, weak_scaling_curve
from repro.distsim.taskgraph import TaskGraphSimulator
from repro.distsim.reliability import ReliabilityModel, hang_probability_curve
from repro.distsim.report import ascii_loglog, curve_to_points

__all__ = [
    "RunConfig",
    "ModelConstants",
    "StepBreakdown",
    "simulate_step",
    "DEFAULT_CONSTANTS",
    "scaling_curve",
    "speedup_series",
    "weak_scaling_curve",
    "TaskGraphSimulator",
    "ReliabilityModel",
    "hang_probability_curve",
    "ascii_loglog",
    "curve_to_points",
]
