"""Fine-grained discrete-event execution of one timestep's task graph.

Where :mod:`repro.distsim.model` *sums* costs, this module *schedules*
them: it builds the actual dependency graph of a timestep — per-sub-grid
ghost exchanges feeding hydro kernels for three RK stages, then the gravity
tree traversal level by level with the Multipole kernel split into
``tasks_per_multipole_kernel`` AMT tasks — and executes it on the virtual
runtime with one locality per node and one worker per core.

It shares every cost constant with the analytic model, so the two can be
cross-validated on small configurations; the DES additionally *exhibits*
the mechanisms the paper discusses (cores starving during traversals,
latency hiding through task interleaving) rather than assuming them.

Build / execute split
---------------------
:meth:`TaskGraphSimulator.build_step_graph` produces the step's graph as
declarative :class:`StepNode` records — task kind, cost, locality, declared
:class:`~repro.analysis.effects.EffectSet` footprint and dependency edges —
and :meth:`TaskGraphSimulator.run_step` executes that structure on the
virtual runtime.  The same graph therefore feeds three consumers:

* execution (timing, starvation, message counts),
* the *static* race checker (:func:`repro.analysis.race.check_graph` over
  :meth:`StepGraph.static_tasks` — no execution needed),
* the *dynamic* race detector (pass one to :meth:`run_step`; it observes
  the worker pools while the graph runs).

Effect model: each hydro stage task reads and writes its own sub-grid's
conserved variables ``U``, publishes the next stage's donor bands, and
reads the generation-``s`` ghost bands its neighbours sent.  A ghost
transfer reads the donor band its producer published at the previous stage
(the §VII-B promise-guarded direct read) and writes one generation-indexed
ghost band of the destination — generation indexing mirrors
``hpx::lcos::channel`` semantics, where every stage's band is a fresh slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.amt.future import Future, Promise, when_all
from repro.amt.locality import Runtime
from repro.amt.network import Message, NetworkModel
from repro.analysis.effects import ANY, EffectSet
from repro.analysis.race import GraphTask, RaceFinding, check_graph
from repro.distsim.model import DEFAULT_CONSTANTS, ModelConstants, _cpu_rate
from repro.distsim.runconfig import RunConfig
from repro.resilience.faults import FaultSpec
from repro.resilience.protocol import ReliableTransport, RetryPolicy
from repro.resilience.watchdog import DeadlockWatchdog
from repro.scenarios.spec import ScenarioSpec


@dataclass
class TaskGraphResult:
    makespan_s: float
    cells_per_second: float
    utilization: float
    starvation_events: int
    messages: int
    tasks: int
    #: Resilience accounting (zero on clean, unprotected runs).
    messages_dropped: int = 0
    retransmits: int = 0
    acks: int = 0
    #: ``messages`` split into application payloads vs protocol control
    #: traffic (acks) — see :class:`repro.amt.network.Message.control`.
    payload_messages: int = 0
    control_messages: int = 0


@dataclass(frozen=True)
class StepNode:
    """One node of the step graph.

    ``kind`` is a pool-task kind ("hydro.flux", "fmm.p2p", "fmm.multipole"),
    "ghost" (a transfer event: promise + engine post or network message,
    occupying no worker), or "barrier" (a pure ``when_all``).  ``deps`` are
    ids of earlier nodes; builders emit in topological order.
    """

    id: int
    name: str
    kind: str
    locality: int
    cost: float
    deps: Tuple[int, ...]
    effects: Optional[EffectSet] = None
    #: Ghost-transfer routing (ghost nodes only).
    src_locality: int = -1
    size_bytes: int = 0


@dataclass
class StepGraph:
    """The declarative task graph of one timestep."""

    nodes: List[StepNode] = field(default_factory=list)
    #: Ids of the nodes whose completion ends the step.
    finals: Tuple[int, ...] = ()

    def add(
        self,
        name: str,
        kind: str,
        locality: int = 0,
        cost: float = 0.0,
        deps: Tuple[int, ...] = (),
        effects: Optional[EffectSet] = None,
        src_locality: int = -1,
        size_bytes: int = 0,
    ) -> int:
        node_id = len(self.nodes)
        self.nodes.append(
            StepNode(
                id=node_id,
                name=name,
                kind=kind,
                locality=locality,
                cost=cost,
                deps=deps,
                effects=effects,
                src_locality=src_locality,
                size_bytes=size_bytes,
            )
        )
        return node_id

    @property
    def n_pool_tasks(self) -> int:
        """Worker-occupying tasks (excludes ghost events and barriers)."""
        return sum(1 for n in self.nodes if n.kind not in ("ghost", "barrier"))

    def static_tasks(self) -> List[GraphTask]:
        """The graph as :class:`~repro.analysis.race.GraphTask` nodes for
        the static checker."""
        return [
            GraphTask(
                id=n.id,
                name=n.name,
                deps=n.deps,
                effects=n.effects,
                exec_space="Host",
                kind=n.kind,
            )
            for n in self.nodes
        ]


# -- effect-set factories (the declared footprints of the placeholder tasks) --


def _hydro_effects(sg: int, stage: int, neighbors: List[int]) -> EffectSet:
    """Stage ``stage`` of sub-grid ``sg``: update U in place from the
    generation-``stage`` ghost bands, then publish next-stage donors."""
    return EffectSet.make(
        reads=[(sg, "U")] + [(sg, f"ghost[{nb}]@{stage}") for nb in neighbors],
        writes=[(sg, "U"), (sg, f"donor@{stage + 1}")],
    )


def _ghost_effects(src: int, dst: int, stage: int) -> EffectSet:
    """Transfer of ``src``'s donor band (published at stage-1) into
    ``dst``'s generation-``stage`` ghost slot."""
    return EffectSet.make(
        reads=[(src, f"donor@{stage}")],
        writes=[(dst, f"ghost[{src}]@{stage}")],
    )


def _p2p_effects(sg: int) -> EffectSet:
    return EffectSet.make(reads=[(sg, "U")], writes=[(sg, "phi")])


def _multipole_effects(level: int) -> EffectSet:
    """Tree-traversal tasks read every node's moments and accumulate into
    the level's local expansions — a commutative reduction, so same-level
    tasks commute with each other but conflict with any plain write."""
    return EffectSet.make(
        reads=[(ANY, "moments")],
        accums=[(("level", level), "local")],
    )


class TaskGraphSimulator:
    """Builds and runs the per-step task graph of a scenario."""

    def __init__(
        self,
        spec: ScenarioSpec,
        config: RunConfig,
        constants: ModelConstants = DEFAULT_CONSTANTS,
        max_workers_per_locality: int = 16,
        faults: Optional[FaultSpec] = None,
        recovery: Any = None,
        fault_stream: int = 0,
    ) -> None:
        """``faults`` injects a seeded fault schedule into the network;
        ``recovery`` enables the acknowledged-retransmit transport (``True``
        for the default :class:`RetryPolicy`, or a policy instance);
        ``fault_stream`` decorrelates fault draws between timesteps."""
        if spec.n_subgrids > 20_000:
            raise ValueError(
                "the task-graph simulator is for small configurations; "
                "use the analytic model at scale"
            )
        self.spec = spec
        self.config = config
        self.constants = constants
        self.faults = faults
        if recovery is True:
            recovery = RetryPolicy()
        self.recovery: Optional[RetryPolicy] = recovery or None
        # Cap workers so the event count stays tractable; the per-core rate
        # is scaled so node throughput is preserved.
        self.workers = min(config.active_cores, max_workers_per_locality)
        node_rate = _cpu_rate(config, constants)
        self.core_rate = node_rate / self.workers

        net = config.machine.interconnect
        self.network = NetworkModel(
            latency_s=net.latency_us * 1e-6,
            bandwidth_Bps=net.bandwidth_gbs * 1e9,
            action_overhead_s=net.action_overhead_us * 1e-6,
            local_copy_Bps=config.machine.node.memory_bw_gbs * 1e9,
            name=net.name,
        )
        if faults is not None:
            self.network.fault_injector = faults.injector(stream=fault_stream)
        #: Bound per run_step when recovery is enabled.
        self.transport: Optional[ReliableTransport] = None

        # Lay the sub-grids on a cubic lattice; block-partition the raveled
        # order (slab SFC) across localities.
        side = max(int(round(spec.n_subgrids ** (1.0 / 3.0))), 1)
        while side**3 < spec.n_subgrids:
            side += 1
        self.side = side
        self.n_subgrids = spec.n_subgrids
        self.owner: List[int] = [
            sg * config.nodes // spec.n_subgrids for sg in range(spec.n_subgrids)
        ]

    # -- topology ---------------------------------------------------------
    def _coords(self, sg: int) -> Tuple[int, int, int]:
        side = self.side
        return (sg // (side * side), (sg // side) % side, sg % side)

    def _neighbors(self, sg: int) -> List[int]:
        side = self.side
        i, j, k = self._coords(sg)
        out = []
        for di, dj, dk in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)):
            ni, nj, nk = i + di, j + dj, k + dk
            if 0 <= ni < side and 0 <= nj < side and 0 <= nk < side:
                n = (ni * side + nj) * side + nk
                if n < self.n_subgrids:
                    out.append(n)
        return out

    # -- graph construction -------------------------------------------------
    def build_step_graph(self) -> StepGraph:
        """The step's task graph as declarative structure (no execution)."""
        spec, config, constants = self.spec, self.config, self.constants
        cells_per_subgrid = spec.subgrid_n**3
        # One kernel occupies one core for work / per-core-rate seconds.
        hydro_cost = cells_per_subgrid * spec.hydro_flops_per_cell / 3.0 / self.core_rate
        gravity_cost = cells_per_subgrid * spec.gravity_flops_per_cell / self.core_rate

        graph = StepGraph()
        neighbor_lists = [self._neighbors(sg) for sg in range(self.n_subgrids)]

        barrier: Optional[int] = None
        hydro_ids: Dict[Tuple[int, int], int] = {}  # (stage, sg) -> node id
        for stage in range(3):
            stage_ids: List[int] = []
            # Coalescing (docs/comms.md): every transfer crossing an
            # ordered locality pair in this stage becomes one bundled
            # ghost node — one message whose size is the sum of the member
            # faces — instead of one message per face.  Local transfers
            # under the §VII-B optimization stay per-face (they are
            # promise-guarded direct reads, not messages).
            bundle_ids: Dict[Tuple[int, int], int] = {}
            if config.coalesce:
                pair_edges: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
                for sg in range(self.n_subgrids):
                    for nb in neighbor_lists[sg]:
                        pair = (self.owner[nb], self.owner[sg])
                        if pair[0] == pair[1] and config.comm_local_optimization:
                            continue
                        pair_edges.setdefault(pair, []).append((nb, sg))
                for pair in sorted(pair_edges):
                    edges = pair_edges[pair]
                    bundle_deps = (
                        tuple(sorted({hydro_ids[(stage - 1, nb)] for nb, _ in edges}))
                        if stage
                        else ()
                    )
                    effects = EffectSet.make(
                        reads=[
                            (nb, f"donor@{stage}") for nb in sorted({e[0] for e in edges})
                        ],
                        writes=[
                            (sg, f"ghost[{nb}]@{stage}") for nb, sg in edges
                        ],
                    )
                    bundle_ids[pair] = graph.add(
                        name=f"bundle{stage}.{pair[0]}to{pair[1]}",
                        kind="ghost",
                        locality=pair[1],
                        deps=bundle_deps,
                        effects=effects,
                        src_locality=pair[0],
                        size_bytes=spec.face_bytes * len(edges),
                    )
            for sg in range(self.n_subgrids):
                deps: List[int] = [] if barrier is None else [barrier]
                for nb in neighbor_lists[sg]:
                    pair = (self.owner[nb], self.owner[sg])
                    if pair in bundle_ids:
                        if bundle_ids[pair] not in deps:
                            deps.append(bundle_ids[pair])
                        continue
                    # The transfer reads the donor band nb published when it
                    # finished the previous stage — the promise-guarded
                    # direct read of the paper's §VII-B.
                    ghost_deps = (hydro_ids[(stage - 1, nb)],) if stage else ()
                    deps.append(
                        graph.add(
                            name=f"ghost{stage}.{nb}->{sg}",
                            kind="ghost",
                            locality=self.owner[sg],
                            deps=ghost_deps,
                            effects=_ghost_effects(nb, sg, stage),
                            src_locality=self.owner[nb],
                            size_bytes=spec.face_bytes,
                        )
                    )
                node_id = graph.add(
                    name=f"hydro{stage}.{sg}",
                    kind="hydro.flux",
                    locality=self.owner[sg],
                    cost=hydro_cost,
                    deps=tuple(deps),
                    effects=_hydro_effects(sg, stage, neighbor_lists[sg]),
                )
                hydro_ids[(stage, sg)] = node_id
                stage_ids.append(node_id)
            # The paper's scheme has no global barrier between stages, but
            # each sub-grid depends on its neighbours' previous stage via the
            # ghosts; approximating with when_all keeps the graph quadratic-
            # free while preserving the critical path within ~one kernel.
            barrier = graph.add(
                name=f"hydro{stage}.barrier", kind="barrier", deps=tuple(stage_ids)
            )

        # Gravity: P2P on leaves, then the Multipole kernel level by level.
        p2p_ids = [
            graph.add(
                name=f"p2p.{sg}",
                kind="fmm.p2p",
                locality=self.owner[sg],
                cost=gravity_cost,
                deps=(barrier,),
                effects=_p2p_effects(sg),
            )
            for sg in range(self.n_subgrids)
        ]
        barrier = graph.add(name="p2p.barrier", kind="barrier", deps=tuple(p2p_ids))

        k = config.tasks_per_multipole_kernel
        level_count = spec.n_subgrids
        level = spec.max_level
        while level >= 0 and level_count >= 1:
            level_ids: List[int] = []
            per_loc = max(int(level_count) // config.nodes, 0)
            extra = int(level_count) % config.nodes
            for loc_id in range(config.nodes):
                n_nodes = per_loc + (1 if loc_id < extra else 0)
                if n_nodes == 0:
                    continue
                work = (
                    spec.fmm_interactions_per_subgrid
                    * constants.flops_per_interaction
                    / self.core_rate
                )
                for _node in range(n_nodes):
                    for _task in range(k):
                        level_ids.append(
                            graph.add(
                                name=f"m2l.L{level}",
                                kind="fmm.multipole",
                                locality=loc_id,
                                cost=work / k + constants.task_overhead_s,
                                deps=(barrier,),
                                effects=_multipole_effects(level),
                            )
                        )
            if level_ids:
                barrier = graph.add(
                    name=f"m2l.L{level}.barrier", kind="barrier", deps=tuple(level_ids)
                )
            level_count /= 8.0
            level -= 1

        graph.finals = (barrier,)
        return graph

    def static_check(self) -> List[RaceFinding]:
        """Race + space analysis of the step graph without executing it."""
        return check_graph(self.build_step_graph().static_tasks())

    # -- execution ----------------------------------------------------------
    def run_step(self, detector: Any = None) -> TaskGraphResult:
        """Execute the step graph on the virtual runtime.

        ``detector`` (a :class:`repro.analysis.race.RaceDetector` or any
        WorkerPool observer) is installed on every locality's pool for the
        duration of the step.
        """
        graph = self.build_step_graph()
        runtime = Runtime(
            n_localities=self.config.nodes,
            workers_per_locality=self.workers,
            network=self.network,
        )
        if detector is not None:
            runtime.install_observer(detector)
        self.transport = (
            ReliableTransport(self.network, runtime.engine, policy=self.recovery)
            if self.recovery is not None
            else None
        )
        watchdog = DeadlockWatchdog(runtime)

        futures: Dict[int, Future] = {}
        for node in graph.nodes:
            deps = [futures[d] for d in node.deps]
            if node.kind == "barrier":
                futures[node.id] = when_all(deps)
            elif node.kind == "ghost":
                futures[node.id] = self._launch_ghost(runtime, node, deps)
            else:
                loc = runtime.localities[node.locality]
                futures[node.id] = loc.async_after(
                    deps,
                    None,
                    cost=node.cost,
                    name=node.name,
                    kind=node.kind,
                    effects=node.effects,
                )
            watchdog.watch(futures[node.id], deps, name=node.name)

        final = when_all([futures[f] for f in graph.finals])
        watchdog.watch(final, [futures[f] for f in graph.finals], name="step.final")
        runtime.run_until_ready(final, watchdog=watchdog)
        makespan = runtime.engine.now
        starvation = sum(l.pool.starvation_events() for l in runtime.localities)
        stats = self.transport.stats if self.transport is not None else None
        return TaskGraphResult(
            makespan_s=makespan,
            cells_per_second=self.spec.n_cells / makespan,
            utilization=runtime.utilization(),
            starvation_events=starvation,
            messages=self.network.messages_sent,
            tasks=graph.n_pool_tasks,
            messages_dropped=self.network.messages_dropped,
            retransmits=stats.retransmits if stats else 0,
            acks=stats.acks_received if stats else 0,
            payload_messages=self.network.payload_messages,
            control_messages=self.network.control_messages,
        )

    def _launch_ghost(
        self, runtime: Runtime, node: StepNode, deps: List[Future]
    ) -> Future:
        """One ghost band arriving at the destination locality.

        The transfer starts once the producer published its donor band
        (``deps``; stage-0 bands are initial state, so no wait) and then
        costs either one promise-guarded local sync or a network message.

        A message additionally occupies a sender-side worker for the HPX
        action cost — one ``face_action_cpu_s`` dispatch per *message* plus
        a ``face_sync_cpu_s`` buffer copy per additional member face.  This
        is the CPU term coalescing amortises: a bundle of F faces pays one
        dispatch instead of F (see ``docs/comms.md``).
        """
        src_loc, dst_loc = node.src_locality, node.locality
        constants = self.constants
        promise = Promise(name=node.name)

        def transmit(_f=None) -> None:  # noqa: ANN001
            message = Message(
                src=src_loc,
                dst=dst_loc,
                payload=None,
                size_bytes=node.size_bytes,
                tag=node.name,
            )
            if self.transport is not None:
                self.transport.send(
                    message,
                    lambda _m: promise.set_value(None),
                    local=src_loc == dst_loc,
                )
            else:
                self.network.send(
                    runtime.engine,
                    message,
                    lambda _m: promise.set_value(None),
                    local=src_loc == dst_loc,
                )

        def launch() -> None:
            if src_loc == dst_loc and self.config.comm_local_optimization:
                # Direct memory access guarded by a promise/future pair.
                runtime.engine.post(
                    constants.face_sync_cpu_s, lambda: promise.set_value(None)
                )
            else:
                n_faces = max(1, node.size_bytes // max(self.spec.face_bytes, 1))
                pack_cost = (
                    constants.face_action_cpu_s
                    + (n_faces - 1) * constants.face_sync_cpu_s
                )
                pack = runtime.localities[src_loc].async_sharded(
                    [], None, cost=pack_cost,
                    shards=min(self.workers, n_faces),
                    name=f"{node.name}.pack", kind="ghost.pack",
                )
                pack.add_done_callback(transmit)

        if deps:
            when_all(deps).add_done_callback(lambda _f: launch())
        else:
            launch()
        return promise.get_future()
