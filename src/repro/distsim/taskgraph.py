"""Fine-grained discrete-event execution of one timestep's task graph.

Where :mod:`repro.distsim.model` *sums* costs, this module *schedules*
them: it builds the actual dependency graph of a timestep — per-sub-grid
ghost exchanges feeding hydro kernels for three RK stages, then the gravity
tree traversal level by level with the Multipole kernel split into
``tasks_per_multipole_kernel`` AMT tasks — and executes it on the virtual
runtime with one locality per node and one worker per core.

It shares every cost constant with the analytic model, so the two can be
cross-validated on small configurations; the DES additionally *exhibits*
the mechanisms the paper discusses (cores starving during traversals,
latency hiding through task interleaving) rather than assuming them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.amt.future import Future, Promise, when_all
from repro.amt.locality import Runtime
from repro.amt.network import Message, NetworkModel
from repro.distsim.model import DEFAULT_CONSTANTS, ModelConstants, _cpu_rate
from repro.distsim.runconfig import RunConfig
from repro.scenarios.spec import ScenarioSpec


@dataclass
class TaskGraphResult:
    makespan_s: float
    cells_per_second: float
    utilization: float
    starvation_events: int
    messages: int
    tasks: int


class TaskGraphSimulator:
    """Builds and runs the per-step task graph of a scenario."""

    def __init__(
        self,
        spec: ScenarioSpec,
        config: RunConfig,
        constants: ModelConstants = DEFAULT_CONSTANTS,
        max_workers_per_locality: int = 16,
    ) -> None:
        if spec.n_subgrids > 20_000:
            raise ValueError(
                "the task-graph simulator is for small configurations; "
                "use the analytic model at scale"
            )
        self.spec = spec
        self.config = config
        self.constants = constants
        # Cap workers so the event count stays tractable; the per-core rate
        # is scaled so node throughput is preserved.
        self.workers = min(config.active_cores, max_workers_per_locality)
        node_rate = _cpu_rate(config, constants)
        self.core_rate = node_rate / self.workers

        net = config.machine.interconnect
        self.network = NetworkModel(
            latency_s=net.latency_us * 1e-6,
            bandwidth_Bps=net.bandwidth_gbs * 1e9,
            action_overhead_s=net.action_overhead_us * 1e-6,
            local_copy_Bps=config.machine.node.memory_bw_gbs * 1e9,
            name=net.name,
        )

        # Lay the sub-grids on a cubic lattice; block-partition the raveled
        # order (slab SFC) across localities.
        side = max(int(round(spec.n_subgrids ** (1.0 / 3.0))), 1)
        while side**3 < spec.n_subgrids:
            side += 1
        self.side = side
        self.n_subgrids = spec.n_subgrids
        self.owner: List[int] = [
            sg * config.nodes // spec.n_subgrids for sg in range(spec.n_subgrids)
        ]

    # -- topology ---------------------------------------------------------
    def _coords(self, sg: int) -> Tuple[int, int, int]:
        side = self.side
        return (sg // (side * side), (sg // side) % side, sg % side)

    def _neighbors(self, sg: int) -> List[int]:
        side = self.side
        i, j, k = self._coords(sg)
        out = []
        for di, dj, dk in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)):
            ni, nj, nk = i + di, j + dj, k + dk
            if 0 <= ni < side and 0 <= nj < side and 0 <= nk < side:
                n = (ni * side + nj) * side + nk
                if n < self.n_subgrids:
                    out.append(n)
        return out

    # -- graph construction -------------------------------------------------
    def run_step(self) -> TaskGraphResult:
        spec, config, constants = self.spec, self.config, self.constants
        runtime = Runtime(
            n_localities=config.nodes,
            workers_per_locality=self.workers,
            network=self.network,
        )
        cells_per_subgrid = spec.subgrid_n**3
        # One kernel occupies one core for work / per-core-rate seconds.
        hydro_cost = cells_per_subgrid * spec.hydro_flops_per_cell / 3.0 / self.core_rate
        gravity_cost = cells_per_subgrid * spec.gravity_flops_per_cell / self.core_rate

        total_tasks = 0
        prev_stage: List[Future] = []
        for stage in range(3):
            stage_futures: List[Future] = []
            for sg in range(self.n_subgrids):
                loc = runtime.localities[self.owner[sg]]
                deps: List[Future] = list(prev_stage) if prev_stage else []
                for nb in self._neighbors(sg):
                    deps.append(self._ghost_future(runtime, nb, sg, stage))
                task_future = loc.async_after(
                    deps,
                    None,
                    cost=hydro_cost,
                    name=f"hydro{stage}.{sg}",
                    kind="hydro.flux",
                )
                stage_futures.append(task_future)
                total_tasks += 1
            # The paper's scheme has no global barrier between stages, but
            # each sub-grid depends on its neighbours' previous stage via the
            # ghosts; approximating with when_all keeps the graph quadratic-
            # free while preserving the critical path within ~one kernel.
            prev_stage = [when_all(stage_futures)]

        # Gravity: P2P on leaves, then the Multipole kernel level by level.
        p2p_futures: List[Future] = []
        for sg in range(self.n_subgrids):
            loc = runtime.localities[self.owner[sg]]
            p2p_futures.append(
                loc.async_after(
                    prev_stage, None, cost=gravity_cost, name=f"p2p.{sg}", kind="fmm.p2p"
                )
            )
            total_tasks += 1
        barrier = when_all(p2p_futures)

        k = config.tasks_per_multipole_kernel
        level_count = spec.n_subgrids
        level = spec.max_level
        while level >= 0 and level_count >= 1:
            level_futures: List[Future] = []
            per_loc = max(int(level_count) // config.nodes, 0)
            extra = int(level_count) % config.nodes
            for loc_id in range(config.nodes):
                n_nodes = per_loc + (1 if loc_id < extra else 0)
                if n_nodes == 0:
                    continue
                loc = runtime.localities[loc_id]
                work = (
                    spec.fmm_interactions_per_subgrid
                    * constants.flops_per_interaction
                    / self.core_rate
                )
                for _node in range(n_nodes):
                    for _task in range(k):
                        level_futures.append(
                            loc.async_after(
                                [barrier],
                                None,
                                cost=work / k + constants.task_overhead_s,
                                name=f"m2l.L{level}",
                                kind="fmm.multipole",
                            )
                        )
                        total_tasks += 1
            if level_futures:
                barrier = when_all(level_futures)
            level_count /= 8.0
            level -= 1

        runtime.run_until_ready(barrier)
        makespan = runtime.engine.now
        starvation = sum(l.pool.starvation_events() for l in runtime.localities)
        return TaskGraphResult(
            makespan_s=makespan,
            cells_per_second=spec.n_cells / makespan,
            utilization=runtime.utilization(),
            starvation_events=starvation,
            messages=self.network.messages_sent,
            tasks=total_tasks,
        )

    def _ghost_future(
        self, runtime: Runtime, src_sg: int, dst_sg: int, stage: int
    ) -> Future:
        """Future of one ghost band arriving at ``dst_sg``'s locality."""
        src_loc = self.owner[src_sg]
        dst_loc = self.owner[dst_sg]
        spec, constants = self.spec, self.constants
        promise = Promise(name=f"ghost{stage}.{src_sg}->{dst_sg}")
        if src_loc == dst_loc and self.config.comm_local_optimization:
            # Direct memory access guarded by a promise/future pair.
            runtime.engine.post(
                constants.face_sync_cpu_s, lambda: promise.set_value(None)
            )
        else:
            message = Message(
                src=src_loc,
                dst=dst_loc,
                payload=None,
                size_bytes=spec.face_bytes,
                tag=f"ghost{stage}",
            )
            self.network.send(
                runtime.engine,
                message,
                lambda _m: promise.set_value(None),
                local=src_loc == dst_loc,
            )
        return promise.get_future()
