"""The paper's three scenario families.

* :func:`~repro.scenarios.rotating_star.rotating_star` — the rotating-star
  problem used for the Fugaku/Ookami scaling studies (Figs. 6-10), at the
  paper's refinement levels 5 (2.5 M cells), 6 (14.2 M) and 7 (88.6 M) or
  any smaller level that fits in laptop memory,
* :func:`~repro.scenarios.v1309.v1309_scenario` — the V1309 Scorpii contact
  binary (Figs. 4a/4b),
* :func:`~repro.scenarios.dwd.dwd_scenario` — the q = 0.7 double white
  dwarf (Figs. 5a/5b).

Each builder returns a ready-to-evolve mesh plus a
:class:`~repro.scenarios.spec.ScenarioSpec` describing the workload
(sub-grid counts, cells, refinement levels) that the distributed performance
simulator consumes.  Builders accept a ``level`` parameter: paper-scale
levels describe workloads analytically (the spec), while small levels are
actually constructed and evolved.
"""

from repro.scenarios.spec import ScenarioSpec, workload_from_mesh
from repro.scenarios.rotating_star import rotating_star, ROTATING_STAR_LEVELS
from repro.scenarios.v1309 import v1309_scenario, V1309_CELLS
from repro.scenarios.dwd import dwd_scenario, DWD_CELLS
from repro.scenarios.blast import sedov_blast, BlastScenario

__all__ = [
    "ScenarioSpec",
    "workload_from_mesh",
    "rotating_star",
    "ROTATING_STAR_LEVELS",
    "v1309_scenario",
    "V1309_CELLS",
    "dwd_scenario",
    "DWD_CELLS",
    "sedov_blast",
    "BlastScenario",
]
