"""V1309 Scorpii: a contact binary of two main-sequence stars (Figs. 4a/4b).

The paper's production runs use 17 million sub-grids.  The laptop-scale
builder produces a near-contact binary: a detached SCF solution whose inner
boundary point sits close to L1, overlaid with a low-density common envelope
filling the equipotential surface just above the L1 saddle.

Substitutions versus the real V1309 model (documented in DESIGN.md):
the components use n = 1.5 polytropes rather than the bi-polytropic n = 3
MS structure (the high-n SCF does not converge at the coarse grids used
here), and the common envelope is painted onto the converged detached model
rather than solved as a shared-constant equilibrium.  Both substitutions
preserve what the performance paper needs — a density-refined AMR mesh of
a tight binary with mass around both components and a rotating frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hydro.eos import IdealGasEOS
from repro.octree.mesh import AmrMesh
from repro.scenarios.spec import ScenarioSpec
from repro.scf.scf import BinarySCF, ScfResult

#: Paper workload: 17 million sub-grids.
V1309_CELLS = 17_000_000 * 512
V1309_SUBGRIDS = 17_000_000

MAX_CONSTRUCTIBLE_LEVEL = 4


@dataclass
class V1309Scenario:
    mesh: Optional[AmrMesh]
    spec: ScenarioSpec
    omega: float
    eos: IdealGasEOS
    scf: Optional[ScfResult] = None


def _paper_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="v1309",
        n_subgrids=V1309_SUBGRIDS,
        max_level=11,
    )


def v1309_scenario(
    level: int = 2,
    scf_grid: int = 48,
    envelope_fraction: float = 0.02,
    refine_threshold: float = 1e-3,
    gamma: float = 5.0 / 3.0,
    build_mesh: Optional[bool] = None,
) -> V1309Scenario:
    """Build the V1309 contact-binary scenario.

    ``build_mesh=False`` (implied for large levels) returns the paper-scale
    workload spec only.
    """
    if build_mesh is None:
        build_mesh = level <= MAX_CONSTRUCTIBLE_LEVEL
    if not build_mesh:
        return V1309Scenario(
            mesh=None, spec=_paper_spec(), omega=0.0, eos=IdealGasEOS(gamma=gamma)
        )

    eos = IdealGasEOS(gamma=gamma)
    # Near-contact geometry: star 1 (primary) spans [-0.70, -0.08]; its
    # inner edge sits near the L1 region; the secondary's surface is pinned
    # at +0.52.
    scf = BinarySCF(
        x_a=-0.70,
        x_b=-0.08,
        x_c=0.52,
        rho_max_1=1.0,
        rho_max_2=0.6,
        poly_n_1=1.5,
        poly_n_2=1.5,
        contact=False,
        n=scf_grid,
        box_size=2.0,
    )
    model = scf.run()
    _overlay_common_envelope(model, envelope_fraction)

    mesh = AmrMesh(n=8, ghost=2, domain_size=2.0)
    for key in list(mesh.leaf_keys()):
        mesh.refine(key)
    grid = -1.0 + (2.0 / model.n) * (np.arange(model.n) + 0.5)

    def dense_enough(node) -> bool:  # noqa: ANN001
        x, y, z = node.cell_centers()
        rho = ScfResult._trilinear(grid, model.rho, x, y, z)  # noqa: SLF001
        return bool(rho.max() > refine_threshold)

    mesh.refine_by(dense_enough, max_level=level)
    model.deposit_to_mesh(
        mesh, eos, frame_omega=model.omega, region_split_x=model.split_x
    )
    mesh.check_invariants()

    from repro.scenarios.spec import workload_from_mesh

    spec = workload_from_mesh(mesh, name=f"v1309_l{level}")
    return V1309Scenario(
        mesh=mesh, spec=spec, omega=model.omega, eos=eos, scf=model
    )


def _overlay_common_envelope(model: ScfResult, envelope_fraction: float) -> None:
    """Paint a common envelope just above the L1 equipotential.

    The envelope density is ``envelope_fraction`` of the local
    enthalpy-implied density inside the equipotential shell between the L1
    saddle value and a slightly higher cut, bounded to the binary region.
    Mutates ``model.rho``.
    """
    if envelope_fraction <= 0.0:
        return
    n = model.n
    c = -model.box_size / 2.0 + model.dx * (np.arange(n) + 0.5)
    x, y, z = np.meshgrid(c, c, c, indexing="ij")
    r_cyl2 = (x - model.x_com) ** 2 + y**2
    phi_eff = model.phi - 0.5 * model.omega**2 * r_cyl2

    j = n // 2
    split = model.split_x if model.split_x is not None else 0.0
    i_split = int(np.clip(np.searchsorted(c, split), 0, n - 1))
    phi_l1 = float(phi_eff[i_split, j, j])

    # Shell: just above the saddle, within the binary's spherical extent.
    r2 = (x - model.x_com) ** 2 + y**2 + z**2
    r_max = 0.9 * model.box_size / 2.0
    shell = (phi_eff < phi_l1 * 0.92) & (r2 < r_max**2)
    rho_env = envelope_fraction * float(model.rho.max()) * np.clip(
        (phi_l1 * 0.92 - phi_eff) / abs(phi_l1), 0.0, 1.0
    )
    model.rho = np.where(shell, np.maximum(model.rho, rho_env), model.rho)
