"""Workload specifications consumed by the performance simulator.

A :class:`ScenarioSpec` is the quantitative fingerprint of a scenario: how
many sub-grids, how much work per cell per step, how many interactions per
sub-grid each solver phase performs, and how many bytes move per ghost face.
Paper-scale runs (17 M sub-grids on 1024 nodes) are described analytically;
laptop-scale meshes are measured directly with :func:`workload_from_mesh`,
and the per-sub-grid averages agree between the two paths because they are
scale-invariant for density-refined octrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from repro.octree.fields import NFIELDS


@dataclass(frozen=True)
class ScenarioSpec:
    """Workload description of one scenario at one refinement level."""

    name: str
    n_subgrids: int
    max_level: int
    subgrid_n: int = 8
    ghost_width: int = 2

    #: Storage per sub-grid: fields + scratch + tree metadata.  Calibrated
    #: so the paper's minimum node counts reproduce (e.g. the DWD scenario
    #: filling one 28 GB Fugaku node); see DESIGN.md.
    bytes_per_subgrid: int = 5_400

    #: Kernel launches per sub-grid per timestep — the paper reports "> 10"
    #: (three RK stages of hydro reconstruct/flux/update plus the gravity
    #: phases).
    kernels_per_subgrid_per_step: int = 12

    #: Modelled flop counts per cell per timestep (three RK stages).
    hydro_flops_per_cell: float = 2_200.0
    gravity_flops_per_cell: float = 1_600.0

    #: Same-level multipole interactions per sub-grid (near + far), and the
    #: direct-neighbour P2P count; measured from the FMM traversal.
    fmm_interactions_per_subgrid: float = 36.0
    p2p_pairs_per_subgrid: float = 13.5

    #: Ghost faces exchanged per sub-grid per RK stage.
    ghost_faces_per_subgrid: float = 6.0

    #: Fraction of ghost exchanges whose partner lives on the same locality
    #: for a Morton-partitioned mesh; scales with (subgrids/locality)^(1/3)
    #: surface-to-volume — the simulator recomputes it per node count.
    sfc_surface_coefficient: float = 1.0

    @property
    def n_cells(self) -> int:
        return self.n_subgrids * self.subgrid_n**3

    @property
    def memory_bytes(self) -> int:
        return self.n_subgrids * self.bytes_per_subgrid

    @property
    def face_bytes(self) -> int:
        """Payload of one ghost-face message."""
        return NFIELDS * self.ghost_width * self.subgrid_n**2 * 8

    def min_nodes(self, node_memory_bytes: float) -> int:
        """Smallest node count whose aggregate memory fits the scenario."""
        nodes = 1
        while nodes * node_memory_bytes < self.memory_bytes:
            nodes *= 2
        return nodes

    def with_subgrids(self, n_subgrids: int) -> "ScenarioSpec":
        return replace(self, n_subgrids=n_subgrids)


def workload_from_mesh(mesh, name: str = "measured") -> ScenarioSpec:  # noqa: ANN001
    """Measure a spec from a real mesh (small levels)."""
    from repro.gravity.fmm import FmmSolver
    from repro.octree.ghost import exchange_plan

    n_subgrids = mesh.n_subgrids()
    solver = FmmSolver()
    far, near, p2p = solver._traverse(mesh)  # noqa: SLF001 - measurement hook
    plan = exchange_plan(mesh)
    non_boundary = sum(1 for ex in plan if ex.src is not None)
    return ScenarioSpec(
        name=name,
        n_subgrids=n_subgrids,
        max_level=mesh.max_level(),
        subgrid_n=mesh.n,
        ghost_width=mesh.ghost,
        fmm_interactions_per_subgrid=2.0 * (len(far) + len(near)) / n_subgrids,
        p2p_pairs_per_subgrid=2.0 * len(p2p) / n_subgrids,
        ghost_faces_per_subgrid=non_boundary / n_subgrids,
    )
