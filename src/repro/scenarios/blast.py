"""Sedov-Taylor blast wave: a pure-hydro validation scenario.

Not one of the paper's production scenarios, but the standard 3-D stress
test for exactly the machinery the paper's hydro module exercises (strong
shocks through AMR boundaries).  A point energy deposit in a cold uniform
medium drives a self-similar blast whose shock radius obeys

    R(t) = xi_0 (E t^2 / rho_0)^(1/5),   xi_0 ~ 1.15 for gamma = 1.4,

giving a parameter-free convergence check: log R vs log t has slope 2/5.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.hydro.eos import IdealGasEOS
from repro.octree.fields import Field
from repro.octree.mesh import AmrMesh


@dataclass
class BlastScenario:
    mesh: AmrMesh
    eos: IdealGasEOS
    energy: float
    rho0: float

    def shock_radius(self, threshold: float = 1.05) -> float:
        """Mass-weighted radius of the over-dense shell (shock proxy)."""
        num = 0.0
        den = 0.0
        for leaf in self.mesh.leaves():
            x, y, z = leaf.cell_centers()
            rho = leaf.subgrid.interior_view(Field.RHO)
            shell = rho > threshold * self.rho0
            if shell.any():
                r = np.sqrt(x**2 + y**2 + z**2)
                w = (rho - self.rho0)[shell]
                num += float((r[shell] * w).sum())
                den += float(w.sum())
        return num / den if den > 0 else 0.0

    def sedov_radius(self, t: float, xi0: float = 1.15) -> float:
        return xi0 * (self.energy * t**2 / self.rho0) ** 0.2


def sedov_blast(
    levels: int = 2,
    energy: float = 1.0,
    rho0: float = 1.0,
    background_pressure: float = 1e-5,
    gamma: float = 1.4,
    deposit_radius_cells: float = 1.5,
) -> BlastScenario:
    """A uniformly refined mesh with a central energy deposit.

    The energy goes into the cells within ``deposit_radius_cells`` of the
    origin, distributed uniformly, conserving the total exactly.
    """
    eos = IdealGasEOS(gamma=gamma)
    mesh = AmrMesh(n=8, ghost=2, domain_size=2.0)
    for _ in range(levels):
        for key in list(mesh.leaf_keys()):
            mesh.refine(key)

    dx = mesh.leaves()[0].dx
    r_dep = deposit_radius_cells * dx
    volume = 0.0
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        inside = x**2 + y**2 + z**2 < r_dep**2
        volume += float(inside.sum()) * leaf.cell_volume
    if volume == 0.0:
        raise ValueError("deposit radius smaller than one cell")
    e_density = energy / volume
    background_eint = background_pressure / (gamma - 1.0)

    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        inside = x**2 + y**2 + z**2 < r_dep**2
        eint = np.where(inside, e_density, background_eint)
        leaf.subgrid.set_interior(Field.RHO, np.full((8, 8, 8), rho0))
        leaf.subgrid.set_interior(Field.EGAS, eint)
        leaf.subgrid.set_interior(Field.TAU, eos.tau_from_eint(eint))
    mesh.restrict_all()
    return BlastScenario(mesh=mesh, eos=eos, energy=energy, rho0=rho0)
