"""The rotating-star problem (the paper's scaling scenario, Figs. 6-10).

A single rotating polytrope, evolved in the co-rotating frame.  The paper
uses refinement levels 5, 6 and 7 (2.5 M / 14.2 M / 88.6 M cells); those are
described analytically for the performance simulator, while levels up to 3
are actually constructed and evolvable on one machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hydro.eos import IdealGasEOS
from repro.octree.mesh import AmrMesh
from repro.scenarios.spec import ScenarioSpec
from repro.scf.scf import ScfResult, SingleStarSCF

#: Cell counts the paper reports for the rotating star at each level.
ROTATING_STAR_LEVELS = {
    5: 2_500_000,
    6: 14_200_000,
    7: 88_600_000,
}

#: Largest level this builder will actually construct in memory.
MAX_CONSTRUCTIBLE_LEVEL = 4


@dataclass
class RotatingStar:
    """A built scenario: mesh + workload spec + model metadata."""

    mesh: Optional[AmrMesh]
    spec: ScenarioSpec
    omega: float
    eos: IdealGasEOS
    scf: Optional[ScfResult] = None


def _spec_for_level(level: int, n_subgrids: int) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"rotating_star_l{level}",
        n_subgrids=n_subgrids,
        max_level=level,
    )


def rotating_star(
    level: int = 2,
    rho_max: float = 1.0,
    r_equator: float = 0.5,
    r_pole: float = 0.45,
    poly_n: float = 1.5,
    scf_grid: int = 48,
    refine_threshold: float = 1e-3,
    gamma: float = 5.0 / 3.0,
    build_mesh: Optional[bool] = None,
) -> RotatingStar:
    """Build the rotating-star scenario at a refinement level.

    For ``level`` in :data:`ROTATING_STAR_LEVELS` (or any level above
    :data:`MAX_CONSTRUCTIBLE_LEVEL`) only the workload spec is produced —
    those are performance-study sizes.  Smaller levels build a real AMR
    mesh: a converged SCF model, deposited and density-refined.
    """
    if build_mesh is None:
        build_mesh = level <= MAX_CONSTRUCTIBLE_LEVEL

    if not build_mesh:
        cells = ROTATING_STAR_LEVELS.get(level)
        if cells is None:
            # Geometric growth consistent with the paper's level 5 -> 7 ratio.
            cells = int(2_500_000 * 5.95 ** (level - 5))
        n_subgrids = cells // 512
        return RotatingStar(
            mesh=None,
            spec=_spec_for_level(level, n_subgrids),
            omega=0.0,
            eos=IdealGasEOS(gamma=gamma),
        )

    eos = IdealGasEOS(gamma=gamma)
    scf = SingleStarSCF(
        rho_max=rho_max,
        r_equator=r_equator,
        r_pole=r_pole,
        poly_n=poly_n,
        n=scf_grid,
        box_size=2.0,
    )
    model = scf.run()

    mesh = AmrMesh(n=8, ghost=2, domain_size=2.0)
    # Base refinement: one uniform level so the star spans several
    # sub-grids even at the coarsest setting.
    for key in list(mesh.leaf_keys()):
        mesh.refine(key)

    grid = -1.0 + (2.0 / model.n) * (np.arange(model.n) + 0.5)

    def dense_enough(node) -> bool:  # noqa: ANN001
        x, y, z = node.cell_centers()
        rho = ScfResult._trilinear(grid, model.rho, x, y, z)  # noqa: SLF001
        return bool(rho.max() > refine_threshold * rho_max)

    mesh.refine_by(dense_enough, max_level=level)
    model.deposit_to_mesh(mesh, eos, frame_omega=model.omega)
    mesh.check_invariants()

    from repro.scenarios.spec import workload_from_mesh

    spec = workload_from_mesh(mesh, name=f"rotating_star_l{level}")
    return RotatingStar(mesh=mesh, spec=spec, omega=model.omega, eos=eos, scf=model)
