"""Double-white-dwarf merger scenario, mass ratio q = 0.7 (Figs. 5a/5b, 1).

White dwarfs are n = 1.5 polytropes (non-relativistic degenerate electron
gas), which is exactly the regime the SCF solver handles robustly.  The
builder tunes the two maximum densities so the converged mass ratio lands
near the paper's q = 0.7, with the donor close to filling its Roche lobe —
the configuration that undergoes dynamical mass transfer (paper Fig. 1).

The paper's Perlmutter/Fugaku comparison uses refinement level 12 with
5 150 720 sub-grids, chosen to fill one 28 GB Fugaku node; that workload is
returned as an analytic spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hydro.eos import IdealGasEOS
from repro.octree.mesh import AmrMesh
from repro.scenarios.spec import ScenarioSpec
from repro.scf.scf import BinarySCF, ScfResult

#: Paper workload for the Perlmutter comparison.
DWD_SUBGRIDS = 5_150_720
DWD_CELLS = DWD_SUBGRIDS * 512

MAX_CONSTRUCTIBLE_LEVEL = 4


@dataclass
class DwdScenario:
    mesh: Optional[AmrMesh]
    spec: ScenarioSpec
    omega: float
    eos: IdealGasEOS
    mass_ratio: float
    scf: Optional[ScfResult] = None


def _paper_spec() -> ScenarioSpec:
    return ScenarioSpec(name="dwd", n_subgrids=DWD_SUBGRIDS, max_level=12)


def dwd_scenario(
    level: int = 2,
    scf_grid: int = 48,
    rho_max_accretor: float = 1.0,
    rho_max_donor: float = 0.8,
    refine_threshold: float = 1e-3,
    gamma: float = 5.0 / 3.0,
    build_mesh: Optional[bool] = None,
) -> DwdScenario:
    """Build the q ~ 0.7 DWD scenario (or its paper-scale spec)."""
    if build_mesh is None:
        build_mesh = level <= MAX_CONSTRUCTIBLE_LEVEL
    if not build_mesh:
        return DwdScenario(
            mesh=None,
            spec=_paper_spec(),
            omega=0.0,
            eos=IdealGasEOS(gamma=gamma),
            mass_ratio=0.7,
        )

    eos = IdealGasEOS(gamma=gamma)
    # Accretor on the left (more massive, compact), donor on the right
    # stretching towards its Roche lobe.
    # Geometry tuned so the converged mass ratio lands at q ~ 0.70
    # (see tests/test_scenarios.py); the donor is the larger, less dense,
    # Roche-lobe-filling star on the right.
    scf = BinarySCF(
        x_a=-0.72,
        x_b=-0.26,
        x_c=0.42,
        rho_max_1=rho_max_accretor,
        rho_max_2=rho_max_donor,
        poly_n_1=1.5,
        poly_n_2=1.5,
        contact=False,
        n=scf_grid,
        box_size=2.0,
    )
    model = scf.run()
    m1, m2 = model.star_masses
    q = m2 / m1 if m1 > 0 else 0.0

    mesh = AmrMesh(n=8, ghost=2, domain_size=2.0)
    for key in list(mesh.leaf_keys()):
        mesh.refine(key)
    grid = -1.0 + (2.0 / model.n) * (np.arange(model.n) + 0.5)

    def dense_enough(node) -> bool:  # noqa: ANN001
        x, y, z = node.cell_centers()
        rho = ScfResult._trilinear(grid, model.rho, x, y, z)  # noqa: SLF001
        return bool(rho.max() > refine_threshold)

    mesh.refine_by(dense_enough, max_level=level)
    model.deposit_to_mesh(
        mesh, eos, frame_omega=model.omega, region_split_x=model.split_x
    )
    mesh.check_invariants()

    from repro.scenarios.spec import workload_from_mesh

    spec = workload_from_mesh(mesh, name=f"dwd_l{level}")
    return DwdScenario(
        mesh=mesh, spec=spec, omega=model.omega, eos=eos, mass_ratio=q, scf=model
    )
