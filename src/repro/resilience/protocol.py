"""Acknowledged delivery with retransmission over the lossy network model.

The raw :class:`~repro.amt.network.NetworkModel` is fire-and-forget, like
the MPI layer under HPX's parcelport: a dropped message silently stalls
whatever depended on it.  :class:`ReliableTransport` layers the standard
reliable-delivery protocol on top:

* every data packet carries a per-ordered-pair **sequence number**;
* the receiver **acks** each packet (acks cross the same faulty network);
* the sender runs a **per-message timeout** and retransmits with
  exponential backoff until acked or ``max_retries`` is exhausted, at
  which point it raises a typed :class:`UnrecoverableFault` (the driver's
  cue to roll back to a checkpoint);
* the receiver **dedups** (retransmissions and duplicated wire packets
  deliver exactly once) and **reorders**: packets are handed to the
  application strictly in sequence order, so the network's per-pair FIFO
  contract survives retransmission.

Everything runs on the virtual clock, so the protocol is bit-deterministic
for a given fault schedule — which is what makes the chaos tests exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.amt.engine import Engine, EventHandle
from repro.amt.network import Message, NetworkModel


class UnrecoverableFault(RuntimeError):
    """Retransmission gave up on a message (e.g. its peer crashed)."""

    def __init__(self, message: str, tag: str = "", src: int = -1, dst: int = -1,
                 attempts: int = 0) -> None:
        super().__init__(message)
        self.tag = tag
        self.src = src
        self.dst = dst
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout and backoff schedule for acknowledged sends.

    ``timeout_s=None`` derives the initial timeout from the network's own
    constants: a few data+ack round trips, so healthy traffic almost never
    retransmits spuriously while lost messages are detected quickly.
    """

    timeout_s: Optional[float] = None
    backoff: float = 2.0
    max_retries: int = 6
    ack_bytes: int = 64

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def initial_timeout(self, network: NetworkModel, size_bytes: int,
                        local: bool = False) -> float:
        if self.timeout_s is not None:
            return self.timeout_s
        round_trip = network.transfer_time(size_bytes, local=local) + \
            network.transfer_time(self.ack_bytes, local=local)
        return 4.0 * round_trip


@dataclass
class TransportStats:
    """Protocol counters, mirrored into ``resilience.*`` profiling counters."""

    packets_sent: int = 0
    packets_delivered: int = 0
    retransmits: int = 0
    acks_received: int = 0
    duplicates_suppressed: int = 0
    reordered: int = 0
    failures: int = 0


class _Outstanding:
    """Sender-side record of one unacknowledged packet."""

    __slots__ = ("seq", "message", "on_delivery", "local", "acked",
                 "attempts", "timer")

    def __init__(self, seq: int, message: Message,
                 on_delivery: Callable[[Message], None], local: bool) -> None:
        self.seq = seq
        self.message = message
        self.on_delivery = on_delivery
        self.local = local
        self.acked = False
        self.attempts = 0
        self.timer: Optional[EventHandle] = None


class ReliableTransport:
    """Acknowledged, deduplicated, FIFO message delivery.

    Drop-in for ``NetworkModel.send`` call sites: ``send(engine-less)`` —
    the engine is bound at construction since timeouts need the clock.
    """

    def __init__(
        self,
        network: NetworkModel,
        engine: Engine,
        policy: Optional[RetryPolicy] = None,
        counters: Any = None,
    ) -> None:
        self.network = network
        self.engine = engine
        self.policy = policy or RetryPolicy()
        #: Optional CounterRegistry receiving live ``resilience.*`` samples.
        self.counters = counters
        self.stats = TransportStats()
        self._next_seq: Dict[Tuple[int, int], int] = {}
        self._outstanding: Dict[Tuple[int, int, int], _Outstanding] = {}
        # Receiver side, per ordered pair: next sequence number to deliver
        # and the reorder buffer of packets that arrived early.
        self._expected: Dict[Tuple[int, int], int] = {}
        self._reorder: Dict[Tuple[int, int], Dict[int, _Outstanding]] = {}

    # -- sending ------------------------------------------------------------
    def send(
        self,
        message: Message,
        on_delivery: Callable[[Message], None],
        local: bool = False,
    ) -> None:
        """Send ``message`` reliably; ``on_delivery`` fires exactly once, in
        per-pair FIFO order, once the packet survives the network."""
        pair = (message.src, message.dst)
        seq = self._next_seq.get(pair, 0)
        self._next_seq[pair] = seq + 1
        entry = _Outstanding(seq, message, on_delivery, local)
        self._outstanding[(message.src, message.dst, seq)] = entry
        self._transmit(entry)

    def _transmit(self, entry: _Outstanding) -> None:
        message = entry.message
        self.stats.packets_sent += 1
        entry.attempts += 1
        seq = entry.seq
        self.network.send(
            self.engine,
            Message(
                src=message.src,
                dst=message.dst,
                payload=("data", seq, message.payload),
                size_bytes=message.size_bytes,
                tag=message.tag,
                control=message.control,
            ),
            lambda _m, e=entry: self._on_packet(e),
            local=entry.local,
        )
        timeout = self.policy.initial_timeout(
            self.network, message.size_bytes, local=entry.local
        ) * (self.policy.backoff ** (entry.attempts - 1))
        entry.timer = self.engine.post(
            timeout, lambda e=entry: self._on_timeout(e), cancellable=True
        )

    def _on_timeout(self, entry: _Outstanding) -> None:
        if entry.acked:
            return
        if entry.attempts > self.policy.max_retries:
            self.stats.failures += 1
            message = entry.message
            raise UnrecoverableFault(
                f"message {message.tag!r} {message.src}->{message.dst} "
                f"seq={entry.seq} undelivered after {entry.attempts} attempts "
                f"(retries exhausted); last resort is checkpoint-restart",
                tag=message.tag,
                src=message.src,
                dst=message.dst,
                attempts=entry.attempts,
            )
        self.stats.retransmits += 1
        if self.counters is not None:
            self.counters.increment("resilience.retransmits")
        self._transmit(entry)

    # -- receiving ----------------------------------------------------------
    def _on_packet(self, entry: _Outstanding) -> None:
        """A data packet (possibly a duplicate) reached the destination."""
        message = entry.message
        pair = (message.src, message.dst)
        seq = entry.seq
        self._send_ack(entry)
        expected = self._expected.get(pair, 0)
        buffer = self._reorder.setdefault(pair, {})
        if seq < expected or seq in buffer:
            # Retransmission of something already delivered/buffered (the
            # ack was lost or slow, or the wire duplicated the packet).
            self.stats.duplicates_suppressed += 1
            return
        buffer[seq] = entry
        if seq != expected:
            self.stats.reordered += 1
        while expected in buffer:
            ready = buffer.pop(expected)
            expected += 1
            self._expected[pair] = expected
            self.stats.packets_delivered += 1
            ready.on_delivery(ready.message)

    def _send_ack(self, entry: _Outstanding) -> None:
        message = entry.message
        self.network.send(
            self.engine,
            Message(
                src=message.dst,
                dst=message.src,
                payload=("ack", entry.seq),
                size_bytes=self.policy.ack_bytes,
                tag="ack",
                control=True,
            ),
            lambda _m, e=entry: self._on_ack(e),
            local=entry.local,
        )

    def _on_ack(self, entry: _Outstanding) -> None:
        if entry.acked:
            return
        entry.acked = True
        self.stats.acks_received += 1
        if self.counters is not None:
            self.counters.increment("resilience.acks")
        if entry.timer is not None:
            entry.timer.cancel()
        message = entry.message
        self._outstanding.pop((message.src, message.dst, entry.seq), None)

    # -- introspection -------------------------------------------------------
    def in_flight(self) -> int:
        """Unacknowledged packets (pending futures the watchdog can name)."""
        return len(self._outstanding)
