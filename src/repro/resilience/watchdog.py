"""Deadlock watchdog: a quiesced-but-unfinished runtime becomes a diagnosis.

The paper's hangs were undebugable precisely because a wedged AMT run looks
like a slow one: every worker idle, no progress, no error.  In the virtual
runtime the condition is crisp — the event queue has drained but pending
futures remain — and the dependency edges registered here (or gathered from
worker pools' waiting tasks) let the watchdog walk from the step's final
future down to the root stalled future and name the whole chain in a typed
:class:`DeadlockError`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.amt.future import Future


class DeadlockError(RuntimeError):
    """The runtime quiesced with pending futures — a deadlock.

    ``chain`` names the stalled dependency chain outermost-first: the
    step's final future down to the root future nobody will ever resolve
    (typically a ghost message the network dropped).
    """

    def __init__(self, message: str, chain: Tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.chain = tuple(chain)


class DeadlockWatchdog:
    """Tracks future→dependency edges and diagnoses a quiesced runtime.

    Two ways to feed it:

    * explicitly — ``watch(future, deps, name)`` as the task graph is
      spawned (what :meth:`TaskGraphSimulator.run_step` does);
    * as a :class:`~repro.amt.scheduler.WorkerPool` observer — it records
      ``on_submit`` edges, so any pool-driven run gets coverage for free.

    ``diagnose`` never raises; it *returns* the :class:`DeadlockError` so
    the caller controls the raise site (and traceback).
    """

    def __init__(self, runtime: Any = None) -> None:
        self.runtime = runtime
        self.trips = 0
        self._edges: Dict[int, Tuple[Future, Tuple[Future, ...], str]] = {}

    # -- registration -------------------------------------------------------
    def watch(
        self,
        future: Future,
        deps: Iterable[Future] = (),
        name: Optional[str] = None,
    ) -> None:
        self._edges[id(future)] = (
            future,
            tuple(deps),
            name or future.name or f"future@{id(future):x}",
        )

    # -- WorkerPool observer protocol --------------------------------------
    def on_submit(self, task: Any, deps: Iterable[Future]) -> None:
        self.watch(task.future, deps, task.name)

    def on_start(self, task: Any) -> None:  # pragma: no cover - no-op
        pass

    def on_executed(self, task: Any) -> None:  # pragma: no cover - no-op
        pass

    def on_finish(self, task: Any) -> None:  # pragma: no cover - no-op
        pass

    # -- diagnosis ----------------------------------------------------------
    def pending(self) -> List[Tuple[Future, str]]:
        return [
            (future, name)
            for future, _deps, name in self._edges.values()
            if not future.is_ready()
        ]

    def stalled_chain(self, final: Optional[Future] = None) -> Tuple[str, ...]:
        """Walk from ``final`` through pending dependencies to the root.

        Each hop picks the first pending dependency (deterministic: edges
        keep spawn order), so the chain reads final <- ... <- root where the
        root is a pending future none of whose dependencies are pending —
        the event that was lost.
        """
        chain, _root = self._walk(final)
        return chain

    def _walk(
        self, final: Optional[Future] = None
    ) -> Tuple[Tuple[str, ...], Optional[Future]]:
        start = final
        if start is None or id(start) not in self._edges:
            pending = self.pending()
            if final is not None:
                # An unwatched final future: show it, then descend into the
                # deepest watched pending future.
                prefix: Tuple[str, ...] = (final.name or "final",)
            else:
                prefix = ()
            if not pending:
                return prefix, final
            start = pending[0][0]
        else:
            prefix = ()

        chain: List[str] = list(prefix)
        seen = set()
        cursor: Optional[Future] = start
        root: Optional[Future] = start
        while cursor is not None and id(cursor) not in seen:
            seen.add(id(cursor))
            _future, deps, name = self._edges.get(
                id(cursor), (cursor, (), cursor.name or "future")
            )
            chain.append(name)
            root = cursor
            cursor = next((d for d in deps if not d.is_ready()), None)
        return tuple(chain), root

    def diagnose(self, final: Optional[Future] = None) -> DeadlockError:
        """Build the typed error for a quiesced-but-unfinished runtime."""
        self.trips += 1
        chain, root_future = self._walk(final)
        pending_count = len(self.pending())
        waiting = self._pool_waiting()
        root = chain[-1] if chain else "unknown"
        parts = [
            f"deadlock: runtime quiesced with {pending_count} pending future(s); "
            f"stalled chain: {' <- '.join(chain) if chain else '(none watched)'}"
        ]
        parts.append(f"root stall: {root!r} — its completion event was never scheduled "
                     "(a lost ghost message stalls the dependency graph exactly "
                     "like the paper's Fugaku/Ookami hangs)")
        # Under the race detector (``--sanitize``) futures carry the
        # happens-before provenance clock: report how much completed work
        # the stalled future transports — the depth of the wedged chain.
        origin = getattr(root_future, "_origin", 0)
        if origin:
            parts.append(
                f"provenance: the root future's origin clock carries "
                f"{bin(origin).count('1')} upstream task bit(s) "
                "(repro.analysis happens-before provenance)"
            )
        if waiting:
            shown = ", ".join(waiting[:5])
            more = f" (+{len(waiting) - 5} more)" if len(waiting) > 5 else ""
            parts.append(f"tasks blocked on unready dependencies: {shown}{more}")
        return DeadlockError("\n".join(parts), chain=chain)

    def _pool_waiting(self) -> List[str]:
        """Names of tasks sitting in worker-pool dependency wait."""
        if self.runtime is None:
            return []
        out: List[str] = []
        for locality in getattr(self.runtime, "localities", []):
            waiting = getattr(locality.pool, "waiting_tasks", None)
            if waiting is None:
                continue
            for task, unready in waiting():
                dep_names = ",".join(d.name or "?" for d in unready) or "?"
                out.append(f"{task.name}[waiting on {dep_names}]")
        return out
