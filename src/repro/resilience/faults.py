"""Seeded fault schedules for the network model.

A :class:`FaultSpec` describes *what* can go wrong (per-message drop /
delay / duplication probabilities, an optional node crash); a
:class:`FaultInjector` turns it into deterministic per-message decisions.
Decisions are keyed on ``(seed, stream, message index)`` through numpy's
``SeedSequence``, so whether message ``i`` is dropped depends only on its
send index — retransmissions (which consume fresh indices) get fresh,
independent draws, and inserting a retransmission never perturbs the fate
of later messages.  ``stream`` separates timesteps, so a multi-step run
does not replay the same fault pattern every step.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class FaultDecision:
    """What the injector decided for one message."""

    drop: bool = False
    extra_delay_s: float = 0.0
    duplicates: int = 0


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault model, parseable from the CLI.

    ``crash_locality`` models a node dying: once active, every message to
    or from that locality is dropped — retransmission cannot save it, so
    recovery requires checkpoint-restart.  ``crash_step`` limits the crash
    to one injector stream (one driver timestep); ``-1`` means every step.
    """

    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.0
    duplicate_rate: float = 0.0
    seed: int = 0
    crash_locality: int = -1
    crash_step: int = -1

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate", "duplicate_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_s < 0.0:
            raise ValueError("delay_s must be non-negative")

    @property
    def any_random(self) -> bool:
        return (
            self.drop_rate > 0.0
            or self.delay_rate > 0.0
            or self.duplicate_rate > 0.0
        )

    def without_crash(self) -> "FaultSpec":
        """The same schedule with the node crash healed (post-restart)."""
        return replace(self, crash_locality=-1)

    def injector(self, stream: int = 0) -> "FaultInjector":
        return FaultInjector(self, stream=stream)

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse a CLI spec like ``"drop=0.01,seed=7,crash_loc=1,crash_step=2"``.

        Keys: ``drop``, ``delay`` (rate), ``delay_s``, ``dup``, ``seed``,
        ``crash_loc``, ``crash_step``.
        """
        keys = {
            "drop": ("drop_rate", float),
            "delay": ("delay_rate", float),
            "delay_s": ("delay_s", float),
            "dup": ("duplicate_rate", float),
            "seed": ("seed", int),
            "crash_loc": ("crash_locality", int),
            "crash_step": ("crash_step", int),
        }
        kwargs = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"fault spec item {item!r} is not key=value")
            key, value = item.split("=", 1)
            key = key.strip()
            if key not in keys:
                raise ValueError(
                    f"unknown fault key {key!r}; expected one of {sorted(keys)}"
                )
            field_name, cast = keys[key]
            kwargs[field_name] = cast(value)
        return cls(**kwargs)


class FaultInjector:
    """Deterministic per-message fault decisions for a :class:`FaultSpec`.

    Conforms to the duck-typed protocol :class:`repro.amt.network.NetworkModel`
    consults on every send: ``decide(index, src, dst) -> FaultDecision``.
    """

    def __init__(self, spec: FaultSpec, stream: int = 0) -> None:
        self.spec = spec
        self.stream = stream
        self.decisions = 0
        self.drops = 0

    @property
    def crash_active(self) -> bool:
        spec = self.spec
        return spec.crash_locality >= 0 and (
            spec.crash_step < 0 or spec.crash_step == self.stream
        )

    def decide(self, index: int, src: int, dst: int) -> FaultDecision:
        spec = self.spec
        self.decisions += 1
        if self.crash_active and spec.crash_locality in (src, dst):
            self.drops += 1
            return FaultDecision(drop=True)
        if not spec.any_random:
            return FaultDecision()
        # One tiny PCG64 per message, keyed on (seed, stream, index): the
        # draw is a pure function of the message index, independent of how
        # many retransmissions were inserted before it.
        rng = np.random.default_rng([spec.seed, self.stream, index])
        u_drop, u_delay, u_dup = rng.random(3)
        if u_drop < spec.drop_rate:
            self.drops += 1
            return FaultDecision(drop=True)
        extra = spec.delay_s if u_delay < spec.delay_rate else 0.0
        duplicates = 1 if u_dup < spec.duplicate_rate else 0
        return FaultDecision(extra_delay_s=extra, duplicates=duplicates)
