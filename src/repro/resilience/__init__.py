"""Resilience layer: surviving the faults the paper could only observe.

The paper's §VI-D/§VII report two failures the authors could not debug
before their allocations ended: Octo-Tiger hanging on Fugaku under Fujitsu
MPI at the largest node counts, and deadlocking "about 1 out of 20 runs" on
distributed Ookami.  :mod:`repro.distsim.reliability` models the *diagnosis*
side (closed-form hang probability) and :class:`repro.amt.network.NetworkModel`
injects the faults; this package adds the *recovery* side:

* :mod:`repro.resilience.faults` — seeded fault schedules (drop, delay,
  duplicate, node crash) injected into the network model;
* :mod:`repro.resilience.protocol` — acknowledged delivery with per-message
  sequence numbers, timeout + exponential-backoff retransmission, duplicate
  suppression and FIFO reordering, so a lost ghost message no longer wedges
  the step;
* :mod:`repro.resilience.watchdog` — a deadlock watchdog that turns a
  quiesced-but-unfinished runtime into a typed :class:`DeadlockError`
  naming the stalled future chain (the paper's undebugable hang becomes a
  one-line diagnosis).

The driver ties the three together with checkpoint-restart
(:meth:`repro.core.driver.OctoTigerSim.run`): on an unrecoverable fault
(retries exhausted, node crash) it rolls back to the last checkpoint and
replays — the same loop a training stack runs around collective comms.
"""

from repro.resilience.faults import FaultDecision, FaultInjector, FaultSpec
from repro.resilience.protocol import (
    RetryPolicy,
    ReliableTransport,
    TransportStats,
    UnrecoverableFault,
)
from repro.resilience.watchdog import DeadlockError, DeadlockWatchdog

__all__ = [
    "FaultDecision",
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    "ReliableTransport",
    "TransportStats",
    "UnrecoverableFault",
    "DeadlockError",
    "DeadlockWatchdog",
]
