"""Checkpoint series: the Silo-style output directory of a production run.

Octo-Tiger writes a numbered Silo file per output interval; restarting
resumes from the newest.  :class:`CheckpointSeries` manages that layout on
the ``.npz`` container: step-numbered files, listing, latest-lookup, and
pruning (production runs cap the number of retained checkpoints).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.ioutil.checkpoint import load_checkpoint, save_checkpoint
from repro.octree.mesh import AmrMesh

_STEP_RE = re.compile(r"_(\d{6})\.npz$")


class CheckpointSeries:
    """A directory of step-numbered checkpoints."""

    def __init__(self, directory: Union[str, Path], prefix: str = "octotiger") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if not prefix or "/" in prefix:
            raise ValueError("prefix must be a simple name")
        self.prefix = prefix

    # -- paths -----------------------------------------------------------
    def path_for(self, step: int) -> Path:
        if step < 0 or step > 999_999:
            raise ValueError("step must be in [0, 999999]")
        return self.directory / f"{self.prefix}_{step:06d}.npz"

    def steps(self) -> List[int]:
        """Sorted step numbers present on disk."""
        out = []
        for path in self.directory.glob(f"{self.prefix}_*.npz"):
            match = _STEP_RE.search(path.name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    def latest_step(self) -> Optional[int]:
        steps = self.steps()
        return steps[-1] if steps else None

    # -- io -----------------------------------------------------------------
    def write(
        self,
        mesh: AmrMesh,
        step: int,
        time: float = 0.0,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Path:
        return save_checkpoint(mesh, self.path_for(step), time=time, step=step,
                               extra=extra)

    def load(self, step: int) -> Tuple[AmrMesh, Dict[str, Any]]:
        path = self.path_for(step)
        if not path.exists():
            raise FileNotFoundError(f"no checkpoint for step {step} in {self.directory}")
        return load_checkpoint(path)

    def load_latest(self) -> Tuple[AmrMesh, Dict[str, Any]]:
        step = self.latest_step()
        if step is None:
            raise FileNotFoundError(f"no checkpoints under {self.directory}")
        return self.load(step)

    def prune(self, keep_last: int) -> int:
        """Delete all but the newest ``keep_last`` checkpoints; returns the
        number removed."""
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        steps = self.steps()
        removed = 0
        for step in steps[:-keep_last]:
            self.path_for(step).unlink()
            removed += 1
        return removed
