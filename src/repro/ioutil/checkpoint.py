"""Octree checkpointing on ``.npz`` containers."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.octree.mesh import AmrMesh
from repro.octree.node import OctreeNode

FORMAT_VERSION = 1


def save_checkpoint(
    mesh: AmrMesh,
    path: Union[str, Path],
    time: float = 0.0,
    step: int = 0,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write the full mesh (topology + every node's fields) to ``path``.

    Returns the path written (``.npz`` appended if missing).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")

    keys = sorted(mesh.nodes)
    levels = np.array([k[0] for k in keys], dtype=np.int64)
    codes = np.array([k[1] for k in keys], dtype=np.int64)
    if any(k[1] > np.iinfo(np.int64).max for k in keys):
        raise OverflowError("Morton codes exceed int64; deepen the container format")
    leaf_flags = np.array([mesh.nodes[k].is_leaf for k in keys], dtype=bool)
    localities = np.array([mesh.nodes[k].locality for k in keys], dtype=np.int64)
    blocks = np.stack([mesh.nodes[k].subgrid.data for k in keys])

    meta = {
        "format_version": FORMAT_VERSION,
        "n": mesh.n,
        "ghost": mesh.ghost,
        "domain_size": mesh.domain_size,
        "time": time,
        "step": step,
        "extra": extra or {},
    }
    np.savez_compressed(
        path,
        levels=levels,
        codes=codes,
        leaf_flags=leaf_flags,
        localities=localities,
        blocks=blocks,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )
    return path


def load_checkpoint(path: Union[str, Path]) -> Tuple[AmrMesh, Dict[str, Any]]:
    """Restore a mesh and its metadata record."""
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["meta"].tobytes()).decode())
        if meta.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format {meta.get('format_version')!r}"
            )
        mesh = AmrMesh(
            n=meta["n"], ghost=meta["ghost"], domain_size=meta["domain_size"]
        )
        mesh.nodes.clear()
        levels = archive["levels"]
        codes = archive["codes"]
        leaf_flags = archive["leaf_flags"]
        localities = archive["localities"]
        blocks = archive["blocks"]
        for i in range(levels.shape[0]):
            node = OctreeNode(
                int(levels[i]),
                int(codes[i]),
                n=meta["n"],
                ghost=meta["ghost"],
                domain_size=meta["domain_size"],
            )
            node.is_leaf = bool(leaf_flags[i])
            node.locality = int(localities[i])
            np.copyto(node.subgrid.data, blocks[i])
            mesh.nodes[node.key] = node
    mesh.check_invariants()
    return mesh, meta
