"""Checkpoint I/O (the Silo/HDF5 analog).

Octo-Tiger serialises its octree through Silo's HDF driver; we serialise to
a single ``.npz`` container holding node addresses, topology flags and the
stacked field blocks, plus a JSON metadata side record.  Restoring yields a
bit-identical mesh (tested), which is what a checkpoint format owes you.
"""

from repro.ioutil.checkpoint import save_checkpoint, load_checkpoint
from repro.ioutil.series import CheckpointSeries

__all__ = ["save_checkpoint", "load_checkpoint", "CheckpointSeries"]
