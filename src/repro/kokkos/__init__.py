"""Performance-portability layer (the Kokkos analog).

Kernels are written once as functors over an index range and dispatched to
an *execution space*:

* :class:`~repro.kokkos.spaces.SerialSpace` — runs inline (Kokkos Serial).
* :class:`~repro.kokkos.spaces.HpxSpace` — splits the range into
  ``tasks_per_kernel`` AMT tasks on a locality's worker pool (the Kokkos HPX
  execution space; the knob is the paper's Fig. 9 experiment).
* :class:`~repro.kokkos.spaces.DeviceSpace` — a simulated GPU with kernel
  launch latency, streams and work aggregation (the CUDA execution space +
  the work-aggregation technique of paper ref. [9]).

:func:`~repro.kokkos.parallel.parallel_for_async` returns an AMT future, the
HPX-Kokkos integration that lets kernels participate in HPX dependency
graphs.
"""

from repro.kokkos.backend import (
    ArrayBackend,
    BackendUnavailable,
    available_backends,
    backend_for_space,
    get_backend,
    jit_backend_name,
    register_backend,
    registered_backends,
    set_space_backend,
    space_backend_map,
)
from repro.kokkos.view import (
    View,
    deep_copy,
    HostSpace,
    DeviceSpaceTag,
    reset_transfer_counter,
    sanctioned_crossing,
    transfer_counter,
)
from repro.kokkos.policies import RangePolicy, MDRangePolicy, TeamPolicy
from repro.kokkos.spaces import (
    ExecutionSpace,
    SerialSpace,
    HpxSpace,
    DeviceSpace,
    KernelStats,
)
from repro.kokkos.parallel import (
    parallel_for,
    parallel_for_async,
    parallel_reduce,
    parallel_reduce_async,
    parallel_scan,
)

__all__ = [
    "ArrayBackend",
    "BackendUnavailable",
    "available_backends",
    "backend_for_space",
    "get_backend",
    "jit_backend_name",
    "register_backend",
    "registered_backends",
    "sanctioned_crossing",
    "set_space_backend",
    "space_backend_map",
    "View",
    "deep_copy",
    "HostSpace",
    "DeviceSpaceTag",
    "reset_transfer_counter",
    "transfer_counter",
    "RangePolicy",
    "MDRangePolicy",
    "TeamPolicy",
    "ExecutionSpace",
    "SerialSpace",
    "HpxSpace",
    "DeviceSpace",
    "KernelStats",
    "parallel_for",
    "parallel_for_async",
    "parallel_reduce",
    "parallel_reduce_async",
    "parallel_scan",
]
