"""Pluggable array backends for the Kokkos analog (array-API dispatch).

The paper's portability claim is that one functor runs unchanged on the
Serial, HPX and CUDA execution spaces; until this module existed every
kernel in the repo bottomed out in host NumPy regardless of the space it
claimed to run in.  An :class:`ArrayBackend` makes the memory space select
a real array module: Views own backend-allocated storage, ``View.xp``
exposes the backend's array namespace to kernels, and ``deep_copy`` is the
only sanctioned cross-backend conversion (counting real bytes).

Registered backends:

``numpy``
    The default and the reference.  Dispatching through it is bit-identical
    to the seed path (same functions, same storage) — the *exact* tier of
    the equivalence harness in :mod:`repro.core.crosscheck` pins this.
``numba``
    JIT host backend: NumPy storage, hot kernels compiled with
    ``numba.njit``.  Optional (gated on importability); the *tolerance*
    tier bounds it with per-field error budgets because a JIT cannot
    promise bit-identity.
``pyjit``
    The interpreted twin of ``numba``: runs the same kernel source
    uncompiled on NumPy storage.  Always available, so the JIT kernel
    *logic* is exercised even on boxes without numba installed.
``cupy`` / ``jax``
    Registered device/accelerator backends, skipped when not importable.
    ``cupy`` maps naturally onto the Device memory space
    (``set_space_backend("Device", "cupy")``).

This module is the **only** place allowed to import ``numba``, ``cupy`` or
``jax`` (reprolint R009): every other module reaches them through the
registry, so a missing optional dependency degrades to a skipped backend
instead of an import error.

Like :mod:`repro.analysis.spacesan`, this module imports nothing from the
rest of ``repro`` so the lowest layers can depend on it without cycles.
"""

from __future__ import annotations

import importlib
import importlib.util
from typing import Any, Callable, Dict, List, Optional

import numpy as np


class BackendUnavailable(RuntimeError):
    """The backend is registered but its array module is not importable."""


class ArrayBackend:
    """One array module behind the array-API subset the kernels use.

    Subclasses override :meth:`_import_module` (lazy import of the array
    namespace) and optionally :meth:`compile` (JIT hook).  ``specialize``
    caches compiled kernels per key so each kernel source is compiled at
    most once per backend; ``compile_count`` makes the caching observable
    to tests.
    """

    #: Registry name; also the CLI / config spelling.
    name: str = "abstract"
    #: Whether storage lives in a (simulated or real) device space.
    is_device: bool = False
    #: Whether :meth:`compile` does real work (JIT backends).
    jit: bool = False
    #: Module spec probed for availability (None = always available).
    requires: Optional[str] = None

    def __init__(self) -> None:
        self._module: Optional[Any] = None
        self._kernels: Dict[Any, Callable] = {}
        self._tables: Dict[Any, Any] = {}
        #: Number of kernel sources handed to :meth:`compile` (not cache hits).
        self.compile_count = 0

    # -- availability ------------------------------------------------------
    @property
    def available(self) -> bool:
        if self.requires is None:
            return True
        return importlib.util.find_spec(self.requires) is not None

    def require(self) -> None:
        if not self.available:
            raise BackendUnavailable(
                f"array backend {self.name!r} needs the {self.requires!r} "
                "module, which is not installed"
            )

    # -- array namespace ---------------------------------------------------
    def _import_module(self) -> Any:
        return np

    @property
    def module(self) -> Any:
        """The backend's array namespace (``View.xp``)."""
        if self._module is None:
            self.require()
            self._module = self._import_module()
        return self._module

    # -- storage -----------------------------------------------------------
    def zeros(self, shape, dtype=np.float64) -> Any:
        return self.module.zeros(shape, dtype=dtype)

    def from_numpy(self, array: np.ndarray) -> Any:
        """Adopt/convert a host ndarray into backend storage."""
        return array

    def to_numpy(self, array: Any) -> np.ndarray:
        """View/convert backend storage as a host ndarray."""
        return np.asarray(array)

    def copy_into(self, dst: Any, src_host: np.ndarray) -> None:
        """Copy host values into backend storage (deep_copy's write half)."""
        np.copyto(self.to_numpy(dst), src_host)

    # -- kernels -----------------------------------------------------------
    def compile(self, func: Callable) -> Callable:
        """Lower a pure-Python kernel for this backend (identity by default).

        Every call counts toward ``compile_count`` so tests can observe
        that caching (``specialize`` / ``kernel_table``) actually avoids
        recompilation.
        """
        self.compile_count += 1
        return func

    def specialize(self, key, factory: Callable[[], Callable]) -> Callable:
        """The compiled kernel for ``key``, compiling via ``factory`` once."""
        kern = self._kernels.get(key)
        if kern is None:
            kern = self.compile(factory())
            self._kernels[key] = kern
        return kern

    def kernel_table(self, key, builder: Callable[[Callable], Any]) -> Any:
        """A cached kernel *set*: ``builder(self.compile)`` runs once per
        key and may compile helpers plus the kernels that call them (the
        pattern :func:`repro.hydro.jit_kernels.build_kernels` uses)."""
        table = self._tables.get(key)
        if table is None:
            table = builder(self.compile)
            self._tables[key] = table
        return table

    def cache_clear(self) -> None:
        """Drop every compiled kernel (forces recompilation)."""
        self._kernels.clear()
        self._tables.clear()

    def __repr__(self) -> str:
        state = "available" if self.available else "unavailable"
        return f"<ArrayBackend {self.name!r} ({state})>"


class NumpyBackend(ArrayBackend):
    """Host NumPy: the default backend and the bit-exact reference."""

    name = "numpy"


class PyJitBackend(ArrayBackend):
    """Interpreted twin of the numba backend (same kernels, no JIT).

    Exists so the JIT kernel source is exercised — and tolerance-tier
    cross-checked — on machines without numba installed.
    """

    name = "pyjit"
    jit = True


class NumbaBackend(ArrayBackend):
    """NumPy storage with hot kernels compiled by ``numba.njit``."""

    name = "numba"
    jit = True
    requires = "numba"

    def compile(self, func: Callable) -> Callable:
        self.require()
        numba = importlib.import_module("numba")
        self.compile_count += 1
        return numba.njit(cache=False)(func)


class CupyBackend(ArrayBackend):
    """CuPy device backend (GPU-resident storage), optional."""

    name = "cupy"
    is_device = True
    requires = "cupy"

    def _import_module(self) -> Any:
        return importlib.import_module("cupy")

    def from_numpy(self, array: np.ndarray) -> Any:
        return self.module.asarray(array)

    def to_numpy(self, array: Any) -> np.ndarray:
        return self.module.asnumpy(array)

    def copy_into(self, dst: Any, src_host: np.ndarray) -> None:
        dst[...] = self.module.asarray(src_host)


class JaxBackend(ArrayBackend):
    """JAX backend (jax.numpy namespace), optional.

    JAX arrays are immutable, so ``copy_into`` rebinds rather than writes;
    the View layer treats that as replacement storage.
    """

    name = "jax"
    requires = "jax"

    def _import_module(self) -> Any:
        return importlib.import_module("jax.numpy")

    def zeros(self, shape, dtype=np.float64) -> Any:
        return self.module.zeros(shape, dtype=dtype)

    def from_numpy(self, array: np.ndarray) -> Any:
        return self.module.asarray(array)

    def to_numpy(self, array: Any) -> np.ndarray:
        return np.asarray(array)


# -- registry ---------------------------------------------------------------

_REGISTRY: Dict[str, ArrayBackend] = {}


def register_backend(backend: ArrayBackend) -> ArrayBackend:
    """Add a backend to the registry (last registration per name wins)."""
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> ArrayBackend:
    """The registered backend for ``name``; raises on unknown/unavailable."""
    try:
        backend = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown array backend {name!r}; registered: "
            f"{sorted(_REGISTRY)}"
        ) from None
    backend.require()
    return backend


def registered_backends() -> List[str]:
    """Every registered backend name, available or not."""
    return sorted(_REGISTRY)


def available_backends() -> List[str]:
    """Registered backends whose array module imports on this machine."""
    return sorted(name for name, b in _REGISTRY.items() if b.available)


def jit_backend_name() -> str:
    """The preferred JIT backend here: ``numba`` if importable, else the
    interpreted ``pyjit`` twin (same kernel source, no compilation)."""
    return "numba" if _REGISTRY["numba"].available else "pyjit"


register_backend(NumpyBackend())
register_backend(PyJitBackend())
register_backend(NumbaBackend())
register_backend(CupyBackend())
register_backend(JaxBackend())


# -- memory-space -> backend mapping ----------------------------------------

#: Which backend owns each memory space's View storage.  Host stays NumPy;
#: Device defaults to NumPy too (the simulated GPU of
#: :class:`repro.kokkos.spaces.DeviceSpace`) until a real device backend is
#: selected with :func:`set_space_backend`.
_SPACE_BACKENDS: Dict[str, str] = {"Host": "numpy", "Device": "numpy"}


def backend_for_space(space) -> ArrayBackend:
    """The backend owning storage for a :class:`MemorySpaceTag` (by name).

    Unmapped spaces default to NumPy so user-defined tags keep working.
    """
    return get_backend(_SPACE_BACKENDS.get(space.name, "numpy"))


def set_space_backend(space_name: str, backend_name: str) -> None:
    """Route a memory space's future View allocations to a backend."""
    get_backend(backend_name)  # validate name + availability eagerly
    _SPACE_BACKENDS[space_name] = backend_name


def space_backend_map() -> Dict[str, str]:
    """A copy of the current space -> backend routing (for docs/tests)."""
    return dict(_SPACE_BACKENDS)
