"""Execution spaces: where kernels run and what they cost.

All spaces execute the *same functor* — the portability contract.  They
differ in

* how the index range is decomposed (inline; ``tasks_per_kernel`` AMT tasks;
  one device launch),
* the virtual cost charged (core throughput x SIMD factor; GPU throughput +
  launch latency),
* bookkeeping (kernel/launch/task counters used by the benches).

Functor contract: ``functor(begin, end)`` performs the work for the half-open
flat index range — typically vectorised NumPy over that slice.  For
reductions the functor returns a partial value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.amt.future import Future, make_ready_future, when_all
from repro.amt.locality import Locality
from repro.kokkos.backend import ArrayBackend, backend_for_space
from repro.kokkos.policies import RangePolicy
from repro.kokkos.view import DeviceSpaceTag, HostSpace, sanctioned_crossing
from repro.simd.abi import get_abi


@dataclass
class KernelStats:
    """Counters every execution space maintains."""

    launches: int = 0
    tasks: int = 0
    items: int = 0
    virtual_time: float = 0.0

    def record(self, tasks: int, items: int, time: float) -> None:
        self.launches += 1
        self.tasks += tasks
        self.items += items
        self.virtual_time += time


class ExecutionSpace:
    """Base class: cost model + dispatch interface."""

    name = "abstract"
    #: The memory space this execution space natively addresses: Views a
    #: functor touches should live here (the sanitizer polices the rest).
    memory_space = HostSpace

    def __init__(self) -> None:
        self.stats = KernelStats()

    @property
    def array_backend(self) -> ArrayBackend:
        """The array backend owning this space's native View storage."""
        return backend_for_space(self.memory_space)

    # -- cost model --------------------------------------------------------
    def item_cost(self, policy: RangePolicy) -> float:
        """Virtual seconds per iteration item."""
        raise NotImplementedError

    def range_cost(self, policy: RangePolicy, items: int) -> float:
        return items * self.item_cost(policy)

    # -- dispatch ------------------------------------------------------------
    def dispatch(
        self, policy: RangePolicy, functor: Callable[[int, int], Any], kind: str
    ) -> Future:
        """Run the functor over the policy range; returns a future of the
        list of per-chunk results."""
        raise NotImplementedError

    def fence(self) -> None:
        """Block until all work launched on this space completed.

        Spaces backed by the virtual clock cannot block; the AMT engine's
        ``run``/``run_until_ready`` plays that role.  Provided for interface
        parity; a no-op for inline spaces.
        """


class SerialSpace(ExecutionSpace):
    """Kokkos Serial: the functor runs inline on the calling thread."""

    name = "serial"

    def __init__(self, flops_per_second: float = 3.0e9, simd_abi: str = "scalar") -> None:
        super().__init__()
        self.flops_per_second = flops_per_second
        self.simd = get_abi(simd_abi)

    def item_cost(self, policy: RangePolicy) -> float:
        speedup = self.simd.speedup_factor() if policy.vectorizable else 1.0
        return policy.work_per_item / (self.flops_per_second * speedup)

    def dispatch(
        self, policy: RangePolicy, functor: Callable[[int, int], Any], kind: str
    ) -> Future:
        result = functor(policy.begin, policy.end) if policy.size else None
        self.stats.record(1, policy.size, self.range_cost(policy, policy.size))
        return make_ready_future([result], name=kind)


class HpxSpace(ExecutionSpace):
    """Kokkos HPX execution space: kernels become AMT tasks.

    ``tasks_per_kernel`` controls the split of one kernel launch into HPX
    tasks (paper §VII-C).  One task keeps the hot-cache benefit; many tasks
    avoid starvation during distributed tree traversals.
    """

    name = "hpx"

    def __init__(
        self,
        locality: Locality,
        tasks_per_kernel: int = 1,
        flops_per_second_per_core: float = 3.0e9,
        simd_abi: str = "scalar",
    ) -> None:
        super().__init__()
        if tasks_per_kernel < 1:
            raise ValueError("tasks_per_kernel must be >= 1")
        self.locality = locality
        self.tasks_per_kernel = tasks_per_kernel
        self.flops_per_second_per_core = flops_per_second_per_core
        self.simd = get_abi(simd_abi)

    def item_cost(self, policy: RangePolicy) -> float:
        speedup = self.simd.speedup_factor() if policy.vectorizable else 1.0
        return policy.work_per_item / (self.flops_per_second_per_core * speedup)

    def dispatch(
        self, policy: RangePolicy, functor: Callable[[int, int], Any], kind: str
    ) -> Future:
        chunks = policy.chunks(self.tasks_per_kernel)
        if not chunks:
            self.stats.record(0, 0, 0.0)
            return make_ready_future([], name=kind)
        futures = []
        total_cost = 0.0
        for begin, end in chunks:
            cost = self.range_cost(policy, end - begin)
            total_cost += cost
            futures.append(
                self.locality.async_(
                    functor, begin, end, cost=cost, name=f"{kind}[{begin}:{end}]", kind=kind
                )
            )
        self.stats.record(len(chunks), policy.size, total_cost)
        return when_all(futures)


@dataclass
class _PendingLaunch:
    policy: RangePolicy
    functor: Callable[[int, int], Any]
    kind: str
    future_slot: Future


class DeviceSpace(ExecutionSpace):
    """A simulated GPU execution space (Kokkos CUDA analog).

    One kernel launch pays ``launch_latency_s`` then executes the whole range
    at ``flops_per_second`` device throughput.  ``aggregation_size > 1``
    enables the work-aggregation scheme of paper ref. [9]: consecutive small
    launches of the same kind are batched and pay one launch latency.
    Launch execution is serialised per stream, round-robin across
    ``n_streams``.
    """

    name = "device"
    memory_space = DeviceSpaceTag

    def __init__(
        self,
        locality: Locality,
        flops_per_second: float = 7.0e12,
        launch_latency_s: float = 10e-6,
        n_streams: int = 4,
        aggregation_size: int = 1,
    ) -> None:
        super().__init__()
        if aggregation_size < 1:
            raise ValueError("aggregation_size must be >= 1")
        self.locality = locality
        self.flops_per_second = flops_per_second
        self.launch_latency_s = launch_latency_s
        self.n_streams = n_streams
        self.aggregation_size = aggregation_size
        self._pending: Dict[str, List[_PendingLaunch]] = {}
        self._next_stream = 0
        #: Virtual time each stream becomes free; managed by the engine posts.
        self._stream_free: List[float] = [0.0] * n_streams

    def item_cost(self, policy: RangePolicy) -> float:
        # GPUs run the scalar code path; SIMD types compile to scalar there.
        return policy.work_per_item / self.flops_per_second

    def dispatch(
        self, policy: RangePolicy, functor: Callable[[int, int], Any], kind: str
    ) -> Future:
        slot = Future(name=f"{kind}.device")
        launch = _PendingLaunch(policy, functor, kind, slot)
        batch = self._pending.setdefault(kind, [])
        batch.append(launch)
        if len(batch) >= self.aggregation_size:
            self._flush(kind)
        else:
            # Flush at the current virtual instant if nothing joins the batch.
            self.locality.runtime.engine.post(0.0, lambda: self._flush(kind))
        return slot

    def _flush(self, kind: str) -> None:
        batch = self._pending.get(kind)
        if not batch:
            return
        self._pending[kind] = []
        engine = self.locality.runtime.engine
        stream = self._next_stream
        self._next_stream = (self._next_stream + 1) % self.n_streams

        exec_cost = sum(
            l.policy.size * self.item_cost(l.policy) for l in batch
        )
        total = self.launch_latency_s + exec_cost
        start = max(engine.now, self._stream_free[stream])
        finish = start + total
        self._stream_free[stream] = finish
        items = sum(l.policy.size for l in batch)
        self.stats.record(len(batch), items, total)

        def complete() -> None:
            # The functor executes *in* the device space: touching
            # device-backend storage here is legal, so the host-ufunc guard
            # is suspended for the launch (the analog of device code
            # dereferencing device pointers).
            with sanctioned_crossing():
                for l in batch:
                    result = (
                        l.functor(l.policy.begin, l.policy.end)
                        if l.policy.size
                        else None
                    )
                    l.future_slot._set_value([result])  # noqa: SLF001

        engine.post_at(finish, complete)
