"""Kernel dispatch entry points: parallel_for / parallel_reduce / parallel_scan.

Synchronous variants drive the AMT engine until the kernel completes (only
valid outside other tasks, like ``Kokkos::fence``).  ``*_async`` variants
return AMT futures — the HPX-Kokkos integration that lets kernels join HPX
dependency graphs and continuation chains.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from repro.amt.future import Future
from repro.amt.locality import Runtime
from repro.kokkos.policies import MDRangePolicy, RangePolicy
from repro.kokkos.spaces import ExecutionSpace


def _as_range(policy) -> RangePolicy:  # noqa: ANN001
    from repro.kokkos.policies import TeamPolicy

    if isinstance(policy, (MDRangePolicy, TeamPolicy)):
        return policy.flatten()
    if isinstance(policy, RangePolicy):
        return policy
    raise TypeError(f"not an execution policy: {policy!r}")


def parallel_for_async(
    space: ExecutionSpace,
    policy,  # noqa: ANN001
    functor: Callable[[int, int], Any],
    kind: str = "parallel_for",
) -> Future:
    """Launch a for-kernel; returns a future resolved on completion."""
    return space.dispatch(_as_range(policy), functor, kind)


def parallel_for(
    space: ExecutionSpace,
    policy,  # noqa: ANN001
    functor: Callable[[int, int], Any],
    kind: str = "parallel_for",
    runtime: Optional[Runtime] = None,
) -> None:
    """Launch a for-kernel and fence.

    For spaces backed by a runtime the caller must pass it (or the space's
    locality runtime is used) so the virtual clock can advance.
    """
    future = parallel_for_async(space, policy, functor, kind)
    _fence(space, future, runtime)


def parallel_reduce_async(
    space: ExecutionSpace,
    policy,  # noqa: ANN001
    functor: Callable[[int, int], float],
    kind: str = "parallel_reduce",
    combine: Callable[[float, float], float] = lambda a, b: a + b,
    init: float = 0.0,
) -> Future:
    """Launch a reduce-kernel; the future carries the combined value."""
    chunk_future = space.dispatch(_as_range(policy), functor, kind)

    def combine_all(partials: List[Any]) -> float:
        acc = init
        for p in partials:
            if p is not None:
                acc = combine(acc, p)
        return acc

    return chunk_future.then(combine_all)


def parallel_reduce(
    space: ExecutionSpace,
    policy,  # noqa: ANN001
    functor: Callable[[int, int], float],
    kind: str = "parallel_reduce",
    combine: Callable[[float, float], float] = lambda a, b: a + b,
    init: float = 0.0,
    runtime: Optional[Runtime] = None,
) -> float:
    future = parallel_reduce_async(space, policy, functor, kind, combine, init)
    _fence(space, future, runtime)
    return future.get()


def parallel_scan(
    values: np.ndarray,
    exclusive: bool = True,
) -> np.ndarray:
    """Prefix sum over a host array (Kokkos parallel_scan semantics).

    Used by the load balancer to compute partition offsets; runs inline
    because it is latency- not throughput-bound.
    """
    values = np.asarray(values)
    if exclusive:
        out = np.zeros_like(values)
        np.cumsum(values[:-1], out=out[1:])
        return out
    return np.cumsum(values)


def _fence(space: ExecutionSpace, future: Future, runtime: Optional[Runtime]) -> None:
    if future.is_ready():
        return
    rt = runtime or getattr(space, "locality", None) and space.locality.runtime
    if rt is None:
        raise RuntimeError(
            f"cannot fence space {space.name!r} without a runtime to drive"
        )
    rt.run_until_ready(future)
