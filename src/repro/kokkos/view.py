"""Views: labelled, memory-space-tagged multidimensional arrays.

A ``Kokkos::View`` couples storage with a memory space so kernels can only
touch data where they execute.  Here a view wraps a NumPy array plus a space
tag; :func:`deep_copy` is the only sanctioned way to move data between
spaces, and it counts the bytes moved (feeding the GPU-offload cost model).

Under :func:`repro.analysis.spacesan.sanitizer_mode` every element access
and every raw ``.data`` grab of a *device*-tagged view from host code is a
reported :class:`~repro.analysis.spacesan.MemorySpaceViolation` — exactly
the segfault class a real CUDA build turns into undefined behaviour.
Outside sanitizer mode the checks reduce to one falsy test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis.spacesan import report_violation, space_checks_enabled


@dataclass(frozen=True)
class MemorySpaceTag:
    name: str
    is_device: bool = False


HostSpace = MemorySpaceTag("Host")
DeviceSpaceTag = MemorySpaceTag("Device", is_device=True)

#: Total bytes moved host<->device by deep_copy (use reset_transfer_counter()).
transfer_counter = {"h2d_bytes": 0, "d2h_bytes": 0, "copies": 0}


def reset_transfer_counter() -> None:
    """Zero the deep_copy accounting (between independent measurements)."""
    for key in transfer_counter:
        transfer_counter[key] = 0


class View:
    """A labelled array in a memory space."""

    __slots__ = ("label", "space", "_data")

    def __init__(
        self,
        label: str,
        shape: Tuple[int, ...],
        space: MemorySpaceTag = HostSpace,
        dtype: np.dtype = np.float64,
    ) -> None:
        self.label = label
        self.space = space
        self._data = np.zeros(shape, dtype=dtype)

    @classmethod
    def from_array(
        cls, label: str, array: np.ndarray, space: MemorySpaceTag = HostSpace
    ) -> "View":
        view = cls.__new__(cls)
        view.label = label
        view.space = space
        view._data = array
        return view

    # -- storage access ----------------------------------------------------
    def _check_host_access(self, op: str) -> None:
        if self.space.is_device and space_checks_enabled():
            report_violation(
                self.label, self.space.name, op,
                "host code touched device memory; move data with deep_copy",
            )

    @property
    def data(self) -> np.ndarray:
        """The backing array.

        Grabbing a device view's raw storage from host code is the classic
        way to smuggle a transfer past ``deep_copy``; sanitizer mode flags
        it.  Metadata (`shape`/`size`/`nbytes`) stays legal either way.
        """
        self._check_host_access("raw-data")
        return self._data

    @data.setter
    def data(self, array: np.ndarray) -> None:
        self._check_host_access("raw-data")
        self._data = array

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._data.shape

    @property
    def size(self) -> int:
        return self._data.size

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    def mirror(self, space: MemorySpaceTag) -> "View":
        """An uninitialised view of the same shape in another space
        (``create_mirror_view``)."""
        out = View(self.label + "_mirror", self._data.shape, space=space, dtype=self._data.dtype)
        return out

    def __getitem__(self, idx):  # noqa: ANN001, ANN204 - array passthrough
        self._check_host_access("read")
        return self._data[idx]

    def __setitem__(self, idx, value) -> None:  # noqa: ANN001
        self._check_host_access("write")
        self._data[idx] = value

    def __repr__(self) -> str:
        return f"<View {self.label!r} {self._data.shape} @{self.space.name}>"


def deep_copy(dst: View, src: View) -> None:
    """Copy between views, accounting host<->device traffic.

    This is the sanctioned space crossing: it bypasses the sanitizer's
    host-access check by construction (mirroring ``Kokkos::deep_copy``,
    which is legal from host code for any space pair).
    """
    if dst._data.shape != src._data.shape:
        raise ValueError(
            f"deep_copy shape mismatch: {dst._data.shape} vs {src._data.shape}"
        )
    np.copyto(dst._data, src._data)
    transfer_counter["copies"] += 1
    if src.space.is_device and not dst.space.is_device:
        transfer_counter["d2h_bytes"] += src.nbytes
    elif dst.space.is_device and not src.space.is_device:
        transfer_counter["h2d_bytes"] += src.nbytes
