"""Views: labelled, memory-space-tagged multidimensional arrays.

A ``Kokkos::View`` couples storage with a memory space so kernels can only
touch data where they execute.  Here a view wraps *backend-owned* storage
(see :mod:`repro.kokkos.backend`: the memory space selects the array
module) plus a space tag; :func:`deep_copy` is the only sanctioned way to
move data between spaces — and between backends — and it counts the bytes
moved (feeding the GPU-offload cost model).

Under :func:`repro.analysis.spacesan.sanitizer_mode` every element access
and every raw ``.data`` grab of a *device*-tagged view from host code is a
reported :class:`~repro.analysis.spacesan.MemorySpaceViolation` — exactly
the segfault class a real CUDA build turns into undefined behaviour.  On
simulated-device storage the guard goes further: the backing array is a
:class:`_DeviceArray`, so a host NumPy *ufunc* applied directly to device
storage (the genuine module-mismatch bug) is reported too, even when the
array leaked out through an earlier unsanctioned grab.  Outside sanitizer
mode the checks reduce to one falsy test.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.analysis.spacesan import report_violation, space_checks_enabled
from repro.kokkos.backend import ArrayBackend, backend_for_space


@dataclass(frozen=True)
class MemorySpaceTag:
    name: str
    is_device: bool = False


HostSpace = MemorySpaceTag("Host")
DeviceSpaceTag = MemorySpaceTag("Device", is_device=True)

#: Total bytes moved host<->device by deep_copy (use reset_transfer_counter()).
transfer_counter = {"h2d_bytes": 0, "d2h_bytes": 0, "copies": 0}


def reset_transfer_counter() -> None:
    """Zero the deep_copy accounting (between independent measurements)."""
    for key in transfer_counter:
        transfer_counter[key] = 0


#: Depth of sanctioned-crossing scopes (deep_copy, kernel launches): device
#: storage may be touched from host numpy inside one without a finding.
_sanction = {"depth": 0}


@contextmanager
def sanctioned_crossing() -> Iterator[None]:
    """Suspend the device-storage ufunc guard within the block.

    ``deep_copy`` wraps its transfer in this scope — it is the legal
    host-side crossing, like ``Kokkos::deep_copy`` — and execution spaces
    may use it when simulating device-side kernel execution.
    """
    _sanction["depth"] += 1
    try:
        yield
    finally:
        _sanction["depth"] -= 1


class _DeviceArray(np.ndarray):
    """Simulated device-resident storage.

    A plain ndarray subclass carrying its View's label; applying a host
    NumPy ufunc to it under sanitizer mode — outside a sanctioned crossing
    — reports the module mismatch that would be an illegal dereference on
    a real device pointer.  Outside sanitizer mode it behaves exactly like
    its base array.
    """

    _view_label: str = "?"

    def __array_finalize__(self, obj) -> None:
        if obj is not None:
            self._view_label = getattr(obj, "_view_label", "?")

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        if space_checks_enabled() and _sanction["depth"] == 0:
            report_violation(
                self._view_label, "Device", "ufunc",
                f"host numpy ufunc {ufunc.__name__!r} applied to "
                "device-backend storage; move data with deep_copy",
            )
        # Demote to base ndarrays so the result does not inherit the guard.
        cast = tuple(
            i.view(np.ndarray) if isinstance(i, _DeviceArray) else i
            for i in inputs
        )
        out = kwargs.get("out")
        if out is not None:
            kwargs["out"] = tuple(
                o.view(np.ndarray) if isinstance(o, _DeviceArray) else o
                for o in out
            )
        return getattr(ufunc, method)(*cast, **kwargs)


def _tag_device(array: np.ndarray, label: str) -> np.ndarray:
    """Wrap simulated-device ndarray storage in the ufunc guard."""
    if isinstance(array, np.ndarray):
        guarded = array.view(_DeviceArray)
        guarded._view_label = label
        return guarded
    return array  # real device storage (e.g. cupy) needs no simulation


class View:
    """A labelled array in a memory space, stored by an array backend."""

    __slots__ = ("label", "space", "backend", "_base_label", "_data")

    def __init__(
        self,
        label: str,
        shape: Tuple[int, ...],
        space: MemorySpaceTag = HostSpace,
        dtype: np.dtype = np.float64,
        backend: ArrayBackend = None,
    ) -> None:
        self.label = label
        self.space = space
        self.backend = backend if backend is not None else backend_for_space(space)
        self._base_label = label
        data = self.backend.zeros(shape, dtype=dtype)
        if space.is_device:
            data = _tag_device(data, label)
        self._data = data

    @classmethod
    def from_array(
        cls, label: str, array: np.ndarray, space: MemorySpaceTag = HostSpace
    ) -> "View":
        view = cls.__new__(cls)
        view.label = label
        view.space = space
        view.backend = backend_for_space(space)
        view._base_label = label
        view._data = _tag_device(array, label) if space.is_device else array
        return view

    # -- storage access ----------------------------------------------------
    def _check_host_access(self, op: str) -> None:
        if self.space.is_device and space_checks_enabled():
            report_violation(
                self.label, self.space.name, op,
                "host code touched device memory; move data with deep_copy",
            )

    @property
    def xp(self):
        """The backend's array namespace (write kernels against this)."""
        return self.backend.module

    @property
    def data(self) -> np.ndarray:
        """The backing array.

        Grabbing a device view's raw storage from host code is the classic
        way to smuggle a transfer past ``deep_copy``; sanitizer mode flags
        it.  Metadata (`shape`/`size`/`nbytes`) stays legal either way.
        """
        self._check_host_access("raw-data")
        return self._data

    @data.setter
    def data(self, array: np.ndarray) -> None:
        self._check_host_access("raw-data")
        self._data = (
            _tag_device(array, self.label) if self.space.is_device else array
        )

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def size(self) -> int:
        return self._data.size

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    def mirror(self, space: MemorySpaceTag, copy: bool = False) -> "View":
        """A view of the same shape and dtype in another space
        (``create_mirror_view``).

        ``copy=False`` (default) zero-fills, like a fresh allocation;
        ``copy=True`` deep-copies this view's contents into the mirror
        (``create_mirror_view_and_copy``), counted as transfer traffic.
        Mirror labels derive from the *base* label, so a mirror of a
        mirror is ``"x_mirror"``, not ``"x_mirror_mirror"``.
        """
        out = View(
            self._base_label + "_mirror",
            self._data.shape,
            space=space,
            dtype=self._data.dtype,
        )
        out._base_label = self._base_label
        if copy:
            deep_copy(out, self)
        return out

    def __getitem__(self, idx):  # noqa: ANN001, ANN204 - array passthrough
        self._check_host_access("read")
        return self._data[idx]

    def __setitem__(self, idx, value) -> None:  # noqa: ANN001
        self._check_host_access("write")
        self._data[idx] = value

    def __repr__(self) -> str:
        return (
            f"<View {self.label!r} {self._data.shape} "
            f"@{self.space.name}/{self.backend.name}>"
        )


def deep_copy(dst: View, src: View) -> None:
    """Copy between views, accounting host<->device traffic.

    This is the sanctioned space *and backend* crossing: it bypasses the
    sanitizer's host-access check by construction (mirroring
    ``Kokkos::deep_copy``, which is legal from host code for any space
    pair), converts storage between array modules, and is the only place
    allowed to do so.  Shape and dtype must match exactly — ``np.copyto``
    would silently cast a float64 source into a float32 destination, losing
    precision without any sanitizer finding.
    """
    if dst._data.shape != src._data.shape:
        raise ValueError(
            f"deep_copy shape mismatch: {dst._data.shape} vs {src._data.shape}"
        )
    if dst._data.dtype != src._data.dtype:
        raise ValueError(
            f"deep_copy dtype mismatch: {dst._data.dtype} vs {src._data.dtype} "
            "(an implicit cast would silently lose precision)"
        )
    with sanctioned_crossing():
        if dst.backend is src.backend and isinstance(src._data, np.ndarray):
            np.copyto(
                np.asarray(dst._data), np.asarray(src._data)
            )
        else:
            dst.backend.copy_into(dst._data, src.backend.to_numpy(src._data))
    transfer_counter["copies"] += 1
    if src.space.is_device and not dst.space.is_device:
        transfer_counter["d2h_bytes"] += src.nbytes
    elif dst.space.is_device and not src.space.is_device:
        transfer_counter["h2d_bytes"] += src.nbytes
