"""Views: labelled, memory-space-tagged multidimensional arrays.

A ``Kokkos::View`` couples storage with a memory space so kernels can only
touch data where they execute.  Here a view wraps a NumPy array plus a space
tag; :func:`deep_copy` is the only sanctioned way to move data between
spaces, and it counts the bytes moved (feeding the GPU-offload cost model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class MemorySpaceTag:
    name: str
    is_device: bool = False


HostSpace = MemorySpaceTag("Host")
DeviceSpaceTag = MemorySpaceTag("Device", is_device=True)

#: Total bytes moved host<->device by deep_copy (reset by tests as needed).
transfer_counter = {"h2d_bytes": 0, "d2h_bytes": 0, "copies": 0}


class View:
    """A labelled array in a memory space."""

    __slots__ = ("label", "space", "data")

    def __init__(
        self,
        label: str,
        shape: Tuple[int, ...],
        space: MemorySpaceTag = HostSpace,
        dtype: np.dtype = np.float64,
    ) -> None:
        self.label = label
        self.space = space
        self.data = np.zeros(shape, dtype=dtype)

    @classmethod
    def from_array(
        cls, label: str, array: np.ndarray, space: MemorySpaceTag = HostSpace
    ) -> "View":
        view = cls.__new__(cls)
        view.label = label
        view.space = space
        view.data = array
        return view

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def mirror(self, space: MemorySpaceTag) -> "View":
        """An uninitialised view of the same shape in another space
        (``create_mirror_view``)."""
        out = View(self.label + "_mirror", self.data.shape, space=space, dtype=self.data.dtype)
        return out

    def __getitem__(self, idx):  # noqa: ANN001, ANN204 - array passthrough
        return self.data[idx]

    def __setitem__(self, idx, value) -> None:  # noqa: ANN001
        self.data[idx] = value

    def __repr__(self) -> str:
        return f"<View {self.label!r} {self.data.shape} @{self.space.name}>"


def deep_copy(dst: View, src: View) -> None:
    """Copy between views, accounting host<->device traffic."""
    if dst.data.shape != src.data.shape:
        raise ValueError(
            f"deep_copy shape mismatch: {dst.data.shape} vs {src.data.shape}"
        )
    np.copyto(dst.data, src.data)
    transfer_counter["copies"] += 1
    if src.space.is_device and not dst.space.is_device:
        transfer_counter["d2h_bytes"] += src.nbytes
    elif dst.space.is_device and not src.space.is_device:
        transfer_counter["h2d_bytes"] += src.nbytes
