"""Execution policies: the iteration spaces kernels run over.

A policy describes *what* to iterate (a 1-D range or an N-D box) and the
cost-model metadata (work per item, SIMD-vectorisability) that execution
spaces use to derive virtual kernel durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class RangePolicy:
    """A half-open 1-D index range ``[begin, end)``.

    ``work_per_item`` is the modelled flop count of one iteration;
    ``vectorizable`` marks kernels whose inner loop uses the SIMD types (the
    only ones the SVE speedup applies to — matching the paper's remark that
    "only the compute kernels" are vectorised).
    """

    begin: int = 0
    end: int = 0
    work_per_item: float = 100.0
    vectorizable: bool = True

    def __post_init__(self) -> None:
        if self.end < self.begin:
            raise ValueError(f"invalid range [{self.begin}, {self.end})")

    @property
    def size(self) -> int:
        return self.end - self.begin

    @property
    def total_work(self) -> float:
        return self.size * self.work_per_item

    def chunks(self, n_chunks: int) -> List[Tuple[int, int]]:
        """Split into at most ``n_chunks`` contiguous sub-ranges.

        Remainders spread over the leading chunks, so sizes differ by at
        most one — the balanced chunking Kokkos' HPX backend uses.
        """
        if n_chunks < 1:
            raise ValueError("n_chunks must be >= 1")
        size = self.size
        if size == 0:
            return []
        n_chunks = min(n_chunks, size)
        base, extra = divmod(size, n_chunks)
        out: List[Tuple[int, int]] = []
        start = self.begin
        for i in range(n_chunks):
            length = base + (1 if i < extra else 0)
            out.append((start, start + length))
            start += length
        return out


@dataclass(frozen=True)
class TeamPolicy:
    """Hierarchical parallelism: a league of teams (``Kokkos::TeamPolicy``).

    Each league member is one task; within it the functor receives
    ``(league_rank, team_size)`` and is expected to vectorise over the team
    dimension itself (the pack layer plays the role of ThreadVector range).
    ``flatten`` maps the league onto a RangePolicy so every execution space
    dispatches it unchanged — one item per league member, the team's work
    folded into ``work_per_item``.
    """

    league_size: int = 0
    team_size: int = 1
    work_per_team: float = 100.0
    vectorizable: bool = True

    def __post_init__(self) -> None:
        if self.league_size < 0:
            raise ValueError("league_size must be non-negative")
        if self.team_size < 1:
            raise ValueError("team_size must be >= 1")

    @property
    def size(self) -> int:
        return self.league_size

    def flatten(self) -> RangePolicy:
        return RangePolicy(
            0,
            self.league_size,
            work_per_item=self.work_per_team,
            vectorizable=self.vectorizable,
        )


@dataclass(frozen=True)
class MDRangePolicy:
    """An N-dimensional rectangular iteration space.

    Kernels receive flattened ``(begin, end)`` ranges plus the box shape so
    they can unravel indices; Octo-Tiger's cell kernels iterate 8x8x8 boxes.
    """

    shape: Tuple[int, ...] = ()
    work_per_item: float = 100.0
    vectorizable: bool = True

    def __post_init__(self) -> None:
        for extent in self.shape:
            if extent < 0:
                raise ValueError(f"negative extent in {self.shape}")

    @property
    def size(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total if self.shape else 0

    def flatten(self) -> RangePolicy:
        return RangePolicy(
            0, self.size, work_per_item=self.work_per_item, vectorizable=self.vectorizable
        )
