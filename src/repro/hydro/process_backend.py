"""Process-parallel hydro execution: the RK3 step on real OS cores.

:class:`ProcessHydroExecutor` runs the same batched SSP-RK3 step as
:meth:`repro.hydro.integrator.HydroIntegrator._step_batched`, but with the
leaves partitioned over the worker processes of a
:class:`repro.amt.parallel.ParallelEngine`:

* the plan adopts every leaf sub-grid into a **shared-memory arena**
  (:func:`repro.comms.bundle.adopt_arena` with a
  :class:`repro.amt.shm.ShmArena` view) *before* forking, so each worker's
  inherited numpy views alias the same pages — writes to owned interiors
  and ghost bands are visible everywhere without copies;
* leaves are partitioned along the space-filling curve
  (:func:`repro.octree.partition.sfc_partition`) and each worker runs the
  stacked kernels over maximal contiguous same-level slot runs of its
  leaves — the per-worker step is the batched step on a sub-arena;
* ghost exchange reuses the traced :class:`~repro.comms.bundle.PairBundle`
  plan.  In the default ``wire="shm"`` mode the *destination* worker
  applies each of its bundles directly (pack reads donor interiors from
  shm, unpack writes its own ghost bands — a shm write plus the round's
  control message).  ``wire="pipe"`` serializes each remote bundle's flat
  payload buffer as-is through the parent (source packs, parent relays,
  destination unpacks) — the explicit wire format, kept for the
  message-counting experiments;
* each RK stage is two bulk-synchronous rounds (ghost+rhs, then update) —
  three when flux corrections are active — so the schedule satisfies the
  same dependence structure the DES driver wires through futures: fills
  read only stage-``k-1`` interiors (every traced fill reads interiors
  only), kernels read own interiors + ghosts, updates write own interiors.

Every kernel is the bit-identical stacked implementation the batched
integrator uses, partitioned over disjoint leaf sets, so the result is
``np.array_equal`` with both the batched single-process step and the DES
driver — the cross-check contract of ``repro.core.crosscheck``.

Worker crashes (the ``FaultSpec`` crash fate, or a real SIGKILL) surface
as :class:`~repro.amt.parallel.WorkerCrashError`; the shm segments are
owned by the parent's lifecycle guard, so a crashed step never leaks
``/dev/shm`` entries.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.amt.parallel import ParallelEngine
from repro.amt.shm import ShmArena
from repro.analysis.effects import ANY, declare_effects
from repro.analysis.planverify import require_verified, verify_process_plan
from repro.analysis.shmrace import (
    MODE_READ,
    MODE_WRITE,
    REGION_ALL,
    REGION_INTERIOR,
    SEG_ACCEL,
    SEG_FIELDS,
    SEG_FLUX,
    ShmEventLog,
    ShmRaceDetector,
    field_access_rows,
)
from repro.comms.bundle import GhostBundlePlan, adopt_arena, build_bundle_plan
from repro.hydro.eos import IdealGasEOS
from repro.hydro.plan import (
    ScratchArena,
    stacked_resync_tau_kernel,
    stacked_rhs_kernel,
    stacked_signal_kernel,
    stacked_source_kernel,
    stacked_update_kernel,
)
from repro.hydro.reflux import apply_flux_corrections
from repro.octree.fields import NFIELDS
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey
from repro.octree.partition import sfc_partition
from repro.profiling.apex import CounterRegistry

#: Convex-combination coefficients, shared with the serial integrator.
from repro.hydro.integrator import _RK3_STAGES  # noqa: E402  (cycle-free)


class _WorkerState:
    """Everything one worker precomputes after fork (child-side only)."""

    def __init__(
        self,
        rank: int,
        registry: CounterRegistry,
        executor: "ProcessHydroExecutor",
    ) -> None:
        self.rank = rank
        self.registry = registry
        self.ex = executor
        m = executor.m
        n = executor.n
        self.interior = slice(executor.ghost, executor.ghost + n)
        stacked = executor.arena_view.reshape(-1, NFIELDS, m, m, m)
        #: Maximal contiguous same-level slot runs owned by this rank.
        self.runs: List[Tuple[int, int, float]] = executor.runs[rank]
        self.u = [stacked[lo:hi] for lo, hi, _ in self.runs]
        self.u_int = [u[:, :, self.interior, self.interior, self.interior]
                      for u in self.u]
        self.u0 = [np.empty_like(ui) for ui in self.u_int]
        self.dudt = [np.empty_like(ui) for ui in self.u_int]
        self.scratch = ScratchArena()
        #: Per-run interior cell-centre coordinates (rotating frame).
        self.x: List[np.ndarray] = []
        self.y: List[np.ndarray] = []
        mesh = executor.mesh
        keys = executor.leaf_keys
        for lo, hi, _ in self.runs:
            bx = np.empty((hi - lo, n, n, n))
            by = np.empty_like(bx)
            for j, key in enumerate(keys[lo:hi]):
                cx, cy, _ = mesh.nodes[key].cell_centers()
                bx[j] = cx
                by[j] = cy
            self.x.append(bx)
            self.y.append(by)
        #: Bundles this rank applies (wire=shm: all with dst == rank;
        #: wire=pipe: the local ones — remote payloads arrive by pipe).
        plan = executor.bundle_plan
        self.dst_pairs = sorted(
            pair for pair in plan.bundles if pair[1] == rank
        )
        self.src_remote = sorted(
            pair for pair in plan.bundles
            if pair[0] == rank and pair[0] != pair[1]
        )
        self.accel_view = executor.accel_view
        self.flux_view = executor.flux_view
        #: Owned leaves for the reflux pass: key -> dudt interior view.
        self.owned_rhs: Dict[NodeKey, np.ndarray] = {}
        for run_index, (lo, hi, _) in enumerate(self.runs):
            for j, key in enumerate(keys[lo:hi]):
                self.owned_rhs[key] = self.dudt[run_index][j]
        #: BSP epoch: one per dispatched command, advanced identically on
        #: every rank (rounds broadcast the same command sequence).
        self.epoch = 0
        self.events = None
        if executor.event_log is not None:
            self.events = executor.event_log.writer(rank)
            self._build_event_rows(len(executor.leaf_keys))

    def _build_event_rows(self, n_slots: int) -> None:
        """Precompute per-phase shm access descriptors from the *live*
        plan arrays — whatever indices the phases will actually use
        (including anything injected into the bundle plan) is what gets
        logged, so the dynamic detector needs no trust in the planner."""
        ex = self.ex
        n, g, nfields = ex.n, ex.ghost, NFIELDS
        plan = ex.bundle_plan

        def runs_rows(mode: int, seg: int, region: int) -> np.ndarray:
            return np.array(
                [[mode, seg, lo, hi, region] for lo, hi, _ in self.runs],
                dtype=np.int64,
            ).reshape(-1, 5)

        def bundle_rows(pairs, srcs: bool, dsts: bool) -> List[np.ndarray]:
            rows = []
            for pair in pairs:
                b = plan.bundles[pair]
                if srcs:
                    rows.append(field_access_rows(
                        [b.copy_src, b.fine_src], MODE_READ, n, g, nfields))
                if dsts:
                    rows.append(field_access_rows(
                        [b.copy_dst, b.fine_dst], MODE_WRITE, n, g, nfields))
            return rows

        own_int_read = runs_rows(MODE_READ, SEG_FIELDS, REGION_INTERIOR)
        own_int_write = runs_rows(MODE_WRITE, SEG_FIELDS, REGION_INTERIOR)
        local_pairs = [p for p in self.dst_pairs if p[0] == p[1]]
        ev: Dict[Any, np.ndarray] = {
            "begin": own_int_read,
            "ghost": np.vstack(
                bundle_rows(self.dst_pairs, srcs=True, dsts=True)
                or [np.empty((0, 5), dtype=np.int64)]
            ),
            "ghost_pack": np.vstack(
                bundle_rows(self.src_remote, srcs=True, dsts=False)
                or [np.empty((0, 5), dtype=np.int64)]
            ),
            "ghost_unpack": np.vstack(
                bundle_rows(local_pairs, srcs=True, dsts=False)
                + bundle_rows(self.dst_pairs, srcs=False, dsts=True)
                or [np.empty((0, 5), dtype=np.int64)]
            ),
            "reflux": np.array(
                [[MODE_READ, SEG_FLUX, 0, n_slots, REGION_ALL]],
                dtype=np.int64,
            ),
            "update": own_int_write,
            "finish": own_int_write,
        }
        rhs_base = runs_rows(MODE_READ, SEG_FIELDS, REGION_ALL)
        rhs_flux = runs_rows(MODE_WRITE, SEG_FLUX, REGION_ALL)
        rhs_accel = runs_rows(MODE_READ, SEG_ACCEL, REGION_ALL)
        for fluxes in (False, True):
            for accel in (False, True):
                parts = [rhs_base]
                if fluxes:
                    parts.append(rhs_flux)
                if accel:
                    parts.append(rhs_accel)
                ev[("rhs", fluxes, accel)] = np.vstack(parts)
        self._event_rows = ev

    def _log_phase(self, command: Any) -> None:
        op = command[0]
        if op == "rhs":
            rows = self._event_rows[("rhs", bool(command[1]), bool(command[2]))]
        else:
            rows = self._event_rows.get(op)
        if rows is not None:
            self.events.log(self.epoch, rows)

    # -- phases (one method per command) --------------------------------------
    def begin(self) -> None:
        for u_int, u0 in zip(self.u_int, self.u0):
            np.copyto(u0, u_int)

    def ghost_shm(self) -> None:
        arena = self.ex.arena_view
        plan = self.ex.bundle_plan
        with self.registry.timer("hydro.ghost"):
            for pair in self.dst_pairs:
                plan.bundles[pair].apply(arena)

    def ghost_pack(self) -> Dict[Tuple[int, int], np.ndarray]:
        """wire=pipe, phase 1: pack remote payloads for the parent relay."""
        arena = self.ex.arena_view
        plan = self.ex.bundle_plan
        out = {}
        with self.registry.timer("hydro.ghost"):
            for pair in self.src_remote:
                out[pair] = plan.bundles[pair].pack(arena).copy()
        return out

    def ghost_unpack(self, payloads: Dict[Tuple[int, int], np.ndarray]) -> None:
        """wire=pipe, phase 2: local applies + scatter relayed payloads."""
        arena = self.ex.arena_view
        plan = self.ex.bundle_plan
        with self.registry.timer("hydro.ghost"):
            for pair in self.dst_pairs:
                bundle = plan.bundles[pair]
                if pair[0] == pair[1]:
                    bundle.apply(arena)
                else:
                    np.copyto(bundle.payload, payloads[pair])
                    bundle.unpack(arena)

    def rhs(self, collect_fluxes: bool, use_accel: bool, omega: float) -> None:
        ex = self.ex
        for run_index, (lo, hi, dx) in enumerate(self.runs):
            faces = None
            if collect_fluxes:
                faces = {
                    (axis, side): self.flux_view[lo:hi, axis, side]
                    for axis in range(3)
                    for side in (0, 1)
                }
            stacked_rhs_kernel(
                self.u[run_index], dx, ex.eos, self.dudt[run_index],
                reconstruction=ex.reconstruction,
                faces=faces,
                registry=self.registry,
                scratch=self.scratch,
                tag=run_index,
            )
            if use_accel or omega != 0.0:
                accel = self.accel_view[lo:hi] if use_accel else None
                stacked_source_kernel(
                    self.u_int[run_index], self.dudt[run_index],
                    accel=accel, omega=omega,
                    x=self.x[run_index], y=self.y[run_index],
                )

    def reflux(self) -> int:
        """Flux corrections for owned leaves, reading all leaves' faces.

        ``apply_flux_corrections`` skips leaves absent from the rhs map,
        so each worker passes only its owned dudt views while the full shm
        flux arena supplies every child face — corrections to a coarse
        leaf are applied exactly once, by its owner.
        """
        flux_all = {
            key: {
                (axis, side): self.flux_view[slot, axis, side]
                for axis in range(3)
                for side in (0, 1)
            }
            for slot, key in enumerate(self.ex.leaf_keys)
        }
        with self.registry.timer("hydro.update"):
            return apply_flux_corrections(self.ex.mesh, self.owned_rhs, flux_all)

    def update(self, a0: float, a1: float, dt: float) -> None:
        with self.registry.timer("hydro.update"):
            for run_index in range(len(self.runs)):
                stacked_update_kernel(
                    self.u_int[run_index], self.u0[run_index],
                    self.dudt[run_index], a0, a1, dt, self.ex.eos,
                    scratch=self.scratch, tag=run_index,
                )

    def finish(self) -> Dict[NodeKey, float]:
        """Tau resync + per-leaf CFL signals of the owned leaves."""
        keys = self.ex.leaf_keys
        signals: Dict[NodeKey, float] = {}
        with self.registry.timer("hydro.update"):
            for run_index, (lo, hi, _) in enumerate(self.runs):
                u_int = self.u_int[run_index]
                stacked_resync_tau_kernel(u_int, self.ex.eos)
                out = self.scratch.get(("signal", run_index), (hi - lo,))
                stacked_signal_kernel(u_int, self.ex.eos, out)
                for j, key in enumerate(keys[lo:hi]):
                    signals[key] = float(out[j])
        return signals

    def dispatch(self, command: Any) -> Any:
        op = command[0]
        self.epoch += 1
        if self.events is not None:
            self._log_phase(command)
        if op == "begin":
            return self.begin()
        if op == "ghost":
            return self.ghost_shm()
        if op == "ghost_pack":
            return self.ghost_pack()
        if op == "ghost_unpack":
            return self.ghost_unpack(command[1])
        if op == "rhs":
            return self.rhs(command[1], command[2], command[3])
        if op == "reflux":
            return self.reflux()
        if op == "update":
            return self.update(command[1], command[2], command[3])
        if op == "finish":
            return self.finish()
        raise ValueError(f"unknown command {op!r}")


def _make_handler(executor: "ProcessHydroExecutor"):
    """The child-side handler factory (runs after fork; sees the parent's
    mesh, plans and shm views by inheritance)."""

    def factory(rank: int, registry: CounterRegistry):
        state = _WorkerState(rank, registry, executor)
        return state.dispatch

    return factory


class ProcessHydroExecutor:
    """Owns the shm arenas and the worker pool for process-parallel steps.

    Build once and call :meth:`step` repeatedly; :meth:`ensure` rebuilds
    the arenas and **re-forks the workers** whenever the mesh topology
    moved or leaf storage was rebound — re-forking *is* the plan
    invalidation broadcast: the new children inherit the new plan, so no
    stale index array can survive a regrid.
    """

    def __init__(
        self,
        mesh: AmrMesh,
        eos: Optional[IdealGasEOS] = None,
        nprocs: int = 2,
        omega: float = 0.0,
        reflux: bool = True,
        reconstruction: str = "muscl",
        wire: str = "shm",
        timeout: float = 120.0,
        verify_plans: bool = True,
        detect_races: bool = False,
    ) -> None:
        if wire not in ("shm", "pipe"):
            raise ValueError(f"wire must be 'shm' or 'pipe', got {wire!r}")
        self.mesh = mesh
        self.eos = eos or IdealGasEOS()
        self.omega = omega
        self.reflux = reflux
        self.reconstruction = reconstruction
        self.wire = wire
        self.engine = ParallelEngine(nprocs, timeout=timeout)
        self.nprocs = self.engine.nprocs
        self.registry: Optional[CounterRegistry] = None
        #: Static verification (:func:`verify_process_plan`) of every
        #: (re)built plan; a violated invariant raises before forking.
        self.verify_plans = verify_plans
        #: Dynamic shm race detection: workers log access events, the
        #: parent scans at every barrier (``engine.round_observer``).
        self.detect_races = detect_races
        self.event_log: Optional[ShmEventLog] = None
        self.race_detector: Optional[ShmRaceDetector] = None
        #: Test/diagnostic hook run on each freshly built bundle plan
        #: *before* verification and forking — the seeded-race tests
        #: inject overlapping scatter indices here.
        self.bundle_plan_hook = None

        self.n = mesh.n
        self.ghost = mesh.ghost
        self.m = self.n + 2 * self.ghost

        self.arena: Optional[ShmArena] = None
        self.accel_arena: Optional[ShmArena] = None
        self.flux_arena: Optional[ShmArena] = None
        self.arena_view: Optional[np.ndarray] = None
        self.accel_view: Optional[np.ndarray] = None
        self.flux_view: Optional[np.ndarray] = None
        self.bundle_plan: Optional[GhostBundlePlan] = None
        self.leaf_keys: List[NodeKey] = []
        self.slot: Dict[NodeKey, int] = {}
        self.runs: List[List[Tuple[int, int, float]]] = []
        self._views: List[np.ndarray] = []
        self._topology_version = -1
        self.faces_refluxed = 0
        #: Wire-format accounting (pipe mode): payload messages and bytes
        #: relayed last step.
        self.payload_messages = 0
        self.payload_bytes = 0

    # -- lifecycle ------------------------------------------------------------
    def matches(self) -> bool:
        """Whether the current arenas/workers are valid for the mesh."""
        if self._topology_version != self.mesh.topology_version:
            return False
        if not self.engine.started:
            return False
        nodes = self.mesh.nodes
        return all(
            nodes[key].subgrid.data is view
            for key, view in zip(self.leaf_keys, self._views)
        )

    def ensure(self) -> None:
        """(Re)build arenas, bundle plan and worker pool for the mesh."""
        if self.matches():
            return
        self.close()
        mesh = self.mesh
        sfc_partition(mesh, self.nprocs)
        leaves = sorted(mesh.leaves(), key=lambda nd: nd.key)
        self.leaf_keys = [leaf.key for leaf in leaves]
        self.slot = {k: i for i, k in enumerate(self.leaf_keys)}
        n, m = self.n, self.m
        chunk = NFIELDS * m**3

        self.arena = ShmArena(len(leaves) * chunk * 8)
        self.arena_view = self.arena.ndarray((len(leaves) * chunk,))
        _, offsets = adopt_arena(mesh, out=self.arena_view)
        self._views = [mesh.nodes[k].subgrid.data for k in self.leaf_keys]
        self.bundle_plan = build_bundle_plan(mesh, offsets)

        self.accel_arena = ShmArena(len(leaves) * 3 * n**3 * 8)
        self.accel_view = self.accel_arena.ndarray((len(leaves), 3, n, n, n))
        self.flux_arena = ShmArena(len(leaves) * 6 * NFIELDS * n**2 * 8)
        self.flux_view = self.flux_arena.ndarray(
            (len(leaves), 3, 2, NFIELDS, n, n)
        )

        # Contiguous same-level slot runs per rank: the unit of stacked
        # kernel execution inside each worker.
        self.runs = [[] for _ in range(self.nprocs)]
        start = 0
        while start < len(leaves):
            rank = leaves[start].locality
            level = leaves[start].level
            stop = start
            while (
                stop < len(leaves)
                and leaves[stop].locality == rank
                and leaves[stop].level == level
            ):
                stop += 1
            self.runs[rank].append((start, stop, leaves[start].dx))
            start = stop

        if self.bundle_plan_hook is not None:
            self.bundle_plan_hook(self.bundle_plan)
        if self.verify_plans:
            require_verified(verify_process_plan(self))
        if self.detect_races:
            self.event_log = ShmEventLog(self.nprocs)
            self.race_detector = ShmRaceDetector(self.event_log)

        # Fork *after* every arena and plan exists: children inherit it all.
        self.engine = ParallelEngine(self.engine.nprocs, timeout=self.engine.timeout)
        if self.race_detector is not None:
            self.engine.round_observer = self.race_detector.scan
        self.engine.start(_make_handler(self))
        self._topology_version = mesh.topology_version

    def close(self) -> None:
        """Stop the workers and release every shm segment.

        Leaf storage still aliasing the arena is copied back to private
        numpy arrays first — the mesh must stay readable (and steppable by
        another backend) after its shm pages are gone.
        """
        if self.engine.started:
            self.engine.shutdown()
        nodes = self.mesh.nodes
        for key, view in zip(self.leaf_keys, self._views):
            node = nodes.get(key)
            if node is not None and node.subgrid.data is view:
                node.subgrid.data = view.copy()
        self._views = []
        self.leaf_keys = []
        for arena in (self.arena, self.accel_arena, self.flux_arena):
            if arena is not None:
                arena.unlink()
        if self.event_log is not None:
            self.event_log.unlink()
        self.event_log = None
        self.race_detector = None
        self.arena = self.accel_arena = self.flux_arena = None
        self.arena_view = self.accel_view = self.flux_view = None
        self._topology_version = -1

    def __enter__(self) -> "ProcessHydroExecutor":
        return self

    def __exit__(self, *exc) -> None:  # noqa: ANN002
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter teardown
            pass

    # -- gravity --------------------------------------------------------------
    @declare_effects(writes=[("accel", ANY, "shm")])
    def _write_accel(self, accel_map: Dict[NodeKey, np.ndarray]) -> None:
        """Stage the gravity callback's output into the shm accel arena.

        Parent-side, between barriers: every worker is parked when this
        runs, so the write is ordered against both the previous and the
        next round — the declared effect documents the footprint for the
        shm discipline lint (R007)."""
        for slot, key in enumerate(self.leaf_keys):
            a = accel_map.get(key)
            if a is None:
                self.accel_view[slot] = 0.0
            else:
                self.accel_view[slot] = a

    # -- ghost exchange -------------------------------------------------------
    def _ghost_round(self) -> None:
        if self.wire == "shm":
            self.engine.round(("ghost",))
            return
        # Pipe wire: source ranks pack, the parent relays each bundle's
        # flat payload (serialized as-is — the wire format), destination
        # ranks unpack.  The parent-side relay collects every pack before
        # dispatching unpacks, so no pair of workers can deadlock on a
        # full pipe while sitting in the same barrier.
        packed = self.engine.round(("ghost_pack",))
        by_dst: List[Dict[Tuple[int, int], np.ndarray]] = [
            {} for _ in range(self.nprocs)
        ]
        for payloads in packed:
            for pair, payload in payloads.items():
                by_dst[pair[1]][pair] = payload
                self.payload_messages += 1
                self.payload_bytes += payload.size * 8
        for rank in range(self.nprocs):
            self.engine.send(rank, ("ghost_unpack", by_dst[rank]))
        self.engine.gather()
        self.engine.rounds += 1
        # The manual send/gather above bypasses round(); fire the barrier
        # observer by hand so unpack-epoch events are scanned too.
        if self.engine.round_observer is not None:
            self.engine.round_observer()

    # -- the step -------------------------------------------------------------
    def step(
        self,
        dt: float,
        gravity=None,  # noqa: ANN001 - GravityCallback
        gravity_every_stage: bool = False,
    ) -> Dict[NodeKey, float]:
        """One RK3 step across the worker pool; returns per-leaf signals.

        The parent solves gravity (when given) and restricts at the end —
        both read/write the shm arena directly, so the workers never see a
        stale field.
        """
        self.ensure()
        engine = self.engine
        self.payload_messages = 0
        self.payload_bytes = 0

        use_accel = gravity is not None
        if use_accel:
            self._write_accel(gravity(self.mesh))
        collect_fluxes = (
            self.reflux and self.bundle_plan is not None
            and any(b.fine_dst.size for b in self.bundle_plan.bundles.values())
        )

        engine.round(("begin",))
        for stage_index, (a0, a1) in enumerate(_RK3_STAGES):
            self._ghost_round()
            if use_accel and gravity_every_stage and stage_index:
                # Workers are between rounds (idle at the barrier), so the
                # parent may rewrite the accel arena they read next round.
                self._write_accel(gravity(self.mesh))
            engine.round(("rhs", collect_fluxes, use_accel, self.omega))
            if collect_fluxes:
                self.faces_refluxed += sum(engine.round(("reflux",)))
            engine.round(("update", a0, a1, dt))

        signal_maps = engine.round(("finish",))
        if self.registry is not None:
            engine.harvest_timers(self.registry)
        self.mesh.restrict_all()
        signals: Dict[NodeKey, float] = {}
        for per_worker in signal_maps:
            signals.update(per_worker)
        return signals
