"""Process-parallel hydro execution: the RK3 step on real OS cores.

:class:`ProcessHydroExecutor` runs the same batched SSP-RK3 step as
:meth:`repro.hydro.integrator.HydroIntegrator._step_batched`, but with the
leaves partitioned over the worker processes of a
:class:`repro.amt.parallel.ParallelEngine`:

* the plan adopts every leaf sub-grid into a **shared-memory arena**
  (:func:`repro.comms.bundle.adopt_arena` with a
  :class:`repro.amt.shm.ShmArena` view) *before* forking, so each worker's
  inherited numpy views alias the same pages — writes to owned interiors
  and ghost bands are visible everywhere without copies;
* leaves are partitioned along the space-filling curve
  (:func:`repro.octree.partition.sfc_partition`) and each worker runs the
  stacked kernels over maximal contiguous same-level slot runs of its
  leaves — the per-worker step is the batched step on a sub-arena;
* ghost exchange reuses the traced :class:`~repro.comms.bundle.PairBundle`
  plan.  In the default ``wire="shm"`` mode the *destination* worker
  applies each of its bundles directly (pack reads donor interiors from
  shm, unpack writes its own ghost bands — a shm write plus the round's
  control message).  ``wire="pipe"`` serializes each remote bundle's flat
  payload buffer as-is through the parent (source packs, parent relays,
  destination unpacks) — the explicit wire format, kept for the
  message-counting experiments;
* each RK stage is two bulk-synchronous rounds (ghost+rhs, then update) —
  three when flux corrections are active — so the schedule satisfies the
  same dependence structure the DES driver wires through futures: fills
  read only stage-``k-1`` interiors (every traced fill reads interiors
  only), kernels read own interiors + ghosts, updates write own interiors.

Every kernel is the bit-identical stacked implementation the batched
integrator uses, partitioned over disjoint leaf sets, so the result is
``np.array_equal`` with both the batched single-process step and the DES
driver — the cross-check contract of ``repro.core.crosscheck``.

Worker crashes (the ``FaultSpec`` crash fate, or a real SIGKILL) surface
as :class:`~repro.amt.parallel.WorkerCrashError`; the shm segments are
owned by the parent's lifecycle guard, so a crashed step never leaks
``/dev/shm`` entries.
"""

from __future__ import annotations

import math
import time
from contextlib import nullcontext
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.amt.parallel import ParallelEngine, WorkerLink
from repro.amt.shm import ShmArena
from repro.analysis.effects import ANY, declare_effects
from repro.analysis.planverify import (
    require_verified,
    verify_process_plan,
    verify_region_split,
)
from repro.analysis.shmrace import (
    MODE_READ,
    MODE_WRITE,
    PHASE_EXCHANGE,
    PHASE_COMPUTE,
    PHASE_UPDATE,
    REGION_ALL,
    REGION_INTERIOR,
    SEG_ACCEL,
    SEG_FIELDS,
    SEG_FLUX,
    ShmEventLog,
    ShmRaceDetector,
    field_access_rows,
)
from repro.comms.bundle import GhostBundlePlan, adopt_arena, build_bundle_plan
from repro.hydro.eos import IdealGasEOS
from repro.hydro.plan import (
    ScratchArena,
    compute_region_split,
    region_views,
    stacked_resync_tau_kernel,
    stacked_rhs_kernel,
    stacked_signal_kernel,
    stacked_source_kernel,
    stacked_update_kernel,
)
from repro.hydro.reflux import apply_flux_table, build_reflux_table
from repro.octree.fields import NFIELDS
from repro.octree.ghost import FaceTraceCache
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey
from repro.octree.partition import sfc_partition
from repro.profiling.apex import CounterRegistry

#: Convex-combination coefficients, shared with the serial integrator.
from repro.hydro.integrator import _RK3_STAGES  # noqa: E402  (cycle-free)

#: Shm arenas are allocated for this many times the current leaf count, so
#: a growing regrid usually fits the existing segments and can be patched
#: in place (:meth:`ProcessHydroExecutor._replan_in_place`) instead of
#: re-forking the pool.
ARENA_HEADROOM = 1.5

#: Sentinel: a regrid was announced via ``notify_regrid`` and the surviving
#: ghost face traces are valid for the (not yet fingerprinted) new topology.
_TRACES_PENDING = object()


class _WorkerState:
    """Everything one worker precomputes after fork (child-side only)."""

    def __init__(
        self,
        rank: int,
        registry: CounterRegistry,
        executor: "ProcessHydroExecutor",
        link: Optional[WorkerLink] = None,
    ) -> None:
        self.rank = rank
        self.registry = registry
        self.ex = executor
        #: Futurization primitive for the overlap schedule (mid-round
        #: notes/waits); ``None`` only in direct unit-test construction.
        self.link = link
        self.interior = slice(executor.ghost, executor.ghost + executor.n)
        #: BSP epoch: one per dispatched command, advanced identically on
        #: every rank (rounds broadcast the same command sequence).
        self.epoch = 0
        self.events = None
        self._bind()
        if executor.event_log is not None:
            self.events = executor.event_log.writer(rank)
            self._build_event_rows(len(executor.leaf_keys))

    def _bind(self) -> None:
        """(Re)derive every topology-dependent view from the executor's
        current plan state — at fork time from the inherited state, and
        again after each :meth:`replan` patches that state in place."""
        ex = self.ex
        m = ex.m
        rank = self.rank
        stacked = ex.arena_view.reshape(-1, NFIELDS, m, m, m)
        #: Maximal contiguous same-level slot runs owned by this rank.
        self.runs: List[Tuple[int, int, float]] = ex.runs[rank]
        self.u = [stacked[lo:hi] for lo, hi, _ in self.runs]
        self.u_int = [u[:, :, self.interior, self.interior, self.interior]
                      for u in self.u]
        self.u0 = [np.empty_like(ui) for ui in self.u_int]
        self.dudt = [np.empty_like(ui) for ui in self.u_int]
        self.scratch = ScratchArena()
        #: Per-run interior cell-centre coordinates (rotating frame),
        #: precomputed by the parent (pure functions of the leaf keys).
        self.x = [bx for bx, _ in ex.run_xy[rank]]
        self.y = [by for _, by in ex.run_xy[rank]]
        #: Bundles this rank applies (wire=shm: all with dst == rank;
        #: wire=pipe: the local ones — remote payloads arrive by pipe).
        plan = ex.bundle_plan
        self.dst_pairs = sorted(
            pair for pair in plan.bundles if pair[1] == rank
        )
        self.src_remote = sorted(
            pair for pair in plan.bundles
            if pair[0] == rank and pair[0] != pair[1]
        )
        self.dst_local = [p for p in self.dst_pairs if p[0] == p[1]]
        self.dst_remote = [p for p in self.dst_pairs if p[0] != p[1]]
        self.accel_view = ex.accel_view
        self.flux_view = ex.flux_view
        #: Owned leaves for the reflux pass: key -> dudt interior view.
        keys = ex.leaf_keys
        self.owned_rhs: Dict[NodeKey, np.ndarray] = {}
        for run_index, (lo, hi, _) in enumerate(self.runs):
            for j, key in enumerate(keys[lo:hi]):
                self.owned_rhs[key] = self.dudt[run_index][j]
        # Interior/halo sub-views for the futurized schedule: per run, the
        # (u, dudt) region views of every split box plus the boundary-face
        # patches the box owns (only boxes touching a block face collect
        # flux there — together the patches tile each face exactly).
        split = ex.split
        self.region_interior: List[list] = []
        self.region_halo: List[list] = []
        for run_index, (lo, hi, _dx) in enumerate(self.runs):
            u = self.u[run_index]
            dudt = self.dudt[run_index]
            boxes = []
            if split.has_interior:
                boxes.append(("i", split.interior_box))
            boxes.extend(("h", box) for box in split.halo_boxes)
            interior_list: list = []
            halo_list: list = []
            for bi, (kind, box) in enumerate(boxes):
                u_sub, d_sub = region_views(u, dudt, box, ex.ghost)
                faces_sub = self._region_faces(lo, hi, box)
                entry = (u_sub, d_sub, faces_sub, (run_index, bi))
                (interior_list if kind == "i" else halo_list).append(entry)
            self.region_interior.append(interior_list)
            self.region_halo.append(halo_list)

    def _region_faces(
        self, lo: int, hi: int, box: Tuple[int, ...]
    ) -> Dict[Tuple[int, int], np.ndarray]:
        """Boundary-flux patches a split box owns: for each block face the
        box touches, the sub-view of the face buffer covering the box's
        transverse extent."""
        n = self.ex.n
        bounds = ((box[0], box[1]), (box[2], box[3]), (box[4], box[5]))
        faces: Dict[Tuple[int, int], np.ndarray] = {}
        for axis in range(3):
            t1, t2 = [bounds[i] for i in range(3) if i != axis]
            for side in (0, 1):
                touches = (
                    bounds[axis][0] == 0 if side == 0
                    else bounds[axis][1] == n
                )
                if touches:
                    faces[(axis, side)] = self.flux_view[
                        lo:hi, axis, side
                    ][:, :, t1[0]:t1[1], t2[0]:t2[1]]
        return faces

    def replan(self, payload: Dict[str, Any]) -> None:
        """Patch this worker's executor state for a regridded topology.

        The parent's replan broadcast carries everything the child cannot
        derive itself (its forked mesh copy is stale the moment the parent
        regrids): the new arena layout, partitions, ghost bundles, cell
        centres and the mesh-free reflux table.  Rebinding happens inside
        the barrier, so no stale index array survives into the next round
        — the same guarantee a re-fork gave, without the fork.
        """
        ex = self.ex
        n, m = ex.n, ex.m
        chunk = NFIELDS * m**3
        ex.leaf_keys = payload["leaf_keys"]
        ex.slot = {k: i for i, k in enumerate(ex.leaf_keys)}
        n_slots = len(ex.leaf_keys)
        ex.arena_view = ex.arena.ndarray((n_slots * chunk,))
        ex.accel_view = ex.accel_arena.ndarray((n_slots, 3, n, n, n))
        ex.flux_view = ex.flux_arena.ndarray(
            (n_slots, 3, 2, NFIELDS, n, n)
        )
        ex.runs = payload["runs"]
        ex.run_xy = [[] for _ in range(ex.nprocs)]
        ex.run_xy[self.rank] = payload["run_xy"]
        ex.reflux_table = payload["reflux_table"]
        plan = ex.bundle_plan
        plan.bundles = payload["bundles"]
        plan.fingerprint = payload["fingerprint"]
        # Membership maps are parent-side concerns; drop the stale copies
        # so nothing can read them by accident.
        plan.cover = {}
        plan.donor_of = {}
        self._bind()
        if self.events is not None:
            self._build_event_rows(n_slots)

    def _build_event_rows(self, n_slots: int) -> None:
        """Precompute per-phase shm access descriptors from the *live*
        plan arrays — whatever indices the phases will actually use
        (including anything injected into the bundle plan) is what gets
        logged, so the dynamic detector needs no trust in the planner."""
        ex = self.ex
        n, g, nfields = ex.n, ex.ghost, NFIELDS
        plan = ex.bundle_plan

        def runs_rows(mode: int, seg: int, region: int) -> np.ndarray:
            return np.array(
                [[mode, seg, lo, hi, region] for lo, hi, _ in self.runs],
                dtype=np.int64,
            ).reshape(-1, 5)

        def bundle_rows(pairs, srcs: bool, dsts: bool) -> List[np.ndarray]:
            rows = []
            for pair in pairs:
                b = plan.bundles[pair]
                if srcs:
                    rows.append(field_access_rows(
                        [b.copy_src, b.fine_src], MODE_READ, n, g, nfields))
                if dsts:
                    rows.append(field_access_rows(
                        [b.copy_dst, b.fine_dst], MODE_WRITE, n, g, nfields))
            return rows

        own_int_read = runs_rows(MODE_READ, SEG_FIELDS, REGION_INTERIOR)
        own_int_write = runs_rows(MODE_WRITE, SEG_FIELDS, REGION_INTERIOR)
        local_pairs = [p for p in self.dst_pairs if p[0] == p[1]]
        ev: Dict[Any, np.ndarray] = {
            "begin": own_int_read,
            "ghost": np.vstack(
                bundle_rows(self.dst_pairs, srcs=True, dsts=True)
                or [np.empty((0, 5), dtype=np.int64)]
            ),
            "ghost_pack": np.vstack(
                bundle_rows(self.src_remote, srcs=True, dsts=False)
                or [np.empty((0, 5), dtype=np.int64)]
            ),
            "ghost_unpack": np.vstack(
                bundle_rows(local_pairs, srcs=True, dsts=False)
                + bundle_rows(self.dst_pairs, srcs=False, dsts=True)
                or [np.empty((0, 5), dtype=np.int64)]
            ),
            "reflux": np.array(
                [[MODE_READ, SEG_FLUX, 0, n_slots, REGION_ALL]],
                dtype=np.int64,
            ),
            "update": own_int_write,
            "finish": own_int_write,
        }
        rhs_base = runs_rows(MODE_READ, SEG_FIELDS, REGION_ALL)
        rhs_flux = runs_rows(MODE_WRITE, SEG_FLUX, REGION_ALL)
        rhs_accel = runs_rows(MODE_READ, SEG_ACCEL, REGION_ALL)
        for fluxes in (False, True):
            for accel in (False, True):
                parts = [rhs_base]
                if fluxes:
                    parts.append(rhs_flux)
                if accel:
                    parts.append(rhs_accel)
                ev[("rhs", fluxes, accel)] = np.vstack(parts)
        self._event_rows = ev

    def _log_phase(self, command: Any) -> None:
        op = command[0]
        if op == "xstage":
            # Fused overlap epoch: stamp each access group with its
            # protocol phase so the detector can apply the sanctioned
            # message-grained happens-before edges (exchange -> update).
            if self.ex.wire == "shm":
                self.events.log(
                    self.epoch, self._event_rows["ghost"],
                    phase=PHASE_EXCHANGE,
                )
            else:
                self.events.log(
                    self.epoch, self._event_rows["ghost_pack"],
                    phase=PHASE_EXCHANGE,
                )
                self.events.log(
                    self.epoch, self._event_rows["ghost_unpack"],
                    phase=PHASE_EXCHANGE,
                )
            self.events.log(
                self.epoch,
                self._event_rows[("rhs", bool(command[1]), bool(command[2]))],
                phase=PHASE_COMPUTE,
            )
            if command[4]:  # fused update rides in the same epoch
                self.events.log(
                    self.epoch, self._event_rows["update"],
                    phase=PHASE_UPDATE,
                )
            return
        if op == "rhs":
            rows = self._event_rows[("rhs", bool(command[1]), bool(command[2]))]
        else:
            rows = self._event_rows.get(op)
        if rows is not None:
            self.events.log(self.epoch, rows)

    # -- phases (one method per command) --------------------------------------
    def begin(self) -> None:
        for u_int, u0 in zip(self.u_int, self.u0):
            np.copyto(u0, u_int)

    def ghost_shm(self) -> None:
        arena = self.ex.arena_view
        plan = self.ex.bundle_plan
        with self.registry.timer("hydro.ghost"):
            for pair in self.dst_pairs:
                plan.bundles[pair].apply(arena)

    def ghost_pack(self) -> Dict[Tuple[int, int], np.ndarray]:
        """wire=pipe, phase 1: pack remote payloads for the parent relay."""
        arena = self.ex.arena_view
        plan = self.ex.bundle_plan
        out = {}
        with self.registry.timer("hydro.ghost"):
            for pair in self.src_remote:
                out[pair] = plan.bundles[pair].pack(arena).copy()
        return out

    def ghost_unpack(self, payloads: Dict[Tuple[int, int], np.ndarray]) -> None:
        """wire=pipe, phase 2: local applies + scatter relayed payloads."""
        arena = self.ex.arena_view
        plan = self.ex.bundle_plan
        with self.registry.timer("hydro.ghost"):
            for pair in self.dst_pairs:
                bundle = plan.bundles[pair]
                if pair[0] == pair[1]:
                    bundle.apply(arena)
                else:
                    np.copyto(bundle.payload, payloads[pair])
                    bundle.unpack(arena)

    def rhs(self, collect_fluxes: bool, use_accel: bool, omega: float) -> None:
        ex = self.ex
        for run_index, (lo, hi, dx) in enumerate(self.runs):
            faces = None
            if collect_fluxes:
                faces = {
                    (axis, side): self.flux_view[lo:hi, axis, side]
                    for axis in range(3)
                    for side in (0, 1)
                }
            stacked_rhs_kernel(
                self.u[run_index], dx, ex.eos, self.dudt[run_index],
                reconstruction=ex.reconstruction,
                faces=faces,
                registry=self.registry,
                scratch=self.scratch,
                tag=run_index,
            )
            if use_accel or omega != 0.0:
                accel = self.accel_view[lo:hi] if use_accel else None
                stacked_source_kernel(
                    self.u_int[run_index], self.dudt[run_index],
                    accel=accel, omega=omega,
                    x=self.x[run_index], y=self.y[run_index],
                )

    def _rhs_regions(self, passes: list, collect_fluxes: bool, dx: float) -> None:
        for u_sub, d_sub, faces_sub, tag in passes:
            stacked_rhs_kernel(
                u_sub, dx, self.ex.eos, d_sub,
                reconstruction=self.ex.reconstruction,
                faces=(faces_sub or None) if collect_fluxes else None,
                registry=self.registry,
                scratch=self.scratch,
                tag=("region",) + tag,
            )

    def xstage(
        self,
        collect_fluxes: bool,
        use_accel: bool,
        omega: float,
        fuse_update: bool,
        a0: float,
        a1: float,
        dt: float,
    ) -> Dict[str, float]:
        """One futurized RK stage: post the exchange, compute the interior
        while it is in flight, drain arrivals, then compute the halo.

        wire=shm — the apply *is* the receive (donor interiors were
        sealed by the previous barrier), so the latency hidden here is
        the cross-rank wait for the fused update's go-ahead: every rank
        notes ``ghosts`` once its applies are done (it has finished
        reading donor interiors) and the parent routes ``go`` when all
        have — a message-grained happens-before edge that replaces the
        rhs/update barrier and is hidden behind interior+halo compute.

        wire=pipe — remote payloads are posted to the parent relay
        first, interior compute runs while they propagate, then the
        drain/unpack feeds the halo passes.

        Returns per-phase wall-time attribution for the bench harness.
        """
        ex = self.ex
        arena = ex.arena_view
        plan = ex.bundle_plan
        link = self.link
        seg = {"ghost_s": 0.0, "wait_s": 0.0, "rhs_s": 0.0}

        t0 = time.perf_counter()
        with self.registry.timer("hydro.ghost"):
            if ex.wire == "pipe":
                # Post every remote payload before touching compute; the
                # parent relays each to its destination as it arrives.
                for pair in self.src_remote:
                    bundle = plan.bundles[pair]
                    bundle.flip()
                    link.note(("payload", pair), bundle.pack(arena))
                for pair in self.dst_local:
                    plan.bundles[pair].apply(arena)
            else:
                for pair in self.dst_pairs:
                    plan.bundles[pair].apply(arena)
        if ex.wire == "shm" and fuse_update:
            link.note("ghosts")
        seg["ghost_s"] += time.perf_counter() - t0

        t0 = time.perf_counter()
        for run_index, (_lo, _hi, dx) in enumerate(self.runs):
            self._rhs_regions(
                self.region_interior[run_index], collect_fluxes, dx
            )
        seg["rhs_s"] += time.perf_counter() - t0

        if ex.wire == "pipe":
            t0 = time.perf_counter()
            with self.registry.timer("hydro.ghost"):
                for pair in self.dst_remote:
                    bundle = plan.bundles[pair]
                    np.copyto(bundle.payload, link.wait(("payload", pair)))
                    bundle.unpack(arena)
            seg["wait_s"] += time.perf_counter() - t0

        t0 = time.perf_counter()
        for run_index, (lo, hi, dx) in enumerate(self.runs):
            self._rhs_regions(self.region_halo[run_index], collect_fluxes, dx)
            if use_accel or omega != 0.0:
                accel = self.accel_view[lo:hi] if use_accel else None
                stacked_source_kernel(
                    self.u_int[run_index], self.dudt[run_index],
                    accel=accel, omega=omega,
                    x=self.x[run_index], y=self.y[run_index],
                )
        seg["rhs_s"] += time.perf_counter() - t0

        if fuse_update:
            if ex.wire == "shm":
                # The go-ahead orders every rank's donor-interior reads
                # before any rank's interior writes; by now the compute
                # above has usually already absorbed the wait.
                t0 = time.perf_counter()
                link.wait("go")
                seg["wait_s"] += time.perf_counter() - t0
            t0 = time.perf_counter()
            self.update(a0, a1, dt)
            seg["rhs_s"] += time.perf_counter() - t0
        return seg

    def reflux(self) -> int:
        """Flux corrections for owned leaves, reading all leaves' faces.

        Replays the parent-built mesh-free reflux table
        (:func:`repro.hydro.reflux.build_reflux_table`): rows for unowned
        leaves are skipped, so each coarse face is corrected exactly once
        — by its owner — while the full shm flux arena supplies every
        child face.  The table, not the forked mesh copy, is the source
        of truth: it stays correct across in-place replans where the
        child mesh goes stale.
        """
        with self.registry.timer("hydro.update"):
            return apply_flux_table(
                self.ex.reflux_table, self.owned_rhs, self.flux_view,
                self.ex.n,
            )

    def update(self, a0: float, a1: float, dt: float) -> None:
        with self.registry.timer("hydro.update"):
            for run_index in range(len(self.runs)):
                stacked_update_kernel(
                    self.u_int[run_index], self.u0[run_index],
                    self.dudt[run_index], a0, a1, dt, self.ex.eos,
                    scratch=self.scratch, tag=run_index,
                )

    def finish(self) -> Dict[NodeKey, float]:
        """Tau resync + per-leaf CFL signals of the owned leaves."""
        keys = self.ex.leaf_keys
        signals: Dict[NodeKey, float] = {}
        with self.registry.timer("hydro.update"):
            for run_index, (lo, hi, _) in enumerate(self.runs):
                u_int = self.u_int[run_index]
                stacked_resync_tau_kernel(u_int, self.ex.eos)
                out = self.scratch.get(("signal", run_index), (hi - lo,))
                stacked_signal_kernel(u_int, self.ex.eos, out)
                for j, key in enumerate(keys[lo:hi]):
                    signals[key] = float(out[j])
        return signals

    def dispatch(self, command: Any) -> Any:
        op = command[0]
        self.epoch += 1
        if self.events is not None:
            self._log_phase(command)
        if op == "begin":
            return self.begin()
        if op == "ghost":
            return self.ghost_shm()
        if op == "ghost_pack":
            return self.ghost_pack()
        if op == "ghost_unpack":
            return self.ghost_unpack(command[1])
        if op == "rhs":
            return self.rhs(command[1], command[2], command[3])
        if op == "xstage":
            return self.xstage(*command[1:])
        if op == "reflux":
            return self.reflux()
        if op == "update":
            return self.update(command[1], command[2], command[3])
        if op == "finish":
            return self.finish()
        if op == "replan":
            return self.replan(command[1])
        raise ValueError(f"unknown command {op!r}")


def _make_handler(executor: "ProcessHydroExecutor"):
    """The child-side handler factory (runs after fork; sees the parent's
    mesh, plans and shm views by inheritance)."""

    def factory(rank: int, registry: CounterRegistry, link: WorkerLink):
        state = _WorkerState(rank, registry, executor, link)
        return state.dispatch

    return factory


class ProcessHydroExecutor:
    """Owns the shm arenas and the worker pool for process-parallel steps.

    Build once and call :meth:`step` repeatedly; :meth:`ensure` revalidates
    arenas, plans and workers whenever the mesh topology moved or leaf
    storage was rebound.  A regrid that fits the allocated arena headroom
    is patched **in place** and broadcast to the live workers — no
    re-fork; an overflow (or first build) takes the cold path, where
    re-forking is the plan invalidation broadcast of last resort: new
    children inherit the new plan, so no stale index array can survive.
    """

    def __init__(
        self,
        mesh: AmrMesh,
        eos: Optional[IdealGasEOS] = None,
        nprocs: int = 2,
        omega: float = 0.0,
        reflux: bool = True,
        reconstruction: str = "muscl",
        wire: str = "shm",
        timeout: float = 120.0,
        verify_plans: bool = True,
        detect_races: bool = False,
        overlap: bool = False,
    ) -> None:
        if wire not in ("shm", "pipe"):
            raise ValueError(f"wire must be 'shm' or 'pipe', got {wire!r}")
        self.mesh = mesh
        self.eos = eos or IdealGasEOS()
        self.omega = omega
        self.reflux = reflux
        self.reconstruction = reconstruction
        self.wire = wire
        #: Futurized schedule: fuse ghost exchange + rhs (+ update when no
        #: reflux round is needed) into one dependency-grained round per RK
        #: stage, hiding exchange latency behind interior compute.  Off by
        #: default — the BSP schedule is the ablation baseline.
        self.overlap = bool(overlap)
        self.engine = ParallelEngine(nprocs, timeout=timeout)
        self.nprocs = self.engine.nprocs
        self.registry: Optional[CounterRegistry] = None
        #: Static verification (:func:`verify_process_plan`) of every
        #: (re)built plan; a violated invariant raises before forking.
        self.verify_plans = verify_plans
        #: Dynamic shm race detection: workers log access events, the
        #: parent scans at every barrier (``engine.round_observer``).
        self.detect_races = detect_races
        self.event_log: Optional[ShmEventLog] = None
        self.race_detector: Optional[ShmRaceDetector] = None
        #: Test/diagnostic hook run on each freshly built bundle plan
        #: *before* verification and forking — the seeded-race tests
        #: inject overlapping scatter indices here.
        self.bundle_plan_hook = None

        self.n = mesh.n
        self.ghost = mesh.ghost
        self.m = self.n + 2 * self.ghost
        #: Plan-time interior/halo partition of every stacked block (a pure
        #: function of n, so it survives every regrid unchanged).
        self.split = compute_region_split(self.n)
        #: Set once :func:`verify_region_split` has passed for this
        #: executor; the overlap schedule refuses to run without it.
        self._split_verified = False

        self.arena: Optional[ShmArena] = None
        self.accel_arena: Optional[ShmArena] = None
        self.flux_arena: Optional[ShmArena] = None
        self.arena_view: Optional[np.ndarray] = None
        self.accel_view: Optional[np.ndarray] = None
        self.flux_view: Optional[np.ndarray] = None
        self.bundle_plan: Optional[GhostBundlePlan] = None
        self.leaf_keys: List[NodeKey] = []
        self.slot: Dict[NodeKey, int] = {}
        self.runs: List[List[Tuple[int, int, float]]] = []
        #: Per-rank, per-run interior cell-centre stacks (parent-computed;
        #: the workers' forked mesh copy cannot be trusted after a replan).
        self.run_xy: List[List[Tuple[np.ndarray, np.ndarray]]] = []
        #: Mesh-free coarse-fine flux correction table (same story).
        self.reflux_table: list = []
        self._views: List[np.ndarray] = []
        #: Topology content hash the current arenas/plans/workers serve
        #: (:meth:`repro.octree.mesh.AmrMesh.fingerprint`).
        self._fingerprint = ""
        #: Arena capacity in leaf slots (current count x ARENA_HEADROOM at
        #: allocation time); regrids that fit are patched in place.
        self.capacity_slots = 0
        #: Ghost face traces reused across bundle plan rebuilds, plus the
        #: fingerprint they are valid for (mirrors HydroIntegrator).
        self._trace_cache = FaceTraceCache()
        self._trace_fp: Any = None
        self.faces_refluxed = 0
        #: Wire-format accounting (pipe mode): payload messages and bytes
        #: relayed last step.
        self.payload_messages = 0
        self.payload_bytes = 0
        #: Per-step phase attribution (seconds): critical-path time spent
        #: in / waiting on the ghost exchange vs computing.  BSP charges
        #: whole-round wall time; overlap charges the workers' own
        #: per-phase clocks (max over ranks per stage).
        self.exchange_wait_s = 0.0
        self.compute_s = 0.0

    # -- lifecycle ------------------------------------------------------------
    def matches(self) -> bool:
        """Whether the current arenas/workers are valid for the mesh."""
        if self._fingerprint != self.mesh.fingerprint():
            return False
        if not self.engine.started:
            return False
        nodes = self.mesh.nodes
        return all(
            nodes[key].subgrid.data is view
            for key, view in zip(self.leaf_keys, self._views)
        )

    def _timer(self, name: str):  # noqa: ANN202
        return (
            self.registry.timer(name) if self.registry is not None
            else nullcontext()
        )

    def _count(self, name: str) -> None:
        if self.registry is not None:
            self.registry.increment(name)

    def notify_regrid(self, delta) -> None:  # noqa: ANN001 - RegridDelta
        """Announce a regrid's exact topology delta.

        Invalidates only the ghost face traces the delta touched; the next
        :meth:`ensure` then rebuilds the bundle plan incrementally from the
        survivors.  Unannounced topology changes drop the whole trace
        cache instead (the pre-delta safety net)."""
        if delta is not None:
            self._trace_cache.invalidate(delta)
            self._trace_fp = _TRACES_PENDING

    def _build_plan_state(self):  # noqa: ANN202
        """Everything that is a pure function of the current mesh topology:
        SFC partition, sorted-leaf arena layout, ghost bundle plan (trace
        cache reused where a regrid left faces intact), slot runs, cell
        centres and the mesh-free reflux table.  Shared by the cold build
        and the in-place replan — both paths produce identical plans.
        """
        mesh = self.mesh
        sfc_partition(mesh, self.nprocs)
        leaves = sorted(mesh.leaves(), key=lambda nd: nd.key)
        self.leaf_keys = [leaf.key for leaf in leaves]
        self.slot = {k: i for i, k in enumerate(self.leaf_keys)}
        n = self.n
        chunk = NFIELDS * self.m**3
        offsets = {leaf.key: i * chunk for i, leaf in enumerate(leaves)}

        fingerprint = mesh.fingerprint()
        if not (
            self._trace_fp == fingerprint
            or self._trace_fp is _TRACES_PENDING
        ):
            self._trace_cache.clear()
        self.bundle_plan = build_bundle_plan(
            mesh, offsets, trace_cache=self._trace_cache
        )
        self._trace_fp = fingerprint

        # Contiguous same-level slot runs per rank: the unit of stacked
        # kernel execution inside each worker.
        self.runs = [[] for _ in range(self.nprocs)]
        start = 0
        while start < len(leaves):
            rank = leaves[start].locality
            level = leaves[start].level
            stop = start
            while (
                stop < len(leaves)
                and leaves[stop].locality == rank
                and leaves[stop].level == level
            ):
                stop += 1
            self.runs[rank].append((start, stop, leaves[start].dx))
            start = stop

        self.run_xy = [[] for _ in range(self.nprocs)]
        for rank, rank_runs in enumerate(self.runs):
            for lo, hi, _ in rank_runs:
                bx = np.empty((hi - lo, n, n, n))
                by = np.empty_like(bx)
                for j, key in enumerate(self.leaf_keys[lo:hi]):
                    cx, cy, _ = mesh.nodes[key].cell_centers()
                    bx[j] = cx
                    by[j] = cy
                self.run_xy[rank].append((bx, by))

        self.reflux_table = build_reflux_table(mesh, self.slot)
        return leaves

    def _can_replan(self) -> bool:
        """Whether the regridded mesh fits the live arenas and pool.

        The rank count is fixed for an executor's lifetime, so only an
        arena overflow (leaf count beyond the allocated headroom) forces
        the re-fork cold path.
        """
        if not self.engine.started or self.arena is None:
            return False
        return sum(1 for _ in self.mesh.leaves()) <= self.capacity_slots

    def ensure(self) -> None:
        """(Re)validate arenas, plans and the worker pool for the mesh.

        Three tiers: a fingerprint match is free; a changed topology that
        fits the allocated arenas is patched in place and broadcast to the
        live workers (:meth:`_replan_in_place`); anything else — first
        build, arena overflow, rebound storage after a :meth:`close` —
        takes the cold path: rebuild everything and re-fork, which is the
        plan invalidation broadcast of last resort (new children inherit
        the new plan, so no stale index array can survive).
        """
        if self.matches():
            return
        if self._can_replan():
            self._replan_in_place()
            return
        self.close()
        mesh = self.mesh
        n, m = self.n, self.m
        chunk = NFIELDS * m**3
        with self._timer("plan.bundle.cold"):
            leaves = self._build_plan_state()
        self._count("plan.bundle.cold_builds")

        cap = max(len(leaves), int(math.ceil(len(leaves) * ARENA_HEADROOM)))
        self.capacity_slots = cap
        self.arena = ShmArena(cap * chunk * 8)
        self.arena_view = self.arena.ndarray((len(leaves) * chunk,))
        adopt_arena(mesh, out=self.arena_view)
        self._views = [mesh.nodes[k].subgrid.data for k in self.leaf_keys]

        self.accel_arena = ShmArena(cap * 3 * n**3 * 8)
        self.accel_view = self.accel_arena.ndarray((len(leaves), 3, n, n, n))
        self.flux_arena = ShmArena(cap * 6 * NFIELDS * n**2 * 8)
        self.flux_view = self.flux_arena.ndarray(
            (len(leaves), 3, 2, NFIELDS, n, n)
        )

        if self.bundle_plan_hook is not None:
            self.bundle_plan_hook(self.bundle_plan)
        if self.verify_plans:
            require_verified(verify_process_plan(self))
            self._split_verified = True
        if self.detect_races:
            self.event_log = ShmEventLog(self.nprocs)
            # The only sanctioned intra-epoch cross-rank edge: on the shm
            # wire the fused update is gated by the ghosts->go handshake,
            # ordering every donor-interior read before any interior write.
            edges = (
                {(PHASE_EXCHANGE, PHASE_UPDATE)}
                if self.overlap and self.wire == "shm" else None
            )
            self.race_detector = ShmRaceDetector(
                self.event_log, ordered_phases=edges
            )

        # Fork *after* every arena and plan exists: children inherit it all.
        self.engine = ParallelEngine(self.engine.nprocs, timeout=self.engine.timeout)
        if self.race_detector is not None:
            self.engine.round_observer = self.race_detector.scan
        self.engine.start(_make_handler(self))
        self._fingerprint = mesh.fingerprint()

    def _replan_in_place(self) -> None:
        """Patch arenas, partitions and plans for the regridded mesh and
        broadcast the new state to the live workers — no re-fork.

        The per-rank replan payload (new arena layout, slot runs, filtered
        ghost bundles, cell centres, reflux table) *is* the invalidation
        message: every worker rebinds its views inside the barrier, so the
        round after this one runs entirely on the new topology.
        """
        mesh = self.mesh
        n, m = self.n, self.m
        chunk = NFIELDS * m**3
        # Detach surviving leaves from the arena first: the new layout
        # overlaps the old one in the same shm pages, so adoption must not
        # read storage it is about to overwrite.
        nodes = mesh.nodes
        for key, view in zip(self.leaf_keys, self._views):
            node = nodes.get(key)
            if node is not None and node.subgrid.data is view:
                node.subgrid.data = view.copy()

        with self._timer("plan.bundle.delta"):
            leaves = self._build_plan_state()
        self._count("plan.bundle.delta_builds")

        self.arena_view = self.arena.ndarray((len(leaves) * chunk,))
        adopt_arena(mesh, out=self.arena_view)
        self._views = [nodes[k].subgrid.data for k in self.leaf_keys]
        self.accel_view = self.accel_arena.ndarray((len(leaves), 3, n, n, n))
        self.flux_view = self.flux_arena.ndarray(
            (len(leaves), 3, 2, NFIELDS, n, n)
        )

        if self.bundle_plan_hook is not None:
            self.bundle_plan_hook(self.bundle_plan)
        if self.verify_plans:
            require_verified(verify_process_plan(self))
            self._split_verified = True

        plan = self.bundle_plan
        common = {
            "leaf_keys": self.leaf_keys,
            "runs": self.runs,
            "reflux_table": self.reflux_table,
            "fingerprint": plan.fingerprint,
        }
        for rank in range(self.nprocs):
            bundles = {
                pair: b for pair, b in plan.bundles.items()
                if pair[1] == rank or pair[0] == rank
            }
            payload = dict(
                common, run_xy=self.run_xy[rank], bundles=bundles
            )
            self.engine.send(rank, ("replan", payload))
        self.engine.gather()
        self.engine.rounds += 1
        if self.engine.round_observer is not None:
            self.engine.round_observer()
        self._fingerprint = mesh.fingerprint()

    def close(self) -> None:
        """Stop the workers and release every shm segment.

        Leaf storage still aliasing the arena is copied back to private
        numpy arrays first — the mesh must stay readable (and steppable by
        another backend) after its shm pages are gone.
        """
        if self.engine.started:
            self.engine.shutdown()
        nodes = self.mesh.nodes
        for key, view in zip(self.leaf_keys, self._views):
            node = nodes.get(key)
            if node is not None and node.subgrid.data is view:
                node.subgrid.data = view.copy()
        self._views = []
        self.leaf_keys = []
        for arena in (self.arena, self.accel_arena, self.flux_arena):
            if arena is not None:
                arena.unlink()
        if self.event_log is not None:
            self.event_log.unlink()
        self.event_log = None
        self.race_detector = None
        self.arena = self.accel_arena = self.flux_arena = None
        self.arena_view = self.accel_view = self.flux_view = None
        self._fingerprint = ""
        self.capacity_slots = 0

    def __enter__(self) -> "ProcessHydroExecutor":
        return self

    def __exit__(self, *exc) -> None:  # noqa: ANN002
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter teardown
            pass

    # -- gravity --------------------------------------------------------------
    @declare_effects(writes=[("accel", ANY, "shm")])
    def _write_accel(self, accel_map: Dict[NodeKey, np.ndarray]) -> None:
        """Stage the gravity callback's output into the shm accel arena.

        Parent-side, between barriers: every worker is parked when this
        runs, so the write is ordered against both the previous and the
        next round — the declared effect documents the footprint for the
        shm discipline lint (R007)."""
        for slot, key in enumerate(self.leaf_keys):
            a = accel_map.get(key)
            if a is None:
                self.accel_view[slot] = 0.0
            else:
                self.accel_view[slot] = a

    # -- ghost exchange -------------------------------------------------------
    def _ghost_round(self) -> None:
        if self.wire == "shm":
            self.engine.round(("ghost",))
            return
        # Pipe wire: source ranks pack, the parent relays each bundle's
        # flat payload (serialized as-is — the wire format), destination
        # ranks unpack.  The parent-side relay collects every pack before
        # dispatching unpacks, so no pair of workers can deadlock on a
        # full pipe while sitting in the same barrier.
        packed = self.engine.round(("ghost_pack",))
        by_dst: List[Dict[Tuple[int, int], np.ndarray]] = [
            {} for _ in range(self.nprocs)
        ]
        for payloads in packed:
            for pair, payload in payloads.items():
                by_dst[pair[1]][pair] = payload
                self.payload_messages += 1
                self.payload_bytes += payload.size * 8
        for rank in range(self.nprocs):
            self.engine.send(rank, ("ghost_unpack", by_dst[rank]))
        self.engine.gather()
        self.engine.rounds += 1
        # The manual send/gather above bypasses round(); fire the barrier
        # observer by hand so unpack-epoch events are scanned too.
        if self.engine.round_observer is not None:
            self.engine.round_observer()

    def _overlap_stage(
        self,
        a0: float,
        a1: float,
        dt: float,
        collect_fluxes: bool,
        use_accel: bool,
    ) -> None:
        """One futurized RK stage: a dependency-grained fused round.

        The parent acts as the message router: pipe-wire ghost payloads
        posted mid-round are relayed straight to their destination rank,
        and the shm-wire fused update's go-ahead is granted once every
        rank has finished reading donor interiors.  Reflux (when needed)
        keeps its own barrier round — its flux reads span all ranks.
        """
        engine = self.engine
        fuse_update = not collect_fluxes
        ghosts_done = {"count": 0}

        def on_note(rank: int, tag: Any, payload: Any):
            if tag == "ghosts":
                ghosts_done["count"] += 1
                if ghosts_done["count"] == self.nprocs:
                    return [(r, "go", None) for r in range(self.nprocs)]
                return ()
            _, pair = tag  # ("payload", (src, dst))
            self.payload_messages += 1
            self.payload_bytes += payload.size * 8
            return [(pair[1], tag, payload)]

        segs = engine.round_async(
            (
                "xstage", collect_fluxes, use_accel, self.omega,
                fuse_update, a0, a1, dt,
            ),
            on_note=on_note,
        )
        self.exchange_wait_s += max(
            s["ghost_s"] + s["wait_s"] for s in segs
        )
        self.compute_s += max(s["rhs_s"] for s in segs)
        if collect_fluxes:
            t0 = time.perf_counter()
            self.faces_refluxed += sum(engine.round(("reflux",)))
            engine.round(("update", a0, a1, dt))
            self.compute_s += time.perf_counter() - t0

    # -- the step -------------------------------------------------------------
    def step(
        self,
        dt: float,
        gravity=None,  # noqa: ANN001 - GravityCallback
        gravity_every_stage: bool = False,
    ) -> Dict[NodeKey, float]:
        """One RK3 step across the worker pool; returns per-leaf signals.

        The parent solves gravity (when given) and restricts at the end —
        both read/write the shm arena directly, so the workers never see a
        stale field.
        """
        self.ensure()
        engine = self.engine
        self.payload_messages = 0
        self.payload_bytes = 0
        self.exchange_wait_s = 0.0
        self.compute_s = 0.0

        use_accel = gravity is not None
        if use_accel:
            self._write_accel(gravity(self.mesh))
        collect_fluxes = (
            self.reflux and self.bundle_plan is not None
            and any(b.fine_dst.size for b in self.bundle_plan.bundles.values())
        )
        if self.overlap and not self._split_verified:
            # The schedule below trusts the split partition for coverage
            # and write-disjointness; refuse to overlap on an unverified
            # split even when whole-plan verification is off.
            require_verified(
                verify_region_split(self.split, self.n, self.ghost)
            )
            self._split_verified = True

        engine.round(("begin",))
        for stage_index, (a0, a1) in enumerate(_RK3_STAGES):
            # Per-stage accel rewrites need the parent between the ghost
            # fill and the rhs — a seam the fused round does not have, so
            # those stages fall back to the barrier schedule.
            rewrite_accel = use_accel and gravity_every_stage and stage_index
            if self.overlap and not rewrite_accel:
                self._overlap_stage(a0, a1, dt, collect_fluxes, use_accel)
                continue
            t0 = time.perf_counter()
            self._ghost_round()
            self.exchange_wait_s += time.perf_counter() - t0
            if rewrite_accel:
                # Workers are between rounds (idle at the barrier), so the
                # parent may rewrite the accel arena they read next round.
                self._write_accel(gravity(self.mesh))
            t0 = time.perf_counter()
            # BSP ablation baseline (and the per-stage accel-rewrite path):
            # the barrier schedule is the comparison point for the overlap
            # crosscheck, so these rounds stay blocking on purpose.
            engine.round(  # reprolint: sanctioned-barrier
                ("rhs", collect_fluxes, use_accel, self.omega)
            )
            if collect_fluxes:
                self.faces_refluxed += sum(
                    engine.round(("reflux",))  # reprolint: sanctioned-barrier
                )
            engine.round(("update", a0, a1, dt))  # reprolint: sanctioned-barrier
            self.compute_s += time.perf_counter() - t0

        signal_maps = engine.round(("finish",))
        if self.registry is not None:
            engine.harvest_timers(self.registry)
        self.mesh.restrict_all()
        signals: Dict[NodeKey, float] = {}
        for per_worker in signal_maps:
            signals.update(per_worker)
        return signals
