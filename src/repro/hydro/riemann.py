"""HLL approximate Riemann solver for the Euler equations.

Operates on dictionaries of primitive face states produced by the
reconstruction, vectorised over whole face arrays.  The flux vector along
``axis`` for conserved state U = (rho, sx, sy, sz, egas, tau, tracers...):

    F(rho)   = rho u
    F(s_i)   = s_i u + delta_{i,axis} p
    F(egas)  = (egas + p) u
    F(tau)   = tau u          (entropy advects)
    F(tracer)= tracer u       (passive advection)
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.hydro.eos import IdealGasEOS
from repro.octree.fields import NFIELDS, Field

#: Primitive variable keys carried through reconstruction.
PRIM_KEYS = ("rho", "vx", "vy", "vz", "p", "tau", "f1", "f2")
_VEL = ("vx", "vy", "vz")


def _conserved_from_prim(w: Dict[str, np.ndarray], eos: IdealGasEOS) -> np.ndarray:
    """Stack conserved fields (NFIELDS, ...) from primitive face states."""
    rho = np.maximum(w["rho"], eos.rho_floor)
    vx, vy, vz = w["vx"], w["vy"], w["vz"]
    kinetic = 0.5 * rho * (vx**2 + vy**2 + vz**2)
    eint = np.maximum(w["p"], 0.0) / (eos.gamma - 1.0)
    u = np.empty((NFIELDS,) + rho.shape, dtype=rho.dtype)
    u[Field.RHO] = rho
    u[Field.SX] = rho * vx
    u[Field.SY] = rho * vy
    u[Field.SZ] = rho * vz
    u[Field.EGAS] = kinetic + eint
    u[Field.TAU] = w["tau"]
    u[Field.FRAC1] = w["f1"]
    u[Field.FRAC2] = w["f2"]
    return u


def _physical_flux(
    u: np.ndarray, w: Dict[str, np.ndarray], axis: int
) -> np.ndarray:
    vel = w[_VEL[axis]]
    p = np.maximum(w["p"], 0.0)
    f = u * vel[None]
    f[Field.SX + axis] += p
    f[Field.EGAS] += p * vel
    return f


def hll_flux(
    w_left: Dict[str, np.ndarray],
    w_right: Dict[str, np.ndarray],
    axis: int,
    eos: IdealGasEOS,
) -> Tuple[np.ndarray, np.ndarray]:
    """HLL flux through faces given left/right primitive states.

    Returns ``(flux, max_signal)`` where ``flux`` has shape
    ``(NFIELDS,) + face_shape`` and ``max_signal`` is the largest wave speed
    (feeds the CFL condition).
    """
    ul = _conserved_from_prim(w_left, eos)
    ur = _conserved_from_prim(w_right, eos)
    fl = _physical_flux(ul, w_left, axis)
    fr = _physical_flux(ur, w_right, axis)

    cl = eos.sound_speed(w_left["rho"], w_left["p"])
    cr = eos.sound_speed(w_right["rho"], w_right["p"])
    vl = w_left[_VEL[axis]]
    vr = w_right[_VEL[axis]]

    s_left = np.minimum(vl - cl, vr - cr)
    s_right = np.maximum(vl + cl, vr + cr)

    # HLL average in the star region; clamp the denominator for the
    # degenerate s_left == s_right == 0 case (static vacuum).
    denom = s_right - s_left
    safe = np.where(np.abs(denom) > 1e-300, denom, 1.0)
    f_star = (
        s_right[None] * fl - s_left[None] * fr + (s_left * s_right)[None] * (ur - ul)
    ) / safe[None]

    flux = np.where(
        (s_left >= 0.0)[None], fl, np.where((s_right <= 0.0)[None], fr, f_star)
    )
    max_signal = np.maximum(np.abs(s_left), np.abs(s_right))
    return flux, max_signal
