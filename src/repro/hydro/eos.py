"""Equations of state.

:class:`IdealGasEOS` closes the Euler system and implements the dual-energy
formalism: total gas energy loses internal energy to float cancellation in
highly supersonic flow, so Octo-Tiger carries the entropy tracer
``tau = (rho * eps)**(1/gamma)`` and reconstructs the internal energy from it
wherever the kinetic energy dominates.

:class:`PolytropicEOS` (``p = K rho**(1 + 1/n)``) serves the SCF initial
models; white dwarfs use n = 1.5 (non-relativistic degenerate), main
sequence stars n = 3 polytropes (bi-polytropic structures combine two).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class IdealGasEOS:
    """Gamma-law gas with dual-energy switch.

    ``dual_eta`` is the fraction of total energy below which the internal
    energy is recovered from the entropy tracer instead of the energy
    difference (Octo-Tiger uses a comparable switch).
    """

    gamma: float = 5.0 / 3.0
    dual_eta: float = 1e-3
    rho_floor: float = 1e-12
    eint_floor: float = 1e-15

    def pressure(self, rho: np.ndarray, eint: np.ndarray) -> np.ndarray:
        """p = (gamma - 1) rho eps, with eint the internal energy *density*."""
        return (self.gamma - 1.0) * np.maximum(eint, self.eint_floor)

    def sound_speed(self, rho: np.ndarray, pressure: np.ndarray) -> np.ndarray:
        rho = np.maximum(rho, self.rho_floor)
        return np.sqrt(self.gamma * np.maximum(pressure, 0.0) / rho)

    def tau_from_eint(self, eint: np.ndarray) -> np.ndarray:
        """Entropy tracer from internal energy density."""
        return np.maximum(eint, self.eint_floor) ** (1.0 / self.gamma)

    def eint_from_tau(self, tau: np.ndarray) -> np.ndarray:
        return np.maximum(tau, 0.0) ** self.gamma

    def dual_energy_eint(
        self, rho: np.ndarray, egas: np.ndarray, kinetic: np.ndarray, tau: np.ndarray
    ) -> np.ndarray:
        """Internal energy density with the dual-energy switch applied."""
        diff = egas - kinetic
        use_tau = diff < self.dual_eta * egas
        return np.where(use_tau, self.eint_from_tau(tau), np.maximum(diff, self.eint_floor))


@dataclass(frozen=True)
class BipolytropicEOS:
    """Core/envelope bi-polytrope (paper SIV-C: MS stars have a different
    effective index in the convective envelope than in the core).

    Below ``rho_transition`` the gas follows the envelope polytrope
    ``p = K_env rho^(1 + 1/n_env)``; above it the core polytrope, with
    ``K_core`` fixed by pressure continuity at the transition.  The
    specific enthalpy h = integral dp/rho is continuous by construction and
    linear in ``K_env``, which is what lets the SCF iteration rescale the
    whole structure to pin the maximum density.
    """

    K_env: float = 1.0
    n_core: float = 3.0
    n_env: float = 1.5
    rho_transition: float = 0.1

    def __post_init__(self) -> None:
        if self.rho_transition <= 0:
            raise ValueError("rho_transition must be positive")
        if self.K_env <= 0:
            raise ValueError("K_env must be positive")

    @property
    def Gamma_core(self) -> float:
        return 1.0 + 1.0 / self.n_core

    @property
    def Gamma_env(self) -> float:
        return 1.0 + 1.0 / self.n_env

    @property
    def K_core(self) -> float:
        """Pressure continuity at the transition density."""
        return (
            self.K_env
            * self.rho_transition ** (self.Gamma_env - self.Gamma_core)
        )

    def pressure(self, rho: np.ndarray) -> np.ndarray:
        rho = np.maximum(np.asarray(rho, dtype=np.float64), 0.0)
        core = self.K_core * rho**self.Gamma_core
        env = self.K_env * rho**self.Gamma_env
        return np.where(rho > self.rho_transition, core, env)

    def _h_transition(self) -> float:
        return (self.n_env + 1.0) * self.K_env * self.rho_transition ** (
            1.0 / self.n_env
        )

    def enthalpy(self, rho: np.ndarray) -> np.ndarray:
        """Continuous specific enthalpy h(rho) = integral dp / rho."""
        rho = np.maximum(np.asarray(rho, dtype=np.float64), 0.0)
        h_env = (self.n_env + 1.0) * self.K_env * rho ** (1.0 / self.n_env)
        h_t = self._h_transition()
        h_core = h_t + (self.n_core + 1.0) * self.K_core * (
            rho ** (1.0 / self.n_core)
            - self.rho_transition ** (1.0 / self.n_core)
        )
        return np.where(rho > self.rho_transition, h_core, h_env)

    def rho_from_enthalpy(self, h: np.ndarray) -> np.ndarray:
        """Piecewise inversion of :meth:`enthalpy` (vacuum below h = 0)."""
        h = np.asarray(h, dtype=np.float64)
        h_t = self._h_transition()
        rho_env = (
            np.maximum(h, 0.0) / ((self.n_env + 1.0) * self.K_env)
        ) ** self.n_env
        core_base = (
            np.maximum(h - h_t, 0.0) / ((self.n_core + 1.0) * self.K_core)
            + self.rho_transition ** (1.0 / self.n_core)
        )
        rho_core = core_base**self.n_core
        return np.where(h > h_t, rho_core, rho_env)

    def with_K_env(self, K_env: float) -> "BipolytropicEOS":
        """Rescaled copy (the SCF normalisation step)."""
        from dataclasses import replace

        return replace(self, K_env=K_env)

    def internal_energy_density(self, rho: np.ndarray) -> np.ndarray:
        """eps * rho = n p with the local index."""
        rho = np.maximum(np.asarray(rho, dtype=np.float64), 0.0)
        n_local = np.where(rho > self.rho_transition, self.n_core, self.n_env)
        return n_local * self.pressure(rho)


@dataclass(frozen=True)
class PolytropicEOS:
    """Barotropic p = K rho**Gamma with Gamma = 1 + 1/n."""

    K: float = 1.0
    n: float = 1.5

    @property
    def Gamma(self) -> float:
        return 1.0 + 1.0 / self.n

    def pressure(self, rho: np.ndarray) -> np.ndarray:
        return self.K * np.maximum(rho, 0.0) ** self.Gamma

    def enthalpy(self, rho: np.ndarray) -> np.ndarray:
        """Specific enthalpy h = (n + 1) K rho**(1/n)."""
        return (self.n + 1.0) * self.K * np.maximum(rho, 0.0) ** (1.0 / self.n)

    def rho_from_enthalpy(self, h: np.ndarray) -> np.ndarray:
        """Invert the enthalpy relation; negative enthalpy maps to vacuum."""
        base = np.maximum(h, 0.0) / ((self.n + 1.0) * self.K)
        return base**self.n

    def internal_energy_density(self, rho: np.ndarray) -> np.ndarray:
        """eps * rho = n K rho**Gamma = n p (polytrope thermodynamics)."""
        return self.n * self.pressure(rho)
