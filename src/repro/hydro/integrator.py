"""SSP-RK3 time integration over the AMR mesh.

The third-order strong-stability-preserving Runge-Kutta scheme Octo-Tiger
uses:

    U1 = U0 + dt L(U0)
    U2 = 3/4 U0 + 1/4 U1 + 1/4 dt L(U1)
    U  = 1/3 U0 + 2/3 U2 + 2/3 dt L(U2)

Each stage fills ghosts, evaluates the flux divergence on every leaf, adds
gravity / rotating-frame sources, and applies floors.  After the full step
the entropy tracer is re-synchronised with the energy where the dual-energy
switch is inactive, and interior nodes are restricted from their children.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.hydro.eos import IdealGasEOS
from repro.hydro.solver import dudt_subgrid
from repro.hydro.sources import gravity_source, rotating_frame_source
from repro.hydro.timestep import global_timestep
from repro.octree.fields import Field
from repro.octree.ghost import fill_all_ghosts
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey, OctreeNode

#: Signature of a gravity callback: mesh -> {leaf key: (3, N, N, N) accel}.
GravityCallback = Callable[[AmrMesh], Dict[NodeKey, np.ndarray]]

# Convex-combination coefficients (a0, a1): U_new = a0 U0 + a1 (U + dt L(U)).
_RK3_STAGES = ((0.0, 1.0), (0.75, 0.25), (1.0 / 3.0, 2.0 / 3.0))


class HydroIntegrator:
    """Drives SSP-RK3 steps over the whole mesh (serial reference path).

    The distributed driver in :mod:`repro.core` performs the same stages as
    Kokkos kernels on the AMT runtime; this class is the numerics oracle the
    integration tests compare against.
    """

    def __init__(
        self,
        mesh: AmrMesh,
        eos: Optional[IdealGasEOS] = None,
        cfl: float = 0.4,
        omega: float = 0.0,
        gravity: Optional[GravityCallback] = None,
        gravity_every_stage: bool = False,
        reflux: bool = True,
        reconstruction: str = "muscl",
    ) -> None:
        self.mesh = mesh
        self.eos = eos or IdealGasEOS()
        self.cfl = cfl
        self.omega = omega
        self.gravity = gravity
        self.gravity_every_stage = gravity_every_stage
        #: Flux correction at coarse-fine boundaries (Octo-Tiger's scheme);
        #: without it, adaptive meshes leak conservation at AMR interfaces.
        self.reflux = reflux
        #: "muscl" (2nd order, default) or "constant" (1st order Godunov).
        self.reconstruction = reconstruction
        self.time = 0.0
        self.steps_taken = 0
        self.last_dt = 0.0
        self.faces_refluxed = 0

    # -- single stage --------------------------------------------------------
    def _stage_rhs(self, leaf: OctreeNode, accel: Optional[np.ndarray]):
        """RHS of one leaf; returns (dudt, boundary_fluxes_or_None)."""
        if self.reflux:
            dudt, _, fluxes = dudt_subgrid(
                leaf.subgrid, leaf.dx, self.eos,
                return_boundary_fluxes=True,
                reconstruction=self.reconstruction,
            )
        else:
            dudt, _ = dudt_subgrid(
                leaf.subgrid, leaf.dx, self.eos, reconstruction=self.reconstruction
            )
            fluxes = None
        s = leaf.subgrid.interior
        u = leaf.subgrid.data[:, s, s, s]
        if accel is not None:
            dudt += gravity_source(u, accel)
        if self.omega != 0.0:
            x, y, _ = leaf.cell_centers()
            dudt += rotating_frame_source(u, self.omega, x, y)
        return dudt, fluxes

    def _apply_floors(self, leaf: OctreeNode) -> None:
        s = leaf.subgrid.interior
        u = leaf.subgrid.data[:, s, s, s]
        np.maximum(u[Field.RHO], self.eos.rho_floor, out=u[Field.RHO])
        np.maximum(u[Field.TAU], 0.0, out=u[Field.TAU])
        np.maximum(u[Field.FRAC1], 0.0, out=u[Field.FRAC1])
        np.maximum(u[Field.FRAC2], 0.0, out=u[Field.FRAC2])

    def _resync_tau(self, leaf: OctreeNode) -> None:
        """Where the energy difference is trustworthy, reset tau from it."""
        s = leaf.subgrid.interior
        u = leaf.subgrid.data[:, s, s, s]
        rho = np.maximum(u[Field.RHO], self.eos.rho_floor)
        kinetic = 0.5 * (u[Field.SX] ** 2 + u[Field.SY] ** 2 + u[Field.SZ] ** 2) / rho
        diff = u[Field.EGAS] - kinetic
        healthy = diff > self.eos.dual_eta * u[Field.EGAS]
        u[Field.TAU] = np.where(
            healthy, self.eos.tau_from_eint(np.maximum(diff, self.eos.eint_floor)), u[Field.TAU]
        )

    # -- full step ------------------------------------------------------------
    def step(self, dt: Optional[float] = None) -> float:
        """Advance the mesh by one RK3 step; returns the dt used."""
        leaves = self.mesh.leaves()
        if dt is None:
            dt = global_timestep(self.mesh, self.eos, self.cfl)

        u0: Dict[NodeKey, np.ndarray] = {}
        for leaf in leaves:
            s = leaf.subgrid.interior
            u0[leaf.key] = leaf.subgrid.data[:, s, s, s].copy()

        accel: Dict[NodeKey, np.ndarray] = {}
        if self.gravity is not None:
            accel = self.gravity(self.mesh)

        for stage_index, (a0, a1) in enumerate(_RK3_STAGES):
            fill_all_ghosts(self.mesh)
            if self.gravity is not None and self.gravity_every_stage and stage_index:
                accel = self.gravity(self.mesh)
            rhs: Dict[NodeKey, np.ndarray] = {}
            fluxes: Dict[NodeKey, dict] = {}
            for leaf in leaves:
                dudt, leaf_fluxes = self._stage_rhs(leaf, accel.get(leaf.key))
                rhs[leaf.key] = dudt
                if leaf_fluxes is not None:
                    fluxes[leaf.key] = leaf_fluxes
            if self.reflux and fluxes and self.mesh.max_level() > 0:
                from repro.hydro.reflux import apply_flux_corrections

                self.faces_refluxed += apply_flux_corrections(
                    self.mesh, rhs, fluxes
                )
            for leaf in leaves:
                s = leaf.subgrid.interior
                u = leaf.subgrid.data[:, s, s, s]
                leaf.subgrid.data[:, s, s, s] = a0 * u0[leaf.key] + a1 * (
                    u + dt * rhs[leaf.key]
                )
                self._apply_floors(leaf)

        for leaf in leaves:
            self._resync_tau(leaf)
        self.mesh.restrict_all()
        self.time += dt
        self.steps_taken += 1
        self.last_dt = dt
        return dt

    def run(self, t_end: float, max_steps: int = 100_000) -> int:
        """Step until ``t_end`` (clipping the final dt); returns step count."""
        taken = 0
        while self.time < t_end and taken < max_steps:
            dt = global_timestep(self.mesh, self.eos, self.cfl)
            dt = min(dt, t_end - self.time)
            self.step(dt)
            taken += 1
        return taken
