"""SSP-RK3 time integration over the AMR mesh.

The third-order strong-stability-preserving Runge-Kutta scheme Octo-Tiger
uses:

    U1 = U0 + dt L(U0)
    U2 = 3/4 U0 + 1/4 U1 + 1/4 dt L(U1)
    U  = 1/3 U0 + 2/3 U2 + 2/3 dt L(U2)

Each stage fills ghosts, evaluates the flux divergence on every leaf, adds
gravity / rotating-frame sources, and applies floors.  After the full step
the entropy tracer is re-synchronised with the energy where the dual-energy
switch is inactive, and interior nodes are restricted from their children.

Two execution paths share those numerics:

* the **batched** path (default) routes the whole step through a cached
  :class:`repro.hydro.plan.HydroPlan` — stacked per-level kernels and a
  vectorized ghost exchange, bit-identical to the reference but without the
  per-leaf Python walks;
* :meth:`HydroIntegrator.step_reference` keeps the original per-leaf loops
  as the numerics oracle (exactly like ``FmmSolver.solve_reference``).

Both fold the per-leaf CFL signal reduction into the end of the step, so
:meth:`HydroIntegrator.timestep` serves the next dt from a cache instead of
re-walking the mesh with a second primitives pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.hydro.eos import IdealGasEOS
from repro.hydro.plan import (
    NFIELDS,
    HydroPlan,
    StackedKernels,
    build_hydro_plan,
    resolve_stacked_kernels,
)
from repro.kokkos.backend import get_backend
from repro.hydro.reflux import apply_flux_corrections
from repro.hydro.solver import dudt_subgrid
from repro.hydro.sources import gravity_source, rotating_frame_source
from repro.hydro.timestep import global_timestep, max_signal_subgrid
from repro.octree.fields import Field
from repro.octree.ghost import FaceTraceCache, fill_all_ghosts
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey, OctreeNode
from repro.profiling.apex import CounterRegistry, global_registry

if TYPE_CHECKING:
    from repro.core.plancache import PlanCache
    from repro.octree.regrid import RegridDelta

#: Signature of a gravity callback: mesh -> {leaf key: (3, N, N, N) accel}.
GravityCallback = Callable[[AmrMesh], Dict[NodeKey, np.ndarray]]

# Convex-combination coefficients (a0, a1): U_new = a0 U0 + a1 (U + dt L(U)).
_RK3_STAGES = ((0.0, 1.0), (0.75, 0.25), (1.0 / 3.0, 2.0 / 3.0))

#: Sentinel for :attr:`HydroIntegrator._trace_fp`: a regrid was announced
#: via :meth:`HydroIntegrator.notify_regrid` and the surviving face traces
#: are valid for the (not yet fingerprinted) post-delta topology.
_TRACES_PENDING = object()


class HydroIntegrator:
    """Drives SSP-RK3 steps over the whole mesh.

    The distributed driver in :mod:`repro.core` performs the same stages as
    Kokkos kernels on the AMT runtime; this class is the numerics oracle the
    integration tests compare against.  ``batched`` selects the plan-cached
    stacked path (default; see :mod:`repro.hydro.plan`); the per-leaf
    reference stays available via ``batched=False`` or
    :meth:`step_reference`.  Set ``registry`` to route the ``hydro.*``
    per-phase timers into a specific :class:`CounterRegistry` instead of the
    process-global one.
    """

    def __init__(
        self,
        mesh: AmrMesh,
        eos: Optional[IdealGasEOS] = None,
        cfl: float = 0.4,
        omega: float = 0.0,
        gravity: Optional[GravityCallback] = None,
        gravity_every_stage: bool = False,
        reflux: bool = True,
        reconstruction: str = "muscl",
        batched: bool = True,
        backend: str = "serial",
        nprocs: int = 2,
        wire: str = "shm",
        overlap: bool = False,
        verify_plans: bool = True,
        detect_races: bool = False,
        array_backend: Optional[str] = None,
        plan_cache: Optional["PlanCache"] = None,
    ) -> None:
        if backend not in ("serial", "process"):
            raise ValueError(
                f"backend must be 'serial' or 'process', got {backend!r}"
            )
        #: Array backend the batched kernels dispatch through (see
        #: :mod:`repro.kokkos.backend`).  ``None`` is the inline seed path;
        #: "numpy" routes the same kernels through the dispatch table
        #: (bit-identical); "numba"/"pyjit" swap in the JIT kernel set
        #: (tolerance-tier equivalent).  Unknown or unavailable names
        #: raise here, not mid-step.
        self.array_backend = array_backend
        abackend = get_backend(array_backend) if array_backend else None
        if backend == "process" and abackend is not None and abackend.jit:
            raise ValueError(
                "array_backend {!r} is not supported by the process "
                "backend (workers run the seed kernel path)".format(
                    array_backend
                )
            )
        self._kernels: StackedKernels = resolve_stacked_kernels(abackend)
        self.mesh = mesh
        self.eos = eos or IdealGasEOS()
        self.cfl = cfl
        self.omega = omega
        self.gravity = gravity
        self.gravity_every_stage = gravity_every_stage
        #: Flux correction at coarse-fine boundaries (Octo-Tiger's scheme);
        #: without it, adaptive meshes leak conservation at AMR interfaces.
        self.reflux = reflux
        #: "muscl" (2nd order, default) or "constant" (1st order Godunov).
        self.reconstruction = reconstruction
        #: Route steps through the cached :class:`HydroPlan` (fast path).
        self.batched = batched
        #: "serial" runs in-process; "process" fans the step out over a
        #: :class:`repro.hydro.process_backend.ProcessHydroExecutor` pool.
        self.backend = backend
        self.nprocs = nprocs
        self.wire = wire
        #: Process backend only: futurized interior/halo schedule that
        #: hides ghost-exchange latency behind interior compute
        #: (bit-identical to the BSP schedule; off = ablation baseline).
        self.overlap = overlap
        #: Process backend only: static plan verification before forking
        #: and dynamic shm race detection at every barrier (see
        #: :mod:`repro.analysis.planverify` / :mod:`repro.analysis.shmrace`).
        self.verify_plans = verify_plans
        self.detect_races = detect_races
        self._executor = None  # lazy ProcessHydroExecutor
        self.registry: Optional[CounterRegistry] = None
        self.time = 0.0
        self.steps_taken = 0
        self.last_dt = 0.0
        self.faces_refluxed = 0
        self._plan: Optional[HydroPlan] = None
        #: Per-face ghost trace cache reused across plan rebuilds; a regrid
        #: invalidates exactly the touched faces (:meth:`notify_regrid`).
        self._trace_cache = FaceTraceCache()
        #: Fingerprint the surviving traces are valid for — either a mesh
        #: fingerprint (cache matches that exact topology) or
        #: :data:`_TRACES_PENDING` right after an announced regrid (the
        #: surviving traces are valid for the regridded mesh, whose
        #: fingerprint the next build will record).  Anything else means
        #: the topology moved without a :meth:`notify_regrid` and the
        #: traces must be dropped, preserving the pre-delta safety net.
        self._trace_fp: Optional[str] = None
        #: Optional persistent content-addressed plan store
        #: (:class:`repro.core.plancache.PlanCache`): ghost index-plan
        #: arrays are looked up by mesh fingerprint before re-tracing.
        self.plan_cache = plan_cache
        #: (topology_version, steps_taken, {leaf key: peak signal}) from the
        #: end of the last step — valid until the mesh or the state moves on.
        self._signal_cache: Optional[Tuple[int, int, Dict[NodeKey, float]]] = None

    # -- plan cache -----------------------------------------------------------
    def plan_for(self, mesh: Optional[AmrMesh] = None) -> HydroPlan:
        """The cached batched plan, rebuilt only when the mesh topology
        (by content :meth:`~repro.octree.mesh.AmrMesh.fingerprint`) changed
        or leaf storage was rebound.

        This is the sanctioned cache-miss hook (reprolint R010).  On a miss
        it tries, in order, (1) an incremental rebuild reusing the previous
        plan's surviving ghost face traces and cell-centre rows, (2) the
        persistent plan cache (ghost index arrays keyed on the
        fingerprint), (3) the cold trace.  All paths build bit-identical
        plans; the ``plan.hydro.{delta,cache_hit,cold}`` timers record
        which one ran.
        """
        mesh = mesh if mesh is not None else self.mesh
        if self._plan is not None and self._plan.matches(mesh):
            return self._plan
        reg = self._registry()
        fingerprint = mesh.fingerprint()
        params = {"n": mesh.n, "ghost": mesh.ghost}
        same_mesh = self._plan is not None and self._plan.mesh_ref() is mesh
        # The surviving traces are trustworthy only for the topology they
        # were recorded against — either this exact fingerprint, or (after
        # an announced regrid of the same mesh object) the post-delta state.
        traces_ok = len(self._trace_cache) > 0 and (
            self._trace_fp == fingerprint
            or (self._trace_fp is _TRACES_PENDING and same_mesh)
        )
        if not traces_ok:
            self._trace_cache.clear()
        plan = None
        if self._plan is not None and traces_ok:
            with reg.timer("plan.hydro.delta"):
                plan = build_hydro_plan(
                    mesh, trace_cache=self._trace_cache, reuse=self._plan
                )
            reg.increment("plan.hydro.delta_builds")
            # Delta builds are bit-identical to cold ones, so they are
            # just as good a cache seed: store them too, or topologies
            # only ever visited incrementally would miss on every rerun.
            if self.plan_cache is not None and not self.plan_cache.contains(
                "hydro", plan.fingerprint, params
            ):
                self.plan_cache.store(
                    "hydro", plan.fingerprint, params, plan.cache_payload()
                )
        if plan is None and self.plan_cache is not None:
            payload = self.plan_cache.load("hydro", fingerprint, params)
            if payload is not None:
                with reg.timer("plan.hydro.cache_hit"):
                    plan = build_hydro_plan(
                        mesh, ghost_payload=payload, reuse=self._plan
                    )
                reg.increment("plan.hydro.cache_hit_builds")
                self._trace_fp = None  # cache hits do not populate traces
        if plan is None:
            with reg.timer("plan.hydro.cold"):
                plan = build_hydro_plan(mesh, trace_cache=self._trace_cache, reuse=self._plan)  # reprolint: sanctioned-cold-build
            reg.increment("plan.hydro.cold_builds")
            if self.plan_cache is not None:
                self.plan_cache.store(
                    "hydro", plan.fingerprint, params, plan.cache_payload()
                )
        # Trace-populating builds (cold / delta) leave a cache valid for
        # exactly this topology; a persistent-cache hit leaves it empty.
        self._trace_fp = plan.fingerprint if len(self._trace_cache) else None
        self._plan = plan
        reg.increment("hydro.plan_builds")
        return self._plan

    def invalidate_plan(self) -> None:
        """Drop the cached plan (the next batched step rebuilds it)."""
        self._plan = None

    def notify_regrid(self, delta) -> None:
        """Tell the integrator a regrid happened.

        Invalidates exactly the ghost face traces the
        :class:`~repro.octree.regrid.RegridDelta` touched; the next
        :meth:`plan_for` then rebuilds incrementally from the surviving
        traces instead of re-tracing the whole mesh.  The executor's
        in-place replan (process backend) keys off the same delta.
        """
        if delta is not None:
            self._trace_cache.invalidate(delta)
            self._trace_fp = _TRACES_PENDING
        if self._executor is not None:
            self._executor.notify_regrid(delta)

    def _registry(self) -> CounterRegistry:
        return self.registry if self.registry is not None else global_registry()

    # -- timestep -------------------------------------------------------------
    def _cached_signals(self) -> Optional[Dict[NodeKey, float]]:
        """Per-leaf signals from the last step, if still valid."""
        if self._signal_cache is None:
            return None
        version, step_no, signals = self._signal_cache
        if version != self.mesh.topology_version or step_no != self.steps_taken:
            return None
        return signals

    def timestep(self) -> float:
        """The next global CFL dt, served from the end-of-step signal cache
        when valid (both step paths populate it) — exactly equal to a full
        :func:`global_timestep` recomputation.

        The cache assumes leaf fields did not change outside ``step``; code
        that mutates the state directly between steps should call
        :func:`global_timestep` itself (or take another step first).
        """
        return global_timestep(
            self.mesh, self.eos, self.cfl, signals=self._cached_signals()
        )

    def _record_signals(self, signals: Dict[NodeKey, float]) -> None:
        self._signal_cache = (self.mesh.topology_version, self.steps_taken, signals)

    # -- single stage (reference path) ---------------------------------------
    def _stage_rhs(
        self, leaf: OctreeNode, accel: Optional[np.ndarray], collect_fluxes: bool
    ):
        """RHS of one leaf; returns (dudt, boundary_fluxes_or_None)."""
        if collect_fluxes:
            dudt, _, fluxes = dudt_subgrid(
                leaf.subgrid, leaf.dx, self.eos,
                return_boundary_fluxes=True,
                reconstruction=self.reconstruction,
            )
        else:
            dudt, _ = dudt_subgrid(
                leaf.subgrid, leaf.dx, self.eos, reconstruction=self.reconstruction
            )
            fluxes = None
        s = leaf.subgrid.interior
        u = leaf.subgrid.data[:, s, s, s]
        if accel is not None:
            dudt += gravity_source(u, accel)
        if self.omega != 0.0:
            x, y, _ = leaf.cell_centers()
            dudt += rotating_frame_source(u, self.omega, x, y)
        return dudt, fluxes

    def _apply_floors(self, leaf: OctreeNode) -> None:
        s = leaf.subgrid.interior
        u = leaf.subgrid.data[:, s, s, s]
        np.maximum(u[Field.RHO], self.eos.rho_floor, out=u[Field.RHO])
        np.maximum(u[Field.TAU], 0.0, out=u[Field.TAU])
        np.maximum(u[Field.FRAC1], 0.0, out=u[Field.FRAC1])
        np.maximum(u[Field.FRAC2], 0.0, out=u[Field.FRAC2])

    def _resync_tau(self, leaf: OctreeNode) -> None:
        """Where the energy difference is trustworthy, reset tau from it."""
        s = leaf.subgrid.interior
        u = leaf.subgrid.data[:, s, s, s]
        rho = np.maximum(u[Field.RHO], self.eos.rho_floor)
        kinetic = 0.5 * (u[Field.SX] ** 2 + u[Field.SY] ** 2 + u[Field.SZ] ** 2) / rho
        diff = u[Field.EGAS] - kinetic
        healthy = diff > self.eos.dual_eta * u[Field.EGAS]
        u[Field.TAU] = np.where(
            healthy, self.eos.tau_from_eint(np.maximum(diff, self.eos.eint_floor)), u[Field.TAU]
        )

    # -- full step ------------------------------------------------------------
    def step(self, dt: Optional[float] = None) -> float:
        """Advance the mesh by one RK3 step; returns the dt used."""
        if self.backend == "process":
            return self._step_process(dt)
        if self.batched:
            return self._step_batched(dt)
        return self.step_reference(dt)

    # -- process-parallel step ------------------------------------------------
    def executor(self):
        """The lazy process-backend executor (workers fork on first step)."""
        if self._executor is None:
            from repro.hydro.process_backend import ProcessHydroExecutor

            self._executor = ProcessHydroExecutor(
                self.mesh,
                eos=self.eos,
                nprocs=self.nprocs,
                omega=self.omega,
                reflux=self.reflux,
                reconstruction=self.reconstruction,
                wire=self.wire,
                overlap=self.overlap,
                verify_plans=self.verify_plans,
                detect_races=self.detect_races,
            )
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool and release shm (process backend)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def _step_process(self, dt: Optional[float] = None) -> float:
        """One RK3 step fanned out over the worker processes.

        Same stacked kernels as :meth:`_step_batched`, partitioned over
        disjoint leaf sets — bit-identical to both in-process paths (the
        cross-check harness in :mod:`repro.core.crosscheck` asserts it).
        """
        ex = self.executor()
        ex.registry = self._registry()
        if dt is None:
            dt = self.timestep()
        signals = ex.step(
            dt, gravity=self.gravity, gravity_every_stage=self.gravity_every_stage
        )
        self.faces_refluxed = ex.faces_refluxed
        self.time += dt
        self.steps_taken += 1
        self.last_dt = dt
        self._record_signals(signals)
        return dt

    def step_reference(self, dt: Optional[float] = None) -> float:
        """One RK3 step via the per-leaf reference loops (numerics oracle)."""
        leaves = self.mesh.leaves()
        if dt is None:
            dt = self.timestep()

        u0: Dict[NodeKey, np.ndarray] = {}
        for leaf in leaves:
            s = leaf.subgrid.interior
            u0[leaf.key] = leaf.subgrid.data[:, s, s, s].copy()

        accel: Dict[NodeKey, np.ndarray] = {}
        if self.gravity is not None:
            accel = self.gravity(self.mesh)

        # Boundary fluxes only feed refluxing, which needs a coarse-fine
        # interface to exist — on a uniform mesh skip the six face copies
        # per leaf per stage entirely.
        collect_fluxes = self.reflux and self.mesh.max_level() > 0
        for stage_index, (a0, a1) in enumerate(_RK3_STAGES):
            fill_all_ghosts(self.mesh)
            if self.gravity is not None and self.gravity_every_stage and stage_index:
                accel = self.gravity(self.mesh)
            rhs: Dict[NodeKey, np.ndarray] = {}
            fluxes: Dict[NodeKey, dict] = {}
            for leaf in leaves:
                dudt, leaf_fluxes = self._stage_rhs(
                    leaf, accel.get(leaf.key), collect_fluxes
                )
                rhs[leaf.key] = dudt
                if leaf_fluxes is not None:
                    fluxes[leaf.key] = leaf_fluxes
            if collect_fluxes and fluxes:
                self.faces_refluxed += apply_flux_corrections(
                    self.mesh, rhs, fluxes
                )
            for leaf in leaves:
                s = leaf.subgrid.interior
                u = leaf.subgrid.data[:, s, s, s]
                leaf.subgrid.data[:, s, s, s] = a0 * u0[leaf.key] + a1 * (
                    u + dt * rhs[leaf.key]
                )
                self._apply_floors(leaf)

        for leaf in leaves:
            self._resync_tau(leaf)
        self.mesh.restrict_all()
        self.time += dt
        self.steps_taken += 1
        self.last_dt = dt
        self._record_signals(
            {leaf.key: max_signal_subgrid(leaf.subgrid, self.eos) for leaf in leaves}
        )
        return dt

    # -- batched step ---------------------------------------------------------
    def _gather_accel(self, plan: HydroPlan) -> List[np.ndarray]:
        """Solve gravity and stack the per-leaf accelerations per block."""
        accel_map = self.gravity(self.mesh)
        out: List[np.ndarray] = []
        n = plan.n
        for b, blk in enumerate(plan.blocks):
            buf = plan.scratch.get(("accel", b), (blk.n_leaves, 3, n, n, n))
            for j, key in enumerate(blk.keys):
                a = accel_map.get(key)
                if a is None:
                    buf[j] = 0.0
                else:
                    buf[j] = a
            out.append(buf)
        return out

    def _step_batched(self, dt: Optional[float] = None) -> float:
        """One RK3 step through the cached plan's stacked kernels.

        Bit-identical to :meth:`step_reference`: every kernel reuses the
        reference's elementwise building blocks on the stacked blocks, the
        refluxing runs on per-leaf views into the stacked dudt, and maxima /
        convex combinations are order-independent per element.
        """
        reg = self._registry()
        with reg.timer("hydro.plan"):
            plan = self.plan_for()
        if dt is None:
            dt = self.timestep()
        kernels = self._kernels
        eos = self.eos
        s = plan.interior
        scratch = plan.scratch
        blocks = plan.blocks
        n = plan.n

        u0: List[np.ndarray] = []
        for b, blk in enumerate(blocks):
            buf = scratch.get(("u0", b), (blk.n_leaves, NFIELDS, n, n, n))
            np.copyto(buf, blk.u[:, :, s, s, s])
            u0.append(buf)

        accel_blocks: List[Optional[np.ndarray]] = [None] * len(blocks)
        if self.gravity is not None:
            accel_blocks = self._gather_accel(plan)

        # The plan knows whether any coarse-fine interface exists at all
        # (fine-class ghost faces); without one, refluxing cannot trigger
        # and the boundary-flux extraction is pure overhead.
        collect_fluxes = self.reflux and plan.ghosts.face_counts["fine"] > 0
        for stage_index, (a0, a1) in enumerate(_RK3_STAGES):
            with reg.timer("hydro.ghost"):
                plan.ghosts.fill_ghosts_kernel(plan.arena)
            if self.gravity is not None and self.gravity_every_stage and stage_index:
                accel_blocks = self._gather_accel(plan)
            rhs_views: Dict[NodeKey, np.ndarray] = {}
            flux_views: Dict[NodeKey, dict] = {}
            dudts: List[np.ndarray] = []
            for b, blk in enumerate(blocks):
                dudt = scratch.get(("dudt", b), (blk.n_leaves, NFIELDS, n, n, n))
                faces = None
                if collect_fluxes:
                    faces = {
                        (axis, side): scratch.get(
                            ("face", b, axis, side), (blk.n_leaves, NFIELDS, n, n)
                        )
                        for axis in range(3)
                        for side in (0, 1)
                    }
                kernels.rhs(
                    blk.u, blk.dx, eos, dudt,
                    reconstruction=self.reconstruction,
                    faces=faces,
                    registry=reg,
                    scratch=scratch,
                    tag=b,
                )
                if accel_blocks[b] is not None or self.omega != 0.0:
                    kernels.source(
                        blk.u[:, :, s, s, s], dudt,
                        accel=accel_blocks[b], omega=self.omega, x=blk.x, y=blk.y,
                    )
                dudts.append(dudt)
                if collect_fluxes:
                    for j, key in enumerate(blk.keys):
                        rhs_views[key] = dudt[j]
                        flux_views[key] = {fs: face[j] for fs, face in faces.items()}
            if collect_fluxes and flux_views:
                # apply_flux_corrections mutates the per-leaf dudt views in
                # place, which lands directly in the stacked scratch arrays.
                self.faces_refluxed += apply_flux_corrections(
                    self.mesh, rhs_views, flux_views
                )
            with reg.timer("hydro.update"):
                for b, blk in enumerate(blocks):
                    kernels.update(
                        blk.u[:, :, s, s, s], u0[b], dudts[b], a0, a1, dt, eos,
                        scratch=scratch, tag=b,
                    )

        with reg.timer("hydro.update"):
            for blk in blocks:
                kernels.resync_tau(blk.u[:, :, s, s, s], eos)
        self.mesh.restrict_all()
        self.time += dt
        self.steps_taken += 1
        self.last_dt = dt
        signals: Dict[NodeKey, float] = {}
        for b, blk in enumerate(blocks):
            out = scratch.get(("signal", b), (blk.n_leaves,))
            kernels.signal(blk.u[:, :, s, s, s], eos, out)
            for j, key in enumerate(blk.keys):
                signals[key] = float(out[j])
        self._record_signals(signals)
        return dt

    def run(self, t_end: float, max_steps: int = 100_000) -> int:
        """Step until ``t_end`` (clipping the final dt); returns step count."""
        taken = 0
        while self.time < t_end and taken < max_steps:
            dt = min(self.timestep(), t_end - self.time)
            self.step(dt)
            taken += 1
        return taken
