"""Exact Riemann solver for the 1-D ideal-gas Euler equations (Toro, ch. 4).

Validation oracle only: the shock-tube tests compare the finite-volume
scheme's output against these profiles.  Not used in production stepping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy.optimize import brentq


@dataclass(frozen=True)
class RiemannState:
    rho: float
    u: float
    p: float


def _f_K(p: float, state: RiemannState, gamma: float) -> Tuple[float, float]:
    """Toro's f_K(p) and its derivative for one side of the discontinuity."""
    rho_k, p_k = state.rho, state.p
    a_k = np.sqrt(gamma * p_k / rho_k)
    if p > p_k:  # shock
        A = 2.0 / ((gamma + 1.0) * rho_k)
        B = (gamma - 1.0) / (gamma + 1.0) * p_k
        sqrt_term = np.sqrt(A / (p + B))
        f = (p - p_k) * sqrt_term
        df = sqrt_term * (1.0 - (p - p_k) / (2.0 * (p + B)))
    else:  # rarefaction
        f = (
            2.0
            * a_k
            / (gamma - 1.0)
            * ((p / p_k) ** ((gamma - 1.0) / (2.0 * gamma)) - 1.0)
        )
        df = (1.0 / (rho_k * a_k)) * (p / p_k) ** (-(gamma + 1.0) / (2.0 * gamma))
    return f, df


def _star_pressure(left: RiemannState, right: RiemannState, gamma: float) -> float:
    """Pressure in the star region via root finding on Toro's pressure
    function; bracketed with brentq for robustness."""

    def pressure_function(p: float) -> float:
        fl, _ = _f_K(p, left, gamma)
        fr, _ = _f_K(p, right, gamma)
        return fl + fr + (right.u - left.u)

    p_min = 1e-12
    p_max = 10.0 * max(left.p, right.p)
    while pressure_function(p_max) < 0.0:
        p_max *= 10.0
        if p_max > 1e12:
            raise RuntimeError("star pressure bracket failed (vacuum case?)")
    if pressure_function(p_min) > 0.0:
        # Two strong rarefactions towards vacuum; clamp at p_min.
        return p_min
    return brentq(pressure_function, p_min, p_max, xtol=1e-14, rtol=1e-13)


def exact_riemann(
    left: RiemannState,
    right: RiemannState,
    xi: np.ndarray,
    gamma: float = 1.4,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Self-similar solution sampled at ``xi = x / t``.

    Returns ``(rho, u, p)`` arrays matching ``xi``.
    """
    xi = np.asarray(xi, dtype=np.float64)
    p_star = _star_pressure(left, right, gamma)
    fl, _ = _f_K(p_star, left, gamma)
    fr, _ = _f_K(p_star, right, gamma)
    u_star = 0.5 * (left.u + right.u) + 0.5 * (fr - fl)

    rho = np.empty_like(xi)
    u = np.empty_like(xi)
    p = np.empty_like(xi)

    gm1, gp1 = gamma - 1.0, gamma + 1.0
    a_l = np.sqrt(gamma * left.p / left.rho)
    a_r = np.sqrt(gamma * right.p / right.rho)

    for i, s in enumerate(xi):
        if s <= u_star:  # left of the contact
            if p_star > left.p:  # left shock
                rho_star = left.rho * (
                    (p_star / left.p + gm1 / gp1) / (gm1 / gp1 * p_star / left.p + 1.0)
                )
                shock_speed = left.u - a_l * np.sqrt(
                    gp1 / (2 * gamma) * p_star / left.p + gm1 / (2 * gamma)
                )
                if s < shock_speed:
                    rho[i], u[i], p[i] = left.rho, left.u, left.p
                else:
                    rho[i], u[i], p[i] = rho_star, u_star, p_star
            else:  # left rarefaction
                rho_star = left.rho * (p_star / left.p) ** (1.0 / gamma)
                a_star = a_l * (p_star / left.p) ** (gm1 / (2 * gamma))
                head, tail = left.u - a_l, u_star - a_star
                if s < head:
                    rho[i], u[i], p[i] = left.rho, left.u, left.p
                elif s > tail:
                    rho[i], u[i], p[i] = rho_star, u_star, p_star
                else:  # inside the fan
                    u[i] = 2.0 / gp1 * (a_l + gm1 / 2.0 * left.u + s)
                    a = a_l - gm1 / 2.0 * (u[i] - left.u)
                    rho[i] = left.rho * (a / a_l) ** (2.0 / gm1)
                    p[i] = left.p * (a / a_l) ** (2.0 * gamma / gm1)
        else:  # right of the contact
            if p_star > right.p:  # right shock
                rho_star = right.rho * (
                    (p_star / right.p + gm1 / gp1)
                    / (gm1 / gp1 * p_star / right.p + 1.0)
                )
                shock_speed = right.u + a_r * np.sqrt(
                    gp1 / (2 * gamma) * p_star / right.p + gm1 / (2 * gamma)
                )
                if s > shock_speed:
                    rho[i], u[i], p[i] = right.rho, right.u, right.p
                else:
                    rho[i], u[i], p[i] = rho_star, u_star, p_star
            else:  # right rarefaction
                rho_star = right.rho * (p_star / right.p) ** (1.0 / gamma)
                a_star = a_r * (p_star / right.p) ** (gm1 / (2 * gamma))
                head, tail = right.u + a_r, u_star + a_star
                if s > head:
                    rho[i], u[i], p[i] = right.rho, right.u, right.p
                elif s < tail:
                    rho[i], u[i], p[i] = rho_star, u_star, p_star
                else:
                    u[i] = 2.0 / gp1 * (-a_r + gm1 / 2.0 * right.u + s)
                    a = a_r + gm1 / 2.0 * (u[i] - right.u)
                    rho[i] = right.rho * (a / a_r) ** (2.0 / gm1)
                    p[i] = right.p * (a / a_r) ** (2.0 * gamma / gm1)
    return rho, u, p


def sod_solution(
    x: np.ndarray, t: float, x0: float = 0.5, gamma: float = 1.4
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The classic Sod shock tube at time ``t`` (rho, u, p)."""
    left = RiemannState(1.0, 0.0, 1.0)
    right = RiemannState(0.125, 0.0, 0.1)
    if t <= 0.0:
        x = np.asarray(x)
        rho = np.where(x < x0, left.rho, right.rho)
        u = np.zeros_like(rho)
        p = np.where(x < x0, left.p, right.p)
        return rho, u, p
    xi = (np.asarray(x) - x0) / t
    return exact_riemann(left, right, xi, gamma=gamma)
