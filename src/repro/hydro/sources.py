"""Source terms: self-gravity and the rotating frame.

Octo-Tiger evolves binaries in a frame co-rotating with the initial orbit
(reducing numerical viscosity early in a simulation); the frame contributes
Coriolis and centrifugal accelerations.  Gravity couples through the FMM
accelerations.  The centrifugal term does work on the gas; the Coriolis term
does none — a property the tests check, since getting it wrong silently
injects energy.
"""

from __future__ import annotations

import numpy as np

from repro.octree.fields import Field, NFIELDS


def gravity_source(u: np.ndarray, g_accel: np.ndarray) -> np.ndarray:
    """Momentum and energy sources from the gravitational acceleration.

        ds_i/dt   += rho * g_i
        degas/dt  += s . g      (work done by gravity on the gas)

    ``u`` has shape (NFIELDS, ...) over interior cells; ``g_accel`` is
    (3, ...) matching.
    """
    out = np.zeros_like(u)
    rho = u[Field.RHO]
    out[Field.SX] = rho * g_accel[0]
    out[Field.SY] = rho * g_accel[1]
    out[Field.SZ] = rho * g_accel[2]
    out[Field.EGAS] = (
        u[Field.SX] * g_accel[0]
        + u[Field.SY] * g_accel[1]
        + u[Field.SZ] * g_accel[2]
    )
    return out


def rotating_frame_source(
    u: np.ndarray, omega: float, x: np.ndarray, y: np.ndarray
) -> np.ndarray:
    """Coriolis + centrifugal sources for rotation about the z axis.

    With Omega = omega * z_hat:

        a_coriolis    = -2 Omega x v   = ( 2 omega v_y, -2 omega v_x, 0)
        a_centrifugal = -Omega x (Omega x r) = omega^2 (x, y, 0)

    Momentum sources use momentum densities directly (rho * a); the energy
    source is s . a_centrifugal only — Coriolis acceleration is
    perpendicular to the velocity and does no work.
    """
    out = np.zeros_like(u)
    if omega == 0.0:
        return out
    rho = u[Field.RHO]
    sx, sy = u[Field.SX], u[Field.SY]
    cfx = omega**2 * x
    cfy = omega**2 * y
    out[Field.SX] = 2.0 * omega * sy + rho * cfx
    out[Field.SY] = -2.0 * omega * sx + rho * cfy
    out[Field.EGAS] = sx * cfx + sy * cfy
    return out
