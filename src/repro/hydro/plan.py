"""Batched hydro execution plan: stacked sub-grid kernels, vectorized ghosts.

The per-leaf reference integrator walks ``mesh.leaves()`` in Python three
times per RK3 stage; on a level-L mesh that is hundreds of tiny NumPy calls
per step.  Following the same plan/execute split PR 1 gave the gravity
solver (:class:`repro.gravity.plan.FmmPlan`) — and the paper's kernel
restructuring for wide vector execution on A64FX (SVE vectorization, Fig 7)
— :class:`HydroPlan` captures everything that is a pure function of the mesh
*topology* once, and the execute path runs a handful of wide kernels:

* **storage arena** — all leaf sub-grids move into one flat ``float64``
  arena, ordered by ``(level, morton)``; each leaf's
  ``(NFIELDS, M, M, M)`` chunk is *adopted* as its ``subgrid.data`` (a view,
  so every existing per-leaf API keeps working), and the leaves of each
  refinement level form one contiguous ``(B, NFIELDS, M, M, M)`` block;
* **ghost index plan** — the whole-mesh ghost exchange becomes four
  class-grouped fancy-indexed copies over the arena
  (:func:`repro.octree.ghost.ghost_index_plan`);
* **stacked kernels** — reconstruction, HLL fluxes, flux divergence,
  boundary-flux extraction, sources, the RK3 convex combination, floors,
  the tau resync and the CFL signal reduction each run once per level block
  instead of once per leaf.  They reuse the *same* elementwise building
  blocks as the reference (``primitives_from_conserved``,
  ``reconstruct_axis``, ``hll_flux``), so batching cannot change rounding:
  the batched step is bit-identical to the reference step.

The plan is keyed on :attr:`repro.octree.mesh.AmrMesh.topology_version`
(same invalidation contract as ``FmmPlan``) plus an identity check that the
leaves still reference the plan's arena views — so regrids *and* external
storage rebinding (e.g. a second plan adopting the mesh) both trigger a
rebuild.  Scratch buffers live in a :class:`ScratchArena` reused across
stages and steps; the hot path allocates nothing (reprolint R001).

See ``docs/hydro_plan.md`` for the full architecture.
"""

from __future__ import annotations

import math
import numbers
import weakref
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.effects import ANY, declare_effects
from repro.hydro.eos import IdealGasEOS
from repro.hydro.riemann import PRIM_KEYS
from repro.hydro.solver import primitives_from_conserved
from repro.octree.fields import Field, NFIELDS
from repro.octree.ghost import FaceTraceCache, GhostIndexPlan, ghost_index_plan
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey


class ScratchArena:
    """Named preallocated ``float64`` buffers, reused across stages and steps.

    ``get`` allocates on first use and returns the same buffer afterwards —
    the batched step's working set (u0 snapshots, dudt, boundary-flux faces,
    stacked accelerations, per-leaf signals) is allocated once per plan and
    recycled, keeping the hot loops allocation-free.
    """

    def __init__(self) -> None:
        self._buffers: Dict[tuple, np.ndarray] = {}
        self._groups: Dict[tuple, dict] = {}

    def get(self, name, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        key = (name, tuple(shape), dtype)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf

    def group(self, key) -> dict:
        """A named dict for kernels that bundle many buffers: fetched with
        one lookup per call instead of one ``get`` per buffer."""
        grp = self._groups.get(key)
        if grp is None:
            grp = {}
            self._groups[key] = grp
        return grp

    def nbytes(self) -> int:
        total = sum(buf.nbytes for buf in self._buffers.values())
        for grp in self._groups.values():
            total += sum(
                buf.nbytes for buf in grp.values() if isinstance(buf, np.ndarray)
            )
        return total


#: Stencil radius of the hydro reconstruction: a cell's RHS reads at most
#: this many cells away along each sweep axis (MUSCL reconstruction of the
#: faces around cell ``i`` reads cells ``[i - 2, i + 2]``; the first-order
#: path reads a subset).  The interior/halo split below is keyed on it.
STENCIL_RADIUS = 2

#: Half-open box ``(x0, x1, y0, y1, z0, z1)`` in interior coordinates.
Box = Tuple[int, int, int, int, int, int]


@dataclass(frozen=True)
class RegionSplit:
    """Interior/halo decomposition of every ``n^3`` leaf interior.

    ``interior_box`` holds the cells whose stencil closes over the leaf's
    own interior — their RHS never reads a ghost cell, so they can be
    computed while the ghost exchange is still in flight (the futurized
    overlap path of :mod:`repro.hydro.process_backend`).  ``halo_boxes``
    are the stencil-radius-wide shell whose stencils do read ghosts; they
    wait for the exchange to drain.  Boxes are half-open
    ``(x0, x1, y0, y1, z0, z1)`` in interior coordinates ``[0, n)`` and
    partition the cube exactly — covering, disjoint, halo width equal to
    the stencil radius on every face — which
    :func:`repro.analysis.planverify.verify_region_split` re-proves before
    the executor is allowed to schedule it.

    The split is a pure function of ``(n, width)``: regrids never change
    it (delta rebuilds hand it forward via ``reuse``), and the persistent
    plan cache stores it alongside the ghost payload so a cache hit
    restores the exact boxes that were verified when the entry was seeded.
    """

    n: int
    width: int
    interior_box: Box
    halo_boxes: Tuple[Box, ...]

    @property
    def has_interior(self) -> bool:
        x0, x1, y0, y1, z0, z1 = self.interior_box
        return x1 > x0 and y1 > y0 and z1 > z0

    @property
    def boxes(self) -> Tuple[Box, ...]:
        """All regions, interior first, empty boxes dropped."""
        out = [self.interior_box] if self.has_interior else []
        out.extend(self.halo_boxes)
        return tuple(out)

    @staticmethod
    def box_cells(box: Box) -> int:
        x0, x1, y0, y1, z0, z1 = box
        return max(0, x1 - x0) * max(0, y1 - y0) * max(0, z1 - z0)

    def to_payload(self) -> Dict[str, np.ndarray]:
        """Flat arrays for the persistent plan cache (prefixed ``split_``
        so they coexist with the ghost payload in one entry)."""
        return {
            "split_meta": np.array([self.n, self.width], dtype=np.int64),
            "split_interior": np.array(self.interior_box, dtype=np.int64),
            "split_halos": np.array(self.halo_boxes, dtype=np.int64).reshape(
                len(self.halo_boxes), 6
            ),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, np.ndarray]) -> "RegionSplit":
        meta = np.asarray(payload["split_meta"], dtype=np.int64)
        interior = tuple(
            int(v) for v in np.asarray(payload["split_interior"], dtype=np.int64)
        )
        halos = tuple(
            tuple(int(v) for v in row)
            for row in np.asarray(payload["split_halos"], dtype=np.int64).reshape(-1, 6)
        )
        return cls(
            n=int(meta[0]), width=int(meta[1]),
            interior_box=interior, halo_boxes=halos,
        )


def compute_region_split(n: int, width: int = STENCIL_RADIUS) -> RegionSplit:
    """The canonical interior/halo split of an ``n^3`` interior.

    The interior box is ``[w, n - w)^3`` (every stencil stays inside the
    leaf's own cells); the halo is six face slabs trimmed so they tile the
    shell without overlap: the x slabs span the full transverse extent,
    the y slabs are trimmed in x, the z slabs in both.  When ``n <= 2w``
    no cell's stencil closes locally and the whole cube is one halo box.
    """
    if not isinstance(n, numbers.Integral) or isinstance(n, bool) or n < 1:
        raise ValueError(f"n must be a positive integer, got {n!r}")
    if not isinstance(width, numbers.Integral) or isinstance(width, bool) or width < 1:
        raise ValueError(f"width must be a positive integer, got {width!r}")
    n = int(n)
    w = int(width)
    if n <= 2 * w:
        return RegionSplit(
            n=n, width=w,
            interior_box=(0, 0, 0, 0, 0, 0),
            halo_boxes=((0, n, 0, n, 0, n),),
        )
    lo, hi = w, n - w
    return RegionSplit(
        n=n, width=w,
        interior_box=(lo, hi, lo, hi, lo, hi),
        halo_boxes=(
            (0, lo, 0, n, 0, n),      # x-low slab, full transverse extent
            (hi, n, 0, n, 0, n),      # x-high slab
            (lo, hi, 0, lo, 0, n),    # y-low, trimmed in x
            (lo, hi, hi, n, 0, n),    # y-high
            (lo, hi, lo, hi, 0, lo),  # z-low, trimmed in x and y
            (lo, hi, lo, hi, hi, n),  # z-high
        ),
    )


def region_views(
    u: np.ndarray, dudt: np.ndarray, box: Box, ghost: int
) -> Tuple[np.ndarray, np.ndarray]:
    """The ``(u, dudt)`` sub-views for one region pass of
    :func:`stacked_rhs_kernel`.

    ``u`` is ``(B, NFIELDS, M, M, M)`` with ghost margin ``ghost`` and
    ``dudt`` is ``(B, NFIELDS, n, n, n)``; ``box`` is half-open in interior
    coordinates.  The ``u`` sub-view keeps a ``STENCIL_RADIUS`` margin
    around the box on every axis, so the kernel's derived per-axis ghost
    margins equal the stencil radius exactly and each cell of the box sees
    the same neighbourhood values as the full-block pass — the fluxes, and
    therefore the divergence bits, are identical.
    """
    if ghost < STENCIL_RADIUS:
        raise ValueError(
            f"ghost width {ghost} below stencil radius {STENCIL_RADIUS}"
        )
    x0, x1, y0, y1, z0, z1 = box
    g, r = ghost, STENCIL_RADIUS
    u_sub = u[
        :, :,
        x0 + g - r : x1 + g + r,
        y0 + g - r : y1 + g + r,
        z0 + g - r : z1 + g + r,
    ]
    d_sub = dudt[:, :, x0:x1, y0:y1, z0:z1]
    return u_sub, d_sub


@dataclass
class LevelBlock:
    """All leaves of one refinement level, stacked contiguously."""

    level: int
    dx: float
    keys: List[NodeKey]
    #: (B, NFIELDS, M, M, M) view into the plan arena.
    u: np.ndarray
    #: (B, n, n, n) interior cell-centre coordinates (rotating frame).
    x: np.ndarray
    y: np.ndarray

    @property
    def n_leaves(self) -> int:
        return len(self.keys)


class HydroPlan:
    """Cached batched execution plan for the hydro step.

    Build with :func:`build_hydro_plan`; validity is checked with
    :meth:`matches` (topology version + arena-view identity).  Building the
    plan *adopts* the mesh's leaf storage into one flat arena — field values
    are preserved, and ``leaf.subgrid.data`` stays a live
    ``(NFIELDS, M, M, M)`` array for every per-leaf consumer.
    """

    def __init__(
        self,
        mesh: AmrMesh,
        trace_cache: Optional[FaceTraceCache] = None,
        reuse: Optional["HydroPlan"] = None,
        ghost_payload: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        self.mesh_ref = weakref.ref(mesh)
        self.topology_version = mesh.topology_version
        #: Content hash of the topology this plan was built for; the
        #: validity key :meth:`matches` compares (see
        #: ``docs/plan_lifecycle.md``).
        self.fingerprint = mesh.fingerprint()
        self.n = mesh.n
        self.ghost_width = mesh.ghost
        m = self.n + 2 * self.ghost_width
        self.m = m
        #: Interior slice shared by every sub-grid in the mesh.
        self.interior = slice(self.ghost_width, self.ghost_width + self.n)
        chunk = NFIELDS * m**3

        leaves = sorted(mesh.leaves(), key=lambda nd: nd.key)
        self.leaf_keys: List[NodeKey] = [leaf.key for leaf in leaves]
        self.slot: Dict[NodeKey, int] = {k: i for i, k in enumerate(self.leaf_keys)}
        offsets = {leaf.key: i * chunk for i, leaf in enumerate(leaves)}

        self.arena = np.empty(len(leaves) * chunk)
        self.views: List[np.ndarray] = []
        for i, leaf in enumerate(leaves):
            view = self.arena[i * chunk : (i + 1) * chunk].reshape(NFIELDS, m, m, m)
            np.copyto(view, leaf.subgrid.data)
            leaf.subgrid.data = view
            self.views.append(view)

        # Cell centres are pure functions of the key: rebuilds reuse the
        # previous plan's rows for surviving leaves (exact, not approximate).
        reuse_xy: Dict[NodeKey, Tuple[np.ndarray, np.ndarray]] = {}
        if reuse is not None and reuse.n == self.n:
            old_mesh = reuse.mesh_ref()
            if old_mesh is mesh or (
                old_mesh is not None and old_mesh.domain_size == mesh.domain_size
            ):
                for block in reuse.blocks:
                    for j, key in enumerate(block.keys):
                        reuse_xy[key] = (block.x[j], block.y[j])

        # Leaves sort level-major under (level, morton), so each level is one
        # contiguous arena run and stacks into a (B, NFIELDS, M, M, M) view.
        self.blocks: List[LevelBlock] = []
        start = 0
        while start < len(leaves):
            level = leaves[start].level
            stop = start
            while stop < len(leaves) and leaves[stop].level == level:
                stop += 1
            batch = leaves[start:stop]
            u = self.arena[start * chunk : stop * chunk].reshape(
                len(batch), NFIELDS, m, m, m
            )
            x = np.empty((len(batch), self.n, self.n, self.n))
            y = np.empty_like(x)
            for j, leaf in enumerate(batch):
                cached = reuse_xy.get(leaf.key) if reuse_xy else None
                if cached is not None:
                    x[j], y[j] = cached
                else:
                    cx, cy, _ = leaf.cell_centers()
                    x[j] = cx
                    y[j] = cy
            self.blocks.append(
                LevelBlock(
                    level=level,
                    dx=batch[0].dx,
                    keys=[b.key for b in batch],
                    u=u,
                    x=x,
                    y=y,
                )
            )
            start = stop

        if ghost_payload is not None:
            # Cache hit: the ghost index plan is a pure function of topology
            # and the canonical sorted-leaf arena layout above, so the
            # fingerprint-keyed payload reconstructs it bit for bit without
            # re-tracing a single face.
            self.ghosts: GhostIndexPlan = GhostIndexPlan.from_payload(ghost_payload)
        else:
            self.ghosts = ghost_index_plan(mesh, offsets, trace_cache=trace_cache)

        # Interior/halo split for the futurized overlap path.  A pure
        # function of (n, stencil radius): delta rebuilds inherit the
        # previous plan's object, a persistent-cache hit restores the
        # stored boxes (and cross-checks them against the canonical
        # construction — a corrupt entry must not schedule), and a cold
        # build computes it fresh.
        split: Optional[RegionSplit] = None
        if reuse is not None and reuse.n == self.n:
            split = getattr(reuse, "split", None)
        if split is None and ghost_payload is not None and "split_meta" in ghost_payload:
            restored = RegionSplit.from_payload(ghost_payload)
            if restored == compute_region_split(self.n):
                split = restored
        self.split: RegionSplit = split or compute_region_split(self.n)
        self.scratch = ScratchArena()

    @property
    def n_leaves(self) -> int:
        return len(self.leaf_keys)

    def matches(self, mesh: AmrMesh) -> bool:
        """Whether this plan is still valid for ``mesh``.

        The content fingerprint covers regrids (including a regrid that
        lands back on a previously-seen topology, which revalidates); the
        view-identity check covers anything else that rebinds leaf storage
        away from this plan's arena (another plan adopting the mesh, a
        checkpoint restore, ...).
        """
        if self.mesh_ref() is not mesh:
            return False
        if self.fingerprint != mesh.fingerprint():
            return False
        nodes = mesh.nodes
        return all(
            nodes[key].subgrid.data is view
            for key, view in zip(self.leaf_keys, self.views)
        )

    def nbytes(self) -> int:
        """Arena + scratch footprint (index arrays excluded)."""
        return self.arena.nbytes + self.scratch.nbytes()

    def cache_payload(self) -> Dict[str, np.ndarray]:
        """Everything the persistent plan cache stores for this plan:
        the ghost index arrays plus the interior/halo split boxes."""
        return {**self.ghosts.to_payload(), **self.split.to_payload()}


def build_hydro_plan(
    mesh: AmrMesh,
    trace_cache: Optional[FaceTraceCache] = None,
    reuse: Optional[HydroPlan] = None,
    ghost_payload: Optional[Dict[str, np.ndarray]] = None,
) -> HydroPlan:
    """Build the batched execution plan for ``mesh`` (adopts leaf storage).

    ``trace_cache`` reuses per-face ghost traces a regrid left intact;
    ``reuse`` donates recomputable per-leaf state (cell-centre rows) from
    the previous plan; ``ghost_payload`` (a persistent-cache hit, see
    :mod:`repro.core.plancache`) skips the ghost trace entirely.  All three
    change build time only — the plan arrays are a pure function of
    topology either way.
    """
    return HydroPlan(
        mesh, trace_cache=trace_cache, reuse=reuse, ghost_payload=ghost_payload
    )


def _timer(registry, name: str):
    return registry.timer(name) if registry is not None else nullcontext()


#: Index of each primitive key within the stacked reconstruction array.
_PRIM_SLOT = {key: i for i, key in enumerate(PRIM_KEYS)}


def _axslice(ndim: int, ax: int, lo, hi) -> tuple:
    index = [slice(None)] * ndim
    index[ax] = slice(lo, hi)
    return tuple(index)


#: All-ones uint64: multiplying a bool array by it yields a full bit mask.
_U64_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
#: Bit pattern of float64 1.0 (the HLL degenerate-denominator fallback).
_U64_ONE_F = np.uint64(np.float64(1.0).view(np.uint64))


# Bit-pattern selects: ``where(cond, a, b) == b ^ ((a ^ b) & mask)`` on the
# uint64 views, with ``mask = bool * _U64_ONES``.  Identical to ``np.where``
# for every input (NaN, infinities and signed zeros included) and ~4x faster
# than NumPy's select on branch-random masks; used inline in the HLL kernel.


def _muscl_scratch(w: np.ndarray, ax: int, scratch: ScratchArena) -> np.ndarray:
    """Scratch-buffered MUSCL reconstruction, bit-identical to
    :func:`repro.hydro.reconstruct.reconstruct_axis`.

    Same elementwise expression tree, two structural savings: every
    temporary lives in the arena (the reference's face-sized temporaries
    sit above the allocator's mmap threshold, so it page-faults fresh pages
    on every call), and the reference's ``d_minus`` / ``d_plus`` are the
    same first-difference array shifted by one, so one diff (and one
    ``abs``) pass serves both.

    Returns one ``(2,) + face_shape`` stack — row 0 the left state, row 1
    the right — so the Riemann solve can run both sides per pass.
    """
    nd = w.ndim
    mx = w.shape[ax]
    g = scratch.group(("recon", ax, w.shape))
    if not g:
        shape = list(w.shape)
        shape[ax] = mx - 1
        sh_d = tuple(shape)
        shape[ax] = mx - 2
        sh_m = tuple(shape)
        shape[ax] = mx - 3
        sh_f = tuple(shape)
        g["diff"] = np.empty(sh_d)
        g["absd"] = np.empty(sh_d)
        g["prod"] = np.empty(sh_m)
        g["flag"] = np.empty(sh_m, dtype=bool)
        g["msk"] = np.empty(sh_m, dtype=np.uint64)
        g["slope"] = np.empty(sh_m)
        g["wlr"] = np.empty((2,) + sh_f)
    diff = g["diff"]
    absd = g["absd"]
    prod = g["prod"]
    flag = g["flag"]
    msk = g["msk"]
    slope = g["slope"]
    wlr = g["wlr"]
    w_left = wlr[0]
    w_right = wlr[1]

    # diff[i] = w[i+1] - w[i]; d_minus = diff[:-1], d_plus = diff[1:].
    np.subtract(w[_axslice(nd, ax, 1, None)], w[_axslice(nd, ax, 0, mx - 1)], out=diff)
    d_minus = diff[_axslice(nd, ax, 0, mx - 2)]
    d_plus = diff[_axslice(nd, ax, 1, None)]
    # minmod: where(a*b > 0, where(|a| < |b|, a, b), 0).  The inner select
    # only survives where a and b share a sign (the outer mask zeroes the
    # rest to exactly +0.0), and there it picks the smaller-magnitude
    # operand with the common sign — i.e. copysign(min(|a|, |b|), a),
    # bit-for-bit (a NaN in either operand still washes out through the
    # outer mask, whose comparison is False for NaN products).
    np.abs(diff, out=absd)
    np.minimum(
        absd[_axslice(nd, ax, 0, mx - 2)], absd[_axslice(nd, ax, 1, None)], out=slope
    )
    np.copysign(slope, d_minus, out=slope)
    np.multiply(d_minus, d_plus, out=prod)
    np.greater(prod, 0.0, out=flag)
    np.multiply(flag, _U64_ONES, out=msk)
    sv = slope.view(np.uint64)
    sv &= msk
    slope *= 0.5

    center = w[_axslice(nd, ax, 1, mx - 1)]
    np.add(
        center[_axslice(nd, ax, 0, mx - 3)],
        slope[_axslice(nd, ax, 0, mx - 3)],
        out=w_left,
    )
    np.subtract(
        center[_axslice(nd, ax, 1, None)],
        slope[_axslice(nd, ax, 1, None)],
        out=w_right,
    )
    return wlr


def _constant_scratch(w: np.ndarray, ax: int, scratch: ScratchArena) -> np.ndarray:
    """First-order face states: shifted cell values, copied into the same
    ``(2,) + face_shape`` side stack the MUSCL path produces."""
    nd = w.ndim
    mx = w.shape[ax]
    shape = list(w.shape)
    shape[ax] = mx - 3
    g = scratch.group(("recon0", ax, w.shape))
    if not g:
        g["wlr"] = np.empty((2,) + tuple(shape))
    wlr = g["wlr"]
    np.copyto(wlr[0], w[_axslice(nd, ax, 1, mx - 2)])
    np.copyto(wlr[1], w[_axslice(nd, ax, 2, mx - 1)])
    return wlr


def _hll_scratch(
    wlr: np.ndarray,
    axis: int,
    eos: IdealGasEOS,
    scratch: ScratchArena,
) -> np.ndarray:
    """Scratch-buffered HLL solve over a ``(2,) + (K,) + face_shape`` side
    stack (row 0 the left states, row 1 the right).

    Bit-identical to :func:`repro.hydro.riemann.hll_flux` (the signal
    output, unused on this path, is skipped).  Returns a scratch array of
    shape ``(NFIELDS,) + face_shape`` that stays valid until the next
    ``_hll_scratch`` call with the same face shape.

    Structural savings over the reference, none of which move a bit:

    * both sides run through every conserved / flux / sound-speed
      expression as one ufunc call on the side-stacked pair, halving the
      NumPy dispatch count;
    * the passive rows (tau / f1 / f2, conserved == primitive) are never
      copied into a conserved stack — their flux and jump terms read the
      primitives directly (``PRIM_KEYS[5:]`` lines up with
      ``Field.TAU..FRAC2``);
    * ``max(p, 0)`` is computed once per side and reused by the pressure
      flux and the sound speed (the reference evaluates it three times).
    """
    fshape = wlr.shape[2:]
    wide = (NFIELDS,) + fshape
    g = scratch.group(("hll", fshape))
    if not g:
        for name in ("u2", "f2", "t4"):
            g[name] = np.empty((2,) + wide)
        for name in ("fs", "diff"):
            g[name] = np.empty(wide)
        for name in ("maxp2", "kin2", "tmp2", "c2"):
            g[name] = np.empty((2,) + fshape)
        for name in ("sl", "sr", "slsr", "safe"):
            g[name] = np.empty(fshape)
        g["mask"] = np.empty(fshape, dtype=bool)
        g["umask"] = np.empty(fshape, dtype=np.uint64)
    u2, f2, t4 = g["u2"], g["f2"], g["t4"]
    fs, dwide = g["fs"], g["diff"]
    maxp2, kin2, tmp2, c2 = g["maxp2"], g["kin2"], g["tmp2"], g["c2"]
    s_left, s_right, slsr = g["sl"], g["sr"], g["slsr"]
    safe = g["safe"]
    mask = g["mask"]
    npass = Field.TAU  # first passive row; rows [npass:] stay primitive

    # _conserved_from_prim on both sides at once, reference expressions.
    rho2 = u2[:, Field.RHO]
    np.maximum(wlr[:, _PRIM_SLOT["rho"]], eos.rho_floor, out=rho2)
    v2x = wlr[:, _PRIM_SLOT["vx"]]
    v2y = wlr[:, _PRIM_SLOT["vy"]]
    v2z = wlr[:, _PRIM_SLOT["vz"]]
    # kinetic = (0.5 * rho) * ((vx**2 + vy**2) + vz**2), reference order.
    np.multiply(v2x, v2x, out=kin2)
    np.multiply(v2y, v2y, out=tmp2)
    kin2 += tmp2
    np.multiply(v2z, v2z, out=tmp2)
    kin2 += tmp2
    np.multiply(0.5, rho2, out=tmp2)
    np.multiply(tmp2, kin2, out=kin2)
    np.maximum(wlr[:, _PRIM_SLOT["p"]], 0.0, out=maxp2)
    np.multiply(rho2, v2x, out=u2[:, Field.SX])
    np.multiply(rho2, v2y, out=u2[:, Field.SY])
    np.multiply(rho2, v2z, out=u2[:, Field.SZ])
    # egas = kinetic + eint with eint = max(p, 0) / (gamma - 1).
    np.divide(maxp2, eos.gamma - 1.0, out=u2[:, Field.EGAS])
    u2[:, Field.EGAS] += kin2

    # _physical_flux on both sides: f = u * v, then the pressure fix-ups.
    vel_slot = _PRIM_SLOT[("vx", "vy", "vz")[axis]]
    v2 = wlr[:, vel_slot]
    np.multiply(u2[:, :npass], v2[:, None], out=f2[:, :npass])
    np.multiply(wlr[:, npass:], v2[:, None], out=f2[:, npass:])
    f2[:, Field.SX + axis] += maxp2
    np.multiply(maxp2, v2, out=tmp2)
    f2[:, Field.EGAS] += tmp2

    # sound_speed: sqrt((gamma * max(p, 0)) / max(rho, floor)) — the floored
    # rho is exactly the conserved stack's density row.
    np.multiply(eos.gamma, maxp2, out=c2)
    np.divide(c2, rho2, out=c2)
    np.sqrt(c2, out=c2)

    # s_left = min(vl - cl, vr - cr), s_right = max(vl + cl, vr + cr).
    np.subtract(v2, c2, out=kin2)
    np.minimum(kin2[0], kin2[1], out=s_left)
    np.add(v2, c2, out=kin2)
    np.maximum(kin2[0], kin2[1], out=s_right)

    # safe = where(|denom| > 1e-300, denom, 1.0) with denom = s_right - s_left,
    # as an in-place bit select against the constant 1.0 pattern.  In any
    # non-degenerate state s_right - s_left ~ 2c, so the select is skipped
    # unless some face actually collapses (same bits either way).
    umask = g["umask"]
    np.subtract(s_right, s_left, out=safe)
    np.abs(safe, out=slsr)
    np.greater(slsr, 1e-300, out=mask)
    if not mask.all():
        np.multiply(mask, _U64_ONES, out=umask)
        safe_v = safe.view(np.uint64)
        safe_v ^= _U64_ONE_F
        safe_v &= umask
        safe_v ^= _U64_ONE_F

    # f_star = ((s_r * fl - s_l * fr) + (s_l * s_r) * (ur - ul)) / safe.
    # Pairing s_right with fl and s_left with fr turns the two coefficient
    # products into one broadcast multiply over the side stack.
    np.multiply(s_left, s_right, out=slsr)
    np.subtract(u2[1, :npass], u2[0, :npass], out=dwide[:npass])
    np.subtract(wlr[1, npass:], wlr[0, npass:], out=dwide[npass:])
    coef2 = kin2
    coef2[0] = s_right
    coef2[1] = s_left
    np.multiply(coef2[:, None], f2, out=t4)
    np.subtract(t4[0], t4[1], out=fs)
    t2 = t4[1]
    np.multiply(slsr, dwide, out=t2)
    fs += t2
    fs /= safe
    fl = f2[0]
    fr = f2[1]

    # flux = where(s_l >= 0, fl, where(s_r <= 0, fr, f_star)): successive
    # bit selects into f_star pick the same element in every case (the
    # outer condition is applied last, so it wins on overlap, exactly like
    # the nested where).  Subsonic faces take f_star, so each select is
    # skipped outright when its condition holds nowhere — the usual case —
    # which drops six field-wide integer passes per solve with identical
    # output bits.
    fsv = fs.view(np.uint64)
    t2v = t2.view(np.uint64)
    np.less_equal(s_right, 0.0, out=mask)
    if mask.any():
        np.multiply(mask, _U64_ONES, out=umask)
        np.bitwise_xor(fr.view(np.uint64), fsv, out=t2v)
        t2v &= umask
        fsv ^= t2v
    np.greater_equal(s_left, 0.0, out=mask)
    if mask.any():
        np.multiply(mask, _U64_ONES, out=umask)
        np.bitwise_xor(fl.view(np.uint64), fsv, out=t2v)
        t2v &= umask
        fsv ^= t2v
    return fs


def stacked_primitives_kernel(
    u: np.ndarray, eos: IdealGasEOS, scratch: ScratchArena, tag
) -> np.ndarray:
    """Primitives of one ``(B, NFIELDS, M, M, M)`` block, stacked per key.

    Returns a ``(len(PRIM_KEYS), B, M, M, M)`` scratch array holding the
    exact values of :func:`repro.hydro.solver.primitives_from_conserved`
    (same elementwise expressions, evaluated into reused buffers), laid out
    so the whole reconstruction sweep runs as one wide kernel per axis.

    Two cost cuts with identical bits: the dual-energy fallback
    ``tau ** gamma`` (a ``pow`` over the whole block, by far the most
    expensive scalar op here) only runs when the energy-difference switch
    actually trips somewhere, and the passive rows (tau / f1 / f2, primitive
    == conserved) are **not** copied — the caller reads them straight from
    ``u``, so only rows ``:5`` of the result are meaningful.
    """
    ut = u.transpose(1, 0, 2, 3, 4)
    shape = ut.shape[1:]
    ws = scratch.get(("prims", tag), (len(PRIM_KEYS),) + shape)
    work = scratch.get(("prims.work", tag), (2,) + shape)
    mask = scratch.get(("prims.mask", tag), shape, dtype=bool)
    rho = ws[_PRIM_SLOT["rho"]]
    vx = ws[_PRIM_SLOT["vx"]]
    vy = ws[_PRIM_SLOT["vy"]]
    vz = ws[_PRIM_SLOT["vz"]]
    np.maximum(ut[Field.RHO], eos.rho_floor, out=rho)
    np.divide(ut[Field.SX], rho, out=vx)
    np.divide(ut[Field.SY], rho, out=vy)
    np.divide(ut[Field.SZ], rho, out=vz)
    # kinetic = (0.5 * rho) * ((vx**2 + vy**2) + vz**2), associated exactly
    # as the reference's ``0.5 * rho * (vx**2 + vy**2 + vz**2)``.
    kinetic = work[0]
    np.multiply(vx, vx, out=kinetic)
    tmp = work[1]
    np.multiply(vy, vy, out=tmp)
    kinetic += tmp
    np.multiply(vz, vz, out=tmp)
    kinetic += tmp
    np.multiply(0.5, rho, out=tmp)
    np.multiply(tmp, kinetic, out=kinetic)
    # dual_energy_eint: where(egas - kin < eta * egas, tau ** gamma branch,
    # max(egas - kin, floor)).  The base branch is computed everywhere (the
    # tau branch overwrites it where the switch trips, same value as the
    # reference's where), and the pow only runs if some cell actually trips.
    egas = ut[Field.EGAS]
    eint = ws[_PRIM_SLOT["p"]]
    np.subtract(egas, kinetic, out=eint)
    np.multiply(eos.dual_eta, egas, out=tmp)
    np.less(eint, tmp, out=mask)
    any_tau = mask.any()
    np.maximum(eint, eos.eint_floor, out=eint)
    if any_tau:
        np.maximum(ut[Field.TAU], 0.0, out=tmp)
        np.power(tmp, eos.gamma, out=tmp)
        umask = scratch.get(("prims.umask", tag), shape, dtype=np.uint64)
        np.multiply(mask, _U64_ONES, out=umask)
        ev = eint.view(np.uint64)
        tv = tmp.view(np.uint64)
        tv ^= ev
        tv &= umask
        ev ^= tv
    # pressure = (gamma - 1) * max(eint, floor); multiplication commutes
    # bitwise, so the in-place scale matches the reference expression.
    np.maximum(eint, eos.eint_floor, out=eint)
    eint *= eos.gamma - 1.0
    return ws


@declare_effects(
    reads=[(ANY, "U", "Host"), (ANY, "U.ghost", "Host")],
    writes=[(ANY, "dudt", "Host"), (ANY, "boundary_flux", "Host")],
)
def stacked_rhs_kernel(
    u: np.ndarray,
    dx: float,
    eos: IdealGasEOS,
    dudt: np.ndarray,
    reconstruction: str = "muscl",
    faces: Optional[Dict[Tuple[int, int], np.ndarray]] = None,
    registry=None,
    scratch: Optional[ScratchArena] = None,
    tag=0,
) -> None:
    """Flux divergence over one stacked ``(B, NFIELDS, M, M, M)`` block.

    Bit-identical to :func:`repro.hydro.solver.dudt_subgrid` per leaf: the
    same reconstruction, Riemann solve and per-axis accumulation order run
    over the stacked block (all elementwise, so batching cannot change
    rounding).  Two batched-only optimizations on top of stacking:

    * the reference reconstructs over the full transverse extent and crops
      the corner-garbage afterwards; fluxes are pointwise along each axis
      line, so trimming the transverse axes to the interior *before* the
      sweep drops ~2.25x of the work without changing a bit;
    * the eight primitive keys stack into one ``(8, B, ...)`` array, so
      each axis sweep is one wide reconstruction instead of eight.

    ``dudt`` is ``(B, NFIELDS, n, n, n)`` and is overwritten; ``faces``
    (when given) maps ``(axis, side)`` to ``(B, NFIELDS, n, n)``
    boundary-flux buffers for the refluxing step.
    """
    if reconstruction == "muscl":
        reconstruct = _muscl_scratch
    elif reconstruction == "constant":
        reconstruct = _constant_scratch
    else:
        raise ValueError(f"unknown reconstruction {reconstruction!r}")
    if scratch is None:
        scratch = ScratchArena()
    # Per-axis interior extents and ghost margins: the full-block call has
    # all three equal (n, n, n with margin g), but the overlap path runs
    # the same kernel over interior/halo sub-boxes whose extents differ
    # per axis — the arithmetic per cell is identical either way.
    nb = dudt.shape[0]
    ns = (dudt.shape[2], dudt.shape[3], dudt.shape[4])
    gs = tuple((u.shape[2 + i] - ns[i]) // 2 for i in range(3))
    ws = stacked_primitives_kernel(u, eos, scratch, tag)
    # Passive primitive rows (tau / f1 / f2) equal their conserved fields,
    # and PRIM_KEYS[5:] lines up with Field.TAU..FRAC2 — read them straight
    # from u instead of staging copies through ws.
    upass = u.transpose(1, 0, 2, 3, 4)[Field.TAU : Field.FRAC2 + 1]
    dudt[...] = 0.0
    nk = len(PRIM_KEYS)
    interiors = tuple(slice(gs[i], gs[i] + ns[i]) for i in range(3))
    # When dx is a power of two (every level of a power-of-two domain),
    # x / dx == x * (1 / dx) for every float x: scaling by an exact power
    # of two changes only the exponent, so division and
    # reciprocal-multiplication round identically.  The multiply is ~4x
    # cheaper than the divide on a full block.
    dx_pow2 = math.frexp(dx)[0] == 0.5
    rdx = 1.0 / dx
    # dudt seen as (NFIELDS, sweep, B, t1, t2) per axis, matching the
    # sweep-major flux layout below (dudt itself is (B, NFIELDS, n, n, n)).
    dudt_sweep = (
        dudt.transpose(1, 2, 0, 3, 4),
        dudt.transpose(1, 3, 0, 2, 4),
        dudt.transpose(1, 4, 0, 2, 3),
    )

    for axis in range(3):
        sweep = axis + 2  # the sweep spatial axis within (K, B, x, y, z)
        na = ns[axis]
        ga = gs[axis]
        t1, t2 = tuple(ns[i] for i in range(3) if i != axis)
        with _timer(registry, "hydro.reconstruct"):
            # Stencil trim along the sweep axis (cells [g-2, g+n+2) feed the
            # n + 1 interior faces) + transverse trim to the interior, copied
            # once into sweep-major contiguous layout (K, Mx, B, t1, t2) so
            # every reconstruction pass streams contiguous memory.
            index = [slice(None)] * 5
            for i in range(3):
                index[i + 2] = interiors[i]
            index[sweep] = slice(ga - 2, ga + na + 2)
            perm = (0, sweep, 1) + tuple(d for d in (2, 3, 4) if d != sweep)
            trim = tuple(index)
            wbuf = scratch.get(("rhs.sweep", tag), (nk, na + 4, nb, t1, t2))
            np.copyto(wbuf[:5], ws[:5][trim].transpose(perm))
            np.copyto(wbuf[5:], upass[trim].transpose(perm))
            wlr = reconstruct(wbuf, 1, scratch)
            assert wlr.shape[2] == na + 1, "stencil accounting broke"

        with _timer(registry, "hydro.riemann"):
            flux = _hll_scratch(wlr, axis, eos, scratch)

        # flux is (NFIELDS, na + 1, B, t1, t2): divergence always slices the
        # face axis, and the strided write lands in the dudt view once.
        div = scratch.get(("rhs.div", tag), (NFIELDS, na, nb, t1, t2))
        np.subtract(flux[:, 1 : na + 1], flux[:, 0:na], out=div)
        if dx_pow2:
            div *= rdx
        else:
            div /= dx
        target = dudt_sweep[axis]
        target -= div

        # Boundary-flux extraction: faces maps (axis, side) to a buffer for
        # the first / last face of this sweep.  A sub-box pass only carries
        # the keys whose faces coincide with the *block* boundary, so the
        # dict may be sparse — absent keys are internal sub-box faces whose
        # fluxes must not be recorded.
        if faces is not None:
            f_lo = faces.get((axis, 0))
            if f_lo is not None:
                f_lo[...] = flux[:, 0].transpose(1, 0, 2, 3)
            f_hi = faces.get((axis, 1))
            if f_hi is not None:
                f_hi[...] = flux[:, na].transpose(1, 0, 2, 3)


@declare_effects(
    reads=[(ANY, "U", "Host"), (ANY, "accel", "Host")],
    accums=[(ANY, "dudt", "Host")],
)
def stacked_source_kernel(
    u_int: np.ndarray,
    dudt: np.ndarray,
    accel: Optional[np.ndarray] = None,
    omega: float = 0.0,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
) -> None:
    """Gravity + rotating-frame sources over one block, in reference order.

    ``u_int`` and ``dudt`` are ``(B, NFIELDS, n, n, n)``; ``accel`` (when
    given) is ``(B, 3, n, n, n)``.  Matches
    :func:`repro.hydro.sources.gravity_source` then
    :func:`~repro.hydro.sources.rotating_frame_source` term for term.
    """
    ut = u_int.transpose(1, 0, 2, 3, 4)
    dt_t = dudt.transpose(1, 0, 2, 3, 4)
    rho = ut[Field.RHO]
    if accel is not None:
        g0, g1, g2 = accel[:, 0], accel[:, 1], accel[:, 2]
        dt_t[Field.SX] += rho * g0
        dt_t[Field.SY] += rho * g1
        dt_t[Field.SZ] += rho * g2
        dt_t[Field.EGAS] += (
            ut[Field.SX] * g0 + ut[Field.SY] * g1 + ut[Field.SZ] * g2
        )
    if omega != 0.0:
        sx, sy = ut[Field.SX], ut[Field.SY]
        cfx = omega**2 * x
        cfy = omega**2 * y
        dt_t[Field.SX] += 2.0 * omega * sy + rho * cfx
        dt_t[Field.SY] += -2.0 * omega * sx + rho * cfy
        dt_t[Field.EGAS] += sx * cfx + sy * cfy


@declare_effects(
    reads=[(ANY, "U0", "Host"), (ANY, "dudt", "Host")],
    writes=[(ANY, "U", "Host")],
)
def stacked_update_kernel(
    u_int: np.ndarray,
    u0: np.ndarray,
    dudt: np.ndarray,
    a0: float,
    a1: float,
    dt: float,
    eos: IdealGasEOS,
    scratch: Optional[ScratchArena] = None,
    tag=0,
) -> None:
    """RK3 convex combination + positivity floors over one level block.

    ``u_new = a0 * u0 + a1 * (u + dt * dudt)`` evaluated in the reference's
    association, staged through scratch when an arena is provided.
    """
    if scratch is None:
        u_int[...] = a0 * u0 + a1 * (u_int + dt * dudt)
    else:
        acc = scratch.get(("upd.acc", tag), u0.shape)
        tmp = scratch.get(("upd.tmp", tag), u0.shape)
        np.multiply(dt, dudt, out=acc)
        np.add(u_int, acc, out=acc)
        np.multiply(a1, acc, out=acc)
        np.multiply(a0, u0, out=tmp)
        np.add(tmp, acc, out=acc)
        u_int[...] = acc
    ut = u_int.transpose(1, 0, 2, 3, 4)
    np.maximum(ut[Field.RHO], eos.rho_floor, out=ut[Field.RHO])
    np.maximum(ut[Field.TAU], 0.0, out=ut[Field.TAU])
    np.maximum(ut[Field.FRAC1], 0.0, out=ut[Field.FRAC1])
    np.maximum(ut[Field.FRAC2], 0.0, out=ut[Field.FRAC2])


@declare_effects(reads=[(ANY, "U", "Host")], writes=[(ANY, "U.tau", "Host")])
def stacked_resync_tau_kernel(u_int: np.ndarray, eos: IdealGasEOS) -> None:
    """End-of-step tau resync where the energy difference is trustworthy."""
    ut = u_int.transpose(1, 0, 2, 3, 4)
    rho = np.maximum(ut[Field.RHO], eos.rho_floor)
    kinetic = 0.5 * (ut[Field.SX] ** 2 + ut[Field.SY] ** 2 + ut[Field.SZ] ** 2) / rho
    diff = ut[Field.EGAS] - kinetic
    healthy = diff > eos.dual_eta * ut[Field.EGAS]
    ut[Field.TAU] = np.where(
        healthy, eos.tau_from_eint(np.maximum(diff, eos.eint_floor)), ut[Field.TAU]
    )


@declare_effects(reads=[(ANY, "U", "Host")])
def stacked_signal_kernel(
    u_int: np.ndarray, eos: IdealGasEOS, out: np.ndarray
) -> None:
    """Per-leaf peak CFL wave speed ``|vx|+|vy|+|vz|+3c`` over one block.

    Folded into the end of the batched step so ``global_timestep`` reads a
    cached per-leaf signal instead of re-walking the mesh.  Exact maxima,
    so the cached dt equals the recomputed one bit for bit.
    """
    w = primitives_from_conserved(u_int.transpose(1, 0, 2, 3, 4), eos)
    c = eos.sound_speed(w["rho"], w["p"])
    speed = np.abs(w["vx"]) + np.abs(w["vy"]) + np.abs(w["vz"]) + 3.0 * c
    np.max(speed, axis=(1, 2, 3), out=out)


# -- array-backend dispatch -------------------------------------------------


@dataclass(frozen=True)
class StackedKernels:
    """The kernel set one batched RK3 step dispatches through.

    Every entry has the corresponding ``stacked_*_kernel`` signature; the
    integrator calls the table, not the module functions, so swapping the
    table swaps the implementation without touching the step schedule —
    the functor-contract analog of pointing one Kokkos kernel at another
    execution space.
    """

    backend_name: str
    rhs: Callable
    source: Callable
    update: Callable
    resync_tau: Callable
    signal: Callable


#: The inline seed table: exactly the module-level stacked kernels.
_SEED_KERNELS = None  # built lazily (the functions are defined above)


def _seed_kernels() -> StackedKernels:
    global _SEED_KERNELS
    if _SEED_KERNELS is None:
        _SEED_KERNELS = StackedKernels(
            backend_name="seed",
            rhs=stacked_rhs_kernel,
            source=stacked_source_kernel,
            update=stacked_update_kernel,
            resync_tau=stacked_resync_tau_kernel,
            signal=stacked_signal_kernel,
        )
    return _SEED_KERNELS


def _jit_kernels(backend) -> StackedKernels:
    """Table with the top kernels swapped for the backend-compiled
    implementations from :mod:`repro.hydro.jit_kernels`.

    The compiled set is cached on the *backend* (shape-generic, so one
    compilation serves every topology); all per-topology state — the
    scratch buffers the wrappers use — lives in the plan's
    :class:`ScratchArena` and is therefore rebuilt with the plan whenever
    a regrid bumps ``topology_version``.
    """
    from repro.hydro.jit_kernels import build_kernels

    kset = backend.kernel_table("hydro.stacked", build_kernels)
    k_rhs, k_update, k_resync = kset["rhs"], kset["update"], kset["resync_tau"]

    def rhs(u, dx, eos, dudt, reconstruction="muscl", faces=None,
            registry=None, scratch=None, tag=0):
        if reconstruction not in ("muscl", "constant"):
            raise ValueError(f"unknown reconstruction {reconstruction!r}")
        if scratch is None:
            scratch = ScratchArena()
        n = dudt.shape[2]
        face_buf = scratch.get(
            ("jit.faces", tag), (6, dudt.shape[0], NFIELDS, n, n)
        )
        with _timer(registry, "hydro.riemann"):
            k_rhs(
                u, dudt, face_buf, 1.0 / dx,
                eos.gamma, eos.dual_eta, eos.rho_floor, eos.eint_floor,
                1 if reconstruction == "muscl" else 0,
                1 if faces is not None else 0,
            )
        if faces is not None:
            for axis in range(3):
                for side in (0, 1):
                    faces[(axis, side)][...] = face_buf[2 * axis + side]

    def update(u_int, u0, dudt, a0, a1, dt, eos, scratch=None, tag=0):
        k_update(u_int, u0, dudt, a0, a1, dt, eos.rho_floor)

    def resync(u_int, eos):
        k_resync(u_int, eos.gamma, eos.dual_eta, eos.rho_floor, eos.eint_floor)

    return StackedKernels(
        backend_name=backend.name,
        rhs=rhs,
        source=stacked_source_kernel,
        update=update,
        resync_tau=resync,
        signal=stacked_signal_kernel,
    )


def resolve_stacked_kernels(backend=None) -> StackedKernels:
    """The stacked-kernel dispatch table for an array backend.

    ``None`` returns the inline seed table (no indirection beyond the
    table itself).  A non-JIT backend (``numpy``) routes the *same*
    functions through the backend's kernel cache — the exact tier of the
    equivalence harness proves that plumbing moves no bits.  A JIT
    backend (``numba`` / ``pyjit``) swaps in the compiled RHS / update /
    resync implementations, bounded by the tolerance tier.
    """
    if backend is None:
        return _seed_kernels()
    if backend.jit:
        return _jit_kernels(backend)
    seed = _seed_kernels()
    return StackedKernels(
        backend_name=backend.name,
        rhs=backend.specialize("hydro.rhs", lambda: stacked_rhs_kernel),
        source=backend.specialize("hydro.source", lambda: stacked_source_kernel),
        update=backend.specialize("hydro.update", lambda: stacked_update_kernel),
        resync_tau=backend.specialize(
            "hydro.resync_tau", lambda: stacked_resync_tau_kernel
        ),
        signal=backend.specialize("hydro.signal", lambda: stacked_signal_kernel),
    )
