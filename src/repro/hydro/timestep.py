"""Timestep control.

Octo-Tiger does **not** use adaptive (per-level) time stepping: one global
dt, the minimum CFL limit over every leaf, advances the whole tree — that is
what keeps conservation at machine precision.  We reproduce that policy.
"""

from __future__ import annotations

import numpy as np

from repro.hydro.eos import IdealGasEOS
from repro.hydro.solver import primitives_from_conserved
from repro.octree.mesh import AmrMesh
from repro.octree.subgrid import SubGrid


def cfl_timestep_subgrid(
    sg: SubGrid, dx: float, eos: IdealGasEOS, cfl: float = 0.4
) -> float:
    """CFL limit of one sub-grid's interior: cfl * dx / max(|v| + c)."""
    s = sg.interior
    u = sg.data[:, s, s, s]
    w = primitives_from_conserved(u, eos)
    c = eos.sound_speed(w["rho"], w["p"])
    speed = np.abs(w["vx"]) + np.abs(w["vy"]) + np.abs(w["vz"]) + 3.0 * c
    peak = float(speed.max())
    if peak <= 0.0:
        return np.inf
    return cfl * dx / peak


def global_timestep(mesh: AmrMesh, eos: IdealGasEOS, cfl: float = 0.4) -> float:
    """The single global dt: minimum CFL limit over all leaves."""
    dt = np.inf
    for leaf in mesh.leaves():
        dt = min(dt, cfl_timestep_subgrid(leaf.subgrid, leaf.dx, eos, cfl))
    if not np.isfinite(dt):
        raise ValueError("global timestep is unbounded: mesh holds no signal")
    return dt
