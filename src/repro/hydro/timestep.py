"""Timestep control.

Octo-Tiger does **not** use adaptive (per-level) time stepping: one global
dt, the minimum CFL limit over every leaf, advances the whole tree — that is
what keeps conservation at machine precision.  We reproduce that policy.

The per-leaf signal (peak wave speed) is a pure reduction over the leaf's
interior, so the batched integrator folds it into the end of each step and
:func:`global_timestep` can be served from that cache (``signals=``) instead
of re-walking the mesh; both paths share :func:`max_signal_subgrid` /
``_dt_from_peak`` so the cached and recomputed dt agree exactly.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.hydro.eos import IdealGasEOS
from repro.hydro.solver import primitives_from_conserved
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey
from repro.octree.subgrid import SubGrid


def max_signal_subgrid(sg: SubGrid, eos: IdealGasEOS) -> float:
    """Peak CFL wave speed ``|vx| + |vy| + |vz| + 3c`` over one interior."""
    s = sg.interior
    u = sg.data[:, s, s, s]
    w = primitives_from_conserved(u, eos)
    c = eos.sound_speed(w["rho"], w["p"])
    speed = np.abs(w["vx"]) + np.abs(w["vy"]) + np.abs(w["vz"]) + 3.0 * c
    return float(speed.max())


def _dt_from_peak(dx: float, peak: float, cfl: float) -> float:
    if peak <= 0.0:
        return np.inf
    return cfl * dx / peak


def cfl_timestep_subgrid(
    sg: SubGrid, dx: float, eos: IdealGasEOS, cfl: float = 0.4
) -> float:
    """CFL limit of one sub-grid's interior: cfl * dx / max(|v| + c)."""
    return _dt_from_peak(dx, max_signal_subgrid(sg, eos), cfl)


def global_timestep(
    mesh: AmrMesh,
    eos: IdealGasEOS,
    cfl: float = 0.4,
    signals: Optional[Dict[NodeKey, float]] = None,
) -> float:
    """The single global dt: minimum CFL limit over all leaves.

    ``signals`` optionally maps leaf keys to cached peak wave speeds (from
    the last step's signal reduction); leaves present in it skip the
    primitives recomputation.  Missing leaves fall back to the full
    computation, so a partially stale cache is still correct.
    """
    dt = np.inf
    for leaf in mesh.leaves():
        peak = signals.get(leaf.key) if signals is not None else None
        if peak is None:
            peak = max_signal_subgrid(leaf.subgrid, eos)
        dt = min(dt, _dt_from_peak(leaf.dx, peak, cfl))
    if not np.isfinite(dt):
        raise ValueError("global timestep is unbounded: mesh holds no signal")
    return dt
