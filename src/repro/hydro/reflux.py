"""Flux correction (refluxing) at coarse-fine AMR boundaries.

At a coarse-fine interface the two sides compute *different* fluxes for the
same physical face (the coarse side from prolonged ghost data, the fine side
from its own reconstruction), so without correction the union of all cells
is not conservative.  The standard fix — which Octo-Tiger applies, enabling
its machine-precision conservation on adaptive meshes — is to make the fine
fluxes authoritative: after each stage, the coarse cells adjacent to a
refined neighbour have their flux-divergence contribution replaced by the
area-weighted restriction of the fine fluxes through the shared face.

Because Octo-Tiger (and this reproduction) advances all levels with one
global dt, no time interpolation of the flux registers is needed.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey

#: Per-leaf boundary fluxes: {(axis, side): (NFIELDS, N, N)}.
BoundaryFluxes = Dict[Tuple[int, int], np.ndarray]


def _transverse_axes(axis: int) -> Tuple[int, int]:
    return tuple(a for a in range(3) if a != axis)  # type: ignore[return-value]


def _restrict_face(flux: np.ndarray) -> np.ndarray:
    """2x2 area average over a face array (NFIELDS, n, n) -> (NFIELDS, n/2, n/2)."""
    return 0.25 * (
        flux[:, 0::2, 0::2]
        + flux[:, 1::2, 0::2]
        + flux[:, 0::2, 1::2]
        + flux[:, 1::2, 1::2]
    )


def apply_flux_corrections(
    mesh: AmrMesh,
    rhs: Dict[NodeKey, np.ndarray],
    boundary_fluxes: Dict[NodeKey, BoundaryFluxes],
) -> int:
    """Correct the coarse-side flux divergence at every coarse-fine face.

    ``rhs`` maps leaf keys to their (NFIELDS, N, N, N) dudt arrays (mutated
    in place); ``boundary_fluxes`` holds each leaf's outer-face fluxes from
    :func:`repro.hydro.solver.dudt_subgrid`.  Returns the number of faces
    corrected.
    """
    corrected = 0
    n = mesh.n
    half = n // 2
    for leaf in mesh.leaves():
        if leaf.key not in rhs:
            continue
        for axis in range(3):
            for side in (0, 1):
                kind, children = mesh.face_neighbor(leaf, axis, side)
                if kind != "fine":
                    continue
                coarse_flux = boundary_fluxes[leaf.key][(axis, side)]
                fine_flux = np.empty_like(coarse_flux)
                t1, t2 = _transverse_axes(axis)
                for child in children:
                    child_face = boundary_fluxes[child.key][(axis, 1 - side)]
                    block = _restrict_face(child_face)
                    b1 = (child.octant >> t1) & 1
                    b2 = (child.octant >> t2) & 1
                    fine_flux[
                        :,
                        b1 * half : (b1 + 1) * half,
                        b2 * half : (b2 + 1) * half,
                    ] = block

                delta = fine_flux - coarse_flux
                # dudt had -(F_high - F_low)/dx; replacing the face flux by
                # the restricted fine flux shifts the adjacent cell layer by
                # -delta/dx on the high side and +delta/dx on the low side.
                index = [slice(None)] * 4
                index[axis + 1] = n - 1 if side == 1 else 0
                sign = -1.0 if side == 1 else 1.0
                rhs[leaf.key][tuple(index)] += sign * delta / leaf.dx
                corrected += 1
    return corrected
