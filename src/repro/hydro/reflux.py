"""Flux correction (refluxing) at coarse-fine AMR boundaries.

At a coarse-fine interface the two sides compute *different* fluxes for the
same physical face (the coarse side from prolonged ghost data, the fine side
from its own reconstruction), so without correction the union of all cells
is not conservative.  The standard fix — which Octo-Tiger applies, enabling
its machine-precision conservation on adaptive meshes — is to make the fine
fluxes authoritative: after each stage, the coarse cells adjacent to a
refined neighbour have their flux-divergence contribution replaced by the
area-weighted restriction of the fine fluxes through the shared face.

Because Octo-Tiger (and this reproduction) advances all levels with one
global dt, no time interpolation of the flux registers is needed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey

#: Per-leaf boundary fluxes: {(axis, side): (NFIELDS, N, N)}.
BoundaryFluxes = Dict[Tuple[int, int], np.ndarray]


def _transverse_axes(axis: int) -> Tuple[int, int]:
    return tuple(a for a in range(3) if a != axis)  # type: ignore[return-value]


def _restrict_face(flux: np.ndarray) -> np.ndarray:
    """2x2 area average over a face array (NFIELDS, n, n) -> (NFIELDS, n/2, n/2)."""
    return 0.25 * (
        flux[:, 0::2, 0::2]
        + flux[:, 1::2, 0::2]
        + flux[:, 0::2, 1::2]
        + flux[:, 1::2, 1::2]
    )


def apply_flux_corrections(
    mesh: AmrMesh,
    rhs: Dict[NodeKey, np.ndarray],
    boundary_fluxes: Dict[NodeKey, BoundaryFluxes],
) -> int:
    """Correct the coarse-side flux divergence at every coarse-fine face.

    ``rhs`` maps leaf keys to their (NFIELDS, N, N, N) dudt arrays (mutated
    in place); ``boundary_fluxes`` holds each leaf's outer-face fluxes from
    :func:`repro.hydro.solver.dudt_subgrid`.  Returns the number of faces
    corrected.
    """
    corrected = 0
    n = mesh.n
    half = n // 2
    for leaf in mesh.leaves():
        if leaf.key not in rhs:
            continue
        for axis in range(3):
            for side in (0, 1):
                kind, children = mesh.face_neighbor(leaf, axis, side)
                if kind != "fine":
                    continue
                coarse_flux = boundary_fluxes[leaf.key][(axis, side)]
                fine_flux = np.empty_like(coarse_flux)
                t1, t2 = _transverse_axes(axis)
                for child in children:
                    child_face = boundary_fluxes[child.key][(axis, 1 - side)]
                    block = _restrict_face(child_face)
                    b1 = (child.octant >> t1) & 1
                    b2 = (child.octant >> t2) & 1
                    fine_flux[
                        :,
                        b1 * half : (b1 + 1) * half,
                        b2 * half : (b2 + 1) * half,
                    ] = block

                delta = fine_flux - coarse_flux
                # dudt had -(F_high - F_low)/dx; replacing the face flux by
                # the restricted fine flux shifts the adjacent cell layer by
                # -delta/dx on the high side and +delta/dx on the low side.
                index = [slice(None)] * 4
                index[axis + 1] = n - 1 if side == 1 else 0
                sign = -1.0 if side == 1 else 1.0
                rhs[leaf.key][tuple(index)] += sign * delta / leaf.dx
                corrected += 1
    return corrected


#: One coarse-fine face in slot terms: (coarse key, coarse slot, axis, side,
#: coarse dx, ((b1, b2, child slot), ...)) — everything
#: :func:`apply_flux_table` needs to reproduce one
#: :func:`apply_flux_corrections` face without touching the mesh.
FluxTableRow = Tuple[
    NodeKey, int, int, int, float, Tuple[Tuple[int, int, int], ...]
]


def build_reflux_table(
    mesh: AmrMesh, slot: Dict[NodeKey, int]
) -> List[FluxTableRow]:
    """Snapshot every coarse-fine face as slot indices into the flux arena.

    The rows are emitted in exactly the ``mesh.leaves()`` / axis / side
    order :func:`apply_flux_corrections` walks, so replaying them with
    :func:`apply_flux_table` accumulates edge-overlapping corrections in
    the same order — bit-identical dudt.  Built by the parent (which holds
    the live mesh) and shipped to process-backend workers, whose forked
    mesh copy goes stale after an in-place replan and can never again be
    trusted for neighbor lookups.
    """
    table: List[FluxTableRow] = []
    for leaf in mesh.leaves():
        for axis in range(3):
            t1, t2 = _transverse_axes(axis)
            for side in (0, 1):
                kind, children = mesh.face_neighbor(leaf, axis, side)
                if kind != "fine":
                    continue
                quads = tuple(
                    (
                        (child.octant >> t1) & 1,
                        (child.octant >> t2) & 1,
                        slot[child.key],
                    )
                    for child in children
                )
                table.append(
                    (leaf.key, slot[leaf.key], axis, side, leaf.dx, quads)
                )
    return table


def apply_flux_table(
    table: List[FluxTableRow],
    rhs: Dict[NodeKey, np.ndarray],
    flux_view: np.ndarray,
    n: int,
) -> int:
    """Replay a :func:`build_reflux_table` snapshot over the flux arena.

    ``rhs`` maps *owned* leaf keys to their (NFIELDS, N, N, N) dudt views
    (rows for unowned leaves are skipped, so each face is corrected exactly
    once — by its owner); ``flux_view`` is the whole-mesh
    ``(slots, 3, 2, NFIELDS, n, n)`` boundary-flux arena.  Same arithmetic,
    same order as :func:`apply_flux_corrections`: identical bits.
    """
    corrected = 0
    half = n // 2
    for key, lslot, axis, side, dx, quads in table:
        target = rhs.get(key)
        if target is None:
            continue
        coarse_flux = flux_view[lslot, axis, side]
        fine_flux = np.empty_like(coarse_flux)
        for b1, b2, cslot in quads:
            block = _restrict_face(flux_view[cslot, axis, 1 - side])
            fine_flux[
                :,
                b1 * half : (b1 + 1) * half,
                b2 * half : (b2 + 1) * half,
            ] = block
        delta = fine_flux - coarse_flux
        index = [slice(None)] * 4
        index[axis + 1] = n - 1 if side == 1 else 0
        sign = -1.0 if side == 1 else 1.0
        target[tuple(index)] += sign * delta / dx
        corrected += 1
    return corrected
