"""JIT-compilable hydro kernels (the numba / pyjit backend implementations).

These are the top three hydro kernels — the stacked RHS (primitives +
MUSCL reconstruction + HLL Riemann solve + flux divergence), the RK3
update with floors, and the end-of-step tau resync — written once in the
NumPy subset that ``numba.njit`` lowers directly: basic slicing,
elementwise ufuncs, small constant-trip loops over the field axis, and no
fancy indexing, ``transpose``, ``newaxis`` or axis-keyword reductions.

The same source serves two backends (see :mod:`repro.kokkos.backend`):

* ``numba`` compiles it with ``njit`` (the A64FX-style answer to the
  memory-bandwidth wall the stacked NumPy path hits: one fused pass
  instead of a ufunc-per-expression sweep);
* ``pyjit`` runs it uncompiled, so the kernel *logic* is exercised and
  tolerance-tier cross-checked even where numba is not installed.

Deliberately **no numba import** appears here (reprolint R009): backends
receive these functions through :func:`build_kernels` and lower them with
their own ``compile_fn``.  The math follows the per-leaf reference
(:mod:`repro.hydro.solver`, :mod:`repro.hydro.reconstruct`,
:mod:`repro.hydro.riemann`) expression by expression, but uses plain
``np.where`` instead of the seed path's bit-pattern selects — a JIT cannot
promise bit-identity anyway, so equivalence is bounded by the tolerance
tier of :mod:`repro.core.crosscheck`, not asserted bitwise.

Kernel contract: arrays and scalars only (njit-friendly signatures); the
caller (:func:`repro.hydro.plan.resolve_stacked_kernels`) adapts the
stacked-kernel signatures, scratch buffers and EOS parameters.
"""

from __future__ import annotations

import numpy as np


def _hll_faces(wl, wr, srow, gamma, rho_floor):
    """HLL flux over one face array pair.

    ``wl`` / ``wr`` are ``(B, K, F0, F1, F2)`` primitive face states
    (K = NFIELDS; rows 5+ passive), ``srow`` the velocity/momentum row of
    the sweep axis (1, 2 or 3).  Elementwise throughout, so one body
    serves all three axes.  Mirrors :func:`repro.hydro.riemann.hll_flux`.
    """
    nk = wl.shape[1]
    rl = np.maximum(wl[:, 0], rho_floor)
    rr = np.maximum(wr[:, 0], rho_floor)
    pl = np.maximum(wl[:, 4], 0.0)
    pr = np.maximum(wr[:, 4], 0.0)
    kl = 0.5 * rl * (wl[:, 1] ** 2 + wl[:, 2] ** 2 + wl[:, 3] ** 2)
    kr = 0.5 * rr * (wr[:, 1] ** 2 + wr[:, 2] ** 2 + wr[:, 3] ** 2)

    ul = np.empty_like(wl)
    ur = np.empty_like(wr)
    ul[:, 0] = rl
    ur[:, 0] = rr
    ul[:, 1] = rl * wl[:, 1]
    ul[:, 2] = rl * wl[:, 2]
    ul[:, 3] = rl * wl[:, 3]
    ur[:, 1] = rr * wr[:, 1]
    ur[:, 2] = rr * wr[:, 2]
    ur[:, 3] = rr * wr[:, 3]
    ul[:, 4] = kl + pl / (gamma - 1.0)
    ur[:, 4] = kr + pr / (gamma - 1.0)
    # Passive rows: conserved == primitive, so the jump terms below read
    # the primitive difference exactly like the reference.
    for k in range(5, nk):
        ul[:, k] = wl[:, k]
        ur[:, k] = wr[:, k]

    vl = wl[:, srow]
    vr = wr[:, srow]
    fl = np.empty_like(wl)
    fr = np.empty_like(wr)
    for k in range(nk):
        fl[:, k] = ul[:, k] * vl
        fr[:, k] = ur[:, k] * vr
    fl[:, srow] = fl[:, srow] + pl
    fr[:, srow] = fr[:, srow] + pr
    fl[:, 4] = fl[:, 4] + pl * vl
    fr[:, 4] = fr[:, 4] + pr * vr

    cl = np.sqrt(gamma * pl / rl)
    cr = np.sqrt(gamma * pr / rr)
    s_left = np.minimum(vl - cl, vr - cr)
    s_right = np.maximum(vl + cl, vr + cr)
    denom = s_right - s_left
    one = denom * 0.0 + 1.0
    safe = np.where(np.abs(denom) > 1e-300, denom, one)
    slsr = s_left * s_right
    upwind_l = s_left >= 0.0
    upwind_r = s_right <= 0.0

    out = np.empty_like(wl)
    for k in range(nk):
        f_star = (
            s_right * fl[:, k] - s_left * fr[:, k] + slsr * (ur[:, k] - ul[:, k])
        ) / safe
        out[:, k] = np.where(
            upwind_l, fl[:, k], np.where(upwind_r, fr[:, k], f_star)
        )
    return out


def _block_primitives(u, gamma, dual_eta, rho_floor, eint_floor):
    """Primitive state of one ``(B, K, M, M, M)`` block (dual-energy EOS).

    Mirrors :func:`repro.hydro.solver.primitives_from_conserved`; passive
    rows are copied so the sweep slices one array.
    """
    w = np.empty_like(u)
    rho = np.maximum(u[:, 0], rho_floor)
    w[:, 0] = rho
    w[:, 1] = u[:, 1] / rho
    w[:, 2] = u[:, 2] / rho
    w[:, 3] = u[:, 3] / rho
    kin = 0.5 * rho * (w[:, 1] ** 2 + w[:, 2] ** 2 + w[:, 3] ** 2)
    egas = u[:, 4]
    ediff = egas - kin
    tau_branch = np.maximum(u[:, 5], 0.0) ** gamma
    base = np.maximum(ediff, eint_floor)
    eint = np.where(ediff < dual_eta * egas, tau_branch, base)
    w[:, 4] = (gamma - 1.0) * np.maximum(eint, eint_floor)
    for k in range(5, u.shape[1]):
        w[:, k] = u[:, k]
    return w


def _make_rhs(hll, primitives):
    """Build the RHS kernel body over compiled helpers (closure capture is
    the njit-friendly way to call one compiled function from another)."""

    def rhs(u, dudt, faces, rdx, gamma, dual_eta, rho_floor, eint_floor,
            muscl, collect):
        """Flux divergence of one stacked block into ``dudt``.

        ``u`` is ``(B, K, M, M, M)`` with filled ghosts, ``dudt``
        ``(B, K, n, n, n)`` (overwritten), ``faces`` ``(6, B, K, n, n)``
        boundary fluxes written when ``collect`` is nonzero (slot order
        ``2 * axis + side``).  ``muscl`` selects 2nd-order reconstruction
        (1) or first-order Godunov (0).
        """
        nk = u.shape[1]
        n = dudt.shape[2]
        g = (u.shape[2] - n) // 2
        w = primitives(u, gamma, dual_eta, rho_floor, eint_floor)

        # -- x sweep: faces between cells g-1..g+n along axis 2 ----------
        wc = w[:, :, g - 2 : g + n + 2, g : g + n, g : g + n]
        if muscl == 1:
            d = wc[:, :, 1:] - wc[:, :, : n + 3]
            dm = d[:, :, : n + 2]
            dp = d[:, :, 1:]
            lim = np.copysign(np.minimum(np.abs(dm), np.abs(dp)), dm)
            slope = 0.5 * lim * (dm * dp > 0.0)
            center = wc[:, :, 1 : n + 3]
            wl = center[:, :, : n + 1] + slope[:, :, : n + 1]
            wr = center[:, :, 1 : n + 2] - slope[:, :, 1 : n + 2]
        else:
            wl = wc[:, :, 1 : n + 2]
            wr = wc[:, :, 2 : n + 3]
        flux = hll(wl, wr, 1, gamma, rho_floor)
        acc = (flux[:, :, 1 : n + 1] - flux[:, :, :n]) * rdx
        for k in range(nk):
            dudt[:, k] = -acc[:, k]
        if collect == 1:
            faces[0] = flux[:, :, 0]
            faces[1] = flux[:, :, n]

        # -- y sweep: axis 3 ---------------------------------------------
        wc = w[:, :, g : g + n, g - 2 : g + n + 2, g : g + n]
        if muscl == 1:
            d = wc[:, :, :, 1:] - wc[:, :, :, : n + 3]
            dm = d[:, :, :, : n + 2]
            dp = d[:, :, :, 1:]
            lim = np.copysign(np.minimum(np.abs(dm), np.abs(dp)), dm)
            slope = 0.5 * lim * (dm * dp > 0.0)
            center = wc[:, :, :, 1 : n + 3]
            wl = center[:, :, :, : n + 1] + slope[:, :, :, : n + 1]
            wr = center[:, :, :, 1 : n + 2] - slope[:, :, :, 1 : n + 2]
        else:
            wl = wc[:, :, :, 1 : n + 2]
            wr = wc[:, :, :, 2 : n + 3]
        flux = hll(wl, wr, 2, gamma, rho_floor)
        acc = (flux[:, :, :, 1 : n + 1] - flux[:, :, :, :n]) * rdx
        for k in range(nk):
            dudt[:, k] = dudt[:, k] - acc[:, k]
        if collect == 1:
            faces[2] = flux[:, :, :, 0]
            faces[3] = flux[:, :, :, n]

        # -- z sweep: axis 4 ---------------------------------------------
        wc = w[:, :, g : g + n, g : g + n, g - 2 : g + n + 2]
        if muscl == 1:
            d = wc[:, :, :, :, 1:] - wc[:, :, :, :, : n + 3]
            dm = d[:, :, :, :, : n + 2]
            dp = d[:, :, :, :, 1:]
            lim = np.copysign(np.minimum(np.abs(dm), np.abs(dp)), dm)
            slope = 0.5 * lim * (dm * dp > 0.0)
            center = wc[:, :, :, :, 1 : n + 3]
            wl = center[:, :, :, :, : n + 1] + slope[:, :, :, :, : n + 1]
            wr = center[:, :, :, :, 1 : n + 2] - slope[:, :, :, :, 1 : n + 2]
        else:
            wl = wc[:, :, :, :, 1 : n + 2]
            wr = wc[:, :, :, :, 2 : n + 3]
        flux = hll(wl, wr, 3, gamma, rho_floor)
        acc = (flux[:, :, :, :, 1 : n + 1] - flux[:, :, :, :, :n]) * rdx
        for k in range(nk):
            dudt[:, k] = dudt[:, k] - acc[:, k]
        if collect == 1:
            faces[4] = flux[:, :, :, :, 0]
            faces[5] = flux[:, :, :, :, n]

    return rhs


def update(u_int, u0, dudt, a0, a1, dt, rho_floor):
    """RK3 convex combination + positivity floors over one level block."""
    nk = u_int.shape[1]
    for k in range(nk):
        u_int[:, k] = a0 * u0[:, k] + a1 * (u_int[:, k] + dt * dudt[:, k])
    u_int[:, 0] = np.maximum(u_int[:, 0], rho_floor)
    u_int[:, 5] = np.maximum(u_int[:, 5], 0.0)
    u_int[:, 6] = np.maximum(u_int[:, 6], 0.0)
    u_int[:, 7] = np.maximum(u_int[:, 7], 0.0)


def resync_tau(u_int, gamma, dual_eta, rho_floor, eint_floor):
    """End-of-step tau resync where the energy difference is trustworthy."""
    rho = np.maximum(u_int[:, 0], rho_floor)
    kin = 0.5 * (u_int[:, 1] ** 2 + u_int[:, 2] ** 2 + u_int[:, 3] ** 2) / rho
    diff = u_int[:, 4] - kin
    healthy = diff > dual_eta * u_int[:, 4]
    fresh = np.maximum(diff, eint_floor) ** (1.0 / gamma)
    u_int[:, 5] = np.where(healthy, fresh, u_int[:, 5])


def build_kernels(compile_fn):
    """Lower the kernel set with ``compile_fn`` (``njit`` or identity).

    Returns ``{"rhs", "update", "resync_tau"}``.  Helpers are compiled
    first and captured as closure freevars so the compiled RHS can call
    them (a numba Dispatcher is callable from jitted code when captured
    this way; under pyjit they are plain functions).
    """
    hll = compile_fn(_hll_faces)
    prims = compile_fn(_block_primitives)
    return {
        "rhs": compile_fn(_make_rhs(hll, prims)),
        "update": compile_fn(update),
        "resync_tau": compile_fn(resync_tau),
    }
