"""Finite-volume hydrodynamics (Octo-Tiger's hydro module analog).

A semi-discrete finite-volume scheme on each leaf sub-grid:

* primitive reconstruction with minmod-limited MUSCL slopes
  (:mod:`~repro.hydro.reconstruct`),
* HLL approximate Riemann fluxes (:mod:`~repro.hydro.riemann`),
* gravity and rotating-frame source terms (:mod:`~repro.hydro.sources`),
* strong-stability-preserving RK3 time integration with a *global,
  non-adaptive* timestep (:mod:`~repro.hydro.integrator`) — Octo-Tiger
  deliberately avoids per-level time stepping to keep machine-precision
  conservation,
* a dual-energy formalism via the ``tau`` entropy tracer
  (:mod:`~repro.hydro.eos`),
* an exact ideal-gas Riemann solver for validation
  (:mod:`~repro.hydro.exact`).
"""

from repro.hydro.eos import BipolytropicEOS, IdealGasEOS, PolytropicEOS
from repro.hydro.reconstruct import minmod, reconstruct_axis
from repro.hydro.riemann import hll_flux
from repro.hydro.solver import dudt_subgrid, primitives_from_conserved
from repro.hydro.sources import gravity_source, rotating_frame_source
from repro.hydro.timestep import cfl_timestep_subgrid, global_timestep
from repro.hydro.integrator import HydroIntegrator
from repro.hydro.plan import HydroPlan, build_hydro_plan
from repro.hydro.reflux import apply_flux_corrections
from repro.hydro.exact import exact_riemann, sod_solution

__all__ = [
    "IdealGasEOS",
    "PolytropicEOS",
    "BipolytropicEOS",
    "minmod",
    "reconstruct_axis",
    "hll_flux",
    "dudt_subgrid",
    "primitives_from_conserved",
    "gravity_source",
    "rotating_frame_source",
    "cfl_timestep_subgrid",
    "global_timestep",
    "HydroIntegrator",
    "HydroPlan",
    "build_hydro_plan",
    "apply_flux_corrections",
    "exact_riemann",
    "sod_solution",
]
