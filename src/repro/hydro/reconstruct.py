"""Slope-limited MUSCL reconstruction.

Second-order piecewise-linear reconstruction of primitive variables with the
minmod limiter: total-variation-diminishing, so no new extrema appear — the
property the property-based tests pin down.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def minmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The minmod limiter: smaller magnitude if same sign, else zero."""
    same_sign = a * b > 0.0
    return np.where(same_sign, np.where(np.abs(a) < np.abs(b), a, b), 0.0)


def reconstruct_axis(w: np.ndarray, axis: int) -> Tuple[np.ndarray, np.ndarray]:
    """Face states from cell states along ``axis``.

    For a cell array of extent ``M`` along the axis there are ``M - 3``
    interior faces with both-side reconstructions available (faces between
    cells 1..M-2, since each side needs a limited slope using one neighbour
    on each side).

    Returns ``(w_left, w_right)``: the states immediately left/right of each
    such face, with extent ``M - 3`` along ``axis`` and unchanged extents
    elsewhere.  Face ``j`` (0-based) of the output sits between cells
    ``j + 1`` and ``j + 2`` of the input.
    """
    w = np.asarray(w)
    ax = axis % w.ndim

    def shift(lo: int, hi: int) -> np.ndarray:
        index = [slice(None)] * w.ndim
        index[ax] = slice(lo, w.shape[ax] + hi if hi < 0 else None)
        return w[tuple(index)]

    d_minus = shift(1, -1) - shift(0, -2)  # w[i] - w[i-1] for i in 1..M-2
    d_plus = shift(2, 0) - shift(1, -1)  # w[i+1] - w[i] for i in 1..M-2
    slope = 0.5 * minmod(d_minus, d_plus)  # limited half-slope of cells 1..M-2

    center = shift(1, -1)  # cells 1..M-2
    # Left state of face between cell i and i+1: w[i] + slope[i]
    # Right state of that face:                  w[i+1] - slope[i+1]
    def chop(arr: np.ndarray, lo: int, hi: int) -> np.ndarray:
        index = [slice(None)] * arr.ndim
        index[ax] = slice(lo, arr.shape[ax] + hi if hi < 0 else None)
        return arr[tuple(index)]

    w_left = chop(center + slope, 0, -1)
    w_right = chop(center - slope, 1, 0)
    return w_left, w_right


def reconstruct_axis_constant(w: np.ndarray, axis: int) -> Tuple[np.ndarray, np.ndarray]:
    """First-order (piecewise-constant, Godunov) face states.

    Same face indexing contract as :func:`reconstruct_axis` (``M - 3`` faces,
    face ``j`` between cells ``j + 1`` and ``j + 2``), so the two schemes are
    drop-in interchangeable — used by the reconstruction ablation.
    """
    w = np.asarray(w)
    ax = axis % w.ndim

    def chop(lo: int, hi: int) -> np.ndarray:
        index = [slice(None)] * w.ndim
        index[ax] = slice(lo, w.shape[ax] + hi if hi < 0 else None)
        return w[tuple(index)]

    return chop(1, -2), chop(2, -1)
