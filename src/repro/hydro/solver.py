"""Per-sub-grid flux divergence: the core hydro compute kernel.

``dudt_subgrid`` is the analogue of Octo-Tiger's hydro flux kernel: given a
sub-grid with filled ghost layers it reconstructs primitives, solves Riemann
problems on every interior face along the three axes, and returns the flux
divergence over the interior cells.  All operations are vectorised NumPy
over whole face arrays.

Ghost-width accounting: with ``ghost = 2`` and ``M = N + 4`` cells per edge,
reconstruction along an axis yields exactly the ``N + 1`` interior faces the
divergence needs — this identity is asserted, because it silently breaks if
somebody changes the stencil without widening the ghosts.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.hydro.eos import IdealGasEOS
from repro.hydro.reconstruct import reconstruct_axis
from repro.hydro.riemann import PRIM_KEYS, hll_flux
from repro.octree.fields import Field, NFIELDS
from repro.octree.subgrid import SubGrid


def primitives_from_conserved(
    u: np.ndarray, eos: IdealGasEOS
) -> Dict[str, np.ndarray]:
    """Primitive variables from a conserved block of shape (NFIELDS, ...)."""
    rho = np.maximum(u[Field.RHO], eos.rho_floor)
    vx = u[Field.SX] / rho
    vy = u[Field.SY] / rho
    vz = u[Field.SZ] / rho
    kinetic = 0.5 * rho * (vx**2 + vy**2 + vz**2)
    eint = eos.dual_energy_eint(rho, u[Field.EGAS], kinetic, u[Field.TAU])
    return {
        "rho": rho,
        "vx": vx,
        "vy": vy,
        "vz": vz,
        "p": eos.pressure(rho, eint),
        "tau": u[Field.TAU],
        "f1": u[Field.FRAC1],
        "f2": u[Field.FRAC2],
    }


def dudt_subgrid(
    sg: SubGrid,
    dx: float,
    eos: IdealGasEOS,
    return_boundary_fluxes: bool = False,
    reconstruction: str = "muscl",
):
    """Flux divergence over the interior of one sub-grid.

    Requires ghost layers to be filled.  Returns ``(dudt, max_signal)`` with
    ``dudt`` of shape ``(NFIELDS, N, N, N)`` and ``max_signal`` the largest
    wave speed encountered (for the CFL condition).

    With ``return_boundary_fluxes=True`` a third element is returned: a dict
    ``{(axis, side): (NFIELDS, N, N) flux array}`` of the fluxes through the
    six outer faces — the raw material of the flux-correction (refluxing)
    step that keeps conservation exact across coarse-fine AMR boundaries.
    """
    if sg.ghost < 2:
        raise ValueError("MUSCL stencil needs ghost width >= 2")
    if reconstruction == "muscl":
        reconstruct = reconstruct_axis
    elif reconstruction == "constant":
        from repro.hydro.reconstruct import reconstruct_axis_constant

        reconstruct = reconstruct_axis_constant
    else:
        raise ValueError(f"unknown reconstruction {reconstruction!r}")
    n, g = sg.n, sg.ghost
    w = primitives_from_conserved(sg.data, eos)
    dudt = np.zeros((NFIELDS, n, n, n))
    max_signal = 0.0
    interior = slice(g, g + n)
    boundary: dict = {}

    for axis in range(3):
        w_left: Dict[str, np.ndarray] = {}
        w_right: Dict[str, np.ndarray] = {}
        for key in PRIM_KEYS:
            # Trim the stencil along the axis so reconstruction emits exactly
            # the N + 1 interior faces: cells [g-2, g+n+2) feed faces
            # between cell pairs (g-1, g) ... (g+n-1, g+n).
            index = [slice(None)] * 3
            index[axis] = slice(g - 2, g + n + 2)
            wl, wr = reconstruct(w[key][tuple(index)], axis)
            w_left[key] = wl
            w_right[key] = wr
        assert w_left["rho"].shape[axis] == n + 1, "stencil accounting broke"

        flux, signal = hll_flux(w_left, w_right, axis, eos)
        # Keep only interior transverse positions (corner-region values use
        # unfilled ghosts and are garbage by construction).
        trans = [interior] * 3
        trans[axis] = slice(None)
        flux = flux[(slice(None),) + tuple(trans)]
        signal = signal[tuple(trans)]
        max_signal = max(max_signal, float(signal.max()))

        lo = [slice(None)] * 4
        hi = [slice(None)] * 4
        lo[axis + 1] = slice(0, n)
        hi[axis + 1] = slice(1, n + 1)
        dudt -= (flux[tuple(hi)] - flux[tuple(lo)]) / dx

        if return_boundary_fluxes:
            first = [slice(None)] * 4
            last = [slice(None)] * 4
            first[axis + 1] = 0
            last[axis + 1] = n
            boundary[(axis, 0)] = flux[tuple(first)].copy()
            boundary[(axis, 1)] = flux[tuple(last)].copy()

    if return_boundary_fluxes:
        return dudt, max_signal, boundary
    return dudt, max_signal
