"""The integrated application driver (the Octo-Tiger analog proper).

:class:`~repro.core.driver.OctoTigerSim` wires the substrates together the
way the paper's software stack does (its Fig. 2): the AMR octree evolves
under the finite-volume hydro solver coupled to the FMM gravity solver,
sub-grids are partitioned over AMT localities along the space-filling curve,
and every step's task graph is executed on the virtual runtime so each
*physically real* step also yields the machine-model timing the performance
study uses.
"""

from repro.core.driver import OctoTigerSim, StepRecord
from repro.core.distributed import DistributedHydroDriver, DistributedStepResult
from repro.core.diagnostics import (
    conserved_totals,
    total_angular_momentum_z,
    total_energy,
    center_of_mass,
    Diagnostics,
)

__all__ = [
    "OctoTigerSim",
    "StepRecord",
    "DistributedHydroDriver",
    "DistributedStepResult",
    "conserved_totals",
    "total_angular_momentum_z",
    "total_energy",
    "center_of_mass",
    "Diagnostics",
]
