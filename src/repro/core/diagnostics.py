"""Conserved-quantity diagnostics over the AMR mesh.

These are the invariants Octo-Tiger tracks: total mass, linear momentum,
gas energy (kinetic + internal), gravitational energy, z angular momentum,
centre of mass, and the tracer masses of the binary components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.octree.fields import Field
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey


@dataclass(frozen=True)
class Diagnostics:
    mass: float
    momentum: np.ndarray  # (3,)
    energy_gas: float
    energy_potential: float
    angular_momentum_z: float
    com: np.ndarray  # (3,)
    tracer_masses: np.ndarray  # (2,)

    @property
    def energy_total(self) -> float:
        return self.energy_gas + self.energy_potential


def conserved_totals(mesh: AmrMesh) -> Dict[str, float]:
    """Plain domain integrals of the conserved fields."""
    return {
        "mass": mesh.integral(Field.RHO),
        "sx": mesh.integral(Field.SX),
        "sy": mesh.integral(Field.SY),
        "sz": mesh.integral(Field.SZ),
        "egas": mesh.integral(Field.EGAS),
    }


def total_angular_momentum_z(mesh: AmrMesh) -> float:
    """L_z = integral (x s_y - y s_x) dV over leaf interiors."""
    total = 0.0
    for leaf in mesh.leaves():
        x, y, _ = leaf.cell_centers()
        sx = leaf.subgrid.interior_view(Field.SX)
        sy = leaf.subgrid.interior_view(Field.SY)
        total += float((x * sy - y * sx).sum()) * leaf.cell_volume
    return total


def total_energy(
    mesh: AmrMesh, phi: Optional[Dict[NodeKey, np.ndarray]] = None
) -> float:
    """Gas energy plus (if a potential is supplied) gravitational energy.

    The potential energy uses the standard 1/2 sum rho phi dV (each pair
    counted once).
    """
    e = mesh.integral(Field.EGAS)
    if phi is not None:
        for leaf in mesh.leaves():
            rho = leaf.subgrid.interior_view(Field.RHO)
            e += 0.5 * float((rho * phi[leaf.key]).sum()) * leaf.cell_volume
    return e


def center_of_mass(mesh: AmrMesh) -> np.ndarray:
    weighted = np.zeros(3)
    total = 0.0
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        rho = leaf.subgrid.interior_view(Field.RHO)
        v = leaf.cell_volume
        weighted[0] += float((rho * x).sum()) * v
        weighted[1] += float((rho * y).sum()) * v
        weighted[2] += float((rho * z).sum()) * v
        total += float(rho.sum()) * v
    return weighted / total if total > 0 else weighted


def diagnostics(
    mesh: AmrMesh, phi: Optional[Dict[NodeKey, np.ndarray]] = None
) -> Diagnostics:
    totals = conserved_totals(mesh)
    e_pot = 0.0
    if phi is not None:
        for leaf in mesh.leaves():
            rho = leaf.subgrid.interior_view(Field.RHO)
            e_pot += 0.5 * float((rho * phi[leaf.key]).sum()) * leaf.cell_volume
    return Diagnostics(
        mass=totals["mass"],
        momentum=np.array([totals["sx"], totals["sy"], totals["sz"]]),
        energy_gas=totals["egas"],
        energy_potential=e_pot,
        angular_momentum_z=total_angular_momentum_z(mesh),
        com=center_of_mass(mesh),
        tracer_masses=np.array(
            [mesh.integral(Field.FRAC1), mesh.integral(Field.FRAC2)]
        ),
    )
