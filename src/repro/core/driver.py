"""OctoTigerSim: real physics plus machine-model timing per step.

Each :meth:`OctoTigerSim.step` does two coupled things:

1. advances the *actual* simulation state — SSP-RK3 hydro with FMM gravity
   on the AMR octree (numerics identical to the serial reference
   integrator, tested against it), and
2. executes the step's task graph on the virtual AMT runtime under the
   selected machine model and run configuration, yielding the timing a
   distributed run of this mesh would take (cells/s, utilisation, power).

The mesh is partitioned over localities along the Morton curve before the
first step, mirroring Octo-Tiger's distribution, and the workload spec fed
to the task graph is *measured from the live mesh*, so refinement changes
propagate into the timing model.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.analysis.race import RaceDetector
from repro.analysis.spacesan import sanitizer_mode
from repro.core.diagnostics import Diagnostics, diagnostics
from repro.distsim.model import DEFAULT_CONSTANTS, ModelConstants
from repro.distsim.runconfig import RunConfig
from repro.distsim.taskgraph import TaskGraphResult, TaskGraphSimulator
from repro.gravity.fmm import FmmSolver
from repro.hydro.eos import IdealGasEOS
from repro.hydro.integrator import HydroIntegrator
from repro.machines.specs import FUGAKU, MachineModel
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey
from repro.octree.partition import sfc_partition
from repro.profiling.apex import CounterRegistry
from repro.resilience.faults import FaultSpec
from repro.resilience.protocol import RetryPolicy, UnrecoverableFault
from repro.resilience.watchdog import DeadlockError
from repro.scenarios.spec import ScenarioSpec, workload_from_mesh


@dataclass
class StepRecord:
    """Outcome of one step: physics + modelled performance."""

    step: int
    time: float
    dt: float
    virtual_seconds: float
    cells_per_second: float
    utilization: float
    node_power_w: float


class OctoTigerSim:
    """The integrated driver.

    Parameters
    ----------
    mesh:
        An initialised AMR mesh (typically from a scenario builder).
    machine / nodes:
        The machine model and node count for the virtual timing.  The
        physics is identical regardless — that is the portability property
        the paper demonstrates.
    config:
        Optimization knobs (SIMD, communication optimization, multipole
        task splitting...); defaults mirror the paper's tuned Fugaku setup.
    """

    def __init__(
        self,
        mesh: AmrMesh,
        eos: Optional[IdealGasEOS] = None,
        omega: float = 0.0,
        cfl: float = 0.4,
        gravity: bool = True,
        gravity_order: int = 3,
        machine: MachineModel = FUGAKU,
        nodes: int = 1,
        config: Optional[RunConfig] = None,
        constants: ModelConstants = DEFAULT_CONSTANTS,
        empty_mass_threshold: float = 1e-12,
        m2l_split: int = 0,
        hydro_plan: bool = True,
        sanitize: bool = False,
        faults: Optional[FaultSpec] = None,
        recovery: Any = True,
        checkpoint_every: int = 0,
        checkpoint_dir: Any = None,  # str | Path | None
        max_rollbacks: int = 8,
        backend: str = "des",
        nprocs: int = 2,
        overlap: bool = False,
        verify_plans: bool = True,
        detect_races: bool = False,
        array_backend: Optional[str] = None,
        plan_cache: Any = None,  # PlanCache | str | Path | None
    ) -> None:
        if backend not in ("des", "process"):
            raise ValueError(f"backend must be 'des' or 'process', got {backend!r}")
        #: Array backend for the hot kernels (:mod:`repro.kokkos.backend`):
        #: None keeps the seed path, "numpy" dispatches bit-identically,
        #: JIT backends ("numba"/"pyjit") swap in the compiled kernel set.
        self.array_backend = array_backend
        #: "des": physics in-process, timing on the virtual clock (default).
        #: "process": hydro steps and the far-field M2L fan out over real
        #: worker processes (:mod:`repro.amt.parallel`), bit-identical.
        self.backend = backend
        self.nprocs = nprocs
        #: Process backend only: futurized interior/halo schedule — ghost
        #: exchange latency hidden behind interior compute, bit-identical
        #: to the BSP rounds (the ``--overlap`` ablation flag).
        self.overlap = overlap
        #: Checker wiring for the process backend: refuse statically
        #: unverified plans (default) and optionally log/replay shm access
        #: events at every barrier (``detect_races``).  No effect on "des".
        self.verify_plans = verify_plans
        self.detect_races = detect_races
        self.mesh = mesh
        self.eos = eos or IdealGasEOS()
        self.machine = machine
        self.config = config or RunConfig(machine=machine, nodes=nodes)
        self.constants = constants
        self.counters = CounterRegistry()
        #: Resilience: ``faults`` injects a seeded fault schedule into every
        #: step's virtual network; ``recovery`` (default on) enables the
        #: acknowledged-retransmit transport; ``checkpoint_every`` > 0 writes
        #: periodic checkpoints so :meth:`run` can roll back and replay after
        #: an unrecoverable fault (retries exhausted, node crash).
        self.faults = faults
        if recovery is True:
            recovery = RetryPolicy()
        self.recovery: Optional[RetryPolicy] = recovery or None
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self.max_rollbacks = max_rollbacks
        self._series = None
        #: A crashed locality rejoins after the first rollback (restart heals
        #: the node); one-shot like the paper's "1 out of 20 runs".
        self._crash_recovered = False
        #: Bumped per rollback so replayed steps draw fresh fault schedules —
        #: the network environment after a restart is not the one that failed.
        self._replay_epoch = 0
        #: When True, each step runs under the analysis suite: the physics
        #: under the memory-space sanitizer (collect mode), the task graph
        #: through the static checker and with the dynamic race detector
        #: observing the virtual pools.  Findings accumulate here and in the
        #: ``sanitize.*`` counters instead of raising, so a long run reports
        #: everything at the end.
        self.sanitize = sanitize
        self.sanitizer_findings: List[Any] = []

        #: Persistent content-addressed plan store (fingerprint-keyed; see
        #: :mod:`repro.core.plancache` and ``docs/plan_lifecycle.md``).  A
        #: string/path builds a :class:`PlanCache` rooted there; ``None``
        #: disables persistence (in-memory delta maintenance still runs).
        if plan_cache is not None and not hasattr(plan_cache, "load"):
            from repro.core.plancache import PlanCache

            plan_cache = PlanCache(plan_cache)
        self.plan_cache = plan_cache

        self.gravity_solver: Optional[FmmSolver] = None
        gravity_cb = None
        if gravity:
            self.gravity_solver = FmmSolver(
                order=gravity_order,
                empty_mass_threshold=empty_mass_threshold,
                m2l_split=m2l_split,
                backend=backend,
                nprocs=nprocs,
                overlap=overlap,
                verify_plans=verify_plans,
                array_backend=array_backend,
                plan_cache=self.plan_cache,
            )
            # Route the solver's per-phase timers (fmm.plan, fmm.p2m_m2m,
            # fmm.m2l, fmm.l2p, fmm.p2p) into this run's counter registry.
            self.gravity_solver.registry = self.counters
            gravity_cb = self.gravity_solver.as_gravity_callback()
        #: ``hydro_plan`` selects the cached batched hydro step (stacked
        #: sub-grid kernels + vectorized ghost exchange); ``False`` keeps the
        #: per-leaf reference path.  Both produce identical bits.
        self.hydro_plan = hydro_plan
        self.integrator = HydroIntegrator(
            mesh, self.eos, cfl=cfl, omega=omega, gravity=gravity_cb,
            batched=hydro_plan,
            backend="process" if backend == "process" else "serial",
            nprocs=nprocs,
            overlap=overlap,
            verify_plans=verify_plans,
            detect_races=detect_races,
            array_backend=array_backend,
            plan_cache=self.plan_cache,
        )
        # Route the integrator's per-phase timers (hydro.plan, hydro.ghost,
        # hydro.reconstruct, hydro.riemann, hydro.update) into this run's
        # counter registry, next to the fmm.* phases.
        self.integrator.registry = self.counters
        sfc_partition(mesh, self.config.nodes)
        self._spec: Optional[ScenarioSpec] = None
        self.records: List[StepRecord] = []
        self.last_phi: Optional[Dict[NodeKey, np.ndarray]] = None

    def close(self) -> None:
        """Shut down process-backend worker pools and shm arenas (no-op on
        the DES backend)."""
        self.integrator.close()
        if self.gravity_solver is not None:
            self.gravity_solver.close()

    # -- configuration --------------------------------------------------------
    @classmethod
    def from_config(
        cls,
        mesh: AmrMesh,
        config,  # noqa: ANN001 - repro.util.config.Config
        machine: MachineModel = FUGAKU,
        nodes: int = 1,
        omega: Optional[float] = None,
        backend: str = "des",
        nprocs: int = 2,
        overlap: bool = False,
        plan_cache: Any = None,  # PlanCache | str | Path | None
    ) -> "OctoTigerSim":
        """Build a driver from a validated :class:`repro.util.config.Config`.

        Maps the dotted configuration keys (the Octo-Tiger-options analog)
        onto the solver and runtime knobs; ``omega`` overrides
        ``frame.omega`` when the scenario provides the equilibrium value.
        """
        eos = IdealGasEOS(
            gamma=config["hydro.gamma"], dual_eta=config["hydro.dual_energy_eta"]
        )
        run_config = RunConfig(
            machine=machine,
            nodes=nodes,
            simd=config["simd.abi"] != "scalar",
            comm_local_optimization=config["comm.local_optimization"],
            coalesce=config["comm.coalesce"],
            tasks_per_multipole_kernel=config["runtime.tasks_per_kernel"],
        )
        # "numpy" is the config default and dispatches bit-identically to
        # the seed path (the exact-tier cross-check pins this), so it is
        # always safe to thread through.
        sim = cls(
            mesh,
            eos=eos,
            omega=config["frame.omega"] if omega is None else omega,
            cfl=config["hydro.cfl"],
            gravity=config["gravity.enabled"],
            gravity_order=config["gravity.order"],
            machine=machine,
            nodes=nodes,
            config=run_config,
            m2l_split=config["gravity.m2l_split"],
            backend=backend,
            nprocs=nprocs,
            overlap=overlap,
            array_backend=config["kokkos.backend"],
            plan_cache=plan_cache,
        )
        if sim.gravity_solver is not None:
            sim.gravity_solver.theta = config["gravity.theta"]
            sim.gravity_solver.angmom_correction = config["gravity.angmom_correction"]
        sim.integrator.reconstruction = config["hydro.reconstruction"]
        return sim

    # -- restart -------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        path,  # noqa: ANN001 - str | Path
        eos: Optional[IdealGasEOS] = None,
        **kwargs,  # noqa: ANN003 - forwarded to __init__
    ) -> "OctoTigerSim":
        """Resume a simulation from a checkpoint file.

        Restores the mesh, simulation time and step count; remaining
        driver options are taken from ``kwargs`` (they are configuration,
        not state — the same checkpoint can resume on a different machine
        model, which is the portability story in miniature).
        """
        from repro.ioutil import load_checkpoint

        mesh, meta = load_checkpoint(path)
        sim = cls(mesh, eos=eos, omega=meta["extra"].get("omega", 0.0), **kwargs)
        sim.integrator.time = meta.get("time", 0.0)
        sim.integrator.steps_taken = meta.get("step", 0)
        return sim

    def save_checkpoint(self, path, extra: Optional[Dict] = None):  # noqa: ANN001
        """Write the current state; records time/step/omega for restart."""
        from repro.ioutil import save_checkpoint

        payload = {"omega": self.integrator.omega}
        if extra:
            payload.update(extra)
        return save_checkpoint(
            self.mesh,
            path,
            time=self.integrator.time,
            step=self.integrator.steps_taken,
            extra=payload,
        )

    # -- workload ----------------------------------------------------------
    @property
    def spec(self) -> ScenarioSpec:
        if self._spec is None:
            self._spec = workload_from_mesh(self.mesh, name="driver")
        return self._spec

    def invalidate_workload(self) -> None:
        """Call after refinement changes the mesh structure."""
        self._spec = None
        sfc_partition(self.mesh, self.config.nodes)

    def regrid(self, criterion, max_level: int):  # noqa: ANN001, ANN201
        """Adapt the mesh to the current state and re-partition.

        Octo-Tiger regrids periodically on density/tracer criteria
        (paper SIII-C); returns the
        :class:`~repro.octree.regrid.RegridResult`.
        """
        from repro.octree.regrid import regrid as _regrid

        result = _regrid(self.mesh, criterion, max_level=max_level)
        if result.changed:
            self.invalidate_workload()
            # Announce the exact topology delta so the next plan rebuild is
            # incremental: the integrator invalidates only the ghost face
            # traces the delta touched (the FMM plan derives the same delta
            # from its own stored topology).
            self.integrator.notify_regrid(result.delta)
            self.counters.increment("regrid.refined", result.refined)
            self.counters.increment("regrid.coarsened", result.coarsened)
        return result

    # -- stepping ------------------------------------------------------------
    def step(self, dt: Optional[float] = None) -> StepRecord:
        space_guard = sanitizer_mode(collect=True) if self.sanitize else nullcontext([])
        with space_guard as space_findings:
            with self.counters.timer("wall.step"):
                dt_used = self.integrator.step(dt)
        if space_findings:
            self.sanitizer_findings.extend(space_findings)
            self.counters.increment("sanitize.space_findings", len(space_findings))
        if self.gravity_solver is not None and self.gravity_solver.last_stats:
            stats = self.gravity_solver.last_stats
            self.counters.sample("fmm.m2l_pairs", stats.m2l_pairs)
            self.counters.sample("fmm.near_pairs", stats.near_pairs)
            self.counters.sample("fmm.p2p_pairs", stats.p2p_pairs)

        timing = self._virtual_timing()
        record = StepRecord(
            step=self.integrator.steps_taken,
            time=self.integrator.time,
            dt=dt_used,
            virtual_seconds=timing.makespan_s,
            cells_per_second=timing.cells_per_second,
            utilization=timing.utilization,
            node_power_w=self.machine.power.node_power(
                min(timing.utilization, 1.0), self.config.frequency_ghz
            ),
        )
        self.records.append(record)
        self.counters.sample("virtual.step_seconds", timing.makespan_s)
        return record

    def run(self, n_steps: int, dt: Optional[float] = None) -> List[StepRecord]:
        """Advance ``n_steps``; with faults + checkpointing enabled this is
        the resilient loop: periodic checkpoints, and on an unrecoverable
        fault (retransmission gave up / node crash) roll back to the last
        checkpoint and replay.  Replay is bit-deterministic, so the final
        state matches an uninterrupted run exactly."""
        if self.faults is None and not self.checkpoint_every:
            return [self.step(dt) for _ in range(n_steps)]
        return self._run_resilient(n_steps, dt)

    def _run_resilient(self, n_steps: int, dt: Optional[float]) -> List[StepRecord]:
        series = self._checkpoint_series()
        self._write_checkpoint(series)  # rollback target before the first step
        target = self.integrator.steps_taken + n_steps
        rollbacks = 0
        records: List[StepRecord] = []
        while self.integrator.steps_taken < target:
            try:
                record = self.step(dt)
            except (UnrecoverableFault, DeadlockError) as exc:
                if isinstance(exc, DeadlockError):
                    self.counters.increment("resilience.watchdog_trips")
                if self.recovery is None or self.checkpoint_every <= 0:
                    raise
                rollbacks += 1
                if rollbacks > self.max_rollbacks:
                    raise UnrecoverableFault(
                        f"giving up after {self.max_rollbacks} rollbacks; "
                        f"last fault: {exc}"
                    ) from exc
                self.counters.increment("resilience.rollbacks")
                self._rollback(series)
                records = [r for r in records if r.step <= self.integrator.steps_taken]
                continue
            records.append(record)
            if (
                self.checkpoint_every > 0
                and self.integrator.steps_taken % self.checkpoint_every == 0
            ):
                self._write_checkpoint(series)
        return records

    # -- resilience ----------------------------------------------------------
    def _checkpoint_series(self):  # noqa: ANN202 - CheckpointSeries
        if self._series is None:
            from repro.ioutil import CheckpointSeries

            directory = self.checkpoint_dir
            if directory is None:
                import tempfile

                directory = tempfile.mkdtemp(prefix="repro-ckpt-")
            self._series = CheckpointSeries(directory, prefix="driver")
        return self._series

    def _write_checkpoint(self, series) -> None:  # noqa: ANN001
        series.write(
            self.mesh,
            self.integrator.steps_taken,
            time=self.integrator.time,
            extra={"omega": self.integrator.omega},
        )
        self.counters.increment("resilience.checkpoints")

    def _rollback(self, series) -> None:  # noqa: ANN001
        """Restore the newest checkpoint and rebind solvers to the mesh."""
        mesh, meta = series.load_latest()
        self.mesh = mesh
        gravity_cb = None
        if self.gravity_solver is not None:
            gravity_cb = self.gravity_solver.as_gravity_callback()
        self.integrator.close()  # old worker pool aliases the pre-rollback mesh
        restored = HydroIntegrator(
            mesh,
            self.eos,
            cfl=self.integrator.cfl,
            omega=meta["extra"].get("omega", self.integrator.omega),
            gravity=gravity_cb,
            batched=self.hydro_plan,
            backend="process" if self.backend == "process" else "serial",
            nprocs=self.nprocs,
            overlap=self.overlap,
            verify_plans=self.verify_plans,
            detect_races=self.detect_races,
            array_backend=self.array_backend,
        )
        restored.reconstruction = self.integrator.reconstruction
        restored.reflux = self.integrator.reflux
        restored.registry = self.counters
        restored.time = meta.get("time", 0.0)
        restored.steps_taken = meta.get("step", 0)
        self.integrator = restored
        sfc_partition(mesh, self.config.nodes)
        self._spec = None
        self.records = [r for r in self.records if r.step <= restored.steps_taken]
        # The crashed node came back with the restart: heal the crash fault
        # so the replay is not wedged by the same injection, and reseed the
        # fault streams (the post-restart network is a fresh environment).
        self._crash_recovered = True
        self._replay_epoch += 1

    def _effective_faults(self) -> Optional[FaultSpec]:
        if self.faults is None:
            return None
        if self._crash_recovered and self.faults.crash_locality >= 0:
            return self.faults.without_crash()
        return self.faults

    def _virtual_timing(self) -> TaskGraphResult:
        faults = self._effective_faults()
        simulator = TaskGraphSimulator(
            self.spec,
            self.config,
            self.constants,
            faults=faults,
            recovery=self.recovery if faults is not None else None,
            fault_stream=self.integrator.steps_taken
            + 1_000_003 * self._replay_epoch,
        )
        try:
            if not self.sanitize:
                result = simulator.run_step()
            else:
                static = simulator.static_check()
                detector = RaceDetector()
                result = simulator.run_step(detector=detector)
                self.sanitizer_findings.extend(static)
                self.sanitizer_findings.extend(detector.findings)
                self.counters.increment("sanitize.static_findings", len(static))
                self.counters.increment("sanitize.race_findings", len(detector.findings))
                self.counters.increment("sanitize.tasks_checked", detector.tasks_checked)
        finally:
            self._harvest_resilience_counters(simulator)
        return result

    def _harvest_resilience_counters(self, simulator: TaskGraphSimulator) -> None:
        if self.faults is None:
            return
        network = simulator.network
        self.counters.increment("resilience.messages_dropped", network.messages_dropped)
        self.counters.increment("resilience.messages_delayed", network.messages_delayed)
        self.counters.increment(
            "resilience.messages_duplicated", network.messages_duplicated
        )
        if simulator.transport is not None:
            stats = simulator.transport.stats
            self.counters.increment("resilience.retransmits", stats.retransmits)
            self.counters.increment("resilience.acks", stats.acks_received)
            self.counters.increment(
                "resilience.duplicates_suppressed", stats.duplicates_suppressed
            )

    # -- diagnostics -----------------------------------------------------------
    def diagnostics(self) -> Diagnostics:
        phi = None
        if self.gravity_solver is not None:
            phi = self.gravity_solver.solve(self.mesh).phi
            self.last_phi = phi
        return diagnostics(self.mesh, phi)

    def mean_cells_per_second(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.cells_per_second for r in self.records]))
