"""Persistent content-addressed plan cache.

Cold plan construction is the dominant fixed cost of a run: the FMM dual
tree traversal and the hydro ghost/bundle index plans are pure functions of
the octree topology, yet every process pays them from scratch.  Real
Octo-Tiger runs repeat the same early topologies across restarts, parameter
scans and rank counts, so this module gives plans the same treatment the
distributed runtime gives messages: a content-addressed store keyed on the
mesh's deterministic :meth:`repro.octree.mesh.AmrMesh.fingerprint` (stable
across runs *and* ranks), holding the expensive-to-derive pair/index arrays
in flat ``.npz`` payloads.

Design contract (shared with ``docs/plan_lifecycle.md``):

* **Content-addressed** — an entry's filename is
  ``<kind>-<sha256(fingerprint + params)>.npz``; identical topology +
  parameters hit the same entry from any process.
* **Versioned** — every payload embeds a format-version and the full key
  material; a version bump or key mismatch reads as a miss, never as a
  wrong plan.
* **Atomic** — writes go to a same-directory temp file and ``os.replace``
  onto the final name, so concurrent writers and readers only ever see
  complete entries (both racing writers produce identical bytes anyway).
* **Corruption-tolerant** — any failure to read/parse/validate an entry is
  a miss: the caller cold-builds and overwrites the bad entry.  A cache
  can be deleted at any time; it is never authoritative state.

The payloads deliberately store only the *canonical substrate* a plan is
assembled from (e.g. the FMM traversal's canonical pair arrays), not the
assembled plan object: the substrate is small, trivially serialisable, and
the assembly step is deterministic — so a cache hit is bit-identical to a
cold build by the same argument that makes delta rebuilds exact.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np

#: Bump when any payload layout or plan-assembly semantics change: old
#: entries then read as misses and are rewritten, never misinterpreted.
#: v2: hydro payloads carry the interior/halo region split
#: (``split_meta``/``split_interior``/``split_halos``) next to the ghost
#: index arrays.
CACHE_FORMAT_VERSION = 2

_META_KEY = "__plancache_meta__"


def default_cache_dir() -> Path:
    """``$XDG_CACHE_HOME/repro/plans`` (``~/.cache/repro/plans`` fallback)."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro" / "plans"


def _canonical_params(params: Dict) -> str:
    """Deterministic JSON encoding of the non-topology key material."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0


class PlanCache:
    """On-disk content-addressed store of plan substrates.

    ``kind`` namespaces the plan layer (``"fmm"``, ``"hydro"``, ...);
    ``fingerprint`` is the mesh topology hash; ``params`` carries every
    non-topology input that shapes the payload (e.g. ``theta``).  All three
    are baked into both the entry filename and the embedded metadata, so a
    lookup can never return a payload built for different inputs.
    """

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.stats = CacheStats()

    # -- keys ---------------------------------------------------------------
    def _entry_path(self, kind: str, fingerprint: str, params: Dict) -> Path:
        digest = hashlib.sha256(
            f"{CACHE_FORMAT_VERSION}\n{kind}\n{fingerprint}\n"
            f"{_canonical_params(params)}".encode()
        ).hexdigest()
        return self.directory / f"{kind}-{digest[:32]}.npz"

    def contains(self, kind: str, fingerprint: str, params: Dict) -> bool:
        """Whether an entry exists for this key — an existence probe only
        (no read or validation; a corrupt entry still reads as a miss in
        :meth:`load`).  Lets incremental rebuilds skip re-storing a
        payload the cold build already wrote."""
        try:
            return self._entry_path(kind, fingerprint, params).exists()
        except OSError:
            return False

    # -- store --------------------------------------------------------------
    def store(
        self,
        kind: str,
        fingerprint: str,
        params: Dict,
        payload: Dict[str, np.ndarray],
    ) -> bool:
        """Atomically persist ``payload``; returns False on any I/O failure
        (a cache store must never fail the run)."""
        meta = json.dumps(
            {
                "version": CACHE_FORMAT_VERSION,
                "kind": kind,
                "fingerprint": fingerprint,
                "params": _canonical_params(params),
            }
        )
        try:
            buf = io.BytesIO()
            np.savez(
                buf,
                **{_META_KEY: np.frombuffer(meta.encode(), dtype=np.uint8)},
                **payload,
            )
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self._entry_path(kind, fingerprint, params)
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(buf.getvalue())
                os.replace(tmp, path)  # atomic on POSIX: readers never see partial files
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, ValueError):
            self.stats.errors += 1
            return False
        self.stats.stores += 1
        return True

    # -- load ---------------------------------------------------------------
    def load(
        self, kind: str, fingerprint: str, params: Dict
    ) -> Optional[Dict[str, np.ndarray]]:
        """Return the stored payload or ``None`` — every failure mode
        (missing, truncated, corrupted, wrong version, key collision) is a
        miss, so callers always have the cold build as fallback."""
        path = self._entry_path(kind, fingerprint, params)
        try:
            with np.load(path, allow_pickle=False) as npz:
                meta_arr = npz[_META_KEY]
                meta = json.loads(bytes(meta_arr.tobytes()).decode())
                if (
                    meta.get("version") != CACHE_FORMAT_VERSION
                    or meta.get("kind") != kind
                    or meta.get("fingerprint") != fingerprint
                    or meta.get("params") != _canonical_params(params)
                ):
                    self.stats.misses += 1
                    return None
                payload = {
                    name: npz[name] for name in npz.files if name != _META_KEY
                }
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            # Truncated/corrupt entry (bad zip, bad JSON, pickle refusal...):
            # treat as a miss; the subsequent store overwrites it atomically.
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload
