"""Distributed functional hydro: the HPX execution of a real timestep.

Where :class:`~repro.core.driver.OctoTigerSim` computes physics serially and
*models* the distributed timing, this driver actually executes the step as a
distributed task graph on the AMT runtime:

* every leaf lives on a locality (Morton partition);
* each RK stage's ghost fill for a face is a task on the *destination*
  locality, preceded by a network message when the donor is remote (or the
  promise-guarded direct path when local and the communication optimization
  is on — the paper's SVII-B mechanism, executed rather than modelled);
* the hydro kernel of a leaf is a task on its owner, dependent on its six
  face fills and the previous stage's update;
* anti-dependencies are honoured: a leaf's stage-k update waits for every
  neighbour fill that still reads its stage-(k-1) interior.

The payoff is a strong test: the distributed execution produces **the same
field values** as the serial reference integrator, step for step, while the
virtual clock reports a genuinely scheduled (not estimated) makespan and the
network reports real message counts.

Scope: hydro only (no gravity, no reflux) — enough to pin the distribution
semantics; the rotating-frame source is supported because it is local.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.amt.future import Future, Promise, when_all
from repro.amt.locality import Runtime
from repro.amt.network import Message, NetworkModel
from repro.distsim.model import DEFAULT_CONSTANTS, ModelConstants, _cpu_rate
from repro.distsim.runconfig import RunConfig
from repro.hydro.eos import IdealGasEOS
from repro.hydro.integrator import _RK3_STAGES
from repro.hydro.solver import dudt_subgrid
from repro.hydro.sources import rotating_frame_source
from repro.octree.fields import Field
from repro.octree.ghost import (
    _fill_boundary,
    _fill_coarse,
    _fill_fine,
    _fill_same,
)
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey, OctreeNode
from repro.octree.partition import sfc_partition
from repro.resilience.faults import FaultSpec
from repro.resilience.protocol import ReliableTransport, RetryPolicy
from repro.resilience.watchdog import DeadlockWatchdog


@dataclass
class DistributedStepResult:
    dt: float
    makespan_s: float
    messages: int
    bytes_sent: int
    tasks_completed: int
    utilization: float
    messages_dropped: int = 0
    retransmits: int = 0
    acks: int = 0


class DistributedHydroDriver:
    """Executes RK3 hydro steps as distributed task graphs."""

    def __init__(
        self,
        mesh: AmrMesh,
        eos: Optional[IdealGasEOS] = None,
        omega: float = 0.0,
        config: Optional[RunConfig] = None,
        constants: ModelConstants = DEFAULT_CONSTANTS,
        workers_per_locality: int = 8,
        faults: Optional[FaultSpec] = None,
        recovery: Any = None,
    ) -> None:
        from repro.machines.specs import FUGAKU

        self.mesh = mesh
        self.eos = eos or IdealGasEOS()
        self.omega = omega
        self.config = config or RunConfig(machine=FUGAKU, nodes=2)
        self.constants = constants
        self.faults = faults
        if recovery is True:
            recovery = RetryPolicy()
        self.recovery: Optional[RetryPolicy] = recovery or None
        self.workers = min(self.config.active_cores, workers_per_locality)
        node_rate = _cpu_rate(self.config, constants)
        self.core_rate = node_rate / self.workers
        sfc_partition(mesh, self.config.nodes)
        self.time = 0.0
        self.steps_taken = 0
        self.last_result: Optional[DistributedStepResult] = None
        #: Cached step skeleton (leaves, donor kinds, anti-dependency
        #: readers), keyed on the mesh topology version — the same
        #: invalidation contract as the hydro/FMM execution plans.  The
        #: task graph is re-instantiated every step (costs and futures are
        #: per-step state) but its *shape* only changes on regrid.
        self._skeleton: Optional[tuple] = None
        self._skeleton_version = -1

    # -- cost helpers --------------------------------------------------------
    def _kernel_cost(self) -> float:
        cells = self.mesh.n**3
        spec_flops = 2_200.0  # hydro flops per cell per step, 3 stages
        return cells * spec_flops / 3.0 / self.core_rate

    def _network(self) -> NetworkModel:
        net = self.config.machine.interconnect
        return NetworkModel(
            latency_s=net.latency_us * 1e-6,
            bandwidth_Bps=net.bandwidth_gbs * 1e9,
            action_overhead_s=net.action_overhead_us * 1e-6,
            local_copy_Bps=self.config.machine.node.memory_bw_gbs * 1e9,
            name=net.name,
        )

    def _step_skeleton(self):  # noqa: ANN202
        """Topology-derived step structure, cached until the mesh regrids.

        Returns ``(leaves, face_kinds, readers)`` where ``face_kinds`` maps
        ``(leaf, axis, side)`` to its donor classification and ``readers``
        is the anti-dependency map (which fills read each leaf's interior).
        All three are pure functions of the octree structure, so they are
        rebuilt only when ``mesh.topology_version`` moves.
        """
        if self._skeleton_version == self.mesh.topology_version and (
            self._skeleton is not None
        ):
            return self._skeleton
        mesh = self.mesh
        leaves = mesh.leaves()
        readers: Dict[NodeKey, List[Tuple[NodeKey, int, int]]] = {
            k.key: [] for k in leaves
        }
        face_kinds: Dict[Tuple[NodeKey, int, int], Tuple[str, object]] = {}
        for leaf in leaves:
            for axis in range(3):
                for side in (0, 1):
                    kind, other = mesh.face_neighbor(leaf, axis, side)
                    face_kinds[(leaf.key, axis, side)] = (kind, other)
                    if kind == "same" or kind == "coarse":
                        readers[other.key].append((leaf.key, axis, side))
                    elif kind == "fine":
                        for child in other:
                            readers[child.key].append((leaf.key, axis, side))
        self._skeleton = (leaves, face_kinds, readers)
        self._skeleton_version = mesh.topology_version
        return self._skeleton

    # -- step ------------------------------------------------------------------
    def step(self, dt: float) -> DistributedStepResult:
        mesh, eos = self.mesh, self.eos
        leaves, face_kinds, readers = self._step_skeleton()
        network = self._network()
        if self.faults is not None:
            network.fault_injector = self.faults.injector(stream=self.steps_taken)
        runtime = Runtime(
            n_localities=self.config.nodes,
            workers_per_locality=self.workers,
            network=network,
        )
        transport = (
            ReliableTransport(network, runtime.engine, policy=self.recovery)
            if self.recovery is not None
            else None
        )
        watchdog = DeadlockWatchdog(runtime)
        kernel_cost = self._kernel_cost()
        fill_cost = self.constants.face_sync_cpu_s

        u0: Dict[NodeKey, np.ndarray] = {}
        for leaf in leaves:
            s = leaf.subgrid.interior
            u0[leaf.key] = leaf.subgrid.data[:, s, s, s].copy()

        update_futures: Dict[NodeKey, Future] = {
            leaf.key: _ready() for leaf in leaves
        }

        for a0, a1 in _RK3_STAGES:
            fill_futures: Dict[Tuple[NodeKey, int, int], Future] = {}
            # 1. Ghost fills.
            for leaf in leaves:
                loc = runtime.localities[leaf.locality]
                for axis in range(3):
                    for side in (0, 1):
                        kind, other = face_kinds[(leaf.key, axis, side)]
                        deps: List[Future] = [update_futures[leaf.key]]
                        donors: List[OctreeNode] = []
                        if kind == "same" or kind == "coarse":
                            donors = [other]
                        elif kind == "fine":
                            donors = list(other)
                        for donor in donors:
                            deps.append(update_futures[donor.key])

                        fill = self._fill_task(
                            runtime, network, loc, leaf, axis, side, kind, other,
                            deps, fill_cost, transport, watchdog,
                        )
                        fill_futures[(leaf.key, axis, side)] = fill
                        watchdog.watch(
                            fill, deps, name=f"fill.{leaf.key}.ax{axis}.s{side}"
                        )
            # 2. Kernels + updates with anti-dependencies.
            new_updates: Dict[NodeKey, Future] = {}
            rhs_store: Dict[NodeKey, np.ndarray] = {}
            for leaf in leaves:
                loc = runtime.localities[leaf.locality]
                deps = [
                    fill_futures[(leaf.key, axis, side)]
                    for axis in range(3)
                    for side in (0, 1)
                ]

                def compute(leaf=leaf, rhs_store=rhs_store):  # noqa: ANN001
                    rhs, _ = dudt_subgrid(leaf.subgrid, leaf.dx, eos)
                    if self.omega != 0.0:
                        s = leaf.subgrid.interior
                        u = leaf.subgrid.data[:, s, s, s]
                        x, y, _ = leaf.cell_centers()
                        rhs = rhs + rotating_frame_source(u, self.omega, x, y)
                    rhs_store[leaf.key] = rhs

                kernel_future = loc.async_after(
                    deps, compute, cost=kernel_cost,
                    name=f"hydro.{leaf.key}", kind="hydro.kernel",
                )
                # The update may not run until every neighbour fill that
                # reads this leaf's current interior has executed.
                anti = [
                    fill_futures[reader] for reader in readers[leaf.key]
                ]

                def update(leaf=leaf, a0=a0, a1=a1, rhs_store=rhs_store):  # noqa: ANN001
                    # Stage coefficients bound as defaults: the task body
                    # executes after this loop has moved on.
                    s = leaf.subgrid.interior
                    u = leaf.subgrid.data[:, s, s, s]
                    leaf.subgrid.data[:, s, s, s] = a0 * u0[leaf.key] + a1 * (
                        u + dt * rhs_store[leaf.key]
                    )
                    self._floors(leaf)

                watchdog.watch(kernel_future, deps, name=f"hydro.{leaf.key}")
                new_updates[leaf.key] = loc.async_after(
                    [kernel_future, *anti], update, cost=0.0,
                    name=f"update.{leaf.key}", kind="hydro.update",
                )
                watchdog.watch(
                    new_updates[leaf.key], [kernel_future, *anti],
                    name=f"update.{leaf.key}",
                )
            update_futures = new_updates

        barrier = when_all(list(update_futures.values()))
        watchdog.watch(barrier, list(update_futures.values()), name="step.final")
        runtime.run_until_ready(barrier, watchdog=watchdog)

        for leaf in leaves:
            self._resync_tau(leaf)
        mesh.restrict_all()

        self.time += dt
        self.steps_taken += 1
        result = DistributedStepResult(
            dt=dt,
            makespan_s=runtime.engine.now,
            messages=network.messages_sent,
            bytes_sent=network.bytes_sent,
            tasks_completed=sum(l.pool.tasks_completed for l in runtime.localities),
            utilization=runtime.utilization(),
            messages_dropped=network.messages_dropped,
            retransmits=transport.stats.retransmits if transport else 0,
            acks=transport.stats.acks_received if transport else 0,
        )
        self.last_result = result
        return result

    # -- pieces ------------------------------------------------------------------
    def _fill_task(
        self,
        runtime: Runtime,
        network: NetworkModel,
        loc,  # noqa: ANN001
        leaf: OctreeNode,
        axis: int,
        side: int,
        kind: str,
        other,  # noqa: ANN001
        deps: List[Future],
        fill_cost: float,
        transport: Optional[ReliableTransport] = None,
        watchdog: Optional[DeadlockWatchdog] = None,
    ) -> Future:
        """Schedule one face fill with the right transport."""

        def do_fill() -> None:
            if kind == "boundary":
                _fill_boundary(leaf, axis, side)
            elif kind == "same":
                _fill_same(leaf, other, axis, side)
            elif kind == "coarse":
                _fill_coarse(leaf, other, axis, side)
            else:
                _fill_fine(leaf, other, axis, side)

        if kind == "boundary":
            return loc.async_after(deps, do_fill, cost=fill_cost, kind="ghost.boundary")

        donor_localities = (
            {other.locality} if kind in ("same", "coarse") else {c.locality for c in other}
        )
        remote = donor_localities - {leaf.locality}
        if not remote and self.config.comm_local_optimization:
            # Direct memory access guarded by a promise/future pair.
            return loc.async_after(deps, do_fill, cost=fill_cost, kind="ghost.local")

        # Remote (or unoptimized local) path: the donor side sends the band.
        name = f"ghost.{leaf.key}.ax{axis}.s{side}"
        promise = Promise(name=name)
        size = leaf.subgrid.nbytes_face()

        def send(_v) -> None:  # noqa: ANN001
            pending = [len(donor_localities)]

            def deliver(_m: Message) -> None:
                pending[0] -= 1
                if pending[0] == 0:
                    promise.set_value(None)

            for src in donor_localities:
                message = Message(src, leaf.locality, None, size, tag=name)
                if transport is not None:
                    transport.send(message, deliver, local=src == leaf.locality)
                else:
                    network.send(
                        runtime.engine, message, deliver,
                        local=src == leaf.locality,
                    )

        when_all(deps).add_done_callback(send)
        arrived = promise.get_future()
        if watchdog is not None:
            watchdog.watch(arrived, deps, name=name)
        return loc.async_after([arrived], do_fill, cost=fill_cost, kind="ghost.remote")

    def _floors(self, leaf: OctreeNode) -> None:
        s = leaf.subgrid.interior
        u = leaf.subgrid.data[:, s, s, s]
        np.maximum(u[Field.RHO], self.eos.rho_floor, out=u[Field.RHO])
        np.maximum(u[Field.TAU], 0.0, out=u[Field.TAU])
        np.maximum(u[Field.FRAC1], 0.0, out=u[Field.FRAC1])
        np.maximum(u[Field.FRAC2], 0.0, out=u[Field.FRAC2])

    def _resync_tau(self, leaf: OctreeNode) -> None:
        s = leaf.subgrid.interior
        u = leaf.subgrid.data[:, s, s, s]
        rho = np.maximum(u[Field.RHO], self.eos.rho_floor)
        kinetic = 0.5 * (u[Field.SX] ** 2 + u[Field.SY] ** 2 + u[Field.SZ] ** 2) / rho
        diff = u[Field.EGAS] - kinetic
        healthy = diff > self.eos.dual_eta * u[Field.EGAS]
        u[Field.TAU] = np.where(
            healthy,
            self.eos.tau_from_eint(np.maximum(diff, self.eos.eint_floor)),
            u[Field.TAU],
        )


def _ready() -> Future:
    from repro.amt.future import make_ready_future

    return make_ready_future(None)
