"""Distributed functional hydro: the HPX execution of a real timestep.

Where :class:`~repro.core.driver.OctoTigerSim` computes physics serially and
*models* the distributed timing, this driver actually executes the step as a
distributed task graph on the AMT runtime:

* every leaf lives on a locality (Morton partition);
* each RK stage's ghost fill for a face is a task on the *destination*
  locality, preceded by a network message when the donor is remote (or the
  promise-guarded direct path when local and the communication optimization
  is on — the paper's SVII-B mechanism, executed rather than modelled);
* the hydro kernel of a leaf is a task on its owner, dependent on its six
  face fills and the previous stage's update;
* anti-dependencies are honoured: a leaf's stage-k update waits for every
  neighbour fill that still reads its stage-(k-1) interior.

The payoff is a strong test: the distributed execution produces **the same
field values** as the serial reference integrator, step for step, while the
virtual clock reports a genuinely scheduled (not estimated) makespan and the
network reports real message counts.

Scope: hydro only (no gravity, no reflux) — enough to pin the distribution
semantics; the rotating-frame source is supported because it is local.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.amt.future import Future, Promise, when_all
from repro.amt.locality import Runtime
from repro.amt.network import Message, NetworkModel
from repro.comms import GhostBundlePlan, adopt_arena, build_bundle_plan
from repro.distsim.model import DEFAULT_CONSTANTS, ModelConstants, _cpu_rate
from repro.distsim.runconfig import RunConfig
from repro.hydro.eos import IdealGasEOS
from repro.hydro.integrator import _RK3_STAGES
from repro.hydro.plan import stacked_resync_tau_kernel
from repro.hydro.solver import dudt_subgrid
from repro.hydro.sources import rotating_frame_source
from repro.octree.fields import NFIELDS, Field
from repro.octree.ghost import (
    _fill_boundary,
    _fill_coarse,
    _fill_fine,
    _fill_same,
)
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey, OctreeNode
from repro.octree.partition import sfc_partition
from repro.resilience.faults import FaultSpec
from repro.resilience.protocol import ReliableTransport, RetryPolicy
from repro.resilience.watchdog import DeadlockWatchdog


@dataclass
class DistributedStepResult:
    dt: float
    makespan_s: float
    messages: int
    bytes_sent: int
    tasks_completed: int
    utilization: float
    messages_dropped: int = 0
    retransmits: int = 0
    acks: int = 0
    #: ``messages`` split into application payloads vs protocol control
    #: traffic (acks).  Historically acks doubled ``messages`` under
    #: recovery; payload_messages is the number to compare across runs.
    payload_messages: int = 0
    control_messages: int = 0
    duplicates_suppressed: int = 0


class DistributedHydroDriver:
    """Executes RK3 hydro steps as distributed task graphs."""

    def __init__(
        self,
        mesh: AmrMesh,
        eos: Optional[IdealGasEOS] = None,
        omega: float = 0.0,
        config: Optional[RunConfig] = None,
        constants: ModelConstants = DEFAULT_CONSTANTS,
        workers_per_locality: int = 8,
        faults: Optional[FaultSpec] = None,
        recovery: Any = None,
        coalesce: Optional[bool] = None,
        backend: str = "des",
        nprocs: int = 2,
        wire: str = "shm",
        overlap: bool = False,
    ) -> None:
        from repro.machines.specs import FUGAKU

        if backend not in ("des", "process"):
            raise ValueError(f"backend must be 'des' or 'process', got {backend!r}")
        #: "des" executes the task graph on the virtual clock (default);
        #: "process" fans the same step out over real OS processes via
        #: :class:`repro.hydro.process_backend.ProcessHydroExecutor` and
        #: reports measured wall-clock as the makespan.
        self.backend = backend
        self.nprocs = nprocs
        self.wire = wire
        #: Process backend only: futurized interior/halo overlap schedule.
        self.overlap = overlap
        self._executor = None  # lazy ProcessHydroExecutor
        self.mesh = mesh
        self.eos = eos or IdealGasEOS()
        self.omega = omega
        self.config = config or RunConfig(machine=FUGAKU, nodes=2)
        self.constants = constants
        self.faults = faults
        if recovery is True:
            recovery = RetryPolicy()
        self.recovery: Optional[RetryPolicy] = recovery or None
        self.workers = min(self.config.active_cores, workers_per_locality)
        node_rate = _cpu_rate(self.config, constants)
        self.core_rate = node_rate / self.workers
        sfc_partition(mesh, self.config.nodes)
        self.time = 0.0
        self.steps_taken = 0
        self.last_result: Optional[DistributedStepResult] = None
        #: Cached step skeleton (leaves, donor kinds, anti-dependency
        #: readers), keyed on the mesh topology version — the same
        #: invalidation contract as the hydro/FMM execution plans.  The
        #: task graph is re-instantiated every step (costs and futures are
        #: per-step state) but its *shape* only changes on regrid.
        self._skeleton: Optional[tuple] = None
        self._skeleton_version = -1
        #: Coalesced ghost exchange (one bundle message per locality pair
        #: per stage, see repro.comms) vs the retained per-face path.
        #: ``None`` defers to the run configuration.
        self.coalesce = self.config.coalesce if coalesce is None else coalesce
        self._bundle_plan: Optional[GhostBundlePlan] = None
        self._arena: Optional[np.ndarray] = None
        self._bundle_version = -1

    # -- cost helpers --------------------------------------------------------
    def _kernel_cost(self) -> float:
        cells = self.mesh.n**3
        spec_flops = 2_200.0  # hydro flops per cell per step, 3 stages
        return cells * spec_flops / 3.0 / self.core_rate

    def _network(self) -> NetworkModel:
        net = self.config.machine.interconnect
        return NetworkModel(
            latency_s=net.latency_us * 1e-6,
            bandwidth_Bps=net.bandwidth_gbs * 1e9,
            action_overhead_s=net.action_overhead_us * 1e-6,
            local_copy_Bps=self.config.machine.node.memory_bw_gbs * 1e9,
            name=net.name,
        )

    def _step_skeleton(self):  # noqa: ANN202
        """Topology-derived step structure, cached until the mesh regrids.

        Returns ``(leaves, face_kinds, readers)`` where ``face_kinds`` maps
        ``(leaf, axis, side)`` to its donor classification and ``readers``
        is the anti-dependency map (which fills read each leaf's interior).
        All three are pure functions of the octree structure, so they are
        rebuilt only when ``mesh.topology_version`` moves.
        """
        if self._skeleton_version == self.mesh.topology_version and (
            self._skeleton is not None
        ):
            return self._skeleton
        mesh = self.mesh
        leaves = mesh.leaves()
        readers: Dict[NodeKey, List[Tuple[NodeKey, int, int]]] = {
            k.key: [] for k in leaves
        }
        face_kinds: Dict[Tuple[NodeKey, int, int], Tuple[str, object]] = {}
        for leaf in leaves:
            for axis in range(3):
                for side in (0, 1):
                    kind, other = mesh.face_neighbor(leaf, axis, side)
                    face_kinds[(leaf.key, axis, side)] = (kind, other)
                    if kind == "same" or kind == "coarse":
                        readers[other.key].append((leaf.key, axis, side))
                    elif kind == "fine":
                        for child in other:
                            readers[child.key].append((leaf.key, axis, side))
        self._skeleton = (leaves, face_kinds, readers)
        self._skeleton_version = mesh.topology_version
        return self._skeleton

    # -- process backend -------------------------------------------------------
    def executor(self):
        """Lazy real-parallel executor (reflux off, matching this driver's
        hydro-only scope; the numerics are bit-identical to the DES path)."""
        if self._executor is None:
            from repro.hydro.process_backend import ProcessHydroExecutor

            self._executor = ProcessHydroExecutor(
                self.mesh,
                eos=self.eos,
                nprocs=self.nprocs,
                omega=self.omega,
                reflux=False,
                wire=self.wire,
                overlap=self.overlap,
            )
        return self._executor

    def close(self) -> None:
        """Shut down the process backend's worker pool and shm arenas."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def _step_process(self, dt: float) -> DistributedStepResult:
        """One step on the real-parallel backend, timed with a wall clock.

        The crash fate of ``faults`` is made real: the victim worker
        process dies mid-protocol and the step raises
        :class:`~repro.amt.parallel.WorkerCrashError` (an
        ``UnrecoverableFault``), with the executor's lifecycle guard
        reclaiming every shm segment on the way out.
        """
        import time as _time

        ex = self.executor()
        ex.ensure()
        if (
            self.faults is not None
            and self.faults.crash_locality >= 0
            and self.faults.crash_step == self.steps_taken
            and self.faults.crash_locality < ex.nprocs
        ):
            ex.engine.crash(self.faults.crash_locality)
        rounds_before = ex.engine.rounds
        control_before = ex.engine.control_messages
        t0 = _time.perf_counter()
        try:
            ex.step(dt)
        except BaseException:
            self.close()
            raise
        makespan = _time.perf_counter() - t0
        self.time += dt
        self.steps_taken += 1
        payload = ex.payload_messages
        control = ex.engine.control_messages - control_before
        result = DistributedStepResult(
            dt=dt,
            makespan_s=makespan,
            messages=payload + control,
            bytes_sent=ex.payload_bytes,
            tasks_completed=(ex.engine.rounds - rounds_before) * ex.nprocs,
            utilization=0.0,
            payload_messages=payload,
            control_messages=control,
        )
        self.last_result = result
        return result

    # -- step ------------------------------------------------------------------
    def step(self, dt: float) -> DistributedStepResult:
        if self.backend == "process":
            return self._step_process(dt)
        mesh, eos = self.mesh, self.eos
        leaves, face_kinds, readers = self._step_skeleton()
        network = self._network()
        if self.faults is not None:
            network.fault_injector = self.faults.injector(stream=self.steps_taken)
        runtime = Runtime(
            n_localities=self.config.nodes,
            workers_per_locality=self.workers,
            network=network,
        )
        transport = (
            ReliableTransport(network, runtime.engine, policy=self.recovery)
            if self.recovery is not None
            else None
        )
        watchdog = DeadlockWatchdog(runtime)
        kernel_cost = self._kernel_cost()
        fill_cost = self.constants.face_sync_cpu_s

        u0: Dict[NodeKey, np.ndarray] = {}
        if self.coalesce:
            # Arena payoff: every leaf interior is one strided view of the
            # flat buffer, so the stage-0 state is captured with a single
            # copy instead of one per leaf.
            self._bundles()
            u0_stack = self._stacked_interior().copy()
            for slot, key in enumerate(sorted(leaf.key for leaf in leaves)):
                u0[key] = u0_stack[slot]
        else:
            for leaf in leaves:
                s = leaf.subgrid.interior
                u0[leaf.key] = leaf.subgrid.data[:, s, s, s].copy()

        update_futures: Dict[NodeKey, Future] = {
            leaf.key: _ready() for leaf in leaves
        }

        prev_bundle_done: Dict[Tuple[int, int], Future] = {}
        for a0, a1 in _RK3_STAGES:
            # 1. Ghost fills: coalesced bundles (one message per locality
            # pair) or the retained per-face reference path.  Both produce
            # ``cover_futures`` (what each leaf's kernel waits for) and
            # ``anti_futures`` (what reads each leaf's current interior).
            if self.coalesce:
                cover_futures, anti_futures, prev_bundle_done = (
                    self._bundle_stage(
                        runtime, network, transport, watchdog,
                        update_futures, fill_cost, prev_bundle_done,
                    )
                )
            else:
                fill_futures: Dict[Tuple[NodeKey, int, int], Future] = {}
                for leaf in leaves:
                    loc = runtime.localities[leaf.locality]
                    for axis in range(3):
                        for side in (0, 1):
                            kind, other = face_kinds[(leaf.key, axis, side)]
                            deps: List[Future] = [update_futures[leaf.key]]
                            donors: List[OctreeNode] = []
                            if kind == "same" or kind == "coarse":
                                donors = [other]
                            elif kind == "fine":
                                donors = list(other)
                            for donor in donors:
                                deps.append(update_futures[donor.key])

                            fill = self._fill_task(
                                runtime, network, loc, leaf, axis, side,
                                kind, other, deps, fill_cost, transport,
                                watchdog,
                            )
                            fill_futures[(leaf.key, axis, side)] = fill
                            watchdog.watch(
                                fill, deps,
                                name=f"fill.{leaf.key}.ax{axis}.s{side}",
                            )
                cover_futures = {
                    leaf.key: [
                        fill_futures[(leaf.key, axis, side)]
                        for axis in range(3)
                        for side in (0, 1)
                    ]
                    for leaf in leaves
                }
                anti_futures = {
                    leaf.key: [
                        fill_futures[reader] for reader in readers[leaf.key]
                    ]
                    for leaf in leaves
                }
            # 2. Kernels + updates with anti-dependencies.
            new_updates: Dict[NodeKey, Future] = {}
            rhs_store: Dict[NodeKey, np.ndarray] = {}
            for leaf in leaves:
                loc = runtime.localities[leaf.locality]
                deps = list(cover_futures[leaf.key])

                def compute(leaf=leaf, rhs_store=rhs_store):  # noqa: ANN001
                    rhs, _ = dudt_subgrid(leaf.subgrid, leaf.dx, eos)
                    if self.omega != 0.0:
                        s = leaf.subgrid.interior
                        u = leaf.subgrid.data[:, s, s, s]
                        x, y, _ = leaf.cell_centers()
                        rhs = rhs + rotating_frame_source(u, self.omega, x, y)
                    rhs_store[leaf.key] = rhs

                kernel_future = loc.async_after(
                    deps, compute, cost=kernel_cost,
                    name=f"hydro.{leaf.key}", kind="hydro.kernel",
                )
                # The update may not run until every neighbour fill (or
                # bundle pack) that reads this leaf's current interior has
                # executed.
                anti = anti_futures[leaf.key]

                def update(leaf=leaf, a0=a0, a1=a1, rhs_store=rhs_store):  # noqa: ANN001
                    # Stage coefficients bound as defaults: the task body
                    # executes after this loop has moved on.  In-place form
                    # of ``a0*u0 + a1*(u + dt*rhs)`` — same elementary ops
                    # (addition commuted), so bit-identical to the
                    # expression form at a third of the temporaries.
                    s = leaf.subgrid.interior
                    u = leaf.subgrid.data[:, s, s, s]
                    u += dt * rhs_store.pop(leaf.key)
                    u *= a1
                    u += a0 * u0[leaf.key]
                    self._floors_view(u)

                watchdog.watch(kernel_future, deps, name=f"hydro.{leaf.key}")
                new_updates[leaf.key] = loc.async_after(
                    [kernel_future, *anti], update, cost=0.0,
                    name=f"update.{leaf.key}", kind="hydro.update",
                )
                watchdog.watch(
                    new_updates[leaf.key], [kernel_future, *anti],
                    name=f"update.{leaf.key}",
                )
            update_futures = new_updates

        barrier = when_all(list(update_futures.values()))
        watchdog.watch(barrier, list(update_futures.values()), name="step.final")
        runtime.run_until_ready(barrier, watchdog=watchdog)

        if self.coalesce:
            # Same elementwise resync as the per-leaf loop, applied to the
            # whole arena in one set of vectorized ops (bit-identical: the
            # math per cell is unchanged, only the batching differs).
            stacked_resync_tau_kernel(self._stacked_interior(), eos)
        else:
            for leaf in leaves:
                self._resync_tau(leaf)
        mesh.restrict_all()

        self.time += dt
        self.steps_taken += 1
        result = DistributedStepResult(
            dt=dt,
            makespan_s=runtime.engine.now,
            messages=network.messages_sent,
            bytes_sent=network.bytes_sent,
            tasks_completed=sum(l.pool.tasks_completed for l in runtime.localities),
            utilization=runtime.utilization(),
            messages_dropped=network.messages_dropped,
            retransmits=transport.stats.retransmits if transport else 0,
            acks=transport.stats.acks_received if transport else 0,
            payload_messages=network.payload_messages,
            control_messages=network.control_messages,
            duplicates_suppressed=(
                transport.stats.duplicates_suppressed if transport else 0
            ),
        )
        self.last_result = result
        return result

    # -- pieces ------------------------------------------------------------------
    def _bundles(self) -> GhostBundlePlan:
        """The coalescing plan, rebuilt only when the mesh regrids.

        Adopting the arena rebinds every leaf's sub-grid to a view of one
        flat buffer (values preserved), so pack/unpack are single
        fancy-indexed gathers/scatters over the whole mesh.
        """
        if (
            self._bundle_plan is None
            or self._bundle_version != self.mesh.topology_version
        ):
            self._arena, offsets = adopt_arena(self.mesh)
            self._bundle_plan = build_bundle_plan(self.mesh, offsets)
            self._bundle_version = self.mesh.topology_version
        return self._bundle_plan

    def _stacked_interior(self) -> np.ndarray:
        """All leaf interiors as one ``(leaves, fields, n, n, n)`` view.

        Valid only after :meth:`_bundles` adopted the arena for the current
        topology; slot order is sorted leaf key, matching ``adopt_arena``.
        """
        m = self.mesh.n + 2 * self.mesh.ghost
        chunk = NFIELDS * m**3
        s = slice(self.mesh.ghost, self.mesh.ghost + self.mesh.n)
        stacked = self._arena.reshape(-1, NFIELDS, m, m, m)
        assert stacked.shape[0] * chunk == self._arena.size
        return stacked[:, :, s, s, s]

    def _bundle_stage(
        self,
        runtime: Runtime,
        network: NetworkModel,
        transport: Optional[ReliableTransport],
        watchdog: DeadlockWatchdog,
        update_futures: Dict[NodeKey, Future],
        fill_cost: float,
        prev_done: Dict[Tuple[int, int], Future],
    ):
        """One RK stage's ghost exchange as coalesced pair bundles.

        Per ordered locality pair: a **pack** task on the source locality
        (gathers + restricts every crossing band into the bundle's flat
        payload), one network message, and an **unpack** task on the
        destination (scatters into the ghost bands).  Same-locality pairs
        under the local-communication optimization collapse to a single
        work-split **apply** task and send nothing.  Virtual cost matches
        the per-face path (``fill_cost`` per member face), spread over the
        pool via :meth:`~repro.amt.locality.Locality.async_sharded`.

        ``prev_done`` carries each bundle's previous-stage completion: the
        payload buffer is reused across stages, so stage ``k``'s pack may
        not overwrite it until stage ``k-1``'s unpack has scattered it.
        """
        plan = self._bundles()
        arena = self._arena
        fill_done: Dict[Tuple[int, int], Future] = {}
        pack_done: Dict[Tuple[int, int], Future] = {}
        # One send per neighbor-locality bundle — the coalesced pattern
        # R005 exists to enforce, not a per-item loop.
        for pair in sorted(plan.bundles):  # reprolint: sanctioned-bundle
            bundle = plan.bundles[pair]
            src_loc = runtime.localities[bundle.src_locality]
            dst_loc = runtime.localities[bundle.dst_locality]
            donor_deps = [update_futures[k] for k in bundle.donor_keys]
            dest_deps = [update_futures[k] for k in bundle.dest_keys]
            # Work-split granularity: a shard carries at least ~4 faces of
            # pack/unpack work — narrower shards cost more in per-task
            # overhead (real and virtual) than the parallelism they buy.
            shards = min(self.workers, max(1, bundle.n_faces // 4))
            name = f"bundle.{pair[0]}to{pair[1]}"
            if bundle.local and self.config.comm_local_optimization:
                seen = set()
                deps = [
                    f for f in donor_deps + dest_deps
                    if id(f) not in seen and not seen.add(id(f))
                ]
                done = src_loc.async_sharded(
                    deps, lambda b=bundle: b.apply(arena),
                    cost=fill_cost * bundle.n_faces, shards=shards,
                    name=name, kind="ghost.bundle.local",
                )
                watchdog.watch(done, deps, name=name)
                fill_done[pair] = done
                pack_done[pair] = done
                continue
            pack_deps = list(donor_deps)
            if pair in prev_done:
                pack_deps.append(prev_done[pair])
            pack = src_loc.async_sharded(
                pack_deps, lambda b=bundle: b.pack(arena),
                cost=0.5 * fill_cost * bundle.n_faces, shards=shards,
                name=f"{name}.pack", kind="ghost.bundle.pack",
            )
            watchdog.watch(pack, pack_deps, name=f"{name}.pack")
            promise = Promise(name=name)

            def send(_v, bundle=bundle, promise=promise, name=name):  # noqa: ANN001
                delivered = [False]

                def deliver(_m: Message) -> None:
                    # Guard against raw-network wire duplicates; the
                    # reliable transport already dedups per bundle.
                    if not delivered[0]:
                        delivered[0] = True
                        promise.set_value(None)

                message = Message(
                    bundle.src_locality, bundle.dst_locality, None,
                    bundle.nbytes, tag=name,
                )
                if transport is not None:
                    transport.send(message, deliver, local=bundle.local)
                else:
                    network.send(
                        runtime.engine, message, deliver, local=bundle.local
                    )

            pack.add_done_callback(send)
            arrived = promise.get_future()
            watchdog.watch(arrived, [pack], name=name)
            unpack_deps = [arrived, *dest_deps]
            unpack = dst_loc.async_sharded(
                unpack_deps, lambda b=bundle: b.unpack(arena),
                cost=0.5 * fill_cost * bundle.n_faces, shards=shards,
                name=f"{name}.unpack", kind="ghost.bundle.unpack",
            )
            watchdog.watch(unpack, unpack_deps, name=f"{name}.unpack")
            fill_done[pair] = unpack
            pack_done[pair] = pack
        cover_futures = {
            key: [fill_done[p] for p in pairs]
            for key, pairs in plan.cover.items()
        }
        anti_futures = {
            key: [pack_done[p] for p in pairs]
            for key, pairs in plan.donor_of.items()
        }
        return cover_futures, anti_futures, fill_done

    def _fill_task(
        self,
        runtime: Runtime,
        network: NetworkModel,
        loc,  # noqa: ANN001
        leaf: OctreeNode,
        axis: int,
        side: int,
        kind: str,
        other,  # noqa: ANN001
        deps: List[Future],
        fill_cost: float,
        transport: Optional[ReliableTransport] = None,
        watchdog: Optional[DeadlockWatchdog] = None,
    ) -> Future:
        """Schedule one face fill with the right transport."""

        def do_fill() -> None:
            if kind == "boundary":
                _fill_boundary(leaf, axis, side)
            elif kind == "same":
                _fill_same(leaf, other, axis, side)
            elif kind == "coarse":
                _fill_coarse(leaf, other, axis, side)
            else:
                _fill_fine(leaf, other, axis, side)

        if kind == "boundary":
            return loc.async_after(deps, do_fill, cost=fill_cost, kind="ghost.boundary")

        donor_localities = (
            {other.locality} if kind in ("same", "coarse") else {c.locality for c in other}
        )
        remote = donor_localities - {leaf.locality}
        if not remote and self.config.comm_local_optimization:
            # Direct memory access guarded by a promise/future pair.
            return loc.async_after(deps, do_fill, cost=fill_cost, kind="ghost.local")

        # Remote (or unoptimized local) path: the donor side sends the band.
        name = f"ghost.{leaf.key}.ax{axis}.s{side}"
        promise = Promise(name=name)
        size = leaf.subgrid.nbytes_face()

        def send(_v) -> None:  # noqa: ANN001
            pending = [len(donor_localities)]

            def deliver(_m: Message) -> None:
                pending[0] -= 1
                if pending[0] == 0:
                    promise.set_value(None)

            # Retained per-face ablation path (--no-coalesce); the default
            # coalesced path sends one bundle per locality pair instead.
            for src in donor_localities:  # reprolint: sanctioned-bundle
                message = Message(src, leaf.locality, None, size, tag=name)
                if transport is not None:
                    transport.send(message, deliver, local=src == leaf.locality)
                else:
                    network.send(
                        runtime.engine, message, deliver,
                        local=src == leaf.locality,
                    )

        when_all(deps).add_done_callback(send)
        arrived = promise.get_future()
        if watchdog is not None:
            watchdog.watch(arrived, deps, name=name)
        return loc.async_after([arrived], do_fill, cost=fill_cost, kind="ghost.remote")

    def _floors_view(self, u: np.ndarray) -> None:
        np.maximum(u[Field.RHO], self.eos.rho_floor, out=u[Field.RHO])
        np.maximum(u[Field.TAU], 0.0, out=u[Field.TAU])
        np.maximum(u[Field.FRAC1], 0.0, out=u[Field.FRAC1])
        np.maximum(u[Field.FRAC2], 0.0, out=u[Field.FRAC2])

    def _resync_tau(self, leaf: OctreeNode) -> None:
        s = leaf.subgrid.interior
        u = leaf.subgrid.data[:, s, s, s]
        rho = np.maximum(u[Field.RHO], self.eos.rho_floor)
        kinetic = 0.5 * (u[Field.SX] ** 2 + u[Field.SY] ** 2 + u[Field.SZ] ** 2) / rho
        diff = u[Field.EGAS] - kinetic
        healthy = diff > self.eos.dual_eta * u[Field.EGAS]
        u[Field.TAU] = np.where(
            healthy,
            self.eos.tau_from_eint(np.maximum(diff, self.eos.eint_floor)),
            u[Field.TAU],
        )


def _ready() -> Future:
    from repro.amt.future import make_ready_future

    return make_ready_future(None)
