"""Backend cross-check: the DES oracle vs the real-parallel schedule.

The process backend promises *bit-identical* physics: same kernels, same
leaves, different cores.  This harness makes that promise executable — it
clones a mesh, runs the same step sequence through both backends, and
asserts ``np.array_equal`` on **every field of every leaf after every
step** (not a tolerance: identical bits).  It backs the
``parallel-smoke`` CI job, the backend-equivalence tests and the
benchmark gate in ``benchmarks/bench_parallel.py``.

The serial side runs the batched integrator — itself bit-identical to the
per-leaf reference and to the DES driver's distributed schedule (the
equivalence chain established by the hydro-plan and distributed-driver
test suites) — so one comparison pins all four execution paths together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.hydro.eos import IdealGasEOS
from repro.hydro.integrator import GravityCallback, HydroIntegrator
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey


class BackendMismatch(AssertionError):
    """The two backends produced different bits."""

    def __init__(self, step: int, key: NodeKey, max_abs_diff: float) -> None:
        self.step = step
        self.key = key
        self.max_abs_diff = max_abs_diff
        super().__init__(
            f"backend mismatch at step {step}, leaf {key}: "
            f"max |serial - process| = {max_abs_diff:.3e}"
        )


@dataclass
class CrosscheckResult:
    steps: int
    leaves: int
    nprocs: int
    dt: float
    #: Wall-clock seconds spent inside step() per backend (the cross-check
    #: is not a benchmark, but the ratio is a useful smoke signal).
    serial_s: float
    process_s: float
    #: Checker evidence from the process side: shm race findings (the
    #: dynamic detector runs at every barrier during the cross-check and
    #: must stay at zero) and access events it replayed.
    race_findings: int = 0
    race_events: int = 0

    @property
    def ok(self) -> bool:  # mismatches raise, so reaching a result is success
        return self.race_findings == 0


def clone_mesh(mesh: AmrMesh) -> AmrMesh:
    """Rebuild an identical mesh with private storage.

    Reconstructs the refinement sequence (coarse to fine) on a fresh
    ``AmrMesh`` and copies every node's field data, so the clone shares no
    arrays with the original — required because the process backend adopts
    its mesh's storage into shared memory.
    """
    clone = AmrMesh(n=mesh.n, ghost=mesh.ghost, domain_size=mesh.domain_size)
    for level in range(mesh.max_level()):
        for node in mesh.nodes_at_level(level):
            if not node.is_leaf and clone.nodes[node.key].is_leaf:
                clone.refine(node.key)
    for key, node in mesh.nodes.items():
        np.copyto(clone.nodes[key].subgrid.data, node.subgrid.data)
    return clone


def assert_identical(mesh_a: AmrMesh, mesh_b: AmrMesh, step: int = -1) -> None:
    """Raise :class:`BackendMismatch` unless every leaf is bit-equal."""
    keys_a = sorted(leaf.key for leaf in mesh_a.leaves())
    keys_b = sorted(leaf.key for leaf in mesh_b.leaves())
    if keys_a != keys_b:
        raise BackendMismatch(step, keys_a[0] if keys_a else (0, 0), float("inf"))
    for key in keys_a:
        a = mesh_a.nodes[key].subgrid.data
        b = mesh_b.nodes[key].subgrid.data
        if not np.array_equal(a, b):
            raise BackendMismatch(step, key, float(np.max(np.abs(a - b))))


def conserved_sums(mesh: AmrMesh) -> np.ndarray:
    """Volume-weighted field totals over the leaves (conservation probe)."""
    total = None
    for leaf in mesh.leaves():
        s = leaf.subgrid.interior
        sums = leaf.subgrid.data[:, s, s, s].sum(axis=(1, 2, 3)) * leaf.cell_volume
        total = sums if total is None else total + sums
    return total


def crosscheck_hydro(
    mesh: AmrMesh,
    steps: int = 3,
    nprocs: int = 2,
    eos: Optional[IdealGasEOS] = None,
    omega: float = 0.0,
    gravity: Optional[Callable[[], GravityCallback]] = None,
    gravity_every_stage: bool = False,
    reflux: bool = True,
    wire: str = "shm",
    dt: Optional[float] = None,
    mutate: Optional[Callable[[AmrMesh, int], None]] = None,
    detect_races: bool = True,
) -> CrosscheckResult:
    """Run ``steps`` RK3 steps on both backends; raise on any divergence.

    ``gravity`` is a *factory* returning a fresh gravity callback (each
    backend needs its own solver instance so plan caches never alias the
    other's mesh).  ``mutate(mesh, step_index)`` is applied to **both**
    meshes before each step — the regrid-propagation hook the hypothesis
    sweep drives.

    The process side runs with static plan verification *and* (by
    default) the dynamic shm race detector enabled, so every cross-check
    doubles as a zero-findings assertion for the checker stack: a
    detected race raises ``ShmRaceError`` exactly like a bit mismatch
    raises :class:`BackendMismatch`.
    """
    import time as _time

    mesh_serial = mesh
    mesh_process = clone_mesh(mesh)
    serial = HydroIntegrator(
        mesh_serial, eos=eos, omega=omega,
        gravity=gravity() if gravity else None,
        gravity_every_stage=gravity_every_stage, reflux=reflux,
    )
    process = HydroIntegrator(
        mesh_process, eos=eos, omega=omega,
        gravity=gravity() if gravity else None,
        gravity_every_stage=gravity_every_stage, reflux=reflux,
        backend="process", nprocs=nprocs, wire=wire,
        detect_races=detect_races,
    )
    serial_s = process_s = 0.0
    try:
        for step in range(steps):
            if mutate is not None:
                mutate(mesh_serial, step)
                mutate(mesh_process, step)
                assert_identical(mesh_serial, mesh_process, step)
            step_dt = serial.timestep() if dt is None else dt
            t0 = _time.perf_counter()
            serial.step(step_dt)
            t1 = _time.perf_counter()
            process.step(step_dt)
            t2 = _time.perf_counter()
            serial_s += t1 - t0
            process_s += t2 - t1
            assert_identical(mesh_serial, mesh_process, step)
            if not np.array_equal(
                conserved_sums(mesh_serial), conserved_sums(mesh_process)
            ):
                raise BackendMismatch(step, (0, 0), float("nan"))
        detector = (
            process._executor.race_detector
            if process._executor is not None else None
        )
        race_findings = len(detector.findings) if detector else 0
        race_events = detector.events_seen if detector else 0
    finally:
        process.close()
    return CrosscheckResult(
        steps=steps,
        leaves=len(mesh_serial.leaves()),
        nprocs=nprocs,
        dt=serial.last_dt,
        serial_s=serial_s,
        process_s=process_s,
        race_findings=race_findings,
        race_events=race_events,
    )


def crosscheck_scenarios(
    nprocs: int = 2, steps: int = 2, wire: str = "shm"
) -> List[CrosscheckResult]:
    """The CI smoke battery: blast (adaptive, reflux) and a rotating DWD
    (gravity via FMM) cross-checked on both backends."""
    from repro.gravity.fmm import FmmSolver
    from repro.scenarios.blast import sedov_blast
    from repro.scenarios.dwd import dwd_scenario

    results = []
    blast = sedov_blast(levels=2)
    results.append(
        crosscheck_hydro(
            blast.mesh, steps=steps, nprocs=nprocs, eos=blast.eos, wire=wire
        )
    )
    dwd = dwd_scenario(level=1, scf_grid=24)

    def gravity_factory() -> GravityCallback:
        return FmmSolver(empty_mass_threshold=1e-12).as_gravity_callback()

    results.append(
        crosscheck_hydro(
            dwd.mesh, steps=steps, nprocs=nprocs, eos=dwd.eos,
            omega=dwd.omega, gravity=gravity_factory, wire=wire,
        )
    )
    return results
