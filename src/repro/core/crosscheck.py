"""Backend cross-check: the seed path vs every other way to run a step.

The process backend promises *bit-identical* physics: same kernels, same
leaves, different cores.  This harness makes that promise executable — it
clones a mesh, runs the same step sequence through both backends, and
asserts ``np.array_equal`` on **every field of every leaf after every
step** (not a tolerance: identical bits).  It backs the
``parallel-smoke`` CI job, the backend-equivalence tests and the
benchmark gate in ``benchmarks/bench_parallel.py``.

Array backends (:mod:`repro.kokkos.backend`) get the same treatment in
two tiers:

*exact*
    Seed path vs dispatch through the ``numpy`` backend.  Same functions,
    same storage, different call path — any diff is a dispatch bug, so
    the gate is ``np.array_equal`` bits, like the process check.
*tolerance*
    Seed path vs the preferred JIT backend
    (:func:`repro.kokkos.backend.jit_backend_name`: ``numba`` when
    installed, its interpreted ``pyjit`` twin otherwise).  A JIT may
    re-associate floating point, so the gate is the declared per-field
    relative-error budgets in :data:`TOLERANCE_BUDGETS` plus the
    conserved-sum drift gate :data:`CONSERVED_DRIFT_BUDGET` — explicit
    numbers, not "close enough".

The serial side runs the batched integrator — itself bit-identical to the
per-leaf reference and to the DES driver's distributed schedule (the
equivalence chain established by the hydro-plan and distributed-driver
test suites) — so one comparison pins all the execution paths together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.hydro.eos import IdealGasEOS
from repro.hydro.integrator import GravityCallback, HydroIntegrator
from repro.octree.fields import Field
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey

#: Conserved-field names in storage row order (budget keys).
FIELD_NAMES = tuple(f.name.lower() for f in sorted(Field, key=lambda f: f.value))

#: Tolerance-tier per-field budgets: max-norm relative error
#: ``max|seed - jit| / max|seed|`` allowed per field after each step.
#: numba's LLVM pipeline may fuse/reorder the arithmetic of the stacked
#: sweep kernels, so the budget is ULP-scale-times-slack rather than zero;
#: the interpreted ``pyjit`` twin lands at exactly 0.0 on every scenario
#: we run (same NumPy ops in the same order as the seed kernels).
TOLERANCE_BUDGETS: Dict[str, float] = {
    "rho": 1e-10,
    "sx": 1e-9,
    "sy": 1e-9,
    "sz": 1e-9,
    "egas": 1e-9,
    "tau": 1e-10,
    "frac1": 1e-10,
    "frac2": 1e-10,
}

#: Tolerance-tier gate on the relative difference of volume-weighted
#: conserved sums between the two runs (per field, after each step).
CONSERVED_DRIFT_BUDGET = 1e-11


class BackendMismatch(AssertionError):
    """The two backends produced different bits."""

    def __init__(self, step: int, key: NodeKey, max_abs_diff: float) -> None:
        self.step = step
        self.key = key
        self.max_abs_diff = max_abs_diff
        super().__init__(
            f"backend mismatch at step {step}, leaf {key}: "
            f"max |serial - process| = {max_abs_diff:.3e}"
        )


class ToleranceExceeded(AssertionError):
    """A tolerance-tier cross-check left its declared error budget."""

    def __init__(self, step: int, field: str, rel_err: float, budget: float) -> None:
        self.step = step
        self.field = field
        self.rel_err = rel_err
        self.budget = budget
        super().__init__(
            f"tolerance budget exceeded at step {step}: field {field!r} "
            f"rel err {rel_err:.3e} > budget {budget:.1e}"
        )


@dataclass
class CrosscheckResult:
    steps: int
    leaves: int
    nprocs: int
    dt: float
    #: Wall-clock seconds spent inside step() per backend (the cross-check
    #: is not a benchmark, but the ratio is a useful smoke signal).
    serial_s: float
    process_s: float
    #: Checker evidence from the process side: shm race findings (the
    #: dynamic detector runs at every barrier during the cross-check and
    #: must stay at zero) and access events it replayed.
    race_findings: int = 0
    race_events: int = 0
    #: Which comparison produced this result: "process" (DES vs process
    #: backend, bit gate), "exact" (seed vs numpy-dispatch, bit gate) or
    #: "tolerance" (seed vs JIT backend, budget gate).
    tier: str = "process"
    #: The array backend on the non-seed side ("" for the process check).
    backend_name: str = ""
    #: Worst per-field max-norm relative error seen across all steps
    #: (identically 0.0 for the bit-gated tiers).
    max_rel_err: float = 0.0

    @property
    def ok(self) -> bool:  # mismatches raise, so reaching a result is success
        return self.race_findings == 0


def clone_mesh(mesh: AmrMesh) -> AmrMesh:
    """Rebuild an identical mesh with private storage.

    Reconstructs the refinement sequence (coarse to fine) on a fresh
    ``AmrMesh`` and copies every node's field data, so the clone shares no
    arrays with the original — required because the process backend adopts
    its mesh's storage into shared memory.
    """
    clone = AmrMesh(n=mesh.n, ghost=mesh.ghost, domain_size=mesh.domain_size)
    for level in range(mesh.max_level()):
        for node in mesh.nodes_at_level(level):
            if not node.is_leaf and clone.nodes[node.key].is_leaf:
                clone.refine(node.key)
    for key, node in mesh.nodes.items():
        clone.nodes[key].subgrid.data[...] = node.subgrid.data
    return clone


def assert_identical(mesh_a: AmrMesh, mesh_b: AmrMesh, step: int = -1) -> None:
    """Raise :class:`BackendMismatch` unless every leaf is bit-equal."""
    keys_a = sorted(leaf.key for leaf in mesh_a.leaves())
    keys_b = sorted(leaf.key for leaf in mesh_b.leaves())
    if keys_a != keys_b:
        raise BackendMismatch(step, keys_a[0] if keys_a else (0, 0), float("inf"))
    for key in keys_a:
        a = mesh_a.nodes[key].subgrid.data
        b = mesh_b.nodes[key].subgrid.data
        if not np.array_equal(a, b):
            raise BackendMismatch(step, key, float(np.max(np.abs(a - b))))


def field_rel_errors(mesh_a: AmrMesh, mesh_b: AmrMesh) -> np.ndarray:
    """Per-field max-norm relative errors ``max|a - b| / max|a|`` over all
    leaves (normalising by the reference field's global magnitude keeps
    near-zero cells — e.g. the symmetric momenta of a centred blast — from
    reporting O(1) errors on last-bit differences)."""
    diff = np.zeros(len(FIELD_NAMES))
    scale = np.zeros(len(FIELD_NAMES))
    for leaf in mesh_a.leaves():
        a = leaf.subgrid.data
        b = mesh_b.nodes[leaf.key].subgrid.data
        diff = np.maximum(diff, np.abs(a - b).max(axis=(1, 2, 3)))
        scale = np.maximum(scale, np.abs(a).max(axis=(1, 2, 3)))
    return diff / np.where(scale > 0.0, scale, 1.0)


def assert_within_budgets(
    mesh_a: AmrMesh,
    mesh_b: AmrMesh,
    budgets: Dict[str, float],
    step: int = -1,
) -> float:
    """Gate every field's relative error against its declared budget.

    Raises :class:`ToleranceExceeded` on the first violation; returns the
    worst relative error otherwise.
    """
    errs = field_rel_errors(mesh_a, mesh_b)
    for i, name in enumerate(FIELD_NAMES):
        budget = budgets[name]
        if errs[i] > budget:
            raise ToleranceExceeded(step, name, float(errs[i]), budget)
    return float(errs.max())


def conserved_sums(mesh: AmrMesh) -> np.ndarray:
    """Volume-weighted field totals over the leaves (conservation probe)."""
    total = None
    for leaf in mesh.leaves():
        s = leaf.subgrid.interior
        sums = leaf.subgrid.data[:, s, s, s].sum(axis=(1, 2, 3)) * leaf.cell_volume
        total = sums if total is None else total + sums
    return total


def crosscheck_hydro(
    mesh: AmrMesh,
    steps: int = 3,
    nprocs: int = 2,
    eos: Optional[IdealGasEOS] = None,
    omega: float = 0.0,
    gravity: Optional[Callable[[], GravityCallback]] = None,
    gravity_every_stage: bool = False,
    reflux: bool = True,
    wire: str = "shm",
    overlap: bool = False,
    dt: Optional[float] = None,
    mutate: Optional[Callable[[AmrMesh, int], None]] = None,
    detect_races: bool = True,
    plan_cache=None,  # PlanCache | str | Path | None
) -> CrosscheckResult:
    """Run ``steps`` RK3 steps on both backends; raise on any divergence.

    ``gravity`` is a *factory* returning a fresh gravity callback (each
    backend needs its own solver instance so plan caches never alias the
    other's mesh).  ``mutate(mesh, step_index)`` is applied to **both**
    meshes before each step — the regrid-propagation hook the hypothesis
    sweep drives.  ``plan_cache`` (a directory path or a
    :class:`repro.core.plancache.PlanCache`) gives each backend its own
    store handle over the same on-disk cache, so whichever side builds a
    topology cold serves the other a cache hit — and the bit-identity
    assertion then covers the cache-hit plan path too.

    The process side runs with static plan verification *and* (by
    default) the dynamic shm race detector enabled, so every cross-check
    doubles as a zero-findings assertion for the checker stack: a
    detected race raises ``ShmRaceError`` exactly like a bit mismatch
    raises :class:`BackendMismatch`.
    """
    import time as _time

    def cache_handle():  # noqa: ANN202
        if plan_cache is None:
            return None
        if hasattr(plan_cache, "load"):
            return plan_cache
        from repro.core.plancache import PlanCache

        return PlanCache(plan_cache)

    mesh_serial = mesh
    mesh_process = clone_mesh(mesh)
    serial = HydroIntegrator(
        mesh_serial, eos=eos, omega=omega,
        gravity=gravity() if gravity else None,
        gravity_every_stage=gravity_every_stage, reflux=reflux,
        plan_cache=cache_handle(),
    )
    process = HydroIntegrator(
        mesh_process, eos=eos, omega=omega,
        gravity=gravity() if gravity else None,
        gravity_every_stage=gravity_every_stage, reflux=reflux,
        backend="process", nprocs=nprocs, wire=wire, overlap=overlap,
        detect_races=detect_races,
        plan_cache=cache_handle(),
    )
    serial_s = process_s = 0.0
    try:
        for step in range(steps):
            if mutate is not None:
                mutate(mesh_serial, step)
                mutate(mesh_process, step)
                assert_identical(mesh_serial, mesh_process, step)
            step_dt = serial.timestep() if dt is None else dt
            t0 = _time.perf_counter()
            serial.step(step_dt)
            t1 = _time.perf_counter()
            process.step(step_dt)
            t2 = _time.perf_counter()
            serial_s += t1 - t0
            process_s += t2 - t1
            assert_identical(mesh_serial, mesh_process, step)
            if not np.array_equal(
                conserved_sums(mesh_serial), conserved_sums(mesh_process)
            ):
                raise BackendMismatch(step, (0, 0), float("nan"))
        detector = (
            process._executor.race_detector
            if process._executor is not None else None
        )
        race_findings = len(detector.findings) if detector else 0
        race_events = detector.events_seen if detector else 0
    finally:
        process.close()
    return CrosscheckResult(
        steps=steps,
        leaves=len(mesh_serial.leaves()),
        nprocs=nprocs,
        dt=serial.last_dt,
        serial_s=serial_s,
        process_s=process_s,
        race_findings=race_findings,
        race_events=race_events,
    )


def crosscheck_array_backend(
    mesh: AmrMesh,
    backend_name: str,
    tier: str = "exact",
    steps: int = 3,
    eos: Optional[IdealGasEOS] = None,
    omega: float = 0.0,
    gravity: Optional[Callable[[Optional[str]], GravityCallback]] = None,
    gravity_every_stage: bool = False,
    reflux: bool = True,
    dt: Optional[float] = None,
    mutate: Optional[Callable[[AmrMesh, int], None]] = None,
    budgets: Optional[Dict[str, float]] = None,
) -> CrosscheckResult:
    """Cross-check the seed kernel path against an array backend.

    Runs ``steps`` RK3 steps twice on cloned meshes: the reference side
    with the seed path (``array_backend=None``) and the other side
    dispatching through ``backend_name`` (both hydro and FMM gravity).
    The ``exact`` tier demands identical bits (:func:`assert_identical` +
    conserved-sum equality); the ``tolerance`` tier gates per-field
    relative errors against ``budgets`` (default
    :data:`TOLERANCE_BUDGETS`) and the conserved-sum drift against
    :data:`CONSERVED_DRIFT_BUDGET`.

    ``gravity`` is a factory taking the array-backend name (``None`` on
    the reference side) so each side gets a private solver routed through
    its own backend.  The result reuses the timing fields: ``serial_s``
    is the reference side, ``process_s`` the backend side.
    """
    import time as _time

    if tier not in ("exact", "tolerance"):
        raise ValueError(f"tier must be 'exact' or 'tolerance', got {tier!r}")
    if budgets is None:
        budgets = TOLERANCE_BUDGETS
    mesh_ref = mesh
    mesh_alt = clone_mesh(mesh)
    ref = HydroIntegrator(
        mesh_ref, eos=eos, omega=omega,
        gravity=gravity(None) if gravity else None,
        gravity_every_stage=gravity_every_stage, reflux=reflux,
    )
    alt = HydroIntegrator(
        mesh_alt, eos=eos, omega=omega,
        gravity=gravity(backend_name) if gravity else None,
        gravity_every_stage=gravity_every_stage, reflux=reflux,
        array_backend=backend_name,
    )
    ref_s = alt_s = 0.0
    worst = 0.0
    for step in range(steps):
        if mutate is not None:
            mutate(mesh_ref, step)
            mutate(mesh_alt, step)
            assert_identical(mesh_ref, mesh_alt, step)
        step_dt = ref.timestep() if dt is None else dt
        t0 = _time.perf_counter()
        ref.step(step_dt)
        t1 = _time.perf_counter()
        alt.step(step_dt)
        t2 = _time.perf_counter()
        ref_s += t1 - t0
        alt_s += t2 - t1
        sums_ref = conserved_sums(mesh_ref)
        sums_alt = conserved_sums(mesh_alt)
        if tier == "exact":
            assert_identical(mesh_ref, mesh_alt, step)
            if not np.array_equal(sums_ref, sums_alt):
                raise BackendMismatch(step, (0, 0), float("nan"))
        else:
            worst = max(worst, assert_within_budgets(
                mesh_ref, mesh_alt, budgets, step
            ))
            drift = np.abs(sums_ref - sums_alt) / np.maximum(
                np.abs(sums_ref), 1e-300
            )
            if float(drift.max()) > CONSERVED_DRIFT_BUDGET:
                i = int(drift.argmax())
                raise ToleranceExceeded(
                    step, f"conserved[{FIELD_NAMES[i]}]",
                    float(drift.max()), CONSERVED_DRIFT_BUDGET,
                )
    return CrosscheckResult(
        steps=steps,
        leaves=len(mesh_ref.leaves()),
        nprocs=1,
        dt=ref.last_dt,
        serial_s=ref_s,
        process_s=alt_s,
        tier=tier,
        backend_name=backend_name,
        max_rel_err=worst,
    )


def crosscheck_scenarios(
    nprocs: int = 2,
    steps: int = 2,
    wire: str = "shm",
    overlap: bool = False,
    tier: Optional[str] = None,
    plan_cache=None,  # PlanCache | str | Path | None
) -> List[CrosscheckResult]:
    """The CI smoke battery: blast (adaptive, reflux) and a rotating DWD
    (gravity via FMM), cross-checked per tier.

    ``tier=None`` runs the original DES-vs-process bit check; ``"exact"``
    pins seed vs numpy-dispatch to identical bits; ``"tolerance"`` bounds
    seed vs the preferred JIT backend by the declared budgets.
    """
    from repro.gravity.fmm import FmmSolver
    from repro.kokkos.backend import jit_backend_name
    from repro.scenarios.blast import sedov_blast
    from repro.scenarios.dwd import dwd_scenario

    results = []
    blast = sedov_blast(levels=2)
    dwd = dwd_scenario(level=1, scf_grid=24)

    if tier is None:
        results.append(
            crosscheck_hydro(
                blast.mesh, steps=steps, nprocs=nprocs, eos=blast.eos,
                wire=wire, overlap=overlap, plan_cache=plan_cache,
            )
        )

        def gravity_factory() -> GravityCallback:
            return FmmSolver(empty_mass_threshold=1e-12).as_gravity_callback()

        results.append(
            crosscheck_hydro(
                dwd.mesh, steps=steps, nprocs=nprocs, eos=dwd.eos,
                omega=dwd.omega, gravity=gravity_factory, wire=wire,
                overlap=overlap, plan_cache=plan_cache,
            )
        )
        return results

    backend_name = "numpy" if tier == "exact" else jit_backend_name()
    results.append(
        crosscheck_array_backend(
            blast.mesh, backend_name, tier=tier, steps=steps, eos=blast.eos
        )
    )

    def gravity_for(array_backend: Optional[str]) -> GravityCallback:
        return FmmSolver(
            empty_mass_threshold=1e-12, array_backend=array_backend
        ).as_gravity_callback()

    results.append(
        crosscheck_array_backend(
            dwd.mesh, backend_name, tier=tier, steps=steps, eos=dwd.eos,
            omega=dwd.omega, gravity=gravity_for,
        )
    )
    return results
