"""SIMD ABI registry.

An ABI fixes the vector register width and therefore the number of lanes a
``Pack`` of a given dtype holds.  The efficiency factor feeds the machine
cost model: real vector units rarely deliver their full width on stencil
codes (alignment, remainder loops, gather/scatter), and the paper reports
2-3x rather than the ideal 8x for SVE-512 doubles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class SimdAbi:
    """A SIMD instruction-set ABI.

    Parameters
    ----------
    name: registry key, e.g. ``"sve512"``.
    register_bits: vector register width; 0 denotes the scalar ABI.
    efficiency: sustained fraction of the ideal width-speedup achieved on
        Octo-Tiger-like stencil/FMM kernels (cost-model input only; the
        functional :class:`~repro.simd.pack.Pack` semantics never depend
        on it).
    """

    name: str
    register_bits: int
    efficiency: float = 1.0

    @property
    def is_scalar(self) -> bool:
        return self.register_bits == 0

    def lanes(self, dtype: np.dtype = np.dtype(np.float64)) -> int:
        """Number of elements of ``dtype`` per register (1 for scalar)."""
        if self.is_scalar:
            return 1
        itemsize_bits = np.dtype(dtype).itemsize * 8
        lanes = self.register_bits // itemsize_bits
        if lanes < 1:
            raise ValueError(
                f"dtype {dtype} does not fit in {self.register_bits}-bit registers"
            )
        return lanes

    def speedup_factor(self, dtype: np.dtype = np.dtype(np.float64)) -> float:
        """Modelled kernel speedup over the scalar ABI (cost-model hook)."""
        if self.is_scalar:
            return 1.0
        return 1.0 + (self.lanes(dtype) - 1) * self.efficiency


_REGISTRY: Dict[str, SimdAbi] = {}


def register_abi(abi: SimdAbi) -> SimdAbi:
    """Add an ABI to the registry (names are unique); returns it."""
    if abi.name in _REGISTRY:
        raise ValueError(f"ABI {abi.name!r} already registered")
    _REGISTRY[abi.name] = abi
    return abi


def get_abi(name: str) -> SimdAbi:
    """Look up a registered ABI by name (KeyError lists the registry)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown SIMD ABI {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_abis() -> Tuple[str, ...]:
    """Names of every registered ABI, sorted."""
    return tuple(sorted(_REGISTRY))


# The ABIs Octo-Tiger's SIMD-type work covers (paper refs [10], [31]).
SCALAR = register_abi(SimdAbi("scalar", 0, efficiency=1.0))
NEON128 = register_abi(SimdAbi("neon128", 128, efficiency=0.45))
AVX2 = register_abi(SimdAbi("avx2", 256, efficiency=0.40))
AVX512 = register_abi(SimdAbi("avx512", 512, efficiency=0.33))
# Calibrated so speedup_factor(float64) = 1 + 7*0.243 ~= 2.7, inside the
# paper's reported "factor of two and three" single-node SVE window.
SVE512 = register_abi(SimdAbi("sve512", 512, efficiency=0.243))
