"""Explicit SIMD abstraction (the ``std::experimental::simd`` / SVE analog).

The paper's Fig. 7 experiment hinges on one property: the *same kernel
source* can be instantiated with a scalar SIMD type or a vector one (SVE on
A64FX), selected at compile time, yielding a 2-3x kernel speedup.  This
package reproduces the mechanism:

* :class:`~repro.simd.abi.SimdAbi` — a register description (width, lanes);
  the registry mirrors the ABIs Octo-Tiger supports (scalar, NEON, AVX2,
  AVX-512, SVE-512).
* :class:`~repro.simd.pack.Pack` — a fixed-width value type with element-wise
  arithmetic and masked operations, like ``simd<double, Abi>``.
* :func:`~repro.simd.vector_map.vector_map` — executes a pack-generic kernel
  over arrays in lane-sized chunks.  With the scalar ABI the kernel runs once
  per element; with SVE-512 once per eight doubles — so the measured Python
  speedup between ABIs is real, width-proportional work reduction, which is
  exactly what vector units buy.
"""

from repro.simd.abi import SimdAbi, get_abi, available_abis, register_abi
from repro.simd.pack import Pack, Mask, select
from repro.simd.vector_map import vector_map, vector_reduce

__all__ = [
    "SimdAbi",
    "get_abi",
    "available_abis",
    "register_abi",
    "Pack",
    "Mask",
    "select",
    "vector_map",
    "vector_reduce",
]
