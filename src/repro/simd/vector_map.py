"""Pack-generic kernel drivers.

:func:`vector_map` is the loop Octo-Tiger's Kokkos kernels contain: iterate
over arrays in chunks of one vector register, calling an ABI-generic kernel
on packs.  The remainder (array length not divisible by the lane count) is
handled with a masked tail, like a predicated SVE loop.

Because the kernel body is invoked once per *register* rather than once per
*element*, instantiating the same kernel with a wider ABI genuinely reduces
work — the measured scalar-vs-SVE speedups in ``benchmarks/bench_simd_kernels.py``
come from here.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.simd.abi import SimdAbi
from repro.simd.pack import Mask, Pack, select


def vector_map(
    kernel: Callable[..., Pack],
    abi: SimdAbi,
    out: np.ndarray,
    *inputs: np.ndarray,
) -> np.ndarray:
    """Apply ``kernel(pack_in0, pack_in1, ...) -> pack_out`` over arrays.

    All arrays must be 1-D, same length, same dtype.  The output array is
    written in place and returned.
    """
    if out.ndim != 1:
        raise ValueError("vector_map operates on 1-D arrays")
    n = out.shape[0]
    for arr in inputs:
        if arr.shape != out.shape:
            raise ValueError("vector_map inputs must match output shape")
    lanes = abi.lanes(out.dtype)

    main = (n // lanes) * lanes
    for offset in range(0, main, lanes):
        packs = [Pack.load(abi, arr, offset) for arr in inputs]
        kernel(*packs).store(out, offset)

    tail = n - main
    if tail:
        # Predicated tail: load a full register padded with the last value,
        # compute, and store only the live lanes.
        pad = lanes - tail
        packs = []
        for arr in inputs:
            chunk = np.concatenate([arr[main:], np.repeat(arr[-1:], pad)])
            packs.append(Pack(abi, chunk, dtype=arr.dtype))
        result = kernel(*packs)
        out[main:] = result.values[:tail]
    return out


def vector_reduce(
    kernel: Callable[..., Pack],
    abi: SimdAbi,
    *inputs: np.ndarray,
    init: float = 0.0,
    reducer: str = "sum",
) -> float:
    """Map ``kernel`` over the inputs and horizontally reduce the results.

    ``reducer`` is one of ``"sum"``, ``"min"``, ``"max"``.  The tail is
    masked with the reduction identity so padded lanes cannot contaminate
    the result.
    """
    if not inputs:
        raise ValueError("vector_reduce requires at least one input array")
    n = inputs[0].shape[0]
    for arr in inputs:
        if arr.shape != inputs[0].shape or arr.ndim != 1:
            raise ValueError("vector_reduce inputs must be matching 1-D arrays")
    lanes = abi.lanes(inputs[0].dtype)

    identities = {"sum": 0.0, "min": np.inf, "max": -np.inf}
    combine = {
        "sum": lambda a, b: a + b,
        "min": min,
        "max": max,
    }
    horizontal = {
        "sum": Pack.hsum,
        "min": Pack.hmin,
        "max": Pack.hmax,
    }
    if reducer not in identities:
        raise ValueError(f"unknown reducer {reducer!r}")
    identity = identities[reducer]

    acc = init if reducer == "sum" else combine[reducer](init, identity)
    main = (n // lanes) * lanes
    for offset in range(0, main, lanes):
        packs = [Pack.load(abi, arr, offset) for arr in inputs]
        acc = combine[reducer](acc, horizontal[reducer](kernel(*packs)))

    tail = n - main
    if tail:
        pad = lanes - tail
        packs = []
        for arr in inputs:
            chunk = np.concatenate([arr[main:], np.repeat(arr[-1:], pad)])
            packs.append(Pack(abi, chunk, dtype=arr.dtype))
        result = kernel(*packs)
        live = Mask(abi, np.arange(lanes) < tail)
        masked = select(live, result, Pack.broadcast(abi, identity, dtype=result.values.dtype))
        acc = combine[reducer](acc, horizontal[reducer](masked))
    return float(acc)
