"""Pack-generic compute kernels (the SIMD-typed kernel bodies).

These are the hydro kernel inner loops written once against the pack
interface — the way Octo-Tiger's Kokkos kernels are written once against
``std::experimental::simd`` and instantiated per ABI at compile time.  Each
kernel has a NumPy reference implementation; the tests assert bit-level
agreement under every ABI, which is the portability contract in executable
form.
"""

from __future__ import annotations

import numpy as np

from repro.simd.abi import SimdAbi
from repro.simd.pack import Pack, select
from repro.simd.vector_map import vector_map


# -- pack kernels -------------------------------------------------------------
def pressure_kernel(gamma: float):
    """p = (gamma - 1) * eint, clamped at zero."""

    def kernel(eint: Pack) -> Pack:
        zero = Pack.broadcast(eint.abi, 0.0, dtype=eint.values.dtype)
        return select(eint > 0.0, eint * (gamma - 1.0), zero)

    return kernel


def sound_speed_kernel(gamma: float):
    """c = sqrt(gamma * p / rho) with masked vacuum lanes."""

    def kernel(rho: Pack, p: Pack) -> Pack:
        tiny = Pack.broadcast(rho.abi, 1e-300, dtype=rho.values.dtype)
        safe_rho = rho.max(tiny)
        zero = Pack.broadcast(rho.abi, 0.0, dtype=rho.values.dtype)
        p_pos = select(p > 0.0, p, zero)
        return (p_pos * gamma / safe_rho).sqrt()

    return kernel


def minmod_kernel(a: Pack, b: Pack) -> Pack:
    """The slope limiter on packs: masked branchless minmod."""
    zero = Pack.broadcast(a.abi, 0.0, dtype=a.values.dtype)
    same_sign = (a * b) > 0.0
    smaller_a = abs(a) < abs(b)
    picked = select(smaller_a, a, b)
    return select(same_sign, picked, zero)


def hll_mass_flux_kernel(gamma: float):
    """HLL mass flux through a face from (rho, u, p) on both sides.

    Exercises the full masked-select pattern: three-way branch (left
    supersonic / right supersonic / star region) as lane blends.
    """
    c_of = sound_speed_kernel(gamma)

    def kernel(
        rho_l: Pack, u_l: Pack, p_l: Pack, rho_r: Pack, u_r: Pack, p_r: Pack
    ) -> Pack:
        c_l = c_of(rho_l, p_l)
        c_r = c_of(rho_r, p_r)
        s_l = (u_l - c_l).min(u_r - c_r)
        s_r = (u_l + c_l).max(u_r + c_r)
        f_l = rho_l * u_l
        f_r = rho_r * u_r
        width = s_r - s_l
        one = Pack.broadcast(rho_l.abi, 1.0, dtype=rho_l.values.dtype)
        safe = select(abs(width) > 1e-300, width, one)
        f_star = (f_l * s_r - f_r * s_l + (rho_r - rho_l) * (s_l * s_r)) / safe
        flux = select(s_l >= 0.0, f_l, select(s_r <= 0.0, f_r, f_star))
        return flux

    return kernel


# -- NumPy references (the oracles the tests compare against) -----------------
def pressure_reference(eint: np.ndarray, gamma: float) -> np.ndarray:
    return np.where(eint > 0.0, eint * (gamma - 1.0), 0.0)


def sound_speed_reference(rho: np.ndarray, p: np.ndarray, gamma: float) -> np.ndarray:
    return np.sqrt(np.where(p > 0.0, p, 0.0) * gamma / np.maximum(rho, 1e-300))


def minmod_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.where(a * b > 0.0, np.where(np.abs(a) < np.abs(b), a, b), 0.0)


def hll_mass_flux_reference(
    rho_l: np.ndarray,
    u_l: np.ndarray,
    p_l: np.ndarray,
    rho_r: np.ndarray,
    u_r: np.ndarray,
    p_r: np.ndarray,
    gamma: float,
) -> np.ndarray:
    c_l = sound_speed_reference(rho_l, p_l, gamma)
    c_r = sound_speed_reference(rho_r, p_r, gamma)
    s_l = np.minimum(u_l - c_l, u_r - c_r)
    s_r = np.maximum(u_l + c_l, u_r + c_r)
    f_l = rho_l * u_l
    f_r = rho_r * u_r
    width = s_r - s_l
    safe = np.where(np.abs(width) > 1e-300, width, 1.0)
    f_star = (f_l * s_r - f_r * s_l + (rho_r - rho_l) * (s_l * s_r)) / safe
    return np.where(s_l >= 0.0, f_l, np.where(s_r <= 0.0, f_r, f_star))


def run_hll_mass_flux(
    abi: SimdAbi,
    rho_l: np.ndarray,
    u_l: np.ndarray,
    p_l: np.ndarray,
    rho_r: np.ndarray,
    u_r: np.ndarray,
    p_r: np.ndarray,
    gamma: float = 5.0 / 3.0,
) -> np.ndarray:
    """Drive the pack kernel over whole arrays under a chosen ABI."""
    out = np.zeros_like(rho_l)
    vector_map(hll_mass_flux_kernel(gamma), abi, out, rho_l, u_l, p_l, rho_r, u_r, p_r)
    return out
