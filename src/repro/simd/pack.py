"""Fixed-width SIMD value types (``simd<T, Abi>`` analog).

A :class:`Pack` holds exactly ``abi.lanes(dtype)`` elements and supports the
element-wise operations SIMD kernels use: arithmetic, fused multiply-add,
square root, min/max, comparisons (yielding a :class:`Mask`) and masked
blending via :func:`select`.  Packs are immutable value types: every
operation returns a new pack, like register values.

Kernels written against this interface are ABI-generic — instantiating them
with the scalar ABI or SVE-512 changes only the lane count, which is the
property the paper's "adding SVE support was trivial" claim rests on.
"""

from __future__ import annotations

from typing import Any, Union

import numpy as np

from repro.simd.abi import SimdAbi

Scalar = Union[int, float]


class Mask:
    """Boolean lane mask produced by pack comparisons."""

    __slots__ = ("abi", "values")

    def __init__(self, abi: SimdAbi, values: np.ndarray) -> None:
        self.abi = abi
        self.values = np.asarray(values, dtype=bool)

    def all(self) -> bool:
        return bool(self.values.all())

    def any(self) -> bool:
        return bool(self.values.any())

    def none(self) -> bool:
        return not self.any()

    def count(self) -> int:
        return int(self.values.sum())

    def __and__(self, other: "Mask") -> "Mask":
        return Mask(self.abi, self.values & other.values)

    def __or__(self, other: "Mask") -> "Mask":
        return Mask(self.abi, self.values | other.values)

    def __invert__(self) -> "Mask":
        return Mask(self.abi, ~self.values)

    def __repr__(self) -> str:
        return f"Mask({self.values.tolist()})"


class Pack:
    """A vector-register value: ``lanes`` elements of one dtype."""

    __slots__ = ("abi", "values")

    def __init__(self, abi: SimdAbi, values: Any, dtype: np.dtype = np.float64) -> None:
        lanes = abi.lanes(np.dtype(dtype))
        arr = np.asarray(values, dtype=dtype)
        if arr.ndim == 0:  # broadcast scalar to all lanes
            arr = np.full(lanes, arr, dtype=dtype)
        if arr.shape != (lanes,):
            raise ValueError(
                f"pack for ABI {abi.name!r} needs {lanes} lanes, got shape {arr.shape}"
            )
        self.abi = abi
        self.values = arr

    # -- construction ------------------------------------------------------
    @classmethod
    def broadcast(cls, abi: SimdAbi, value: Scalar, dtype: np.dtype = np.float64) -> "Pack":
        return cls(abi, value, dtype=dtype)

    @classmethod
    def load(cls, abi: SimdAbi, buffer: np.ndarray, offset: int = 0) -> "Pack":
        """``copy_from`` — load ``lanes`` contiguous elements from a buffer."""
        lanes = abi.lanes(buffer.dtype)
        chunk = buffer[offset : offset + lanes]
        if chunk.shape[0] != lanes:
            raise ValueError(
                f"load of {lanes} lanes at offset {offset} overruns buffer "
                f"of size {buffer.shape[0]}"
            )
        return cls(abi, chunk.copy(), dtype=buffer.dtype)

    def store(self, buffer: np.ndarray, offset: int = 0) -> None:
        """``copy_to`` — store all lanes contiguously into a buffer."""
        lanes = self.values.shape[0]
        if offset + lanes > buffer.shape[0]:
            raise ValueError("store overruns buffer")
        buffer[offset : offset + lanes] = self.values

    @property
    def lanes(self) -> int:
        return self.values.shape[0]

    # -- arithmetic ----------------------------------------------------------
    def _coerce(self, other: Union["Pack", Scalar]) -> np.ndarray:
        if isinstance(other, Pack):
            if other.abi is not self.abi and other.abi != self.abi:
                raise TypeError(
                    f"mixed-ABI pack operation: {self.abi.name} vs {other.abi.name}"
                )
            return other.values
        return np.asarray(other, dtype=self.values.dtype)

    def _wrap(self, values: np.ndarray) -> "Pack":
        return Pack(self.abi, values, dtype=self.values.dtype)

    def __add__(self, other: Union["Pack", Scalar]) -> "Pack":
        return self._wrap(self.values + self._coerce(other))

    __radd__ = __add__

    def __sub__(self, other: Union["Pack", Scalar]) -> "Pack":
        return self._wrap(self.values - self._coerce(other))

    def __rsub__(self, other: Scalar) -> "Pack":
        return self._wrap(self._coerce(other) - self.values)

    def __mul__(self, other: Union["Pack", Scalar]) -> "Pack":
        return self._wrap(self.values * self._coerce(other))

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Pack", Scalar]) -> "Pack":
        return self._wrap(self.values / self._coerce(other))

    def __rtruediv__(self, other: Scalar) -> "Pack":
        return self._wrap(self._coerce(other) / self.values)

    def __neg__(self) -> "Pack":
        return self._wrap(-self.values)

    def __abs__(self) -> "Pack":
        return self._wrap(np.abs(self.values))

    def fma(self, mul: Union["Pack", Scalar], add: Union["Pack", Scalar]) -> "Pack":
        """Fused multiply-add: ``self * mul + add``."""
        return self._wrap(self.values * self._coerce(mul) + self._coerce(add))

    def sqrt(self) -> "Pack":
        return self._wrap(np.sqrt(self.values))

    def rsqrt(self) -> "Pack":
        return self._wrap(1.0 / np.sqrt(self.values))

    def min(self, other: Union["Pack", Scalar]) -> "Pack":
        return self._wrap(np.minimum(self.values, self._coerce(other)))

    def max(self, other: Union["Pack", Scalar]) -> "Pack":
        return self._wrap(np.maximum(self.values, self._coerce(other)))

    # -- comparisons ---------------------------------------------------------
    def __lt__(self, other: Union["Pack", Scalar]) -> Mask:
        return Mask(self.abi, self.values < self._coerce(other))

    def __le__(self, other: Union["Pack", Scalar]) -> Mask:
        return Mask(self.abi, self.values <= self._coerce(other))

    def __gt__(self, other: Union["Pack", Scalar]) -> Mask:
        return Mask(self.abi, self.values > self._coerce(other))

    def __ge__(self, other: Union["Pack", Scalar]) -> Mask:
        return Mask(self.abi, self.values >= self._coerce(other))

    def eq(self, other: Union["Pack", Scalar]) -> Mask:
        return Mask(self.abi, self.values == self._coerce(other))

    # -- horizontal reductions -------------------------------------------------
    def hsum(self) -> float:
        return float(self.values.sum())

    def hmin(self) -> float:
        return float(self.values.min())

    def hmax(self) -> float:
        return float(self.values.max())

    def __repr__(self) -> str:
        return f"Pack<{self.abi.name}>({self.values.tolist()})"


def select(mask: Mask, if_true: Pack, if_false: Pack) -> Pack:
    """Lane-wise blend (``hpx::experimental::where`` / vector select)."""
    if if_true.abi != mask.abi or if_false.abi != mask.abi:
        raise TypeError("select requires matching ABIs")
    return Pack(
        mask.abi,
        np.where(mask.values, if_true.values, if_false.values),
        dtype=if_true.values.dtype,
    )
