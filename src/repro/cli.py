"""Command-line interface: drive scenarios and performance studies.

    python -m repro.cli run --scenario rotating_star --level 2 --steps 3
    python -m repro.cli scale --scenario rotating_star --level 5 \
        --machine Fugaku --nodes 1 2 4 8 16
    python -m repro.cli machines
    python -m repro.cli manifest
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Octo-Tiger-on-HPX/Kokkos reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="evolve a scenario with real physics")
    run.add_argument("--scenario", default="rotating_star",
                     choices=["rotating_star", "v1309", "dwd"])
    run.add_argument("--level", type=int, default=2)
    run.add_argument("--steps", type=int, default=3)
    run.add_argument("--machine", default="Fugaku")
    run.add_argument("--nodes", type=int, default=4)
    run.add_argument("--checkpoint", default=None,
                     help="write a checkpoint here after the run")
    run.add_argument("--hydro-plan", default=True,
                     action=argparse.BooleanOptionalAction,
                     help="use the cached batched hydro step (stacked "
                          "sub-grid kernels + vectorized ghost exchange); "
                          "--no-hydro-plan selects the per-leaf reference "
                          "path (identical bits, slower)")
    run.add_argument("--coalesce", default=True,
                     action=argparse.BooleanOptionalAction,
                     help="bundle ghost messages per locality pair (one "
                          "message per neighbor locality per phase, see "
                          "docs/comms.md); --no-coalesce sends one message "
                          "per leaf face (identical bits, more messages)")
    run.add_argument("--m2l-split", type=int, default=0, metavar="ROWS",
                     help="shard heavy same-level M2L batches to at most "
                          "ROWS interaction rows each (0 = unsplit; "
                          "identical bits)")
    run.add_argument("--sanitize", action="store_true",
                     help="run the analysis suite alongside each step: "
                          "memory-space sanitizer over the physics, static "
                          "+ dynamic race detection over the task graph")
    run.add_argument("--faults", default=None, metavar="SPEC",
                     help="inject seeded network faults, e.g. "
                          "'drop=0.01,seed=7' or 'crash_loc=1,crash_step=2' "
                          "(keys: drop, delay, delay_s, dup, seed, "
                          "crash_loc, crash_step)")
    run.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                     help="write a checkpoint every N steps; with --faults "
                          "this enables rollback-and-replay on unrecoverable "
                          "faults")
    run.add_argument("--checkpoint-dir", default=None,
                     help="directory for the checkpoint series (default: a "
                          "temporary directory)")
    run.add_argument("--no-recovery", action="store_true",
                     help="disable the acknowledged-retransmit transport: "
                          "injected faults deadlock (diagnosed by the "
                          "watchdog) instead of being retried")
    run.add_argument("--backend", default="des", choices=["des", "process"],
                     help="execution backend: 'des' runs physics in-process "
                          "with discrete-event timing (default); 'process' "
                          "fans hydro steps and the far-field M2L out over "
                          "real worker processes with shared-memory arenas "
                          "(identical bits, see docs/parallel.md)")
    run.add_argument("--nprocs", type=int, default=2, metavar="N",
                     help="worker processes for --backend process")
    run.add_argument("--overlap", default=False,
                     action=argparse.BooleanOptionalAction,
                     help="process backend: futurized interior/halo "
                          "schedule — ghost-exchange latency hidden behind "
                          "interior compute in a dependency-grained fused "
                          "round (bit-identical to the default BSP rounds; "
                          "--no-overlap is the ablation baseline)")
    run.add_argument("--verify-plans", default=True,
                     action=argparse.BooleanOptionalAction,
                     help="statically verify the parallel plans (disjoint "
                          "rank write sets, one donor per ghost target, "
                          "disjoint M2L shards) before launch; "
                          "--no-verify-plans runs unverified plans")
    run.add_argument("--detect-races", action="store_true",
                     help="process backend: log every worker's shm accesses "
                          "and replay them against the barrier structure "
                          "after each round, raising on unordered conflicts")
    run.add_argument("--array-backend", default="numpy", metavar="NAME",
                     help="array backend for the hot kernels "
                          "(repro.kokkos.backend registry): numpy "
                          "(default, bit-identical), pyjit, numba, cupy, "
                          "jax — optional backends must be installed")
    run.add_argument("--plan-cache", default=None, metavar="DIR",
                     nargs="?", const="auto",
                     help="persist execution plans to a content-addressed "
                          "on-disk store keyed by topology fingerprint "
                          "(docs/plan_lifecycle.md): reruns over seen "
                          "topologies skip cold plan construction with "
                          "identical bits.  DIR selects the store root; "
                          "bare --plan-cache uses the user cache dir "
                          "(~/.cache/repro/plans)")

    check = sub.add_parser(
        "crosscheck",
        help="run the same steps on the DES and process backends and "
             "assert bit-identical fields (the parallel-smoke CI gate)")
    check.add_argument("--nprocs", type=int, default=2, metavar="N")
    check.add_argument("--steps", type=int, default=2)
    check.add_argument("--wire", default="shm", choices=["shm", "pipe"],
                       help="ghost-exchange wire format for the process "
                            "backend: shm writes (default) or serialized "
                            "payload buffers over pipes")
    check.add_argument("--overlap", default=False,
                       action=argparse.BooleanOptionalAction,
                       help="run the process side with the futurized "
                            "interior/halo schedule; the bit-identity "
                            "assertion then covers the overlap path")
    check.add_argument("--tier", default=None,
                       choices=["exact", "tolerance"],
                       help="array-backend equivalence tier instead of the "
                            "process check: 'exact' pins seed vs "
                            "numpy-dispatch to identical bits, 'tolerance' "
                            "bounds seed vs the preferred JIT backend by "
                            "the declared per-field budgets")
    check.add_argument("--plan-cache", default=None, metavar="DIR",
                       help="route both backends' plan construction through "
                            "one on-disk plan cache at DIR: whichever side "
                            "builds a topology cold serves the other a "
                            "cache hit, so the bit-identity assertion also "
                            "covers the cache-hit plan path")

    verify = sub.add_parser(
        "verify-plans",
        help="statically verify the parallel execution plans of every "
             "scenario: rank partitions, ghost bundle scatter sets and "
             "FMM M2L split shards (no workers are forked)")
    verify.add_argument("--nprocs", type=int, default=2, metavar="N")
    verify.add_argument("--levels", type=int, nargs="+", default=[1, 2])
    verify.add_argument("--scenarios", nargs="+",
                        default=["blast", "rotating_star", "dwd", "v1309"],
                        choices=["blast", "rotating_star", "dwd", "v1309"])
    verify.add_argument("--m2l-split", type=int, nargs="+",
                        default=[64, 256], metavar="ROWS",
                        help="M2L shard sizes to verify (rows per shard)")

    scale = sub.add_parser("scale", help="evaluate the distributed model")
    scale.add_argument("--scenario", default="rotating_star",
                       choices=["rotating_star", "v1309", "dwd"])
    scale.add_argument("--level", type=int, default=5)
    scale.add_argument("--machine", default="Fugaku")
    scale.add_argument("--nodes", type=int, nargs="+",
                       default=[1, 2, 4, 8, 16, 32, 64, 128])
    scale.add_argument("--gpus", action="store_true")
    scale.add_argument("--no-simd", action="store_true")
    scale.add_argument("--multipole-tasks", type=int, default=1)

    sub.add_parser("machines", help="list the machine models")
    sub.add_parser("manifest", help="print the Table I software manifest")
    return parser


def _scenario_spec(name: str, level: int, build_mesh: bool):  # noqa: ANN202
    from repro.scenarios import dwd_scenario, rotating_star, v1309_scenario

    builders = {
        "rotating_star": rotating_star,
        "v1309": v1309_scenario,
        "dwd": dwd_scenario,
    }
    return builders[name](level=level, build_mesh=build_mesh)


def _command_run(args: argparse.Namespace) -> int:
    from repro.core import OctoTigerSim
    from repro.core.diagnostics import diagnostics
    from repro.distsim import RunConfig
    from repro.machines import MACHINES
    from repro.resilience import DeadlockError, FaultSpec, UnrecoverableFault

    scenario = _scenario_spec(args.scenario, args.level, build_mesh=True)
    if scenario.mesh is None:
        print("level too large to build in memory; use `scale`", file=sys.stderr)
        return 2
    machine = MACHINES[args.machine]
    if args.backend == "process":
        cores_online = os.cpu_count() or 1
        if args.nprocs > cores_online:
            print(
                f"warning: --nprocs {args.nprocs} exceeds the "
                f"{cores_online} online core(s); workers will timeshare "
                "and measured speedups are not meaningful",
                file=sys.stderr,
            )
    faults = FaultSpec.parse(args.faults) if args.faults else None
    plan_cache = None
    if args.plan_cache is not None:
        from repro.core.plancache import PlanCache, default_cache_dir

        root = default_cache_dir() if args.plan_cache == "auto" else args.plan_cache
        plan_cache = PlanCache(root)
    sim = OctoTigerSim(
        scenario.mesh, eos=scenario.eos,
        omega=getattr(scenario, "omega", 0.0),
        machine=machine, nodes=args.nodes,
        config=RunConfig(
            machine=machine, nodes=args.nodes, coalesce=args.coalesce
        ),
        m2l_split=args.m2l_split,
        hydro_plan=args.hydro_plan,
        sanitize=args.sanitize,
        faults=faults,
        recovery=not args.no_recovery,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        backend=args.backend,
        nprocs=args.nprocs,
        overlap=args.overlap,
        verify_plans=args.verify_plans,
        detect_races=args.detect_races,
        array_backend=args.array_backend,
        plan_cache=plan_cache,
    )
    before = diagnostics(scenario.mesh)
    print(f"{args.scenario} level {args.level}: {scenario.mesh.n_cells()} cells "
          f"on {args.nodes}x {machine.name}")
    try:
        for record in sim.run(args.steps):
            print(f"  step {record.step}: dt={record.dt:.3e} "
                  f"{record.cells_per_second:.3e} cells/s "
                  f"{record.node_power_w:.0f} W/node")
    except DeadlockError as exc:
        # The paper's undebugable hang, reduced to one line.
        print(f"DEADLOCK: {str(exc).splitlines()[0]}", file=sys.stderr)
        return 4
    except UnrecoverableFault as exc:
        print(f"UNRECOVERABLE FAULT: {exc}", file=sys.stderr)
        return 5
    after = diagnostics(sim.mesh)
    print(f"mass drift {after.mass - before.mass:+.3e}")
    if plan_cache is not None:
        s = plan_cache.stats
        print(f"plan cache: {s.hits} hit(s), {s.misses} miss(es), "
              f"{s.stores} store(s), {s.errors} error(s)")
    if faults is not None:
        totals = {
            name.split(".", 1)[1]: int(sim.counters.total(name))
            for name in sim.counters.names()
            if name.startswith("resilience.")
        }
        summary = ", ".join(f"{k}={v}" for k, v in sorted(totals.items()))
        print(f"resilience: {summary}")
    if args.sanitize:
        n = len(sim.sanitizer_findings)
        checked = sim.counters.total("sanitize.tasks_checked")
        print(f"sanitizer: {n} finding(s) over {checked:.0f} checked tasks")
        for finding in sim.sanitizer_findings:
            print(f"  {finding}", file=sys.stderr)
        if n:
            return 3
    if args.checkpoint:
        from repro.ioutil import save_checkpoint

        path = save_checkpoint(
            sim.mesh, args.checkpoint, time=sim.integrator.time,
            step=sim.integrator.steps_taken,
        )
        print(f"checkpoint written to {path}")
    sim.close()
    return 0


def _command_crosscheck(args: argparse.Namespace) -> int:
    from repro.core.crosscheck import (
        BackendMismatch,
        ToleranceExceeded,
        crosscheck_scenarios,
    )

    try:
        results = crosscheck_scenarios(
            nprocs=args.nprocs, steps=args.steps, wire=args.wire,
            overlap=args.overlap, tier=args.tier,
            plan_cache=args.plan_cache,
        )
    except (BackendMismatch, ToleranceExceeded) as exc:
        print(f"CROSSCHECK FAILED: {exc}", file=sys.stderr)
        return 1
    findings = 0
    for name, r in zip(("blast", "dwd"), results):
        findings += r.race_findings
        if args.tier is None:
            print(f"{name}: {r.steps} steps x {r.leaves} leaves, "
                  f"nprocs={r.nprocs}, serial {r.serial_s:.2f}s / "
                  f"process {r.process_s:.2f}s — bit-identical, "
                  f"{r.race_findings} race finding(s) over {r.race_events} "
                  f"shm access events")
        else:
            verdict = ("bit-identical" if r.tier == "exact"
                       else f"max rel err {r.max_rel_err:.2e} within budgets")
            print(f"{name}: {r.steps} steps x {r.leaves} leaves, "
                  f"seed {r.serial_s:.2f}s / {r.backend_name} "
                  f"{r.process_s:.2f}s — {verdict}")
    return 1 if findings else 0


def _command_verify_plans(args: argparse.Namespace) -> int:
    from repro.analysis.planverify import verify_fmm_split, verify_mesh_plans
    from repro.gravity.plan import build_plan
    from repro.scenarios import dwd_scenario, rotating_star, v1309_scenario
    from repro.scenarios.blast import sedov_blast

    def build(name: str, level: int):  # noqa: ANN202
        if name == "blast":
            return sedov_blast(levels=level).mesh
        if name == "rotating_star":
            return rotating_star(level=level).mesh
        if name == "dwd":
            return dwd_scenario(level=level, scf_grid=24).mesh
        return v1309_scenario(level=level, scf_grid=24).mesh

    total = 0
    for name in args.scenarios:
        for level in args.levels:
            mesh = build(name, level)
            violations = verify_mesh_plans(mesh, args.nprocs)
            # Deliberate per-scenario sweep: verify-plans must prove each
            # topology's cold construction, never a cached/delta shortcut.
            plan = build_plan(mesh, theta=0.5)  # reprolint: sanctioned-cold-build
            for split in args.m2l_split:
                violations.extend(verify_fmm_split(plan, split))
            status = "OK" if not violations else "FAIL"
            shards = sum(len(plan.split(s)) for s in args.m2l_split)
            print(f"{name:<14} level {level} nprocs {args.nprocs}: "
                  f"{len(mesh.leaves())} leaves, {shards} M2L shard(s) "
                  f"verified — {status}")
            for v in violations:
                print(f"  {v}", file=sys.stderr)
            total += len(violations)
    if total:
        print(f"{total} plan violation(s)", file=sys.stderr)
        return 1
    return 0


def _command_scale(args: argparse.Namespace) -> int:
    from repro.distsim import RunConfig, simulate_step
    from repro.machines import MACHINES

    scenario = _scenario_spec(args.scenario, args.level, build_mesh=False)
    machine = MACHINES[args.machine]
    print(f"{scenario.spec.name}: {scenario.spec.n_cells:,} cells on {machine.name}")
    print("  nodes   cells/s      util   W(total)")
    for nodes in args.nodes:
        config = RunConfig(
            machine=machine,
            nodes=nodes,
            use_gpus=args.gpus,
            simd=not args.no_simd,
            tasks_per_multipole_kernel=args.multipole_tasks,
        )
        r = simulate_step(scenario.spec, config)
        print(f"  {nodes:5d}   {r.cells_per_second:.3e}  {r.utilization:.2f}  "
              f"{r.job_power_w:8.0f}")
    return 0


def _command_machines() -> int:
    from repro.machines import MACHINES

    for machine in MACHINES.values():
        node = machine.node
        gpus = f", {len(node.gpus)}x {node.gpus[0].name}" if node.gpus else ""
        print(f"{machine.name:<11} {node.cores} cores @ {node.freq_ghz} GHz"
              f" ({node.simd_abi}){gpus}; {node.memory_gb:.0f} GB;"
              f" {machine.interconnect.name}")
    return 0


def _command_manifest() -> int:
    from repro.machines import format_manifest

    print(format_manifest())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "crosscheck":
        return _command_crosscheck(args)
    if args.command == "verify-plans":
        return _command_verify_plans(args)
    if args.command == "scale":
        return _command_scale(args)
    if args.command == "machines":
        return _command_machines()
    return _command_manifest()


if __name__ == "__main__":
    raise SystemExit(main())
