"""Asynchronous many-task runtime (the HPX analog).

This package provides the task-parallel substrate the rest of the
reproduction runs on.  Like HPX it exposes

* futures and promises with continuations (:mod:`repro.amt.future`),
* a task scheduler over a pool of worker threads (:mod:`repro.amt.scheduler`),
* *localities* (process-like address spaces), remote *actions* between them,
  and channels (:mod:`repro.amt.locality`),
* a network model for inter-locality messages (:mod:`repro.amt.network`).

Unlike HPX it runs on a **deterministic discrete-event virtual clock**
(:mod:`repro.amt.engine`): tasks execute real Python callables, but time is
simulated, so schedules are reproducible and we can model machines we do not
have (A64FX nodes, Tofu-D interconnects) while executing genuine numerics.

A second engine implementation, :mod:`repro.amt.parallel`, maps localities
to real OS processes over shared-memory arenas (:mod:`repro.amt.shm`) —
true parallelism with the DES engine as its bit-exact oracle.
"""

from repro.amt.future import (
    Future,
    Promise,
    FutureError,
    make_ready_future,
    when_all,
    when_any,
)
from repro.amt.engine import Engine
from repro.amt.task import Task, TaskState
from repro.amt.scheduler import WorkerPool
from repro.amt.locality import Locality, Runtime, Channel, ActionRegistry
from repro.amt.network import NetworkModel, Message
from repro.amt.pjm import PjmJob, PjmScheduler
from repro.amt.parallel import (
    ParallelEngine,
    ParallelLocality,
    WorkerCrashError,
    WorkerError,
    WorkerTimeoutError,
)
from repro.amt.shm import ShmArena

__all__ = [
    "Future",
    "Promise",
    "FutureError",
    "make_ready_future",
    "when_all",
    "when_any",
    "Engine",
    "Task",
    "TaskState",
    "WorkerPool",
    "Locality",
    "Runtime",
    "Channel",
    "ActionRegistry",
    "NetworkModel",
    "Message",
    "PjmJob",
    "PjmScheduler",
    "ParallelEngine",
    "ParallelLocality",
    "WorkerCrashError",
    "WorkerError",
    "WorkerTimeoutError",
    "ShmArena",
]
