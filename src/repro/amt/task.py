"""Task descriptors for the AMT scheduler.

A task couples a real Python callable with a *virtual cost* (seconds of
worker time in the simulated machine).  The callable runs exactly once, when
a worker picks the task up; its return value resolves the task's future when
the virtual cost has elapsed.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Optional, Tuple

from repro.amt.future import Future


class TaskState(enum.Enum):
    PENDING = "pending"  # dependencies not yet satisfied
    READY = "ready"  # in a scheduler queue
    RUNNING = "running"  # assigned to a worker
    DONE = "done"
    FAILED = "failed"


_task_ids = itertools.count()


class Task:
    """A unit of work with a virtual execution cost.

    Parameters
    ----------
    fn:
        The callable executed on the worker.  May be ``None`` for pure-cost
        placeholder tasks used by the performance simulator.
    cost:
        Virtual seconds of worker occupancy.  Either a float or a zero-arg
        callable evaluated when the task starts (letting cost models inspect
        simulation state at execution time).
    name / kind:
        Diagnostics; ``kind`` feeds profiling counters (e.g. "hydro.flux",
        "fmm.m2l").
    effects:
        Optional declared footprint (:class:`repro.analysis.effects.EffectSet`)
        consumed by an installed scheduler observer (the race detector).
        Defaults to the payload's ``__effects__`` attribute when the
        callable was decorated with ``declare_effects``.
    """

    __slots__ = (
        "id",
        "fn",
        "args",
        "cost",
        "name",
        "kind",
        "effects",
        "state",
        "future",
        "submitted_at",
        "started_at",
        "finished_at",
        "worker",
    )

    def __init__(
        self,
        fn: Optional[Callable[..., Any]],
        args: Tuple[Any, ...] = (),
        cost: Any = 0.0,
        name: str = "",
        kind: str = "task",
        effects: Any = None,
    ) -> None:
        self.id = next(_task_ids)
        self.fn = fn
        self.args = args
        self.cost = cost
        self.name = name or f"task-{self.id}"
        self.kind = kind
        self.effects = effects if effects is not None else getattr(fn, "__effects__", None)
        self.state = TaskState.PENDING
        self.future = Future(name=self.name)
        self.submitted_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.worker: Optional[int] = None

    def resolved_cost(self) -> float:
        cost = self.cost() if callable(self.cost) else self.cost
        if cost < 0:
            raise ValueError(f"task {self.name!r} has negative cost {cost}")
        return float(cost)

    def execute(self) -> Any:
        """Run the payload; exceptions are captured by the scheduler."""
        if self.fn is None:
            return None
        return self.fn(*self.args)

    def __repr__(self) -> str:
        return f"<Task {self.name!r} kind={self.kind} state={self.state.value}>"
