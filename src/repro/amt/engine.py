"""Deterministic discrete-event engine (the virtual clock).

Every component of the runtime — worker pools, the network, timers — posts
events here.  Events are ordered by ``(time, sequence)``; the sequence number
makes simultaneous events deterministic (FIFO in posting order), which in
turn makes every schedule in the reproduction bit-reproducible.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional, Tuple


class EventHandle:
    """Cancellation handle for a posted event.

    Cancelling does not remove the heap entry; the engine skips cancelled
    entries when they surface (lazy deletion, the standard timer-wheel
    trick).  Used by the resilience layer to retire retransmission timers
    once a message is acknowledged.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Engine:
    """A minimal, fast event loop over virtual time (seconds)."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], Any], Optional[EventHandle]]] = []
        self._seq = 0
        self._now = 0.0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def post(
        self, delay: float, fn: Callable[[], Any], cancellable: bool = False
    ) -> Optional[EventHandle]:
        """Schedule ``fn`` to run ``delay`` seconds from now.

        With ``cancellable=True`` returns an :class:`EventHandle` whose
        ``cancel()`` retires the event before it fires.
        """
        if not math.isfinite(delay):
            # nan/inf heappush fine but then poison the heap invariant
            # (nan compares false both ways), corrupting event order for
            # every later event — reject at the door instead.
            raise ValueError(f"non-finite delay: {delay}")
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        handle = EventHandle() if cancellable else None
        heapq.heappush(self._queue, (self._now + delay, self._seq, fn, handle))
        self._seq += 1
        return handle

    def post_at(
        self, time: float, fn: Callable[[], Any], cancellable: bool = False
    ) -> Optional[EventHandle]:
        """Schedule ``fn`` at an absolute virtual time (>= now)."""
        if not math.isfinite(time):
            raise ValueError(f"non-finite time: {time}")
        if time < self._now:
            raise ValueError(f"cannot post into the past: {time} < {self._now}")
        handle = EventHandle() if cancellable else None
        heapq.heappush(self._queue, (time, self._seq, fn, handle))
        self._seq += 1
        return handle

    def empty(self) -> bool:
        return not any(h is None or not h.cancelled for _, _, _, h in self._queue)

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._queue:
            time, _seq, fn, handle = heapq.heappop(self._queue)
            if handle is not None and handle.cancelled:
                continue
            self._now = time
            self._events_processed += 1
            fn()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        ``until`` stops the clock at a virtual time (events beyond it stay
        queued); ``max_events`` bounds the number of events (a runaway-loop
        backstop).  Returns the final virtual time.
        """
        if self._running:
            raise RuntimeError("Engine.run() is not reentrant")
        self._running = True
        try:
            processed = 0
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    self._now = until
                    break
                if max_events is not None and processed >= max_events:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        return self._now

    def reset(self) -> None:
        """Clear all state; used between independent simulations."""
        self._queue.clear()
        self._seq = 0
        self._now = 0.0
        self._events_processed = 0
