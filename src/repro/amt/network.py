"""Inter-locality network model.

Transfers between localities incur ``latency + size / bandwidth`` plus a
per-message serialization overhead (the HPX "action" overhead the paper's
communication optimization removes for on-node neighbours).  Messages
between a given ordered pair of localities are delivered FIFO, matching MPI
ordering guarantees for a (comm, tag) channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from repro.amt.engine import Engine


@dataclass
class Message:
    """A payload in flight between two localities."""

    src: int
    dst: int
    payload: Any
    size_bytes: int
    tag: str = ""
    #: Protocol overhead (acks, heartbeats) rather than application data.
    #: Counted under ``control_messages`` so EXPERIMENTS message counts
    #: stay comparable across ± recovery runs.
    control: bool = False


@dataclass
class NetworkModel:
    """Latency/bandwidth network with per-message overhead.

    Defaults approximate a commodity InfiniBand fabric; machine presets in
    :mod:`repro.machines` override them (Tofu-D, Aries, Slingshot...).
    ``action_overhead`` models serialization + remote-action dispatch cost on
    top of the wire time; the local-communication optimization of the paper
    (Fig. 8) bypasses it for same-locality transfers.
    """

    latency_s: float = 1.5e-6
    bandwidth_Bps: float = 12.5e9  # 100 Gbit/s
    action_overhead_s: float = 1.0e-6
    local_copy_Bps: float = 50e9  # same-node memcpy bandwidth
    name: str = "generic-ib"

    #: Per ordered (src, dst) pair: virtual time the last message arrives,
    #: used to enforce FIFO delivery.
    _last_delivery: Dict[Tuple[int, int], float] = field(default_factory=dict)
    messages_sent: int = 0
    bytes_sent: int = 0
    #: ``messages_sent`` split by :attr:`Message.control`: application
    #: payloads vs protocol overhead (acks).  The sum equals
    #: ``messages_sent``.
    payload_messages: int = 0
    control_messages: int = 0
    messages_dropped: int = 0
    messages_delayed: int = 0
    messages_duplicated: int = 0
    #: Message indices (0-based send order) to silently drop — the fault
    #: injection behind the deadlock studies (the paper saw Octo-Tiger hang
    #: under Fujitsu MPI at scale and deadlock 1-in-20 on Ookami; a lost
    #: ghost message stalls the dependency graph exactly like that).
    _drop_indices: set = field(default_factory=set)
    #: Optional fault schedule consulted on every send.  Duck-typed:
    #: any object with ``decide(index, src, dst) -> FaultDecision``
    #: (see :class:`repro.resilience.faults.FaultInjector`).
    fault_injector: Any = None

    def drop_message(
        self,
        index: int = None,  # noqa: RUF013 - optional for the rate form
        *,
        rate: float = None,  # noqa: RUF013
        seed: int = 0,
    ) -> None:
        """Arrange for messages to be lost in transit.

        Two forms, combinable:

        * ``drop_message(index)`` — the ``index``-th message sent from now
          on (counting all sends) is lost (the original absolute-index API);
        * ``drop_message(rate=p, seed=s)`` — install a seeded Bernoulli
          schedule: each message is independently lost with probability
          ``p``, decided purely by its send index, so retransmissions
          (fresh indices) draw fresh fates.
        """
        if index is None and rate is None:
            raise ValueError("drop_message needs an index or a rate")
        if index is not None:
            self._drop_indices.add(index)
        if rate is not None:
            from repro.resilience.faults import FaultInjector, FaultSpec

            self.fault_injector = FaultInjector(
                FaultSpec(drop_rate=rate, seed=seed)
            )

    def transfer_time(self, size_bytes: int, local: bool = False) -> float:
        """Wire time for a message of ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError("negative message size")
        if local:
            return self.action_overhead_s + size_bytes / self.local_copy_Bps
        return (
            self.latency_s
            + self.action_overhead_s
            + size_bytes / self.bandwidth_Bps
        )

    def send(
        self,
        engine: Engine,
        message: Message,
        on_delivery: Callable[[Message], None],
        local: bool = False,
    ) -> float:
        """Schedule delivery of ``message``; returns the delivery time.

        A message whose send index was registered with :meth:`drop_message`
        is counted and charged but never delivered (returns ``inf``).
        """
        index = self.messages_sent
        self.messages_sent += 1
        if message.control:
            self.control_messages += 1
        else:
            self.payload_messages += 1
        self.bytes_sent += message.size_bytes
        extra_delay = 0.0
        duplicates = 0
        dropped = index in self._drop_indices
        if self.fault_injector is not None:
            decision = self.fault_injector.decide(index, message.src, message.dst)
            dropped = dropped or decision.drop
            extra_delay = decision.extra_delay_s
            duplicates = decision.duplicates
        if dropped:
            self.messages_dropped += 1
            return float("inf")
        if extra_delay > 0.0:
            self.messages_delayed += 1
        arrival = (
            engine.now
            + self.transfer_time(message.size_bytes, local=local)
            + extra_delay
        )
        key = (message.src, message.dst)
        # FIFO per ordered pair: never deliver before an earlier message.
        arrival = max(arrival, self._last_delivery.get(key, 0.0))
        self._last_delivery[key] = arrival
        engine.post_at(arrival, lambda: on_delivery(message))
        for _copy in range(duplicates):
            # A duplicated wire packet: same payload, delivered again a
            # little later (still FIFO — it pushes the channel's high-water
            # mark so later messages follow it).
            self.messages_duplicated += 1
            arrival = self._last_delivery[key] + self.latency_s + self.action_overhead_s
            self._last_delivery[key] = arrival
            engine.post_at(arrival, lambda: on_delivery(message))
        return arrival
