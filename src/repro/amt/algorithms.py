"""C++-standard parallel algorithms on the AMT (``hpx::for_each`` et al.).

HPX's headline feature — and the paper's "established standards" argument —
is that its API *is* the C++17/20 parallel-algorithms API, executed on HPX
worker threads.  This module reproduces the shape: algorithms take an
execution policy (:data:`seq` or a :class:`par` bound to a locality), chunk
the index range, and run the chunks as AMT tasks.

Functors receive ``(begin, end)`` half-open ranges, matching the Kokkos
layer, so the same vectorised bodies serve both entry points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Sequence

from repro.amt.future import Future, make_ready_future, when_all
from repro.amt.locality import Locality


@dataclass(frozen=True)
class SequencedPolicy:
    """``std::execution::seq`` — run inline on the caller."""


@dataclass(frozen=True)
class ParallelPolicy:
    """``std::execution::par`` bound to a locality's worker pool.

    ``chunks`` controls the task granularity (``hpx::execution::
    static_chunk_size`` analog); ``cost_per_item`` feeds the virtual clock.
    """

    locality: Locality
    chunks: int = 4
    cost_per_item: float = 0.0

    def __post_init__(self) -> None:
        if self.chunks < 1:
            raise ValueError("chunks must be >= 1")
        if self.cost_per_item < 0:
            raise ValueError("cost_per_item must be non-negative")


seq = SequencedPolicy()


def _chunk_ranges(n: int, chunks: int) -> List[tuple]:
    chunks = max(1, min(chunks, n))
    base, extra = divmod(n, chunks)
    out = []
    start = 0
    for i in range(chunks):
        length = base + (1 if i < extra else 0)
        out.append((start, start + length))
        start += length
    return out


def for_each_async(
    policy, n: int, body: Callable[[int, int], Any]  # noqa: ANN001
) -> Future:
    """Apply ``body(begin, end)`` over ``[0, n)``; returns a future."""
    if n < 0:
        raise ValueError("range size must be non-negative")
    if isinstance(policy, SequencedPolicy):
        if n:
            body(0, n)
        return make_ready_future(None, name="for_each.seq")
    futures = [
        policy.locality.async_(
            body, b, e,
            cost=(e - b) * policy.cost_per_item,
            name=f"for_each[{b}:{e}]",
            kind="algorithm.for_each",
        )
        for b, e in _chunk_ranges(n, policy.chunks)
    ]
    return when_all(futures).then(lambda _v: None)


def for_each(policy, n: int, body: Callable[[int, int], Any]) -> None:  # noqa: ANN001
    """Blocking variant (drives the virtual clock for parallel policies)."""
    future = for_each_async(policy, n, body)
    if not future.is_ready():
        policy.locality.runtime.run_until_ready(future)


def transform_reduce(
    policy,  # noqa: ANN001
    n: int,
    transform: Callable[[int, int], float],
    reduce_op: Callable[[float, float], float] = lambda a, b: a + b,
    init: float = 0.0,
) -> float:
    """``std::transform_reduce``: map chunks, fold the partials."""
    if isinstance(policy, SequencedPolicy):
        return reduce_op(init, transform(0, n)) if n else init
    futures = [
        policy.locality.async_(
            transform, b, e,
            cost=(e - b) * policy.cost_per_item,
            kind="algorithm.transform_reduce",
        )
        for b, e in _chunk_ranges(n, policy.chunks)
    ]
    combined = when_all(futures)
    if not combined.is_ready():
        policy.locality.runtime.run_until_ready(combined)
    result = init
    for value in combined.get():
        result = reduce_op(result, value)
    return result


def inclusive_scan(values: Sequence[float]) -> List[float]:
    """``std::inclusive_scan`` (latency-bound; runs inline)."""
    out: List[float] = []
    acc = 0.0
    for v in values:
        acc += v
        out.append(acc)
    return out


def exclusive_scan(values: Sequence[float], init: float = 0.0) -> List[float]:
    out: List[float] = []
    acc = init
    for v in values:
        out.append(acc)
        acc += v
    return out
