"""SharedMemory lifecycle guard: /dev/shm segments that cannot leak.

The process backend (:mod:`repro.amt.parallel`) backs its flat storage
arenas with POSIX shared memory so forked worker processes see the same
pages the parent adopted into the mesh.  A raw
:class:`multiprocessing.shared_memory.SharedMemory` has two classic leak
modes this module closes:

* the creating process dies (or raises) before calling ``unlink`` — the
  segment outlives the whole process tree in ``/dev/shm``;
* a forked child inherits the parent's cleanup hooks and runs them on
  exit, unlinking a segment the parent still uses.

:class:`ShmArena` is a context manager whose creating process registers
every live segment in a module table drained by an ``atexit`` hook.  The
table records the creator's PID, so the hook (and every ``unlink``) is a
no-op in any other process — forked workers can exit through whatever path
they like without touching the parent's segments, and workers that crash
mid-step leave cleanup to the parent's guard (tested against the
``FaultSpec`` crash fate in ``tests/test_parallel.py``).
"""

from __future__ import annotations

import atexit
import os
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

#: Live segments created by this process: name -> arena.  Drained by the
#: atexit hook; entries disappear on explicit close/unlink.
_LIVE: Dict[str, "ShmArena"] = {}
_HOOK_INSTALLED = False


def _install_hook() -> None:
    global _HOOK_INSTALLED
    if not _HOOK_INSTALLED:
        atexit.register(cleanup_all)
        _HOOK_INSTALLED = True


def cleanup_all() -> int:
    """Unlink every segment this process created and still owns.

    Returns the number of segments released.  Registered with ``atexit``
    by the first :class:`ShmArena`; safe to call repeatedly and from
    forked children (where it is a no-op — the PID check below).
    """
    released = 0
    for arena in list(_LIVE.values()):
        if arena.unlink():
            released += 1
    return released


def live_segments() -> Tuple[str, ...]:
    """Names of the segments this process currently owns (for tests)."""
    return tuple(sorted(_LIVE))


class ShmArena:
    """One owned (or attached) shared-memory segment with numpy views.

    ``ShmArena(nbytes)`` creates a segment and registers it for unlink at
    process exit; ``ShmArena.attach(name)`` maps an existing one without
    taking ownership.  Ownership is per-PID: only the creating process
    ever unlinks, so the object can be inherited freely across ``fork``.

    Use as a context manager for scoped lifetimes::

        with ShmArena(8 * n) as arena:
            view = arena.ndarray((n,))
            ...
        # segment is gone here, even if the body raised
    """

    def __init__(
        self, nbytes: int, name: Optional[str] = None, label: str = ""
    ) -> None:
        if not isinstance(nbytes, int) or isinstance(nbytes, bool):
            raise TypeError(f"nbytes must be an int, got {type(nbytes).__name__}")
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        self._shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        self.name = self._shm.name
        self.nbytes = nbytes
        #: Free-form role tag ("fields", "flux", "shm-race-log", ...) used by
        #: diagnostics — the shm race detector names segments by label.
        self.label = label
        self._owner_pid = os.getpid()
        self._closed = False
        _LIVE[self.name] = self
        _install_hook()

    @classmethod
    def attach(cls, name: str) -> "ShmArena":
        """Map an existing segment by name, without ownership."""
        obj = cls.__new__(cls)
        obj._shm = shared_memory.SharedMemory(name=name, create=False)
        obj.name = name
        obj.nbytes = obj._shm.size
        obj._owner_pid = -1  # never unlinks
        obj._closed = False
        return obj

    @property
    def owned(self) -> bool:
        """Whether this process may unlink the segment."""
        return self._owner_pid == os.getpid()

    def ndarray(self, shape, dtype=np.float64, offset: int = 0) -> np.ndarray:
        """A numpy view of the segment (no copy)."""
        if self._closed:
            raise ValueError(f"shm segment {self.name} is closed")
        return np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=offset)

    def close(self) -> None:
        """Unmap this process's view (the segment itself survives)."""
        if not self._closed:
            self._closed = True
            try:
                self._shm.close()
            except (OSError, BufferError):
                # A live numpy view pins the mmap; leave it for atexit.
                self._closed = False

    def unlink(self) -> bool:
        """Destroy the segment if this process owns it.

        Returns True when the segment was actually released; idempotent
        (a second call, or a call after the segment vanished, is False).
        """
        if not self.owned:
            return False
        _LIVE.pop(self.name, None)
        self._owner_pid = -1
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            return False
        return True

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:  # noqa: ANN002
        self.unlink()

    def __repr__(self) -> str:
        state = "owned" if self.owned else "attached"
        return f"ShmArena({self.name!r}, {self.nbytes} bytes, {state})"
