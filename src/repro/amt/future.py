"""Futures and promises with continuation support.

These mirror ``hpx::future`` / ``hpx::promise``: a future is a read handle on
a value produced asynchronously; ``then`` attaches continuations;
``when_all`` / ``when_any`` compose futures.  Values resolve during a
discrete-event run, so ``get()`` is only legal on a ready future (there is no
blocking — blocking a virtual-time worker would deadlock the simulation,
exactly as blocking an HPX worker thread can).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional


class FutureError(RuntimeError):
    """Raised for invalid future usage (double-set, get-before-ready...)."""


class Future:
    """A single-assignment value container with continuations.

    Continuations attached via :meth:`add_done_callback` fire exactly once,
    in attachment order, when the future becomes ready.  If the future is
    already ready they fire immediately.
    """

    __slots__ = ("_ready", "_value", "_exception", "_callbacks", "name", "_origin")

    def __init__(self, name: str = "") -> None:
        self._ready = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future"], None]] = []
        self.name = name
        #: Happens-before provenance: a bitmask clock of the tasks whose
        #: completion this future transports (see repro.analysis.race).
        #: 0 means "no causality information"; composition (then/when_all/
        #: when_any) merges origins so dataflow chains carry ordering.
        self._origin = 0

    # -- state ----------------------------------------------------------
    def is_ready(self) -> bool:
        return self._ready

    def has_exception(self) -> bool:
        return self._ready and self._exception is not None

    def get(self) -> Any:
        """Return the value; raises the stored exception if one was set."""
        if not self._ready:
            raise FutureError(
                f"get() on future {self.name!r} that is not ready; "
                "in a virtual-time runtime use .then() instead of blocking"
            )
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- resolution (used by Promise / the scheduler) ---------------------
    def _set_value(self, value: Any) -> None:
        if self._ready:
            raise FutureError(f"future {self.name!r} already resolved")
        self._ready = True
        self._value = value
        self._fire()

    def _set_exception(self, exc: BaseException) -> None:
        if self._ready:
            raise FutureError(f"future {self.name!r} already resolved")
        self._ready = True
        self._exception = exc
        self._fire()

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    # -- composition -----------------------------------------------------
    def add_done_callback(self, fn: Callable[["Future"], None]) -> None:
        if self._ready:
            fn(self)
        else:
            self._callbacks.append(fn)

    def then(self, fn: Callable[[Any], Any]) -> "Future":
        """Attach a synchronous continuation; returns the continuation's future.

        The continuation receives the *value* (not the future).  Exceptions
        propagate: if this future holds an exception, ``fn`` is skipped and
        the result future carries the same exception.
        """
        result = Future(name=f"{self.name}.then")

        def run(f: "Future") -> None:
            result._origin |= f._origin
            if f._exception is not None:
                result._set_exception(f._exception)
                return
            try:
                result._set_value(fn(f._value))
            except BaseException as exc:  # noqa: BLE001 - future transports it
                result._set_exception(exc)

        self.add_done_callback(run)
        return result

    def __repr__(self) -> str:
        state = "ready" if self._ready else "pending"
        if self.has_exception():
            state = f"exception:{type(self._exception).__name__}"
        return f"<Future {self.name!r} {state}>"


class Promise:
    """Write side of a future, mirroring ``hpx::promise``."""

    __slots__ = ("_future",)

    def __init__(self, name: str = "") -> None:
        self._future = Future(name=name)

    def get_future(self) -> Future:
        return self._future

    def set_value(self, value: Any = None) -> None:
        self._future._set_value(value)

    def set_exception(self, exc: BaseException) -> None:
        self._future._set_exception(exc)


def make_ready_future(value: Any = None, name: str = "") -> Future:
    """A future that is already resolved (``hpx::make_ready_future``)."""
    f = Future(name=name)
    f._set_value(value)
    return f


def when_all(futures: Iterable[Future]) -> Future:
    """Future of the list of values, ready when every input is ready.

    If any input carries an exception, the first such exception (in input
    order of resolution) is propagated.
    """
    futures = list(futures)
    result = Future(name="when_all")
    if not futures:
        result._set_value([])
        return result

    remaining = [len(futures)]

    def on_done(_f: Future) -> None:
        remaining[0] -= 1
        if remaining[0] == 0 and not result.is_ready():
            for f in futures:
                result._origin |= f._origin
            for f in futures:
                if f._exception is not None:
                    result._set_exception(f._exception)
                    return
            result._set_value([f._value for f in futures])

    for f in futures:
        f.add_done_callback(on_done)
    return result


def when_any(futures: Iterable[Future]) -> Future:
    """Future of ``(index, value)`` of the first input to become ready."""
    futures = list(futures)
    if not futures:
        raise ValueError("when_any requires at least one future")
    result = Future(name="when_any")

    def make_cb(index: int) -> Callable[[Future], None]:
        def on_done(f: Future) -> None:
            if result.is_ready():
                return
            result._origin |= f._origin  # only the winner's clock counts
            if f._exception is not None:
                result._set_exception(f._exception)
            else:
                result._set_value((index, f._value))

        return on_done

    for i, f in enumerate(futures):
        f.add_done_callback(make_cb(i))
    return result
