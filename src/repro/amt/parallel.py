"""True-parallel engine: localities as real OS processes.

Everything else in :mod:`repro.amt` runs on the deterministic discrete-event
clock — localities are simulated, and every measured speedup so far is a
vectorization win on one OS thread.  This module is the second engine
implementation behind the same API shape: a :class:`ParallelEngine` maps
each locality to a **forked worker process** (:class:`ParallelLocality`),
with

* a duplex pipe per worker as the control plane (commands down, replies
  up — the "small control message" of the paper's local-communication
  optimization),
* shared-memory arenas (:mod:`repro.amt.shm`) as the data plane: the
  parent adopts mesh storage into a ``/dev/shm`` segment *before* forking,
  so the workers' inherited numpy views alias the same physical pages and
  ghost exchange becomes a shm write plus a control round-trip,
* bulk-synchronous rounds (:meth:`ParallelEngine.round`) as the barrier
  primitive: the parent broadcasts one command, every worker executes it
  and replies, and the gather is the barrier.

The DES engine stays the bit-exact oracle: consumers (the process hydro
executor, the FMM M2L fan-out) run the same kernels on the same arenas, so
the cross-check harness can assert ``np.array_equal`` between backends.

Failure semantics are typed, mirroring the validation contract of
:meth:`repro.amt.engine.Engine.post`: non-finite or non-positive timeouts
and bad worker counts are rejected at construction, a worker that raises
surfaces as :class:`WorkerError` carrying the remote traceback, and a
worker that dies (the ``FaultSpec`` crash fate, a kill, an ``os._exit``)
surfaces as :class:`WorkerCrashError` — a subclass of
:class:`repro.resilience.protocol.UnrecoverableFault`, so the driver's
checkpoint-rollback machinery applies unchanged.

Workers terminate through ``os._exit`` on purpose: a forked child inherits
the parent's ``atexit`` hooks, including the shm-unlink guard, and must
not run them (the guard's PID check is the second line of defence).
"""

from __future__ import annotations

import inspect
import math
import multiprocessing
import numbers
import os
import time
import traceback
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.profiling.apex import CounterRegistry
from repro.resilience.protocol import UnrecoverableFault

#: A worker handler: called once per command, returns the reply payload.
Handler = Callable[[Any], Any]
#: Builds the handler inside the child after fork: (rank, registry) -> handler.
#: A factory may also accept a third :class:`WorkerLink` argument to take
#: part in dependency-grained rounds (:meth:`ParallelEngine.round_async`).
HandlerFactory = Callable[[int, CounterRegistry], Handler]

#: Reserved control commands (never passed to the handler).
_STOP = "__stop__"
_CRASH = "__crash__"
_TIMERS = "__timers__"
#: Wire tags of the dependency-grained round protocol (see round_async).
_NOTE = "note"
_ROUTE = "__route__"


class WorkerError(RuntimeError):
    """A worker's handler raised; carries the remote traceback."""

    def __init__(self, rank: int, remote_traceback: str) -> None:
        self.rank = rank
        self.remote_traceback = remote_traceback
        super().__init__(
            f"worker {rank} raised:\n{remote_traceback.rstrip()}"
        )


class WorkerCrashError(UnrecoverableFault):
    """A worker process died mid-round (crash fate, kill, lost pipe).

    Subclasses :class:`UnrecoverableFault` so the resilient driver loop
    treats a real dead process exactly like a modelled node crash:
    rollback to the last checkpoint and replay.
    """

    def __init__(self, ranks: Sequence[int], detail: str = "") -> None:
        self.ranks = tuple(ranks)
        msg = f"worker process(es) {list(self.ranks)} died"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class WorkerTimeoutError(UnrecoverableFault):
    """A round did not complete within the engine timeout."""

    def __init__(self, ranks: Sequence[int], timeout: float) -> None:
        self.ranks = tuple(ranks)
        super().__init__(
            f"worker(s) {list(self.ranks)} did not reply within {timeout:g}s"
        )


class ParallelLocality:
    """One worker process plus the parent end of its control pipe."""

    def __init__(self, rank: int, process, conn) -> None:  # noqa: ANN001
        self.rank = rank
        self.process = process
        self.conn = conn

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def send(self, command: Any) -> None:
        try:
            self.conn.send(command)
        except (BrokenPipeError, OSError):
            # The worker died; gather() reports it as a WorkerCrashError
            # (dropping the send here keeps the barrier the single point
            # where crashes surface, matching the DES crash-fate path).
            pass

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"ParallelLocality(rank={self.rank}, pid={self.process.pid}, {state})"


def _timer_snapshot(registry: CounterRegistry) -> Dict[str, Tuple[int, float, float]]:
    """(count, total, max) per counter — the wire form of a registry."""
    out = {}
    for name in registry.names():
        counter = registry.get(name)
        out[name] = (counter.count, counter.total, counter.maximum)
    return out


class WorkerLink:
    """The worker-side end of a dependency-grained round.

    Inside a :meth:`ParallelEngine.round_async` handler the link is the
    futurization primitive: ``note`` posts a mid-round message to the
    parent *without* ending the round (the worker keeps computing), and
    ``wait`` blocks until the parent routes a message with the given tag
    back — a message-grained happens-before edge instead of a barrier.
    Routed messages arriving out of order are buffered per tag, so a
    worker can keep computing past payloads it has not asked for yet.
    """

    def __init__(self, conn) -> None:  # noqa: ANN001
        self._conn = conn
        self._pending: Dict[Any, deque] = {}

    def note(self, tag: Any, payload: Any = None) -> None:
        """Post a mid-round message; the parent's ``on_note`` sees it."""
        self._conn.send((_NOTE, tag, payload))

    def stash(self, tag: Any, payload: Any) -> None:
        self._pending.setdefault(tag, deque()).append(payload)

    def wait(self, tag: Any) -> Any:
        """Block until the parent routes a message tagged ``tag``."""
        queue = self._pending.get(tag)
        if queue:
            return queue.popleft()
        while True:
            message = self._conn.recv()
            if isinstance(message, tuple) and len(message) == 3 \
                    and message[0] == _ROUTE:
                if message[1] == tag:
                    return message[2]
                self.stash(message[1], message[2])
                continue
            raise RuntimeError(
                f"protocol violation: expected a routed message, got "
                f"{type(message).__name__}"
            )


def _build_handler(
    factory: HandlerFactory, rank: int, registry: CounterRegistry, link: WorkerLink
) -> Handler:
    """Call the factory with the link when its signature takes one (the
    overlap-aware handlers), without it otherwise (every legacy factory)."""
    try:
        n_params = len(inspect.signature(factory).parameters)
    except (TypeError, ValueError):
        n_params = 2
    if n_params >= 3:
        return factory(rank, registry, link)
    return factory(rank, registry)


def _worker_main(rank: int, factory: HandlerFactory, conn) -> None:  # noqa: ANN001
    """Child main loop: execute commands until told to stop.

    Every exit path goes through ``os._exit`` so the child never runs the
    atexit hooks it inherited from the parent (notably the shm unlink
    guard — see the module docstring).
    """
    registry = CounterRegistry()
    try:
        link = WorkerLink(conn)
        handler = _build_handler(factory, rank, registry, link)
        while True:
            command = conn.recv()
            if isinstance(command, tuple) and len(command) == 3 \
                    and command[0] == _ROUTE:
                # A routed payload the handler did not wait for before
                # replying; keep it for the next round's first wait.
                link.stash(command[1], command[2])
                continue
            if command == _STOP:
                conn.send(("ok", None))
                break
            if command == _CRASH:
                # The FaultSpec crash fate made real: die without a reply,
                # without cleanup, mid-protocol.
                os._exit(1)
            if command == _TIMERS:
                snapshot = _timer_snapshot(registry)
                registry.reset()
                conn.send(("ok", snapshot))
                continue
            try:
                result = handler(command)
            except BaseException:  # noqa: BLE001 - ship the traceback home
                conn.send(("err", traceback.format_exc()))
                continue
            conn.send(("ok", result))
    except (EOFError, KeyboardInterrupt, BrokenPipeError):
        pass
    finally:
        os._exit(0)


class ParallelEngine:
    """A pool of forked worker localities driven in BSP rounds.

    Parameters
    ----------
    nprocs:
        Number of worker processes (``>= 1``).  Rejected with a typed
        error when not a positive integer — the same validation posture
        :meth:`repro.amt.engine.Engine.post` takes on delays.
    timeout:
        Per-round reply deadline in seconds.  Must be finite and positive:
        a NaN timeout would make every ``poll`` return instantly and spin,
        exactly the class of silent corruption the DES engine's NaN-delay
        guard rejects at the door.
    """

    def __init__(self, nprocs: int, timeout: float = 120.0) -> None:
        if isinstance(nprocs, bool) or not isinstance(nprocs, numbers.Integral):
            raise TypeError(
                f"nprocs must be an integer, got {type(nprocs).__name__}"
            )
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        if isinstance(timeout, bool) or not isinstance(timeout, numbers.Real):
            raise TypeError(
                f"timeout must be a real number, got {type(timeout).__name__}"
            )
        if not math.isfinite(timeout):
            raise ValueError(f"non-finite timeout: {timeout}")
        if timeout <= 0:
            raise ValueError(f"non-positive timeout: {timeout}")
        self.nprocs = int(nprocs)
        self.timeout = float(timeout)
        self.localities: List[ParallelLocality] = []
        self.rounds = 0
        self.control_messages = 0
        #: Invoked after every completed barrier, while all workers are
        #: parked waiting for the next command — the safe window for the
        #: shm race detector (:mod:`repro.analysis.shmrace`) to drain and
        #: reset the shared event log.
        self.round_observer: Optional[Callable[[], None]] = None
        self._ctx = multiprocessing.get_context("fork")

    # -- lifecycle ------------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self.localities)

    def start(self, factory: HandlerFactory) -> None:
        """Fork the workers.  ``factory(rank, registry)`` runs *in the
        child* and returns the command handler, so everything the parent
        set up before this call (mesh, plans, shm views) is inherited."""
        if self.started:
            raise RuntimeError("engine already started")
        for rank in range(self.nprocs):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            process = self._ctx.Process(
                target=_worker_main,
                args=(rank, factory, child_conn),
                daemon=True,
                name=f"repro-locality-{rank}",
            )
            process.start()
            child_conn.close()
            self.localities.append(ParallelLocality(rank, process, parent_conn))

    def shutdown(self) -> None:
        """Stop every worker (graceful, then terminate) and forget them."""
        for loc in self.localities:
            try:
                if loc.alive:
                    loc.send(_STOP)
            except (BrokenPipeError, OSError):
                pass
        for loc in self.localities:
            try:
                if loc.conn.poll(1.0):
                    loc.conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                pass
            loc.process.join(timeout=1.0)
            if loc.alive:
                loc.process.terminate()
                loc.process.join(timeout=1.0)
            loc.conn.close()
        self.localities = []

    def crash(self, rank: int) -> None:
        """Make worker ``rank`` die mid-protocol (the crash fate)."""
        loc = self.localities[rank]
        loc.send(_CRASH)
        loc.process.join(timeout=self.timeout)

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:  # noqa: ANN002
        self.shutdown()

    # -- BSP rounds -----------------------------------------------------------
    def send(self, rank: int, command: Any) -> None:
        """Send one command to one worker (reply collected by ``gather``)."""
        self.localities[rank].send(command)
        self.control_messages += 1

    def broadcast(self, command: Any) -> None:
        for loc in self.localities:
            loc.send(command)
        self.control_messages += len(self.localities)

    def gather(self, ranks: Optional[Sequence[int]] = None) -> List[Any]:
        """Collect one reply per worker; the barrier of a BSP round.

        Raises :class:`WorkerError` (handler raised remotely),
        :class:`WorkerCrashError` (process died) or
        :class:`WorkerTimeoutError` (deadline passed), naming the ranks.
        """
        if ranks is None:
            ranks = range(len(self.localities))
        results: List[Any] = []
        error: Optional[WorkerError] = None
        dead: List[int] = []
        stalled: List[int] = []
        for rank in ranks:
            loc = self.localities[rank]
            try:
                if not loc.conn.poll(self.timeout):
                    if loc.alive:
                        stalled.append(rank)
                    else:
                        dead.append(rank)
                    results.append(None)
                    continue
                status, payload = loc.conn.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError):
                dead.append(rank)
                results.append(None)
                continue
            self.control_messages += 1
            if status == "err":
                error = error or WorkerError(rank, payload)
                results.append(None)
            else:
                results.append(payload)
        if dead:
            raise WorkerCrashError(dead)
        if stalled:
            raise WorkerTimeoutError(stalled, self.timeout)
        if error is not None:
            raise error
        return results

    def round(self, command: Any) -> List[Any]:
        """One BSP round: broadcast, then barrier on all replies.

        When a :attr:`round_observer` is set it runs after the barrier —
        every worker has replied and is blocked on its next ``recv``, so
        the observer sees a quiescent shared-memory state.
        """
        self.broadcast(command)
        self.rounds += 1
        results = self.gather()
        if self.round_observer is not None:
            self.round_observer()
        return results

    def round_async(
        self,
        command: Any,
        on_note: Optional[Callable[[int, Any, Any], Any]] = None,
    ) -> List[Any]:
        """One dependency-grained round: per-message progress, late barrier.

        Broadcasts ``command`` like :meth:`round`, but instead of blocking
        on the replies in rank order it interleaves **mid-round notes**
        with the final replies as they arrive.  A worker posts a note via
        its :class:`WorkerLink` (``link.note(tag, payload)``) and keeps
        computing; the parent delivers it to ``on_note(rank, tag,
        payload)`` immediately.  ``on_note`` may return an iterable of
        ``(rank, tag, payload)`` route messages, which the engine forwards
        to the named workers' links — each forwarded message is one
        message-grained happens-before edge (the overlap schedule's
        replacement for the barrier; the shm race detector is told about
        exactly these edges).  The barrier degenerates to the end of the
        round: every worker still sends one final ``("ok", result)``
        before the method returns, so the :attr:`round_observer` still
        sees a quiescent state.

        Failure semantics match :meth:`round`: remote raise →
        :class:`WorkerError`, dead process → :class:`WorkerCrashError`,
        deadline → :class:`WorkerTimeoutError`.
        """
        from multiprocessing import connection as mp_connection

        self.broadcast(command)
        self.rounds += 1
        n = len(self.localities)
        results: List[Any] = [None] * n
        done = [False] * n
        error: Optional[WorkerError] = None
        dead: List[int] = []
        conn_rank = {self.localities[r].conn: r for r in range(n)}
        deadline = time.monotonic() + self.timeout
        while not all(done):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                undone = [r for r in range(n) if not done[r]]
                stalled = [r for r in undone if self.localities[r].alive]
                late_dead = [r for r in undone if not self.localities[r].alive]
                if late_dead:
                    raise WorkerCrashError(late_dead)
                raise WorkerTimeoutError(stalled, self.timeout)
            ready = mp_connection.wait(
                [self.localities[r].conn for r in range(n) if not done[r]],
                timeout=min(remaining, 0.25),
            )
            for conn in ready:
                rank = conn_rank[conn]
                try:
                    message = conn.recv()
                except (EOFError, BrokenPipeError, ConnectionResetError):
                    done[rank] = True
                    dead.append(rank)
                    continue
                self.control_messages += 1
                if isinstance(message, tuple) and len(message) == 3 \
                        and message[0] == _NOTE:
                    if on_note is not None:
                        routes = on_note(rank, message[1], message[2])
                        for to_rank, tag, payload in routes or ():
                            self.localities[to_rank].send(
                                (_ROUTE, tag, payload)
                            )
                            self.control_messages += 1
                    continue
                status, payload = message
                done[rank] = True
                if status == "err":
                    error = error or WorkerError(rank, payload)
                else:
                    results[rank] = payload
            if dead:
                raise WorkerCrashError(dead)
        if error is not None:
            raise error
        if self.round_observer is not None:
            self.round_observer()
        return results

    # -- timers ---------------------------------------------------------------
    def harvest_timers(self, registry: CounterRegistry) -> Dict[str, float]:
        """Pull per-worker timer snapshots and aggregate into ``registry``.

        Every worker-side timer ``name`` lands twice: ``name`` records
        the **max** total across workers (the critical-path time a profile
        should compare against the single-process backend) and
        ``name.workers_mean`` the mean (the balance check).  Plan
        construction counters (``plan.*``) are **event counts**, not
        critical-path timers: collapsing them to one max-sample per
        harvest used to drop both the build count and the per-worker sum,
        so they are instead merged losslessly
        (:meth:`~repro.profiling.apex.CounterRegistry.absorb`) — the
        driver registry's ``count()``/``total()`` keep exact build-event
        semantics alongside ``hydro.*``/``fmm.*``.  Returns the
        max-per-name map.
        """
        snapshots = self.round(_TIMERS)
        names = sorted({name for snap in snapshots for name in snap})
        maxima: Dict[str, float] = {}
        for name in names:
            stats = [snap.get(name, (0, 0.0, 0.0)) for snap in snapshots]
            totals = [s[1] for s in stats]
            peak = max(totals)
            maxima[name] = peak
            if name.startswith("plan."):
                for count, total, max_sample in stats:
                    registry.absorb(name, count, total, max_sample)
            else:
                registry.sample(name, peak)
                registry.sample(f"{name}.workers_mean", sum(totals) / len(totals))
        return maxima
