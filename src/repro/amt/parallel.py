"""True-parallel engine: localities as real OS processes.

Everything else in :mod:`repro.amt` runs on the deterministic discrete-event
clock — localities are simulated, and every measured speedup so far is a
vectorization win on one OS thread.  This module is the second engine
implementation behind the same API shape: a :class:`ParallelEngine` maps
each locality to a **forked worker process** (:class:`ParallelLocality`),
with

* a duplex pipe per worker as the control plane (commands down, replies
  up — the "small control message" of the paper's local-communication
  optimization),
* shared-memory arenas (:mod:`repro.amt.shm`) as the data plane: the
  parent adopts mesh storage into a ``/dev/shm`` segment *before* forking,
  so the workers' inherited numpy views alias the same physical pages and
  ghost exchange becomes a shm write plus a control round-trip,
* bulk-synchronous rounds (:meth:`ParallelEngine.round`) as the barrier
  primitive: the parent broadcasts one command, every worker executes it
  and replies, and the gather is the barrier.

The DES engine stays the bit-exact oracle: consumers (the process hydro
executor, the FMM M2L fan-out) run the same kernels on the same arenas, so
the cross-check harness can assert ``np.array_equal`` between backends.

Failure semantics are typed, mirroring the validation contract of
:meth:`repro.amt.engine.Engine.post`: non-finite or non-positive timeouts
and bad worker counts are rejected at construction, a worker that raises
surfaces as :class:`WorkerError` carrying the remote traceback, and a
worker that dies (the ``FaultSpec`` crash fate, a kill, an ``os._exit``)
surfaces as :class:`WorkerCrashError` — a subclass of
:class:`repro.resilience.protocol.UnrecoverableFault`, so the driver's
checkpoint-rollback machinery applies unchanged.

Workers terminate through ``os._exit`` on purpose: a forked child inherits
the parent's ``atexit`` hooks, including the shm-unlink guard, and must
not run them (the guard's PID check is the second line of defence).
"""

from __future__ import annotations

import math
import multiprocessing
import numbers
import os
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.profiling.apex import CounterRegistry
from repro.resilience.protocol import UnrecoverableFault

#: A worker handler: called once per command, returns the reply payload.
Handler = Callable[[Any], Any]
#: Builds the handler inside the child after fork: (rank, registry) -> handler.
HandlerFactory = Callable[[int, CounterRegistry], Handler]

#: Reserved control commands (never passed to the handler).
_STOP = "__stop__"
_CRASH = "__crash__"
_TIMERS = "__timers__"


class WorkerError(RuntimeError):
    """A worker's handler raised; carries the remote traceback."""

    def __init__(self, rank: int, remote_traceback: str) -> None:
        self.rank = rank
        self.remote_traceback = remote_traceback
        super().__init__(
            f"worker {rank} raised:\n{remote_traceback.rstrip()}"
        )


class WorkerCrashError(UnrecoverableFault):
    """A worker process died mid-round (crash fate, kill, lost pipe).

    Subclasses :class:`UnrecoverableFault` so the resilient driver loop
    treats a real dead process exactly like a modelled node crash:
    rollback to the last checkpoint and replay.
    """

    def __init__(self, ranks: Sequence[int], detail: str = "") -> None:
        self.ranks = tuple(ranks)
        msg = f"worker process(es) {list(self.ranks)} died"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class WorkerTimeoutError(UnrecoverableFault):
    """A round did not complete within the engine timeout."""

    def __init__(self, ranks: Sequence[int], timeout: float) -> None:
        self.ranks = tuple(ranks)
        super().__init__(
            f"worker(s) {list(self.ranks)} did not reply within {timeout:g}s"
        )


class ParallelLocality:
    """One worker process plus the parent end of its control pipe."""

    def __init__(self, rank: int, process, conn) -> None:  # noqa: ANN001
        self.rank = rank
        self.process = process
        self.conn = conn

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def send(self, command: Any) -> None:
        try:
            self.conn.send(command)
        except (BrokenPipeError, OSError):
            # The worker died; gather() reports it as a WorkerCrashError
            # (dropping the send here keeps the barrier the single point
            # where crashes surface, matching the DES crash-fate path).
            pass

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"ParallelLocality(rank={self.rank}, pid={self.process.pid}, {state})"


def _timer_snapshot(registry: CounterRegistry) -> Dict[str, Tuple[int, float, float]]:
    """(count, total, max) per counter — the wire form of a registry."""
    out = {}
    for name in registry.names():
        counter = registry.get(name)
        out[name] = (counter.count, counter.total, counter.maximum)
    return out


def _worker_main(rank: int, factory: HandlerFactory, conn) -> None:  # noqa: ANN001
    """Child main loop: execute commands until told to stop.

    Every exit path goes through ``os._exit`` so the child never runs the
    atexit hooks it inherited from the parent (notably the shm unlink
    guard — see the module docstring).
    """
    registry = CounterRegistry()
    try:
        handler = factory(rank, registry)
        while True:
            command = conn.recv()
            if command == _STOP:
                conn.send(("ok", None))
                break
            if command == _CRASH:
                # The FaultSpec crash fate made real: die without a reply,
                # without cleanup, mid-protocol.
                os._exit(1)
            if command == _TIMERS:
                snapshot = _timer_snapshot(registry)
                registry.reset()
                conn.send(("ok", snapshot))
                continue
            try:
                result = handler(command)
            except BaseException:  # noqa: BLE001 - ship the traceback home
                conn.send(("err", traceback.format_exc()))
                continue
            conn.send(("ok", result))
    except (EOFError, KeyboardInterrupt, BrokenPipeError):
        pass
    finally:
        os._exit(0)


class ParallelEngine:
    """A pool of forked worker localities driven in BSP rounds.

    Parameters
    ----------
    nprocs:
        Number of worker processes (``>= 1``).  Rejected with a typed
        error when not a positive integer — the same validation posture
        :meth:`repro.amt.engine.Engine.post` takes on delays.
    timeout:
        Per-round reply deadline in seconds.  Must be finite and positive:
        a NaN timeout would make every ``poll`` return instantly and spin,
        exactly the class of silent corruption the DES engine's NaN-delay
        guard rejects at the door.
    """

    def __init__(self, nprocs: int, timeout: float = 120.0) -> None:
        if isinstance(nprocs, bool) or not isinstance(nprocs, numbers.Integral):
            raise TypeError(
                f"nprocs must be an integer, got {type(nprocs).__name__}"
            )
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        if isinstance(timeout, bool) or not isinstance(timeout, numbers.Real):
            raise TypeError(
                f"timeout must be a real number, got {type(timeout).__name__}"
            )
        if not math.isfinite(timeout):
            raise ValueError(f"non-finite timeout: {timeout}")
        if timeout <= 0:
            raise ValueError(f"non-positive timeout: {timeout}")
        self.nprocs = int(nprocs)
        self.timeout = float(timeout)
        self.localities: List[ParallelLocality] = []
        self.rounds = 0
        self.control_messages = 0
        #: Invoked after every completed barrier, while all workers are
        #: parked waiting for the next command — the safe window for the
        #: shm race detector (:mod:`repro.analysis.shmrace`) to drain and
        #: reset the shared event log.
        self.round_observer: Optional[Callable[[], None]] = None
        self._ctx = multiprocessing.get_context("fork")

    # -- lifecycle ------------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self.localities)

    def start(self, factory: HandlerFactory) -> None:
        """Fork the workers.  ``factory(rank, registry)`` runs *in the
        child* and returns the command handler, so everything the parent
        set up before this call (mesh, plans, shm views) is inherited."""
        if self.started:
            raise RuntimeError("engine already started")
        for rank in range(self.nprocs):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            process = self._ctx.Process(
                target=_worker_main,
                args=(rank, factory, child_conn),
                daemon=True,
                name=f"repro-locality-{rank}",
            )
            process.start()
            child_conn.close()
            self.localities.append(ParallelLocality(rank, process, parent_conn))

    def shutdown(self) -> None:
        """Stop every worker (graceful, then terminate) and forget them."""
        for loc in self.localities:
            try:
                if loc.alive:
                    loc.send(_STOP)
            except (BrokenPipeError, OSError):
                pass
        for loc in self.localities:
            try:
                if loc.conn.poll(1.0):
                    loc.conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                pass
            loc.process.join(timeout=1.0)
            if loc.alive:
                loc.process.terminate()
                loc.process.join(timeout=1.0)
            loc.conn.close()
        self.localities = []

    def crash(self, rank: int) -> None:
        """Make worker ``rank`` die mid-protocol (the crash fate)."""
        loc = self.localities[rank]
        loc.send(_CRASH)
        loc.process.join(timeout=self.timeout)

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:  # noqa: ANN002
        self.shutdown()

    # -- BSP rounds -----------------------------------------------------------
    def send(self, rank: int, command: Any) -> None:
        """Send one command to one worker (reply collected by ``gather``)."""
        self.localities[rank].send(command)
        self.control_messages += 1

    def broadcast(self, command: Any) -> None:
        for loc in self.localities:
            loc.send(command)
        self.control_messages += len(self.localities)

    def gather(self, ranks: Optional[Sequence[int]] = None) -> List[Any]:
        """Collect one reply per worker; the barrier of a BSP round.

        Raises :class:`WorkerError` (handler raised remotely),
        :class:`WorkerCrashError` (process died) or
        :class:`WorkerTimeoutError` (deadline passed), naming the ranks.
        """
        if ranks is None:
            ranks = range(len(self.localities))
        results: List[Any] = []
        error: Optional[WorkerError] = None
        dead: List[int] = []
        stalled: List[int] = []
        for rank in ranks:
            loc = self.localities[rank]
            try:
                if not loc.conn.poll(self.timeout):
                    if loc.alive:
                        stalled.append(rank)
                    else:
                        dead.append(rank)
                    results.append(None)
                    continue
                status, payload = loc.conn.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError):
                dead.append(rank)
                results.append(None)
                continue
            self.control_messages += 1
            if status == "err":
                error = error or WorkerError(rank, payload)
                results.append(None)
            else:
                results.append(payload)
        if dead:
            raise WorkerCrashError(dead)
        if stalled:
            raise WorkerTimeoutError(stalled, self.timeout)
        if error is not None:
            raise error
        return results

    def round(self, command: Any) -> List[Any]:
        """One BSP round: broadcast, then barrier on all replies.

        When a :attr:`round_observer` is set it runs after the barrier —
        every worker has replied and is blocked on its next ``recv``, so
        the observer sees a quiescent shared-memory state.
        """
        self.broadcast(command)
        self.rounds += 1
        results = self.gather()
        if self.round_observer is not None:
            self.round_observer()
        return results

    # -- timers ---------------------------------------------------------------
    def harvest_timers(self, registry: CounterRegistry) -> Dict[str, float]:
        """Pull per-worker timer snapshots and aggregate into ``registry``.

        Every worker-side timer ``name`` lands twice: ``name`` records
        the **max** total across workers (the critical-path time a profile
        should compare against the single-process backend) and
        ``name.workers_mean`` the mean (the balance check).  Plan
        construction counters (``plan.*``) are **event counts**, not
        critical-path timers: collapsing them to one max-sample per
        harvest used to drop both the build count and the per-worker sum,
        so they are instead merged losslessly
        (:meth:`~repro.profiling.apex.CounterRegistry.absorb`) — the
        driver registry's ``count()``/``total()`` keep exact build-event
        semantics alongside ``hydro.*``/``fmm.*``.  Returns the
        max-per-name map.
        """
        snapshots = self.round(_TIMERS)
        names = sorted({name for snap in snapshots for name in snap})
        maxima: Dict[str, float] = {}
        for name in names:
            stats = [snap.get(name, (0, 0.0, 0.0)) for snap in snapshots]
            totals = [s[1] for s in stats]
            peak = max(totals)
            maxima[name] = peak
            if name.startswith("plan."):
                for count, total, max_sample in stats:
                    registry.absorb(name, count, total, max_sample)
            else:
                registry.sample(name, peak)
                registry.sample(f"{name}.workers_mean", sum(totals) / len(totals))
        return maxima
