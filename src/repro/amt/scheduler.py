"""Worker-pool task scheduler over the discrete-event engine.

Models an HPX thread pool: ``n_workers`` OS-thread analogues pull tasks from
a shared ready queue.  A task occupies a worker for its virtual cost; the
payload (real Python code) executes at task start.  The pool records
utilisation and starvation statistics — the quantities behind the paper's
Fig. 9 (core starvation during distributed tree traversals).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.amt.engine import Engine
from repro.amt.future import Future
from repro.amt.task import Task, TaskState


class WorkerPool:
    """A fixed pool of virtual workers fed by a FIFO ready queue."""

    def __init__(self, engine: Engine, n_workers: int, name: str = "pool") -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.engine = engine
        self.n_workers = n_workers
        self.name = name
        #: Optional lifecycle observer (e.g. repro.analysis.race.RaceDetector).
        #: Protocol: on_submit(task, deps), on_start(task), on_executed(task),
        #: on_finish(task) — on_finish fires before the task future resolves
        #: so dependents can inherit provenance.
        self.observer = None
        self._ready: Deque[Task] = deque()
        self._idle_workers: List[int] = list(range(n_workers))
        #: Tasks submitted with unready dependencies, still waiting — the
        #: deadlock watchdog reads this to name what a quiesced pool was
        #: blocked on.
        self._waiting: Dict[int, Tuple[Task, List[Future]]] = {}
        # Statistics.
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.busy_time = 0.0
        self.kind_counts: Dict[str, int] = {}
        self.kind_time: Dict[str, float] = {}
        self._started_at = engine.now
        self._starvation_samples: List[Tuple[float, int]] = []

    # -- submission -------------------------------------------------------
    def submit(self, task: Task) -> Future:
        """Queue a task whose dependencies are satisfied."""
        if self.observer is not None:
            self.observer.on_submit(task, ())
        task.state = TaskState.READY
        task.submitted_at = self.engine.now
        self._ready.append(task)
        self._dispatch()
        return task.future

    def submit_fn(
        self,
        fn: Optional[Callable[..., Any]],
        *args: Any,
        cost: Any = 0.0,
        name: str = "",
        kind: str = "task",
        effects: Any = None,
    ) -> Future:
        return self.submit(Task(fn, args, cost=cost, name=name, kind=kind, effects=effects))

    def submit_sharded(
        self,
        deps: Iterable[Future],
        fn: Optional[Callable[..., Any]],
        cost: float = 0.0,
        shards: int = 1,
        name: str = "",
        kind: str = "task",
    ) -> Future:
        """Split one unit of work across up to ``shards`` workers.

        The paper's work-splitting mechanism (SVII-C) at the scheduler
        level: the payload runs once (on the first shard), but the virtual
        cost is divided over ``shards`` independent tasks the pool can run
        concurrently — a kernel that would occupy one worker for ``cost``
        seconds instead occupies ``shards`` workers for ``cost/shards``
        each, shrinking the critical path when cores would otherwise
        starve.  The returned future resolves when every shard finishes.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        deps = list(deps)
        if shards == 1:
            task = Task(fn, cost=cost, name=name, kind=kind)
            return self.submit_after(deps, task) if deps else self.submit(task)
        from repro.amt.future import when_all

        per = cost / shards
        parts = []
        for i in range(shards):
            task = Task(
                fn if i == 0 else None,
                cost=per,
                name=f"{name}#{i}" if name else "",
                kind=kind,
            )
            parts.append(self.submit_after(deps, task) if deps else self.submit(task))
        return when_all(parts)

    def submit_after(self, deps: Iterable[Future], task: Task) -> Future:
        """Queue ``task`` once every future in ``deps`` is ready.

        Dependency failures propagate to the task's future without running
        the payload.
        """
        deps = list(deps)
        if self.observer is not None:
            self.observer.on_submit(task, deps)
        if not deps:
            return self.submit(task)
        remaining = [len(deps)]
        self._waiting[task.id] = (task, deps)

        def on_done(f: Future) -> None:
            if f.has_exception():
                if not task.future.is_ready():
                    task.state = TaskState.FAILED
                    self._waiting.pop(task.id, None)
                    task.future._set_exception(f._exception)  # noqa: SLF001
                return
            remaining[0] -= 1
            if remaining[0] == 0 and not task.future.is_ready():
                self._waiting.pop(task.id, None)
                self.submit(task)

        for f in deps:
            f.add_done_callback(on_done)
        return task.future

    # -- dispatch ---------------------------------------------------------
    def _dispatch(self) -> None:
        while self._ready and self._idle_workers:
            task = self._ready.popleft()
            if task.future.is_ready():  # cancelled by a failed dependency
                continue
            worker = self._idle_workers.pop()
            self._start(task, worker)

    def _start(self, task: Task, worker: int) -> None:
        task.state = TaskState.RUNNING
        task.worker = worker
        task.started_at = self.engine.now
        observer = self.observer
        if observer is not None:
            observer.on_start(task)
        try:
            result = task.execute()
            failed: Optional[BaseException] = None
        except BaseException as exc:  # noqa: BLE001 - transported via future
            result, failed = None, exc
        finally:
            if observer is not None:
                observer.on_executed(task)
        cost = task.resolved_cost()

        def finish() -> None:
            task.finished_at = self.engine.now
            if observer is not None:
                observer.on_finish(task)
            self.busy_time += cost
            self.kind_counts[task.kind] = self.kind_counts.get(task.kind, 0) + 1
            self.kind_time[task.kind] = self.kind_time.get(task.kind, 0.0) + cost
            self._idle_workers.append(worker)
            if failed is None:
                task.state = TaskState.DONE
                self.tasks_completed += 1
                task.future._set_value(result)  # noqa: SLF001
            else:
                task.state = TaskState.FAILED
                self.tasks_failed += 1
                task.future._set_exception(failed)  # noqa: SLF001
            self._record_starvation()
            self._dispatch()

        self.engine.post(cost, finish)

    def _record_starvation(self) -> None:
        # Idle workers with an empty queue == starved cores at this instant.
        starved = len(self._idle_workers) - len(self._ready)
        if starved > 0:
            self._starvation_samples.append((self.engine.now, starved))

    def waiting_tasks(self) -> List[Tuple[Task, List[Future]]]:
        """Tasks still blocked on dependencies, with their unready deps.

        Empty on a healthy quiesced pool; non-empty entries after the
        engine drains are the deadlock witnesses.
        """
        out = []
        for task, deps in self._waiting.values():
            unready = [f for f in deps if not f.is_ready()]
            if unready:
                out.append((task, unready))
        return out

    # -- statistics -------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self._ready)

    @property
    def busy_workers(self) -> int:
        return self.n_workers - len(self._idle_workers)

    def utilization(self) -> float:
        """Mean fraction of worker-time spent busy since construction."""
        elapsed = self.engine.now - self._started_at
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.n_workers)

    def starvation_events(self) -> int:
        """Number of instants at which at least one core had no work."""
        return len(self._starvation_samples)
