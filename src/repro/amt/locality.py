"""Localities, remote actions and channels — the distributed half of the AMT.

An HPX *locality* is a process-like address space with its own worker pool.
Remote *actions* invoke registered functions on another locality, crossing
the network model; the returned future resolves when the result message
arrives back.  *Channels* are single-producer single-consumer mailboxes used
for ghost-layer exchange, mirroring ``hpx::lcos::channel``.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from repro.amt.engine import Engine
from repro.amt.future import Future, Promise
from repro.amt.network import Message, NetworkModel
from repro.amt.scheduler import WorkerPool
from repro.amt.task import Task


class ActionRegistry:
    """Name → callable registry shared by all localities.

    HPX registers actions globally at startup; here registration is explicit
    and names must be unique.
    """

    def __init__(self) -> None:
        self._actions: Dict[str, Callable[..., Any]] = {}

    def register(self, name: str, fn: Callable[..., Any]) -> None:
        if name in self._actions:
            raise ValueError(f"action {name!r} already registered")
        self._actions[name] = fn

    def lookup(self, name: str) -> Callable[..., Any]:
        try:
            return self._actions[name]
        except KeyError:
            raise KeyError(f"unknown action {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._actions


class Locality:
    """One simulated process: a worker pool plus per-locality state."""

    def __init__(self, runtime: "Runtime", locality_id: int, n_workers: int) -> None:
        self.runtime = runtime
        self.id = locality_id
        self.pool = WorkerPool(runtime.engine, n_workers, name=f"loc{locality_id}")
        #: Arbitrary application state (e.g. this locality's sub-grids).
        self.state: Dict[str, Any] = {}

    def async_(
        self,
        fn: Optional[Callable[..., Any]],
        *args: Any,
        cost: Any = 0.0,
        name: str = "",
        kind: str = "task",
        effects: Any = None,
    ) -> Future:
        """``hpx::async`` — schedule a task on this locality."""
        return self.pool.submit_fn(fn, *args, cost=cost, name=name, kind=kind, effects=effects)

    def async_after(
        self,
        deps: List[Future],
        fn: Optional[Callable[..., Any]],
        *args: Any,
        cost: Any = 0.0,
        name: str = "",
        kind: str = "task",
        effects: Any = None,
    ) -> Future:
        """``hpx::dataflow`` — schedule once all ``deps`` are ready."""
        return self.pool.submit_after(
            deps, Task(fn, args, cost=cost, name=name, kind=kind, effects=effects)
        )

    def async_sharded(
        self,
        deps: List[Future],
        fn: Optional[Callable[..., Any]],
        cost: float = 0.0,
        shards: int = 1,
        name: str = "",
        kind: str = "task",
    ) -> Future:
        """Work-split ``hpx::dataflow``: one payload, ``shards`` cost slices
        the pool can interleave (see :meth:`WorkerPool.submit_sharded`)."""
        return self.pool.submit_sharded(
            deps, fn, cost=cost, shards=shards, name=name, kind=kind
        )

    def __repr__(self) -> str:
        return f"<Locality {self.id} workers={self.pool.n_workers}>"


class Runtime:
    """The distributed runtime: localities + network + action registry."""

    def __init__(
        self,
        n_localities: int = 1,
        workers_per_locality: int = 4,
        network: Optional[NetworkModel] = None,
        engine: Optional[Engine] = None,
    ) -> None:
        if n_localities < 1:
            raise ValueError("n_localities must be >= 1")
        self.engine = engine or Engine()
        self.network = network or NetworkModel()
        self.actions = ActionRegistry()
        self.localities: List[Locality] = [
            Locality(self, i, workers_per_locality) for i in range(n_localities)
        ]

    @property
    def n_localities(self) -> int:
        return len(self.localities)

    def here(self) -> Locality:
        """Locality 0, the conventional root (AGAS bootstrap locality)."""
        return self.localities[0]

    def install_observer(self, observer: Any) -> None:
        """Attach a task-lifecycle observer (e.g. the race detector) to
        every locality's worker pool; pass None to detach."""
        for loc in self.localities:
            loc.pool.observer = observer

    # -- remote invocation -------------------------------------------------
    def apply_remote(
        self,
        src: int,
        dst: int,
        action: str,
        *args: Any,
        size_bytes: int = 256,
        result_size_bytes: int = 256,
        cost: Any = 0.0,
        kind: str = "action",
    ) -> Future:
        """Invoke a registered action on locality ``dst`` from ``src``.

        Models: argument message (``size_bytes``) over the wire, task
        execution on the destination pool (virtual ``cost``), result message
        (``result_size_bytes``) back.  Same-locality invocations skip the
        wire but still pay the action overhead unless the caller uses
        :meth:`Locality.async_` directly — that asymmetry *is* the paper's
        Fig. 8 communication optimization.
        """
        fn = self.actions.lookup(action)
        promise = Promise(name=f"{action}@{dst}")
        local = src == dst
        dest_loc = self.localities[dst]

        def on_request(_msg: Message) -> None:
            task_future = dest_loc.async_(fn, *args, cost=cost, name=action, kind=kind)

            def send_back(f: Future) -> None:
                def on_reply(_m: Message) -> None:
                    if f.has_exception():
                        promise.set_exception(f._exception)  # noqa: SLF001
                    else:
                        promise.set_value(f._value)  # noqa: SLF001

                self.network.send(
                    self.engine,
                    Message(dst, src, None, result_size_bytes, tag=f"{action}:reply"),
                    on_reply,
                    local=local,
                )

            task_future.add_done_callback(send_back)

        self.network.send(
            self.engine,
            Message(src, dst, args, size_bytes, tag=action),
            on_request,
            local=local,
        )
        return promise.get_future()

    # -- execution ----------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue; returns final virtual time."""
        return self.engine.run(until=until, max_events=max_events)

    def run_until_ready(
        self,
        future: Future,
        max_events: int = 10_000_000,
        watchdog: Any = None,
    ) -> Any:
        """Run the engine until ``future`` resolves, then return its value.

        ``watchdog`` (a :class:`repro.resilience.watchdog.DeadlockWatchdog`)
        upgrades the quiesced-but-unfinished case from a generic error to a
        typed :class:`~repro.resilience.watchdog.DeadlockError` naming the
        stalled future chain.
        """
        processed = 0
        while not future.is_ready():
            if not self.engine.step():
                if watchdog is not None:
                    raise watchdog.diagnose(future)
                raise RuntimeError(
                    f"event queue drained but future {future.name!r} never resolved "
                    "(deadlock: a dependency was never scheduled)"
                )
            processed += 1
            if processed > max_events:
                raise RuntimeError("max_events exceeded waiting for future")
        return future.get()

    def total_busy_time(self) -> float:
        return sum(loc.pool.busy_time for loc in self.localities)

    def utilization(self) -> float:
        if self.engine.now <= 0:
            return 0.0
        capacity = self.engine.now * sum(l.pool.n_workers for l in self.localities)
        return self.total_busy_time() / capacity


class Channel:
    """Single-slot-per-generation mailbox (``hpx::lcos::channel``).

    Producers call :meth:`set` with a generation index; consumers obtain a
    future per generation via :meth:`get`.  Either side may arrive first.
    Each generation may be set and consumed exactly once — double-set or
    double-get of a generation is an error, which catches the ghost-exchange
    races the paper's §VII-B optimization had to guard against.
    """

    _ids = itertools.count()

    def __init__(self, name: str = "") -> None:
        self.name = name or f"channel-{next(self._ids)}"
        self._values: Dict[int, Any] = {}
        self._waiters: Dict[int, Promise] = {}
        self._consumed: set = set()

    def set(self, value: Any, generation: int = 0) -> None:
        if generation in self._values or (
            generation in self._waiters and self._waiters[generation].get_future().is_ready()
        ):
            raise ValueError(
                f"channel {self.name!r}: generation {generation} already set"
            )
        if generation in self._waiters:
            self._waiters.pop(generation).set_value(value)
        else:
            self._values[generation] = value

    def get(self, generation: int = 0) -> Future:
        if generation in self._consumed:
            raise ValueError(
                f"channel {self.name!r}: generation {generation} already consumed"
            )
        self._consumed.add(generation)
        if generation in self._values:
            from repro.amt.future import make_ready_future

            return make_ready_future(self._values.pop(generation), name=self.name)
        promise = Promise(name=f"{self.name}#{generation}")
        self._waiters[generation] = promise
        return promise.get_future()
