"""Parallel Job Manager (PJM) analog.

Fugaku schedules jobs with Fujitsu's PJM; the paper notes HPX had to be
extended to parse PJM's environment to discover its node list (HPX PR 5870).
We reproduce that contract: a :class:`PjmJob` describes an allocation, emits
the environment variables PJM would set, and :class:`PjmScheduler` turns a
job description into a configured :class:`~repro.amt.locality.Runtime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.amt.locality import Runtime
from repro.amt.network import NetworkModel


@dataclass
class PjmJob:
    """An allocation request in PJM terms."""

    nodes: int
    procs_per_node: int = 1
    cores_per_proc: int = 48
    elapse_limit_s: float = 3600.0
    boost_mode: bool = False  # Fugaku's 2.2 GHz frequency boost
    job_name: str = "octotiger"

    def environment(self) -> Dict[str, str]:
        """The PJM environment a process in this job would observe."""
        return {
            "PJM_JOBID": "424242",
            "PJM_JOBNAME": self.job_name,
            "PJM_NODE": str(self.nodes),
            "PJM_MPI_PROC": str(self.nodes * self.procs_per_node),
            "PJM_PROC_BY_NODE": str(self.procs_per_node),
            "PJM_ELAPSE_LIMIT": str(int(self.elapse_limit_s)),
        }

    @staticmethod
    def from_environment(env: Dict[str, str]) -> "PjmJob":
        """Parse a PJM environment back into a job description.

        This is the operation the HPX PJM support performs at startup.
        """
        try:
            nodes = int(env["PJM_NODE"])
            total_procs = int(env["PJM_MPI_PROC"])
            per_node = int(env.get("PJM_PROC_BY_NODE", "1"))
        except KeyError as exc:
            raise KeyError(f"not a PJM environment: missing {exc}") from exc
        if per_node * nodes != total_procs:
            raise ValueError(
                f"inconsistent PJM environment: {nodes} nodes x {per_node} "
                f"procs/node != {total_procs} total procs"
            )
        return PjmJob(
            nodes=nodes,
            procs_per_node=per_node,
            elapse_limit_s=float(env.get("PJM_ELAPSE_LIMIT", "3600")),
            job_name=env.get("PJM_JOBNAME", "octotiger"),
        )


@dataclass
class PjmScheduler:
    """Turns job descriptions into runtimes; enforces boost-mode policy.

    Fugaku only allows boost mode (2.2 GHz) for small allocations — the
    reason the paper ran all multi-node experiments at 1.8 GHz (Fig. 3).
    """

    boost_max_nodes: int = 384
    submitted: List[PjmJob] = field(default_factory=list)

    def validate(self, job: PjmJob) -> None:
        if job.nodes < 1:
            raise ValueError("job must request at least one node")
        if job.boost_mode and job.nodes > self.boost_max_nodes:
            raise ValueError(
                f"boost mode unavailable above {self.boost_max_nodes} nodes "
                f"(requested {job.nodes})"
            )

    def launch(
        self, job: PjmJob, network: Optional[NetworkModel] = None
    ) -> Runtime:
        """Allocate a runtime with one locality per process in the job."""
        self.validate(job)
        self.submitted.append(job)
        return Runtime(
            n_localities=job.nodes * job.procs_per_node,
            workers_per_locality=job.cores_per_proc,
            network=network,
        )
