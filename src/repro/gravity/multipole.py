"""Multipole moments and local expansions (Cartesian tensors).

Moments are *raw* (non-traceless) Cartesian moments about the node's centre
of mass, which keeps the M2M/M2L algebra elementary:

    M0 = sum m           (monopole)
    Q_ij = sum m r_i r_j (second moment; dipole vanishes about the COM)
    O_ijk = sum m r_i r_j r_k (third moment / octupole)

Octo-Tiger computes the octupole alongside the lower moments to support its
angular-momentum-conserving mode; we carry it for the same reason (the
gravity.order config selects how much of it the kernels use).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class Multipole:
    """Moments of a mass distribution about ``center`` (its COM)."""

    mass: float
    center: np.ndarray  # (3,)
    quad: np.ndarray  # (3, 3) raw second moment
    octu: np.ndarray  # (3, 3, 3) raw third moment

    @classmethod
    def zero(cls) -> "Multipole":
        return cls(0.0, np.zeros(3), np.zeros((3, 3)), np.zeros((3, 3, 3)))

    @classmethod
    def from_points(
        cls, pos: np.ndarray, mass: np.ndarray, fallback_center: Optional[np.ndarray] = None
    ) -> "Multipole":
        """P2M: moments of point masses ``pos`` (n, 3), ``mass`` (n,).

        ``fallback_center`` anchors the expansion of an empty (zero-mass)
        distribution — vacuum sub-grids exist in every star scenario and a
        COM at the origin would collide with genuine expansion centres.
        """
        total = float(mass.sum())
        if total <= 0.0:
            out = cls.zero()
            if fallback_center is not None:
                out.center = np.asarray(fallback_center, dtype=np.float64).copy()
            return out
        com = (pos * mass[:, None]).sum(axis=0) / total
        r = pos - com
        quad = np.einsum("n,ni,nj->ij", mass, r, r)
        octu = np.einsum("n,ni,nj,nk->ijk", mass, r, r, r)
        return cls(total, com, quad, octu)

    @classmethod
    def combine(
        cls, parts: List["Multipole"], fallback_center: Optional[np.ndarray] = None
    ) -> "Multipole":
        """M2M: moments of a union of distributions about the joint COM.

        Shift identities for raw moments with vanishing dipole (d is the
        displacement of a part's COM from the joint COM):

            Q'_ij  = Q_ij + m d_i d_j
            O'_ijk = O_ijk + Q_ij d_k + Q_jk d_i + Q_ik d_j + m d_i d_j d_k
        """
        total = sum(p.mass for p in parts)
        if total <= 0.0:
            out = cls.zero()
            if fallback_center is not None:
                out.center = np.asarray(fallback_center, dtype=np.float64).copy()
            return out
        com = sum(p.mass * p.center for p in parts) / total
        quad = np.zeros((3, 3))
        octu = np.zeros((3, 3, 3))
        for p in parts:
            if p.mass == 0.0:
                continue
            d = p.center - com
            quad += p.quad + p.mass * np.outer(d, d)
            octu += (
                p.octu
                + np.einsum("ij,k->ijk", p.quad, d)
                + np.einsum("jk,i->ijk", p.quad, d)
                + np.einsum("ik,j->ijk", p.quad, d)
                + p.mass * np.einsum("i,j,k->ijk", d, d, d)
            )
        return cls(float(total), com, quad, octu)


def batched_moments_from_points(
    pos: np.ndarray, mass: np.ndarray, fallback_center: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batched P2M: moments of ``K`` independent point sets at once.

    ``pos`` (K, n, 3), ``mass`` (K, n), ``fallback_center`` (K, 3) anchor
    for zero-mass sets.  Returns ``(mass (K,), com (K, 3), quad (K, 3, 3),
    octu (K, 3, 3, 3))`` — the stacked equivalent of
    :meth:`Multipole.from_points` per set, used by the planned solver to
    replace the per-leaf Python loop.
    """
    total = mass.sum(axis=1)
    nonzero = total > 0.0
    safe = np.where(nonzero, total, 1.0)
    com = np.einsum("bn,bni->bi", mass, pos) / safe[:, None]
    com = np.where(nonzero[:, None], com, fallback_center)
    r = pos - com[:, None, :]
    quad = np.einsum("bn,bni,bnj->bij", mass, r, r)
    octu = np.einsum("bn,bni,bnj,bnk->bijk", mass, r, r, r)
    return np.where(nonzero, total, 0.0), com, quad, octu


def batched_combine(
    cmass: np.ndarray,
    ccom: np.ndarray,
    cquad: np.ndarray,
    coctu: np.ndarray,
    fallback_center: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batched M2M: combine ``C`` children of each of ``K`` parents at once.

    ``cmass`` (K, C), ``ccom`` (K, C, 3), ``cquad`` (K, C, 3, 3), ``coctu``
    (K, C, 3, 3, 3); the shift identities match :meth:`Multipole.combine`
    (zero-mass children contribute exact zeros, so no filtering is needed).
    """
    total = cmass.sum(axis=1)
    nonzero = total > 0.0
    safe = np.where(nonzero, total, 1.0)
    com = np.einsum("bc,bci->bi", cmass, ccom) / safe[:, None]
    com = np.where(nonzero[:, None], com, fallback_center)
    d = ccom - com[:, None, :]
    quad = cquad.sum(axis=1) + np.einsum("bc,bci,bcj->bij", cmass, d, d)
    octu = (
        coctu.sum(axis=1)
        + np.einsum("bcij,bck->bijk", cquad, d)
        + np.einsum("bcjk,bci->bijk", cquad, d)
        + np.einsum("bcik,bcj->bijk", cquad, d)
        + np.einsum("bc,bci,bcj,bck->bijk", cmass, d, d, d)
    )
    return np.where(nonzero, total, 0.0), com, quad, octu


def batched_local_shift(
    l0: np.ndarray, l1: np.ndarray, l2: np.ndarray, l3: np.ndarray, d: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batched L2L: :meth:`LocalExpansion.shifted` over ``K`` expansions.

    ``l0`` (K,), ``l1`` (K, 3), ``l2`` (K, 3, 3), ``l3`` (K, 3, 3, 3),
    ``d`` (K, 3) per-expansion displacement.
    """
    s0 = (
        l0
        + np.einsum("bi,bi->b", l1, d)
        + 0.5 * np.einsum("bij,bi,bj->b", l2, d, d)
        + np.einsum("bijk,bi,bj,bk->b", l3, d, d, d) / 6.0
    )
    s1 = l1 + np.einsum("bij,bj->bi", l2, d) + 0.5 * np.einsum("bijk,bj,bk->bi", l3, d, d)
    s2 = l2 + np.einsum("bijk,bk->bij", l3, d)
    return s0, s1, s2, l3


def batched_local_evaluate(
    l0: np.ndarray,
    l1: np.ndarray,
    l2: np.ndarray,
    l3: np.ndarray,
    delta: np.ndarray,
    g_newton: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched L2P: :meth:`LocalExpansion.evaluate` over ``K`` expansions.

    ``delta`` (K, n, 3) holds each expansion's evaluation displacements;
    returns ``(phi (K, n), acc (K, n, 3))``.
    """
    phi = -g_newton * (
        l0[:, None]
        + np.einsum("bni,bi->bn", delta, l1)
        + 0.5 * np.einsum("bij,bni,bnj->bn", l2, delta, delta)
        + np.einsum("bijk,bni,bnj,bnk->bn", l3, delta, delta, delta) / 6.0
    )
    grad = (
        l1[:, None, :]
        + np.einsum("bij,bnj->bni", l2, delta)
        + 0.5 * np.einsum("bijk,bnj,bnk->bni", l3, delta, delta)
    )
    return phi, g_newton * grad


def octant_ids(n: int) -> np.ndarray:
    """Octant index (0..7, Morton bit order x=bit0) of each raveled cell of
    an ``n**3`` sub-grid."""
    half = n // 2
    idx = np.arange(n**3)
    ix = idx // (n * n)
    iy = (idx // n) % n
    iz = idx % n
    return (
        (ix >= half).astype(int)
        | ((iy >= half).astype(int) << 1)
        | ((iz >= half).astype(int) << 2)
    )


def stacked_octant_moments(
    pos: np.ndarray,
    mass: np.ndarray,
    n: int,
    node_center: np.ndarray,
    node_size: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sub-moments of a leaf's cells split into its eight octants.

    Returns ``(mass (8,), com (8, 3), quad (8, 3, 3), octu (8, 3, 3, 3))``.
    Used as cell-resolved sources for marginally separated interactions:
    halving the source extent is what keeps the near part of the far field
    accurate at sub-grid granularity (Octo-Tiger resolves these per cell).

    ``pos``/``mass`` are the raveled (C-order, ij-indexed) cell arrays of an
    ``n**3`` sub-grid; empty octants anchor at their geometric centre.
    """
    octant = octant_ids(n)
    masses = np.empty(8)
    coms = np.empty((8, 3))
    quads = np.empty((8, 3, 3))
    octus = np.empty((8, 3, 3, 3))
    for o in range(8):
        sel = octant == o
        offset = (
            np.array([(o >> 0) & 1, (o >> 1) & 1, (o >> 2) & 1], dtype=float) - 0.5
        ) * (node_size / 2.0)
        geo_center = node_center + offset
        mp = Multipole.from_points(pos[sel], mass[sel], fallback_center=geo_center)
        masses[o] = mp.mass
        coms[o] = mp.center
        quads[o] = mp.quad
        octus[o] = mp.octu
    return masses, coms, quads, octus


@dataclass
class LocalExpansion:
    """Taylor expansion of the far-field kernel about a node's COM.

    Potential and acceleration at displacement ``delta`` from the centre:

        phi(delta) = -G [ L0 + L1.delta + 1/2 delta.L2.delta
                          + 1/6 L3:(delta delta delta) ]
        a(delta)   = -grad phi
                   = +G [ L1 + L2.delta + 1/2 L3:(delta delta) ]
    """

    l0: float = 0.0
    l1: np.ndarray = field(default_factory=lambda: np.zeros(3))
    l2: np.ndarray = field(default_factory=lambda: np.zeros((3, 3)))
    l3: np.ndarray = field(default_factory=lambda: np.zeros((3, 3, 3)))

    def __iadd__(self, other: "LocalExpansion") -> "LocalExpansion":
        self.l0 += other.l0
        self.l1 += other.l1
        self.l2 += other.l2
        self.l3 += other.l3
        return self

    def shifted(self, d: np.ndarray) -> "LocalExpansion":
        """L2L: re-centre the expansion at ``center + d`` (truncated at
        total order 3)."""
        l0 = (
            self.l0
            + self.l1 @ d
            + 0.5 * d @ self.l2 @ d
            + np.einsum("ijk,i,j,k->", self.l3, d, d, d) / 6.0
        )
        l1 = self.l1 + self.l2 @ d + 0.5 * np.einsum("ijk,j,k->i", self.l3, d, d)
        l2 = self.l2 + np.einsum("ijk,k->ij", self.l3, d)
        return LocalExpansion(float(l0), l1, l2, self.l3.copy())

    def evaluate(
        self, delta: np.ndarray, g_newton: float = 1.0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """L2P: potential (n,) and acceleration (n, 3) at displacements
        ``delta`` (n, 3) from the expansion centre.

        The L tensors hold derivatives of g(r) = 1/r contracted with source
        moments, so phi = -G * sum_m L^(m) delta^m / m! and the acceleration
        is a = -grad phi = +G * sum_m L^(m+1) delta^m / m!.
        """
        phi = -g_newton * (
            self.l0
            + delta @ self.l1
            + 0.5 * np.einsum("ij,ni,nj->n", self.l2, delta, delta)
            + np.einsum("ijk,ni,nj,nk->n", self.l3, delta, delta, delta) / 6.0
        )
        grad = (
            self.l1[None, :]
            + np.einsum("ij,nj->ni", self.l2, delta)
            + 0.5 * np.einsum("ijk,nj,nk->ni", self.l3, delta, delta)
        )
        return phi, g_newton * grad
