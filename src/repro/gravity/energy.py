"""Gravitational energy and virial diagnostics.

Used by the scenario health checks: a stable equilibrium satisfies the
virial theorem (2 E_kin + 2 E_therm_trace + E_grav ~ 0 for the appropriate
measures); strong violation flags a broken initial model long before the
hydro blows up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.octree.fields import Field
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey


@dataclass(frozen=True)
class VirialDiagnostics:
    kinetic: float
    internal: float  # integral of eint dV (thermal energy)
    potential: float  # 1/2 integral rho phi dV

    @property
    def virial_sum(self) -> float:
        """2 E_kin + 3 (gamma - 1) E_int + E_pot, with the standard
        monatomic choice 3(gamma-1) = 2: 2 K + 2 U_th + W."""
        return 2.0 * self.kinetic + 2.0 * self.internal + self.potential

    @property
    def virial_error(self) -> float:
        """|virial sum| normalised by |E_pot| (0 for perfect equilibrium)."""
        scale = abs(self.potential)
        return abs(self.virial_sum) / scale if scale > 0 else abs(self.virial_sum)


def potential_energy(mesh: AmrMesh, phi: Dict[NodeKey, np.ndarray]) -> float:
    """W = 1/2 integral rho phi dV (each pair counted once)."""
    total = 0.0
    for leaf in mesh.leaves():
        rho = leaf.subgrid.interior_view(Field.RHO)
        total += 0.5 * float((rho * phi[leaf.key]).sum()) * leaf.cell_volume
    return total


def kinetic_energy(mesh: AmrMesh) -> float:
    total = 0.0
    for leaf in mesh.leaves():
        sg = leaf.subgrid
        rho = np.maximum(sg.interior_view(Field.RHO), 1e-300)
        s2 = (
            sg.interior_view(Field.SX) ** 2
            + sg.interior_view(Field.SY) ** 2
            + sg.interior_view(Field.SZ) ** 2
        )
        total += 0.5 * float((s2 / rho).sum()) * leaf.cell_volume
    return total


def internal_energy(mesh: AmrMesh) -> float:
    """Thermal energy: E_gas minus the kinetic part."""
    total = 0.0
    for leaf in mesh.leaves():
        sg = leaf.subgrid
        rho = np.maximum(sg.interior_view(Field.RHO), 1e-300)
        s2 = (
            sg.interior_view(Field.SX) ** 2
            + sg.interior_view(Field.SY) ** 2
            + sg.interior_view(Field.SZ) ** 2
        )
        eint = sg.interior_view(Field.EGAS) - 0.5 * s2 / rho
        total += float(np.maximum(eint, 0.0).sum()) * leaf.cell_volume
    return total


def virial_diagnostics(
    mesh: AmrMesh, phi: Dict[NodeKey, np.ndarray]
) -> VirialDiagnostics:
    return VirialDiagnostics(
        kinetic=kinetic_energy(mesh),
        internal=internal_energy(mesh),
        potential=potential_energy(mesh, phi),
    )
