"""Direct O(n^2) gravity: the accuracy oracle for the FMM.

Sums every cell-cell interaction over all leaves, in memory-bounded blocks.
Quadratic and only usable on small meshes, which is exactly its job: the
tests compare FMM output against it and assert the error bounds the
expansion order implies.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.gravity.pairwise import direct_field
from repro.octree.fields import Field
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey


def direct_sum(
    mesh: AmrMesh, g_newton: float = 1.0
) -> Tuple[Dict[NodeKey, np.ndarray], Dict[NodeKey, np.ndarray]]:
    """Exact potential and acceleration per leaf: (phi, accel) dicts
    matching :class:`~repro.gravity.fmm.FmmResult` shapes."""
    leaves = mesh.leaves()
    n = mesh.n

    all_pos = []
    all_mass = []
    offsets = {}
    cursor = 0
    for leaf in leaves:
        x, y, z = leaf.cell_centers()
        pos = np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)
        mass = leaf.subgrid.interior_view(Field.RHO).ravel() * leaf.cell_volume
        all_pos.append(pos)
        all_mass.append(mass)
        offsets[leaf.key] = (cursor, cursor + pos.shape[0])
        cursor += pos.shape[0]
    pos = np.concatenate(all_pos)
    mass = np.concatenate(all_mass)

    phi_flat, acc_flat = direct_field(pos, mass, g_newton=g_newton)

    phi: Dict[NodeKey, np.ndarray] = {}
    accel: Dict[NodeKey, np.ndarray] = {}
    for leaf in leaves:
        lo, hi = offsets[leaf.key]
        phi[leaf.key] = phi_flat[lo:hi].reshape(n, n, n)
        accel[leaf.key] = acc_flat[lo:hi].T.reshape(3, n, n, n)
    return phi, accel
