"""Far-field interaction kernels: derivative tensors of 1/r and M2L.

With g(x) = 1/|x| the Cartesian derivative tensors through third order are

    D0      = 1/r
    D1_i    = -x_i / r^3
    D2_ij   = 3 x_i x_j / r^5 - delta_ij / r^3
    D3_ijk  = -15 x_i x_j x_k / r^7
              + 3 (x_i d_jk + x_j d_ik + x_k d_ij) / r^5

and the M2L conversion (source moments M about c_B, target centre c_A,
x = c_A - c_B) truncated at combined order 3 is

    L^(m) = sum_n ((-1)^n / n!) M^(n) (x) D^(n+m)(x),   n + m <= 3

with the dipole vanishing because moments are taken about the COM.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.gravity.multipole import LocalExpansion, Multipole

_EYE = np.eye(3)


def p2l(
    pos: np.ndarray, mass: np.ndarray, center: np.ndarray
) -> LocalExpansion:
    """Point-to-local: exact local expansion of point sources at a centre.

    Octo-Tiger's FMM works at *cell* granularity — each sub-grid cell is a
    monopole — so interactions between marginally separated sub-grids are
    resolved per source cell.  ``p2l`` reproduces that: L^(m) = sum_j m_j
    D^(m)(c - x_j), vectorised over all source cells of a sub-grid.  The
    only remaining error is the target-side Taylor truncation, which is what
    makes the near part of the far field accurate enough for a theta = 0.5
    opening criterion at sub-grid granularity.
    """
    x = center[None, :] - pos  # (n, 3): target-centre minus source points
    r2 = np.einsum("ni,ni->n", x, x)
    if (r2 <= 0.0).any():
        raise ZeroDivisionError("p2l source coincides with the target centre")
    inv_r = 1.0 / np.sqrt(r2)
    inv_r3 = inv_r / r2
    inv_r5 = inv_r3 / r2
    inv_r7 = inv_r5 / r2

    l0 = float(mass @ inv_r)
    l1 = -np.einsum("n,ni->i", mass * inv_r3, x)
    l2 = 3.0 * np.einsum("n,ni,nj->ij", mass * inv_r5, x, x) - _EYE * float(
        mass @ inv_r3
    )
    xd = np.einsum("n,ni,jk->nijk", mass * inv_r5, x, _EYE)
    l3 = -15.0 * np.einsum("n,ni,nj,nk->ijk", mass * inv_r7, x, x, x) + 3.0 * (
        xd + xd.transpose(0, 2, 1, 3) + xd.transpose(0, 3, 2, 1)
    ).sum(axis=0)
    return LocalExpansion(l0, l1, l2, l3)


def d_tensors(x: np.ndarray) -> Tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """D0..D3 of g = 1/r at separation vector ``x`` (3,)."""
    r2 = float(x @ x)
    if r2 <= 0.0:
        raise ZeroDivisionError("derivative tensors at zero separation")
    r = np.sqrt(r2)
    inv_r = 1.0 / r
    inv_r3 = inv_r / r2
    inv_r5 = inv_r3 / r2
    inv_r7 = inv_r5 / r2

    d0 = inv_r
    d1 = -x * inv_r3
    d2 = 3.0 * np.outer(x, x) * inv_r5 - _EYE * inv_r3
    xd = np.einsum("i,jk->ijk", x, _EYE)
    d3 = (
        -15.0 * np.einsum("i,j,k->ijk", x, x, x) * inv_r7
        + 3.0 * (xd + xd.transpose(1, 0, 2) + xd.transpose(2, 1, 0)) * inv_r5
    )
    return d0, d1, d2, d3


def m2l_batch(
    mass: np.ndarray,
    com: np.ndarray,
    quad: np.ndarray,
    octu: np.ndarray,
    center: np.ndarray,
    order: int = 3,
) -> LocalExpansion:
    """Batched M2L: one local expansion from many source multipoles.

    ``mass`` (n,), ``com`` (n, 3), ``quad`` (n, 3, 3), ``octu`` (n, 3, 3, 3)
    describe the sources; the result is the sum of their local expansions at
    ``center``.  This is the vectorised form the solver uses — one call per
    target node over all of its interaction-list sources, mirroring how
    Octo-Tiger's Multipole kernel sweeps a stencil with SIMD types.
    """
    x = center[None, :] - com  # (n, 3)
    r2 = np.einsum("ni,ni->n", x, x)
    if (r2 <= 0.0).any():
        raise ZeroDivisionError("m2l_batch source coincides with target centre")
    inv_r = 1.0 / np.sqrt(r2)
    inv_r3 = inv_r / r2
    inv_r5 = inv_r3 / r2
    inv_r7 = inv_r5 / r2

    # Monopole contributions to every L order.
    l0 = float(mass @ inv_r)
    l1 = -np.einsum("n,ni->i", mass * inv_r3, x)
    l2 = 3.0 * np.einsum("n,ni,nj->ij", mass * inv_r5, x, x) - _EYE * float(
        mass @ inv_r3
    )
    # D3 contracted pieces appear twice (L3 monopole, L1 quadrupole); build
    # the weighted symmetric-delta part once per use instead of materialising
    # the full (n, 3, 3, 3) tensor where avoidable.
    xxx7 = np.einsum("n,ni,nj,nk->ijk", mass * inv_r7, x, x, x)
    xs5 = np.einsum("n,ni->i", mass * inv_r5, x)
    sym = (
        np.einsum("i,jk->ijk", xs5, _EYE)
        + np.einsum("j,ik->ijk", xs5, _EYE)
        + np.einsum("k,ij->ijk", xs5, _EYE)
    )
    l3 = -15.0 * xxx7 + 3.0 * sym

    if order >= 2:
        # Quadrupole: L0 += 1/2 Q:D2 ; L1 += 1/2 Q_jk D3_ijk.
        q_xx = np.einsum("nij,ni,nj->n", quad, x, x)
        q_tr = np.einsum("nii->n", quad)
        l0 += 0.5 * float((3.0 * q_xx * inv_r5 - q_tr * inv_r3).sum())
        # D3_ijk Q_jk = -15 x_i (x.Q.x)/r^7 + 3 (2 (Q x)_i + x_i tr Q)/r^5
        qx = np.einsum("nij,nj->ni", quad, x)
        l1 += 0.5 * (
            -15.0 * np.einsum("n,ni->i", q_xx * inv_r7, x)
            + 3.0
            * (
                2.0 * np.einsum("n,ni->i", inv_r5, qx)
                + np.einsum("n,ni->i", q_tr * inv_r5, x)
            )
        )
    if order >= 3:
        # Octupole: L0 += -1/6 O : D3.
        o_xxx = np.einsum("nijk,ni,nj,nk->n", octu, x, x, x)
        o_contr = np.einsum("nijj->ni", octu)  # contracted octupole vector
        o_dot = np.einsum("ni,ni->n", o_contr, x)
        l0 += -(
            -15.0 * float((o_xxx * inv_r7).sum()) + 9.0 * float((o_dot * inv_r5).sum())
        ) / 6.0

    return LocalExpansion(l0, l1, l2, l3)


def m2l_segmented(
    mass: np.ndarray,
    com: np.ndarray,
    quad: np.ndarray,
    octu: np.ndarray,
    centers: np.ndarray,
    indptr: np.ndarray,
    order: int = 3,
    xp=np,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Segmented M2L: many targets' interaction lists in one vectorised call.

    The planned solver flattens every (target, source) far pair of a level
    into one row list — ``mass`` (R,), ``com`` (R, 3), ``quad`` (R, 3, 3),
    ``octu`` (R, 3, 3, 3) are the per-row source moments and ``centers``
    (R, 3) the per-row target expansion centre.  ``indptr`` (S+1,) gives
    CSR segment boundaries: rows ``indptr[t]:indptr[t+1]`` belong to target
    ``t`` (segments must be non-empty).  Returns the per-target local
    tensors ``(l0 (S,), l1 (S, 3), l2 (S, 3, 3), l3 (S, 3, 3, 3))``,
    summing each segment with ``xp.add.reduceat`` — the batched form of
    calling :func:`m2l_batch` once per target.

    ``xp`` is the array namespace the GEMM chain runs in (the
    :attr:`repro.kokkos.backend.ArrayBackend.module` of the selected
    backend); the inputs must already live in that namespace.  The default
    host path (``xp is np``) is bit-identical to the pre-dispatch kernel.
    """
    eye = _EYE if xp is np else xp.eye(3)
    x = centers - com  # (R, 3)
    r2 = xp.einsum("ni,ni->n", x, x)
    if bool((r2 <= 0.0).any()):
        raise ZeroDivisionError("m2l_segmented source coincides with target centre")
    inv_r = 1.0 / xp.sqrt(r2)
    inv_r3 = inv_r / r2
    inv_r5 = inv_r3 / r2
    inv_r7 = inv_r5 / r2

    m3 = mass * inv_r3
    m5 = mass * inv_r5
    m7 = mass * inv_r7

    l0r = mass * inv_r
    l1r = -m3[:, None] * x
    l2r = 3.0 * xp.einsum("n,ni,nj->nij", m5, x, x) - m3[:, None, None] * eye
    xs5 = m5[:, None] * x
    l3r = -15.0 * xp.einsum("n,ni,nj,nk->nijk", m7, x, x, x) + 3.0 * (
        xp.einsum("ni,jk->nijk", xs5, eye)
        + xp.einsum("nj,ik->nijk", xs5, eye)
        + xp.einsum("nk,ij->nijk", xs5, eye)
    )

    if order >= 2:
        q_xx = xp.einsum("nij,ni,nj->n", quad, x, x)
        q_tr = xp.einsum("nii->n", quad)
        l0r += 0.5 * (3.0 * q_xx * inv_r5 - q_tr * inv_r3)
        qx = xp.einsum("nij,nj->ni", quad, x)
        l1r += 0.5 * (
            -15.0 * (q_xx * inv_r7)[:, None] * x
            + 3.0 * (2.0 * inv_r5[:, None] * qx + (q_tr * inv_r5)[:, None] * x)
        )
    if order >= 3:
        o_xxx = xp.einsum("nijk,ni,nj,nk->n", octu, x, x, x)
        o_contr = xp.einsum("nijj->ni", octu)
        o_dot = xp.einsum("ni,ni->n", o_contr, x)
        l0r += -(-15.0 * o_xxx * inv_r7 + 9.0 * o_dot * inv_r5) / 6.0

    # Segment starts stay host-side integers; xp.asarray is a no-op for np
    # and a (cheap, index-sized) upload for device namespaces.
    starts = xp.asarray(np.asarray(indptr[:-1], dtype=np.intp))
    return (
        xp.add.reduceat(l0r, starts),
        xp.add.reduceat(l1r, starts, axis=0),
        xp.add.reduceat(l2r, starts, axis=0),
        xp.add.reduceat(l3r, starts, axis=0),
    )


def m2l(source: Multipole, x: np.ndarray, order: int = 3) -> LocalExpansion:
    """Local expansion at a target centre ``x = c_target - c_source``.

    ``order`` selects the source moments used: 1 monopole, 2 +quadrupole,
    3 +octupole (the gravity.order configuration / the FMM-order ablation).
    """
    if order not in (1, 2, 3):
        raise ValueError("m2l order must be 1, 2 or 3")
    d0, d1, d2, d3 = d_tensors(x)
    m0 = source.mass

    l0 = m0 * d0
    l1 = m0 * d1
    l2 = m0 * d2
    l3 = m0 * d3

    if order >= 2:
        q = source.quad
        l0 += 0.5 * float(np.einsum("ij,ij->", q, d2))
        l1 += 0.5 * np.einsum("jk,ijk->i", q, d3)
    if order >= 3:
        o = source.octu
        l0 += -float(np.einsum("ijk,ijk->", o, d3)) / 6.0

    return LocalExpansion(float(l0), l1, l2, l3)
