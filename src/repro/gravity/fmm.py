"""The FMM driver: upward pass, dual tree traversal, downward pass, P2P.

The traversal realises Octo-Tiger's solver phases on an adaptive,
2:1-balanced octree, classifying node pairs three ways:

* **far** — separation at least ``2 / theta`` node sizes: classic M2L with
  the full node multipoles (batched per target),
* **near** — separated leaf pairs closer than that: M2L from *octant
  sub-moments* of the source's cells.  Octo-Tiger resolves these
  interactions per cell (each cell is a monopole with its own interaction
  list); octant granularity reproduces that accuracy scaling while staying
  vectorisable in NumPy,
* **P2P** — touching leaf pairs: direct cell-cell summation.

With ``theta = 0.5`` the far criterion is a four-node-size separation and
the near band covers the paper's "same-level cell-to-cell interactions"
stencil — the Multipole kernel whose task-splitting Fig. 9 studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gravity.conservation import project_angular_momentum, project_momentum
from repro.gravity.kernels import m2l_batch
from repro.gravity.multipole import (
    LocalExpansion,
    Multipole,
    octant_ids,
    stacked_octant_moments,
)
from repro.gravity.pairwise import pairwise_accumulate
from repro.octree.fields import Field
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey, OctreeNode


@dataclass
class FmmStats:
    """Workload counters: these drive the performance simulator's gravity
    phase model."""

    p2m: int = 0
    m2m: int = 0
    m2l_pairs: int = 0  # far pairs, full-node multipoles
    near_pairs: int = 0  # octant-resolved M2L pairs
    p2p_pairs: int = 0
    l2l: int = 0
    m2l_by_level: Dict[int, int] = field(default_factory=dict)

    @property
    def multipole_interactions(self) -> int:
        """Total same-level interaction count (the Fig. 9 kernel workload)."""
        return self.m2l_pairs + self.near_pairs


@dataclass
class FmmResult:
    phi: Dict[NodeKey, np.ndarray]  # (N, N, N) per leaf
    accel: Dict[NodeKey, np.ndarray]  # (3, N, N, N) per leaf
    stats: FmmStats


class FmmSolver:
    """Computes the gravitational field of the mesh's density distribution.

    ``order`` is the multipole order (1 monopole / 2 +quadrupole /
    3 +octupole), ``theta`` the opening criterion, and the correction flags
    control the machine-precision conservation projections.
    """

    def __init__(
        self,
        order: int = 3,
        theta: float = 0.5,
        g_newton: float = 1.0,
        momentum_correction: bool = True,
        angmom_correction: bool = True,
        empty_mass_threshold: float = 0.0,
    ) -> None:
        if not 0.0 < theta <= 1.0:
            raise ValueError("theta must be in (0, 1]")
        self.order = order
        self.theta = theta
        self.g_newton = g_newton
        self.momentum_correction = momentum_correction
        self.angmom_correction = angmom_correction
        #: Sub-grids whose total mass is below this act as pure vacuum
        #: sources (their P2P/M2L source side is skipped).  Star scenarios
        #: are mostly floor-density vacuum; skipping it changes forces by
        #: O(threshold / M_total) while cutting most of the P2P cost.
        self.empty_mass_threshold = empty_mass_threshold
        self.last_stats: Optional[FmmStats] = None

    # -- leaf particle data ---------------------------------------------------
    @staticmethod
    def leaf_points(leaf: OctreeNode) -> Tuple[np.ndarray, np.ndarray]:
        """Cell centres (nc, 3) and cell masses (nc,) of a leaf."""
        x, y, z = leaf.cell_centers()
        pos = np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)
        rho = leaf.subgrid.interior_view(Field.RHO).ravel()
        return pos, rho * leaf.cell_volume

    # -- traversal classification ---------------------------------------------
    def _is_far(self, a: OctreeNode, b: OctreeNode) -> bool:
        dist = float(np.linalg.norm(a.center - b.center))
        return dist * self.theta >= 2.0 * max(a.node_size, b.node_size) * (1.0 - 1e-12)

    @staticmethod
    def _touching(a: OctreeNode, b: OctreeNode) -> bool:
        gap = 0.5 * (a.node_size + b.node_size) * (1.0 + 1e-12)
        return bool(np.all(np.abs(a.center - b.center) <= gap))

    def _traverse(
        self, mesh: AmrMesh
    ) -> Tuple[
        List[Tuple[NodeKey, NodeKey]],
        List[Tuple[NodeKey, NodeKey]],
        List[Tuple[NodeKey, NodeKey]],
    ]:
        """Returns (far_pairs, near_pairs, p2p_pairs), each unordered."""
        far: List[Tuple[NodeKey, NodeKey]] = []
        near: List[Tuple[NodeKey, NodeKey]] = []
        p2p: List[Tuple[NodeKey, NodeKey]] = []
        stack: List[Tuple[NodeKey, NodeKey]] = [((0, 0), (0, 0))]
        while stack:
            ka, kb = stack.pop()
            a, b = mesh.nodes[ka], mesh.nodes[kb]
            if ka == kb:
                if a.is_leaf:
                    p2p.append((ka, ka))
                else:
                    kids = a.children_keys()
                    for i in range(8):
                        for j in range(i, 8):
                            stack.append((kids[i], kids[j]))
                continue
            if self._is_far(a, b):
                far.append((ka, kb))
                continue
            if a.is_leaf and b.is_leaf:
                if self._touching(a, b):
                    p2p.append((ka, kb))
                else:
                    near.append((ka, kb))
                continue
            # Split the larger node; on a tie split whichever is refined.
            split_a = (not a.is_leaf) and (a.node_size >= b.node_size or b.is_leaf)
            if split_a:
                for kid in a.children_keys():
                    stack.append((kid, kb))
            else:
                for kid in b.children_keys():
                    stack.append((ka, kid))
        return far, near, p2p

    # -- the solve ------------------------------------------------------------------
    def solve(self, mesh: AmrMesh) -> FmmResult:
        stats = FmmStats()
        leaves = mesh.leaves()
        points: Dict[NodeKey, Tuple[np.ndarray, np.ndarray]] = {
            leaf.key: self.leaf_points(leaf) for leaf in leaves
        }

        # Phase 1: bottom-up moments (P2M on leaves, M2M upward).
        moments: Dict[NodeKey, Multipole] = {}
        max_level = mesh.max_level()
        for level in range(max_level, -1, -1):
            for node in mesh.nodes_at_level(level):
                if node.is_leaf:
                    pos, mass = points[node.key]
                    moments[node.key] = Multipole.from_points(
                        pos, mass, fallback_center=node.center
                    )
                    stats.p2m += 1
                else:
                    moments[node.key] = Multipole.combine(
                        [moments[k] for k in node.children_keys()],
                        fallback_center=node.center,
                    )
                    stats.m2m += 1

        far_pairs, near_pairs, p2p_pairs = self._traverse(mesh)
        stats.m2l_pairs = len(far_pairs)
        stats.near_pairs = len(near_pairs)
        for ka, _kb in far_pairs:
            stats.m2l_by_level[ka[0]] = stats.m2l_by_level.get(ka[0], 0) + 1

        # Octant sub-moments for every leaf that participates in near pairs.
        octants: Dict[NodeKey, Tuple[np.ndarray, ...]] = {}

        def octants_of(key: NodeKey) -> Tuple[np.ndarray, ...]:
            if key not in octants:
                leaf = mesh.nodes[key]
                pos, mass = points[key]
                octants[key] = stacked_octant_moments(
                    pos, mass, mesh.n, leaf.center, leaf.node_size
                )
            return octants[key]

        # Phase 2: same-level cell-to-cell interactions, batched per target.
        far_sources: Dict[NodeKey, List[NodeKey]] = {}
        near_sources: Dict[NodeKey, List[NodeKey]] = {}
        for ka, kb in far_pairs:
            far_sources.setdefault(ka, []).append(kb)
            far_sources.setdefault(kb, []).append(ka)
        for ka, kb in near_pairs:
            near_sources.setdefault(ka, []).append(kb)
            near_sources.setdefault(kb, []).append(ka)

        locals_: Dict[NodeKey, LocalExpansion] = {
            key: LocalExpansion() for key in mesh.nodes
        }
        # Far sources expand about the target node's COM.
        for target_key, sources in far_sources.items():
            mass_list = []
            com_list = []
            quad_list = []
            octu_list = []
            for src in sources:
                mp = moments[src]
                if mp.mass <= 0.0:
                    continue
                mass_list.append(mp.mass)
                com_list.append(mp.center)
                quad_list.append(mp.quad)
                octu_list.append(mp.octu)
            if not mass_list:
                continue
            locals_[target_key] += m2l_batch(
                np.array(mass_list),
                np.stack(com_list),
                np.stack(quad_list),
                np.stack(octu_list),
                moments[target_key].center,
                order=self.order,
            )

        # Near sources expand about *octant* centres of the target leaf —
        # halving both the source extent (octant sub-moments) and the target
        # Taylor radius, which is what keeps marginally separated pairs
        # accurate.  Contributions are stored per octant and evaluated in
        # the L2P step below.
        octant_locals: Dict[NodeKey, List[LocalExpansion]] = {}
        for target_key, sources in near_sources.items():
            mass_list = []
            com_list = []
            quad_list = []
            octu_list = []
            for src in sources:
                om, oc, oq, oo = octants_of(src)
                keep = om > 0.0
                if keep.any():
                    mass_list.append(om[keep])
                    com_list.append(oc[keep])
                    quad_list.append(oq[keep])
                    octu_list.append(oo[keep])
            if not mass_list:
                continue
            src_mass = np.concatenate(mass_list)
            src_com = np.concatenate(com_list)
            src_quad = np.concatenate(quad_list)
            src_octu = np.concatenate(octu_list)
            tgt_oct = octants_of(target_key)
            per_octant = []
            for o in range(8):
                per_octant.append(
                    m2l_batch(
                        src_mass,
                        src_com,
                        src_quad,
                        src_octu,
                        tgt_oct[1][o],  # octant COM (geometric centre if empty)
                        order=self.order,
                    )
                )
            octant_locals[target_key] = per_octant

        # Phase 3: top-down L2L.
        for level in range(0, max_level):
            for node in mesh.nodes_at_level(level):
                if node.is_leaf:
                    continue
                parent_local = locals_[node.key]
                parent_com = moments[node.key].center
                for child_key in node.children_keys():
                    child_com = moments[child_key].center
                    locals_[child_key] += parent_local.shifted(child_com - parent_com)
                    stats.l2l += 1

        # Far-field evaluation per leaf cell (L2P).
        phi: Dict[NodeKey, np.ndarray] = {}
        accel: Dict[NodeKey, np.ndarray] = {}
        n = mesh.n
        oct_of_cell = octant_ids(n)
        for leaf in leaves:
            pos, _ = points[leaf.key]
            com = moments[leaf.key].center
            p, a = locals_[leaf.key].evaluate(pos - com, self.g_newton)
            per_octant = octant_locals.get(leaf.key)
            if per_octant is not None:
                oct_coms = octants_of(leaf.key)[1]
                for o in range(8):
                    sel = oct_of_cell == o
                    po, ao = per_octant[o].evaluate(
                        pos[sel] - oct_coms[o], self.g_newton
                    )
                    p[sel] += po
                    a[sel] += ao
            phi[leaf.key] = p.reshape(n, n, n)
            accel[leaf.key] = a.T.reshape(3, n, n, n)

        # Near field: direct sums.
        for ka, kb in p2p_pairs:
            stats.p2p_pairs += 1
            self._p2p(points, phi, accel, ka, kb, n)

        # Conservation projections.
        masses = {leaf.key: points[leaf.key][1] for leaf in leaves}
        positions = {leaf.key: points[leaf.key][0] for leaf in leaves}
        if self.momentum_correction:
            project_momentum(masses, accel)
        if self.angmom_correction:
            project_angular_momentum(masses, positions, accel)

        self.last_stats = stats
        return FmmResult(phi, accel, stats)

    def _p2p(
        self,
        points: Dict[NodeKey, Tuple[np.ndarray, np.ndarray]],
        phi: Dict[NodeKey, np.ndarray],
        accel: Dict[NodeKey, np.ndarray],
        ka: NodeKey,
        kb: NodeKey,
        n: int,
    ) -> None:
        """Direct cell-cell interaction between two leaves (or one with
        itself).  Pairwise antisymmetric by construction."""
        pos_a, m_a = points[ka]
        pos_b, m_b = points[kb]
        same = ka == kb
        thr = self.empty_mass_threshold
        if thr > 0.0:
            a_empty = float(m_a.sum()) <= thr
            b_empty = float(m_b.sum()) <= thr
            if a_empty and b_empty:
                return
            if b_empty:  # nothing sources onto a; only b feels a
                phi_b, acc_b, _, _ = pairwise_accumulate(
                    pos_b, m_b, pos_a, m_a, self_pair=False,
                    g_newton=self.g_newton, compute_b=False,
                )
                phi[kb] += phi_b.reshape(n, n, n)
                accel[kb] += acc_b.T.reshape(3, n, n, n)
                return
            if a_empty and not same:
                phi_a, acc_a, _, _ = pairwise_accumulate(
                    pos_a, m_a, pos_b, m_b, self_pair=False,
                    g_newton=self.g_newton, compute_b=False,
                )
                phi[ka] += phi_a.reshape(n, n, n)
                accel[ka] += acc_a.T.reshape(3, n, n, n)
                return
        phi_a, acc_a, phi_b, acc_b = pairwise_accumulate(
            pos_a,
            m_a,
            pos_b,
            m_b,
            self_pair=same,
            g_newton=self.g_newton,
            compute_b=not same,
        )
        phi[ka] += phi_a.reshape(n, n, n)
        accel[ka] += acc_a.T.reshape(3, n, n, n)
        if not same:
            phi[kb] += phi_b.reshape(n, n, n)
            accel[kb] += acc_b.T.reshape(3, n, n, n)

    # -- integrator hook ------------------------------------------------------
    def as_gravity_callback(self):
        """A :class:`~repro.hydro.integrator.GravityCallback` closure."""

        def callback(mesh: AmrMesh) -> Dict[NodeKey, np.ndarray]:
            return self.solve(mesh).accel

        return callback
