"""The FMM driver: cached plan phase plus batched execute phase.

The traversal realises Octo-Tiger's solver phases on an adaptive,
2:1-balanced octree, classifying node pairs three ways:

* **far** — separation at least ``2 / theta`` node sizes: classic M2L with
  the full node multipoles (batched per target),
* **near** — separated leaf pairs closer than that: M2L from *octant
  sub-moments* of the source's cells.  Octo-Tiger resolves these
  interactions per cell (each cell is a monopole with its own interaction
  list); octant granularity reproduces that accuracy scaling while staying
  vectorisable in NumPy,
* **P2P** — touching leaf pairs: direct cell-cell summation.

With ``theta = 0.5`` the far criterion is a four-node-size separation and
the near band covers the paper's "same-level cell-to-cell interactions"
stencil — the Multipole kernel whose task-splitting Fig. 9 studies.

Plan / execute split
--------------------
Everything that depends only on mesh *topology* — the dual tree traversal,
interaction lists, CSR source-index arrays, leaf cell positions and the
P2P geometry-class templates — lives in a cached
:class:`~repro.gravity.plan.FmmPlan`, keyed on
``AmrMesh.topology_version`` so it invalidates automatically after a
regrid.  :meth:`FmmSolver.solve` is the batched execute phase: stacked
P2M/M2M moments, a few segmented M2L calls per level, vectorised
L2L/L2P, and two GEMMs per P2P geometry class.  It is numerically
equivalent (to ~1e-13 relative) to :meth:`FmmSolver.solve_reference`,
the retained per-node reference implementation, and produces identical
:class:`FmmStats`.  Per-phase wall times are reported through
:mod:`repro.profiling` under ``fmm.plan``, ``fmm.p2m_m2m``, ``fmm.m2l``,
``fmm.l2p`` and ``fmm.p2p``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # import cycle: repro.core.__init__ pulls in the driver
    from repro.core.plancache import PlanCache

import numpy as np

from repro.analysis.planverify import require_verified, verify_fmm_split
from repro.gravity.conservation import project_angular_momentum, project_momentum
from repro.gravity.kernels import m2l_batch, m2l_segmented
from repro.gravity.multipole import (
    LocalExpansion,
    Multipole,
    batched_combine,
    batched_local_evaluate,
    batched_local_shift,
    batched_moments_from_points,
    octant_ids,
    stacked_octant_moments,
)
from repro.gravity.pairwise import p2p_apply_class, pairwise_accumulate
from repro.gravity.plan import (
    FmmPlan,
    PairState,
    build_plan,
    count_m2l_by_level,
    traverse,
    update_plan,
)
from repro.octree.fields import Field
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey, OctreeNode
from repro.profiling.apex import CounterRegistry, global_registry


@dataclass
class FmmStats:
    """Workload counters: these drive the performance simulator's gravity
    phase model."""

    p2m: int = 0
    m2m: int = 0
    m2l_pairs: int = 0  # far pairs, full-node multipoles
    near_pairs: int = 0  # octant-resolved M2L pairs
    p2p_pairs: int = 0
    l2l: int = 0
    #: Per-level M2L interaction counts.  Each far pair is counted under
    #: *both* endpoints' levels (one M2L conversion per direction), so the
    #: values sum to ``2 * m2l_pairs``.
    m2l_by_level: Dict[int, int] = field(default_factory=dict)

    @property
    def multipole_interactions(self) -> int:
        """Total same-level interaction count (the Fig. 9 kernel workload)."""
        return self.m2l_pairs + self.near_pairs


@dataclass
class FmmResult:
    phi: Dict[NodeKey, np.ndarray]  # (N, N, N) per leaf
    accel: Dict[NodeKey, np.ndarray]  # (3, N, N, N) per leaf
    stats: FmmStats


class FmmSolver:
    """Computes the gravitational field of the mesh's density distribution.

    ``order`` is the multipole order (1 monopole / 2 +quadrupole /
    3 +octupole), ``theta`` the opening criterion, and the correction flags
    control the machine-precision conservation projections.

    The solver caches an :class:`~repro.gravity.plan.FmmPlan` per mesh
    topology (see :meth:`plan_for`); set ``registry`` to route the
    per-phase timers into a specific :class:`CounterRegistry` instead of
    the process-global one.
    """

    def __init__(
        self,
        order: int = 3,
        theta: float = 0.5,
        g_newton: float = 1.0,
        momentum_correction: bool = True,
        angmom_correction: bool = True,
        empty_mass_threshold: float = 0.0,
        m2l_split: int = 0,
        backend: str = "des",
        nprocs: int = 2,
        overlap: bool = False,
        verify_plans: bool = True,
        array_backend: Optional[str] = None,
        plan_cache: Optional["PlanCache"] = None,
    ) -> None:
        if not 0.0 < theta <= 1.0:
            raise ValueError("theta must be in (0, 1]")
        if backend not in ("des", "process"):
            raise ValueError(f"backend must be 'des' or 'process', got {backend!r}")
        self.order = order
        self.theta = theta
        self.g_newton = g_newton
        self.momentum_correction = momentum_correction
        self.angmom_correction = angmom_correction
        #: Maximum M2L rows per far batch (0 = unsplit).  Heavy same-level
        #: batches are sharded via :meth:`FmmPlan.split` so a scheduler can
        #: interleave them with communication (the paper's SVII-C
        #: multipole work-splitting); results are bit-identical.
        self.m2l_split = m2l_split
        #: Futurized M2L fan-out (process backend): the parent keeps a
        #: slice of the shards and computes them locally while the posted
        #: remote shard payloads propagate — the same latency-hiding shape
        #: as the hydro overlap schedule, and bit-identical either way
        #: (shard target rows are disjoint, accumulation is shard-ordered).
        self.overlap = bool(overlap)
        #: Sub-grids whose total mass is below this act as pure vacuum
        #: sources (their P2P/M2L source side is skipped).  Star scenarios
        #: are mostly floor-density vacuum; skipping it changes forces by
        #: O(threshold / M_total) while cutting most of the P2P cost.
        self.empty_mass_threshold = empty_mass_threshold
        self.last_stats: Optional[FmmStats] = None
        self.registry: Optional[CounterRegistry] = None
        self._plan: Optional[FmmPlan] = None
        #: Optional persistent content-addressed plan store
        #: (:class:`repro.core.plancache.PlanCache`): on a topology the
        #: in-memory plan does not match, the canonical traversal pair
        #: state is looked up by mesh fingerprint before paying a cold
        #: dual-tree traversal, and cold results are stored back.
        self.plan_cache = plan_cache
        #: "process" fans the sharded far-field M2L batches out to a pool
        #: of stateless worker processes (:mod:`repro.amt.parallel`); the
        #: shard arrays ride the pipes and the partials are accumulated in
        #: deterministic shard order — bit-identical to "des"/in-process
        #: because shard target rows within a level are disjoint.
        self.backend = backend
        self.nprocs = nprocs
        #: Statically verify every sharded M2L batch decomposition before
        #: executing it (:func:`repro.analysis.planverify.verify_fmm_split`):
        #: shard target sets must be disjoint and reproduce the unsplit
        #: order, or the solve refuses to run.  Memoised per (plan, split).
        self.verify_plans = verify_plans
        self._verified_splits = set()
        self._engine = None  # lazy ParallelEngine
        #: Array backend for the batched M2L / P2P GEMM kernels
        #: (:mod:`repro.kokkos.backend`).  ``None`` keeps the seed host
        #: path.  Host-storage backends (``numpy``/``pyjit``/``numba``)
        #: run in place and are bit-identical; device backends
        #: boundary-convert per batch (see :meth:`_m2l_dispatch`).
        self.array_backend = array_backend
        if array_backend is not None:
            from repro.kokkos.backend import get_backend

            self._abackend = get_backend(array_backend)
            if backend == "process" and self._abackend.module is not np:
                raise ValueError(
                    "the process backend ships M2L shards over pipes as "
                    "host ndarrays; it cannot be combined with array "
                    f"backend {array_backend!r}"
                )
        else:
            self._abackend = None

    # -- plan cache -----------------------------------------------------------
    def plan_for(self, mesh: AmrMesh) -> FmmPlan:
        """The cached traversal plan for ``mesh``, rebuilt only when the
        mesh topology (by content :meth:`~repro.octree.mesh.AmrMesh.\
fingerprint`) or ``theta`` changed.

        This is the sanctioned cache-miss hook (reprolint R010): on a miss
        it tries, in order, (1) an incremental delta rebuild from the
        previous plan (:func:`repro.gravity.plan.update_plan` — exact, see
        ``docs/plan_lifecycle.md``), (2) the persistent plan cache keyed on
        the fingerprint, (3) the cold dual-tree traversal, storing the
        result back into the cache.  The three paths are bit-identical;
        the ``plan.fmm.{delta,cache_hit,cold}`` timers record which one
        ran.
        """
        if self._plan is not None and self._plan.matches(mesh, self.theta):
            return self._plan
        reg = self._registry()
        fingerprint = mesh.fingerprint()
        plan: Optional[FmmPlan] = None
        # Donating recomputable state (cell positions, P2P templates) from
        # the previous plan is only sound within one (n, domain_size)
        # geometry family — node keys alone don't pin the geometry.
        reuse = self._plan
        if reuse is not None:
            old_mesh = reuse.mesh_ref()
            if reuse.n != mesh.n or (
                old_mesh is not mesh
                and (old_mesh is None or old_mesh.domain_size != mesh.domain_size)
            ):
                reuse = None
        if self._plan is not None:
            with reg.timer("plan.fmm.delta"):
                plan = update_plan(self._plan, mesh, self.theta)
            if plan is not None:
                reg.increment("plan.fmm.delta_builds")
                # Delta-assembled pair state is bit-identical to a cold
                # traversal's — seed the cache with it too, or topologies
                # only visited incrementally would miss on every rerun.
                if self.plan_cache is not None and not self.plan_cache.contains(
                    "fmm", fingerprint, {"theta": self.theta, "n": mesh.n}
                ):
                    self.plan_cache.store(
                        "fmm",
                        fingerprint,
                        {"theta": self.theta, "n": mesh.n},
                        plan.pair_state.to_payload(),
                    )
        if plan is None and self.plan_cache is not None:
            payload = self.plan_cache.load(
                "fmm", fingerprint, {"theta": self.theta, "n": mesh.n}
            )
            if payload is not None:
                with reg.timer("plan.fmm.cache_hit"):
                    plan = build_plan(
                        mesh,
                        self.theta,
                        pair_state=PairState.from_payload(payload),
                        reuse=reuse,
                    )
                reg.increment("plan.fmm.cache_hit_builds")
        if plan is None:
            with reg.timer("plan.fmm.cold"):
                plan = build_plan(mesh, self.theta, reuse=reuse)  # reprolint: sanctioned-cold-build
            reg.increment("plan.fmm.cold_builds")
            if self.plan_cache is not None:
                self.plan_cache.store(
                    "fmm",
                    fingerprint,
                    {"theta": self.theta, "n": mesh.n},
                    plan.pair_state.to_payload(),
                )
        self._plan = plan
        reg.increment("fmm.plan_builds")
        return self._plan

    def invalidate_plan(self) -> None:
        """Drop the cached plan (the next solve rebuilds it)."""
        self._plan = None

    def _registry(self) -> CounterRegistry:
        return self.registry if self.registry is not None else global_registry()

    # -- array-backend dispatch ------------------------------------------------
    def _m2l_dispatch(self, mass, com, quad, octu, centers, indptr):
        """Route one segmented M2L batch through the selected array backend.

        Host-storage backends (module is NumPy) run in place — bit-identical
        to the seed path.  Device backends boundary-convert the batch in and
        the four local tensors back out; this is solver-internal staging of
        raw batch arrays, not a View crossing, so it does not go through
        ``deep_copy``.
        """
        b = self._abackend
        if b is None or b.module is np:
            return m2l_segmented(
                mass, com, quad, octu, centers, indptr, order=self.order
            )
        out = m2l_segmented(
            b.from_numpy(mass),
            b.from_numpy(com),
            b.from_numpy(quad),
            b.from_numpy(octu),
            b.from_numpy(centers),
            indptr,
            order=self.order,
            xp=b.module,
        )
        return tuple(b.to_numpy(t) for t in out)

    def _p2p_dispatch(
        self, t1, t3, tgt, pos_t, mass_s, pos_s, inv_dx, phi_out, acc_out
    ):
        """Route one P2P geometry class through the selected array backend."""
        b = self._abackend
        if b is None or b.module is np:
            p2p_apply_class(
                t1, t3, tgt, pos_t, mass_s, pos_s, inv_dx,
                self.g_newton, phi_out, acc_out,
            )
            return
        nc = phi_out.shape[1]
        dphi = b.zeros(phi_out.shape)
        dacc = b.zeros(acc_out.shape)
        p2p_apply_class(
            b.from_numpy(t1), b.from_numpy(t3), tgt,
            b.from_numpy(pos_t), b.from_numpy(mass_s), b.from_numpy(pos_s),
            b.from_numpy(inv_dx), self.g_newton, dphi, dacc, xp=b.module,
        )
        phi_out += b.to_numpy(dphi).reshape(-1, nc)
        acc_out += b.to_numpy(dacc).reshape(-1, nc, 3)

    # -- process backend -------------------------------------------------------
    def engine(self):
        """Lazy worker pool for the process backend (stateless workers:
        every shard's arrays ride the pipe, so no re-fork on regrid)."""
        if self._engine is None:
            from repro.amt.parallel import ParallelEngine

            self._engine = ParallelEngine(self.nprocs)
            self._engine.start(_m2l_worker_factory)
        return self._engine

    def close(self) -> None:
        """Shut down the M2L worker pool (process backend)."""
        if self._engine is not None:
            self._engine.shutdown()
            self._engine = None

    def _check_split(self, plan, split):  # noqa: ANN001
        """Refuse unverified shard decompositions (once per plan+split)."""
        if not self.verify_plans:
            return
        key = (id(plan), split)
        if key not in self._verified_splits:
            require_verified(verify_fmm_split(plan, split))
            self._verified_splits.add(key)

    def _m2l_fanout(self, plan, mom, locals_, reg):  # noqa: ANN001
        """Far-field M2L sharded over the worker processes.

        Shards are dealt round-robin and their partial locals accumulated
        in deterministic shard order; within a level the shard target rows
        are disjoint, so the result is bit-identical to the in-process
        loop regardless of which worker computed what.
        """
        mom_m, mom_c, mom_q, mom_o = mom
        l0, l1, l2, l3 = locals_
        engine = self.engine()
        split = self.m2l_split
        if split == 0:
            # Auto-shard: ~4 batches per worker so the round-robin deal
            # stays balanced even when levels have uneven row counts.
            total_rows = sum(len(fl.tgt_idx) for fl in plan.split(0))
            split = max(1, -(-total_rows // (4 * engine.nprocs)))
        self._check_split(plan, split)
        shards = list(plan.split(split))
        # Futurized fan-out: the parent claims every (nprocs+1)-th shard
        # for itself and computes it *between* posting the remote sends
        # and draining their replies — local compute hides remote payload
        # latency.  Partials are accumulated in shard index order either
        # way, so the sums are bit-identical to the all-remote deal.
        lanes = engine.nprocs + 1 if self.overlap else engine.nprocs
        ranks = [
            i % lanes if i % lanes < engine.nprocs else None
            for i in range(len(shards))
        ]
        for i, fl in enumerate(shards):
            if ranks[i] is None:
                continue  # parent-local shard
            centers = np.repeat(mom_c[fl.tgt_idx], np.diff(fl.indptr), axis=0)
            engine.send(ranks[i], (
                "m2l",
                mom_m[fl.src_idx], mom_c[fl.src_idx],
                mom_q[fl.src_idx], mom_o[fl.src_idx],
                centers, fl.indptr, self.order,
            ))
        for i, rank in enumerate(ranks):
            fl = shards[i]
            if rank is None:
                with reg.timer("fmm.m2l.local"):
                    centers = np.repeat(
                        mom_c[fl.tgt_idx], np.diff(fl.indptr), axis=0
                    )
                    s0, s1, s2, s3 = self._m2l_dispatch(
                        mom_m[fl.src_idx], mom_c[fl.src_idx],
                        mom_q[fl.src_idx], mom_o[fl.src_idx],
                        centers, fl.indptr,
                    )
            else:
                s0, s1, s2, s3 = engine.gather([rank])[0]
            l0[fl.tgt_idx] += s0
            l1[fl.tgt_idx] += s1
            l2[fl.tgt_idx] += s2
            l3[fl.tgt_idx] += s3
        engine.harvest_timers(reg)

    # -- leaf particle data ---------------------------------------------------
    @staticmethod
    def leaf_points(leaf: OctreeNode) -> Tuple[np.ndarray, np.ndarray]:
        """Cell centres (nc, 3) and cell masses (nc,) of a leaf."""
        x, y, z = leaf.cell_centers()
        pos = np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)
        rho = leaf.subgrid.interior_view(Field.RHO).ravel()
        return pos, rho * leaf.cell_volume

    def _stats_from_plan(self, plan: FmmPlan) -> FmmStats:
        return FmmStats(
            p2m=plan.n_p2m,
            m2m=plan.n_m2m,
            m2l_pairs=plan.n_m2l_pairs,
            near_pairs=plan.n_near_pairs,
            p2p_pairs=plan.p2p_pair_count,
            l2l=plan.n_l2l,
            m2l_by_level=dict(plan.m2l_by_level),
        )

    # -- the solve ------------------------------------------------------------
    def solve(self, mesh: AmrMesh) -> FmmResult:
        """Plan-cached, batched solve (see the module docstring)."""
        reg = self._registry()
        with reg.timer("fmm.plan"):
            plan = self.plan_for(mesh)
        stats = self._stats_from_plan(plan)
        n = mesh.n
        nc = n**3
        n_leaves = len(plan.leaf_keys)
        n_nodes = len(plan.node_keys)

        # Phase 1: bottom-up moments, stacked (P2M batched, M2M per level).
        with reg.timer("fmm.p2m_m2m"):
            rho = np.stack(
                [
                    mesh.nodes[k].subgrid.interior_view(Field.RHO).ravel()
                    for k in plan.leaf_keys
                ]
            )
            mass = rho * plan.cell_vol[:, None]  # (L, nc)
            lm, lc, lq, lo = batched_moments_from_points(
                plan.leaf_pos, mass, plan.node_center[plan.leaf_node_idx]
            )
            mom_m = np.zeros(n_nodes)
            mom_c = plan.node_center.copy()
            mom_q = np.zeros((n_nodes, 3, 3))
            mom_o = np.zeros((n_nodes, 3, 3, 3))
            mom_m[plan.leaf_node_idx] = lm
            mom_c[plan.leaf_node_idx] = lc
            mom_q[plan.leaf_node_idx] = lq
            mom_o[plan.leaf_node_idx] = lo
            for int_idx, child_idx in plan.level_interiors:  # deepest first
                cm, cc, cq, co = batched_combine(
                    mom_m[child_idx],
                    mom_c[child_idx],
                    mom_q[child_idx],
                    mom_o[child_idx],
                    plan.node_center[int_idx],
                )
                mom_m[int_idx] = cm
                mom_c[int_idx] = cc
                mom_q[int_idx] = cq
                mom_o[int_idx] = co

        # Phase 2: same-level interactions — far M2L per level, near M2L
        # from octant sub-moments, all through the segmented kernel.
        with reg.timer("fmm.m2l"):
            l0 = np.zeros(n_nodes)
            l1 = np.zeros((n_nodes, 3))
            l2 = np.zeros((n_nodes, 3, 3))
            l3 = np.zeros((n_nodes, 3, 3, 3))
            if self.backend == "process":
                self._m2l_fanout(
                    plan, (mom_m, mom_c, mom_q, mom_o), (l0, l1, l2, l3), reg
                )
            else:
                self._check_split(plan, self.m2l_split)
                for fl in plan.split(self.m2l_split):
                    centers = np.repeat(
                        mom_c[fl.tgt_idx], np.diff(fl.indptr), axis=0
                    )
                    s0, s1, s2, s3 = self._m2l_dispatch(
                        mom_m[fl.src_idx],
                        mom_c[fl.src_idx],
                        mom_q[fl.src_idx],
                        mom_o[fl.src_idx],
                        centers,
                        fl.indptr,
                    )
                    l0[fl.tgt_idx] += s0
                    l1[fl.tgt_idx] += s1
                    l2[fl.tgt_idx] += s2
                    l3[fl.tgt_idx] += s3

            n_part = len(plan.part_slots)
            n_near_tgt = len(plan.near_tgt_slots)
            if n_part:
                sub = plan.oct_cells.shape[1]
                ppos = plan.leaf_pos[plan.part_slots][:, plan.oct_cells, :]
                pmass = mass[plan.part_slots][:, plan.oct_cells]
                om, oc, oq, oo = batched_moments_from_points(
                    ppos.reshape(n_part * 8, sub, 3),
                    pmass.reshape(n_part * 8, sub),
                    plan.oct_geo_centers.reshape(n_part * 8, 3),
                )
            if n_near_tgt:
                rows = plan.near_rows
                centers = np.repeat(
                    oc[plan.near_center_rows], np.diff(plan.near_indptr), axis=0
                )
                q0, q1, q2, q3 = self._m2l_dispatch(
                    om[rows], oc[rows], oq[rows], oo[rows],
                    centers, plan.near_indptr,
                )

        # Phase 3: top-down L2L, then far-field evaluation (L2P).
        with reg.timer("fmm.l2p"):
            for int_idx, child_idx in reversed(plan.level_interiors):
                d = (mom_c[child_idx] - mom_c[int_idx][:, None, :]).reshape(-1, 3)
                s0, s1, s2, s3 = batched_local_shift(
                    np.repeat(l0[int_idx], 8),
                    np.repeat(l1[int_idx], 8, axis=0),
                    np.repeat(l2[int_idx], 8, axis=0),
                    np.repeat(l3[int_idx], 8, axis=0),
                    d,
                )
                flat = child_idx.reshape(-1)
                l0[flat] += s0
                l1[flat] += s1
                l2[flat] += s2
                l3[flat] += s3

            delta = plan.leaf_pos - mom_c[plan.leaf_node_idx][:, None, :]
            idx = plan.leaf_node_idx
            phi_flat, acc_flat = batched_local_evaluate(
                l0[idx], l1[idx], l2[idx], l3[idx], delta, self.g_newton
            )
            if n_near_tgt:
                tgt_slots = plan.near_tgt_slots
                opos = plan.leaf_pos[tgt_slots][:, plan.oct_cells, :]
                ocom = oc.reshape(n_part, 8, 3)[plan.near_tgt_rows]
                odelta = (opos - ocom[:, :, None, :]).reshape(n_near_tgt * 8, sub, 3)
                po, ao = batched_local_evaluate(q0, q1, q2, q3, odelta, self.g_newton)
                cells = plan.oct_cells[None, :, :]
                phi_flat[tgt_slots[:, None, None], cells] += po.reshape(
                    n_near_tgt, 8, sub
                )
                acc_flat[tgt_slots[:, None, None], cells] += ao.reshape(
                    n_near_tgt, 8, sub, 3
                )

        # Near field: templated, class-batched direct sums.
        with reg.timer("fmm.p2p"):
            thr = self.empty_mass_threshold
            if thr > 0.0:
                src_total = mass.sum(axis=1)
            for cls in plan.p2p_classes:
                tgt, src, inv_dx = cls.tgt, cls.src, cls.inv_dx
                if thr > 0.0:
                    keep = src_total[src] > thr
                    if not keep.any():
                        continue
                    if not keep.all():
                        tgt, src, inv_dx = tgt[keep], src[keep], inv_dx[keep]
                t1, t3 = cls.templates()
                self._p2p_dispatch(
                    t1, t3, tgt,
                    plan.leaf_pos[tgt], mass[src], plan.leaf_pos[src],
                    inv_dx, phi_flat, acc_flat,
                )

        phi: Dict[NodeKey, np.ndarray] = {}
        accel: Dict[NodeKey, np.ndarray] = {}
        masses: Dict[NodeKey, np.ndarray] = {}
        positions: Dict[NodeKey, np.ndarray] = {}
        for i, key in enumerate(plan.leaf_keys):
            phi[key] = phi_flat[i].reshape(n, n, n)
            accel[key] = acc_flat[i].T.reshape(3, n, n, n)
            masses[key] = mass[i]
            positions[key] = plan.leaf_pos[i]

        # Conservation projections.
        if self.momentum_correction:
            project_momentum(masses, accel)
        if self.angmom_correction:
            project_angular_momentum(masses, positions, accel)

        self.last_stats = stats
        return FmmResult(phi, accel, stats)

    # -- reference implementation ---------------------------------------------
    def _traverse(
        self, mesh: AmrMesh
    ) -> Tuple[
        List[Tuple[NodeKey, NodeKey]],
        List[Tuple[NodeKey, NodeKey]],
        List[Tuple[NodeKey, NodeKey]],
    ]:
        """Dual tree traversal (delegates to :func:`repro.gravity.plan.traverse`)."""
        return traverse(mesh, self.theta)

    def solve_reference(self, mesh: AmrMesh) -> FmmResult:
        """Unbatched per-node solve, kept as the numerical reference.

        Re-derives the traversal and every intermediate on each call; used
        by the equivalence tests (the planned :meth:`solve` must agree to
        ~1e-13 relative) and as documentation of the underlying algorithm.
        """
        stats = FmmStats()
        leaves = mesh.leaves()
        points: Dict[NodeKey, Tuple[np.ndarray, np.ndarray]] = {
            leaf.key: self.leaf_points(leaf) for leaf in leaves
        }

        # Phase 1: bottom-up moments (P2M on leaves, M2M upward).
        moments: Dict[NodeKey, Multipole] = {}
        max_level = mesh.max_level()
        for level in range(max_level, -1, -1):
            for node in mesh.nodes_at_level(level):
                if node.is_leaf:
                    pos, mass = points[node.key]
                    moments[node.key] = Multipole.from_points(
                        pos, mass, fallback_center=node.center
                    )
                    stats.p2m += 1
                else:
                    moments[node.key] = Multipole.combine(
                        [moments[k] for k in node.children_keys()],
                        fallback_center=node.center,
                    )
                    stats.m2m += 1

        far_pairs, near_pairs, p2p_pairs = self._traverse(mesh)
        stats.m2l_pairs = len(far_pairs)
        stats.near_pairs = len(near_pairs)
        stats.m2l_by_level = count_m2l_by_level(far_pairs)

        # Octant sub-moments for every leaf that participates in near pairs.
        octants: Dict[NodeKey, Tuple[np.ndarray, ...]] = {}

        def octants_of(key: NodeKey) -> Tuple[np.ndarray, ...]:
            if key not in octants:
                leaf = mesh.nodes[key]
                pos, mass = points[key]
                octants[key] = stacked_octant_moments(
                    pos, mass, mesh.n, leaf.center, leaf.node_size
                )
            return octants[key]

        # Phase 2: same-level cell-to-cell interactions, batched per target.
        far_sources: Dict[NodeKey, List[NodeKey]] = {}
        near_sources: Dict[NodeKey, List[NodeKey]] = {}
        for ka, kb in far_pairs:
            far_sources.setdefault(ka, []).append(kb)
            far_sources.setdefault(kb, []).append(ka)
        for ka, kb in near_pairs:
            near_sources.setdefault(ka, []).append(kb)
            near_sources.setdefault(kb, []).append(ka)

        locals_: Dict[NodeKey, LocalExpansion] = {
            key: LocalExpansion() for key in mesh.nodes
        }
        # Far sources expand about the target node's COM.
        for target_key, sources in far_sources.items():
            mass_list = []
            com_list = []
            quad_list = []
            octu_list = []
            for src in sources:
                mp = moments[src]
                if mp.mass <= 0.0:
                    continue
                mass_list.append(mp.mass)
                com_list.append(mp.center)
                quad_list.append(mp.quad)
                octu_list.append(mp.octu)
            if not mass_list:
                continue
            locals_[target_key] += m2l_batch(
                np.array(mass_list),
                np.stack(com_list),
                np.stack(quad_list),
                np.stack(octu_list),
                moments[target_key].center,
                order=self.order,
            )

        # Near sources expand about *octant* centres of the target leaf —
        # halving both the source extent (octant sub-moments) and the target
        # Taylor radius, which is what keeps marginally separated pairs
        # accurate.  Contributions are stored per octant and evaluated in
        # the L2P step below.
        octant_locals: Dict[NodeKey, List[LocalExpansion]] = {}
        for target_key, sources in near_sources.items():
            mass_list = []
            com_list = []
            quad_list = []
            octu_list = []
            for src in sources:
                om, oc, oq, oo = octants_of(src)
                keep = om > 0.0
                if keep.any():
                    mass_list.append(om[keep])
                    com_list.append(oc[keep])
                    quad_list.append(oq[keep])
                    octu_list.append(oo[keep])
            if not mass_list:
                continue
            src_mass = np.concatenate(mass_list)
            src_com = np.concatenate(com_list)
            src_quad = np.concatenate(quad_list)
            src_octu = np.concatenate(octu_list)
            tgt_oct = octants_of(target_key)
            per_octant = []
            for o in range(8):
                per_octant.append(
                    m2l_batch(
                        src_mass,
                        src_com,
                        src_quad,
                        src_octu,
                        tgt_oct[1][o],  # octant COM (geometric centre if empty)
                        order=self.order,
                    )
                )
            octant_locals[target_key] = per_octant

        # Phase 3: top-down L2L.
        for level in range(0, max_level):
            for node in mesh.nodes_at_level(level):
                if node.is_leaf:
                    continue
                parent_local = locals_[node.key]
                parent_com = moments[node.key].center
                for child_key in node.children_keys():
                    child_com = moments[child_key].center
                    locals_[child_key] += parent_local.shifted(child_com - parent_com)
                    stats.l2l += 1

        # Far-field evaluation per leaf cell (L2P).
        phi: Dict[NodeKey, np.ndarray] = {}
        accel: Dict[NodeKey, np.ndarray] = {}
        n = mesh.n
        oct_of_cell = octant_ids(n)
        for leaf in leaves:
            pos, _ = points[leaf.key]
            com = moments[leaf.key].center
            p, a = locals_[leaf.key].evaluate(pos - com, self.g_newton)
            per_octant = octant_locals.get(leaf.key)
            if per_octant is not None:
                oct_coms = octants_of(leaf.key)[1]
                for o in range(8):
                    sel = oct_of_cell == o
                    po, ao = per_octant[o].evaluate(
                        pos[sel] - oct_coms[o], self.g_newton
                    )
                    p[sel] += po
                    a[sel] += ao
            phi[leaf.key] = p.reshape(n, n, n)
            accel[leaf.key] = a.T.reshape(3, n, n, n)

        # Near field: direct sums.
        for ka, kb in p2p_pairs:
            stats.p2p_pairs += 1
            self._p2p(points, phi, accel, ka, kb, n)

        # Conservation projections.
        masses = {leaf.key: points[leaf.key][1] for leaf in leaves}
        positions = {leaf.key: points[leaf.key][0] for leaf in leaves}
        if self.momentum_correction:
            project_momentum(masses, accel)
        if self.angmom_correction:
            project_angular_momentum(masses, positions, accel)

        self.last_stats = stats
        return FmmResult(phi, accel, stats)

    def _p2p(
        self,
        points: Dict[NodeKey, Tuple[np.ndarray, np.ndarray]],
        phi: Dict[NodeKey, np.ndarray],
        accel: Dict[NodeKey, np.ndarray],
        ka: NodeKey,
        kb: NodeKey,
        n: int,
    ) -> None:
        """Direct cell-cell interaction between two leaves (or one with
        itself).  Pairwise antisymmetric by construction."""
        pos_a, m_a = points[ka]
        pos_b, m_b = points[kb]
        same = ka == kb
        thr = self.empty_mass_threshold
        if thr > 0.0:
            a_empty = float(m_a.sum()) <= thr
            b_empty = float(m_b.sum()) <= thr
            if a_empty and b_empty:
                return
            if b_empty:  # nothing sources onto a; only b feels a
                phi_b, acc_b, _, _ = pairwise_accumulate(
                    pos_b, m_b, pos_a, m_a, self_pair=False,
                    g_newton=self.g_newton, compute_b=False,
                )
                phi[kb] += phi_b.reshape(n, n, n)
                accel[kb] += acc_b.T.reshape(3, n, n, n)
                return
            if a_empty and not same:
                phi_a, acc_a, _, _ = pairwise_accumulate(
                    pos_a, m_a, pos_b, m_b, self_pair=False,
                    g_newton=self.g_newton, compute_b=False,
                )
                phi[ka] += phi_a.reshape(n, n, n)
                accel[ka] += acc_a.T.reshape(3, n, n, n)
                return
        phi_a, acc_a, phi_b, acc_b = pairwise_accumulate(
            pos_a,
            m_a,
            pos_b,
            m_b,
            self_pair=same,
            g_newton=self.g_newton,
            compute_b=not same,
        )
        phi[ka] += phi_a.reshape(n, n, n)
        accel[ka] += acc_a.T.reshape(3, n, n, n)
        if not same:
            phi[kb] += phi_b.reshape(n, n, n)
            accel[kb] += acc_b.T.reshape(3, n, n, n)

    # -- integrator hook ------------------------------------------------------
    def as_gravity_callback(self):
        """A :class:`~repro.hydro.integrator.GravityCallback` closure."""

        def callback(mesh: AmrMesh) -> Dict[NodeKey, np.ndarray]:
            return self.solve(mesh).accel

        return callback


def _m2l_worker_factory(rank: int, registry):  # noqa: ANN001
    """Handler for the process backend's M2L workers (stateless: every
    command carries its shard arrays, so the pool survives regrids)."""

    def handler(command):  # noqa: ANN001
        op = command[0]
        if op != "m2l":
            raise ValueError(f"unknown command {op!r}")
        mom_m, mom_c, mom_q, mom_o, centers, indptr, order = command[1:]
        with registry.timer("fmm.m2l"):
            return m2l_segmented(
                mom_m, mom_c, mom_q, mom_o, centers, indptr, order=order
            )

    return handler
