"""GEMM-formulated pairwise gravity sums.

The naive P2P forms the (n_a, n_b, 3) separation tensor; for sub-grid pairs
that is wasteful and for global direct sums it exhausts memory.  Both users
route through :func:`pairwise_accumulate`, which expresses the interaction
with matrix products only:

    r^2_ab   = |p_a|^2 + |p_b|^2 - 2 p_a . p_b          (one GEMM)
    phi_a    = -G (1/r) m_b                              (one GEMV)
    acc_a    = -G [ p_a * rowsum(W) - W p_b ],  W = m_b / r^3

The hot loop is written with in-place ufuncs to keep the number of
(n_a x n_b) temporaries at three.  The cancellation error of the quadratic
expansion is ~1e-16 * |p|^2 / r^2, negligible for O(1) domains with
cell-scale minimum separations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def pairwise_accumulate(
    pos_a: np.ndarray,
    mass_a: np.ndarray,
    pos_b: np.ndarray,
    mass_b: np.ndarray,
    self_pair: bool,
    g_newton: float = 1.0,
    compute_b: bool = True,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
    """Potentials and accelerations both sides of one interaction block.

    Returns ``(phi_a, acc_a, phi_b, acc_b)``; the ``b`` outputs are ``None``
    when ``compute_b`` is false (used by the blocked direct sum, which visits
    every ordered block anyway).  ``self_pair`` masks the diagonal.
    """
    # r2 = |a|^2 + |b|^2 - 2 a.b, built in place on the GEMM output.
    r2 = pos_a @ pos_b.T
    r2 *= -2.0
    r2 += np.einsum("ni,ni->n", pos_a, pos_a)[:, None]
    r2 += np.einsum("ni,ni->n", pos_b, pos_b)[None, :]
    np.maximum(r2, 0.0, out=r2)
    if self_pair:
        np.fill_diagonal(r2, np.inf)

    inv_r = np.sqrt(r2)
    np.reciprocal(inv_r, out=inv_r)
    inv_r3 = inv_r * inv_r
    inv_r3 *= inv_r

    phi_a = inv_r @ mass_b
    phi_a *= -g_newton
    w = inv_r3 * mass_b[None, :]
    acc_a = pos_a * w.sum(axis=1)[:, None]
    acc_a -= w @ pos_b
    acc_a *= -g_newton

    if not compute_b:
        return phi_a, acc_a, None, None
    phi_b = mass_a @ inv_r
    phi_b *= -g_newton
    inv_r3 *= mass_a[:, None]  # reuse the buffer: V = m_a / r^3
    acc_b = inv_r3.T @ pos_a
    acc_b -= pos_b * inv_r3.sum(axis=0)[:, None]
    acc_b *= g_newton
    return phi_a, acc_a, phi_b, acc_b


def p2p_unit_templates(
    upos_t: np.ndarray, upos_s: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Unit-distance interaction templates for a P2P geometry class.

    P2P pairs whose leaves have the same *relative* geometry (same level
    difference and same centre offset in units of the finer cell width)
    share one separation matrix up to the scale ``1/dx``: cell positions
    are regular lattices, so ``r_ij = dx * |u_i - u_j|`` with ``u`` the
    half-integer unit positions.  Returns ``(t1, t3)`` with
    ``t1[i, j] = 1/|u_i - u_j|`` and ``t3 = t1**3`` (coincident entries —
    the self-pair diagonal — are zeroed, reproducing the masked diagonal of
    :func:`pairwise_accumulate`).  The cached plan stores these per class;
    scaling by ``1/dx`` and ``1/dx**3`` recovers the physical kernels.
    """
    # On the half-integer lattice r2 is an exact quarter-integer, so the
    # whole matrix gathers from one tiny 1/sqrt table: 4*r2 is a small
    # bounded int and 1/sqrt(r2) = 2/sqrt(4*r2).  This avoids the (nc, nc)
    # sqrt entirely — the dominant cost of a cold plan build.
    r2 = upos_t @ upos_s.T
    r2 *= -2.0
    r2 += np.einsum("ni,ni->n", upos_t, upos_t)[:, None]
    r2 += np.einsum("ni,ni->n", upos_s, upos_s)[None, :]
    q = np.rint(4.0 * r2).astype(np.intp)
    table = np.arange(q.max() + 1, dtype=np.float64)
    np.sqrt(table, out=table)
    with np.errstate(divide="ignore"):
        np.divide(2.0, table, out=table)
    table[0] = 0.0  # coincident entries (the masked self-pair diagonal)
    t1 = table[q]
    t3 = t1 * t1
    t3 *= t1
    return t1, t3


def p2p_apply_class(
    t1: np.ndarray,
    t3: np.ndarray,
    tgt: np.ndarray,
    pos_t: np.ndarray,
    mass_s: np.ndarray,
    pos_s: np.ndarray,
    inv_dx: np.ndarray,
    g_newton: float,
    phi_out: np.ndarray,
    acc_out: np.ndarray,
    xp=np,
) -> None:
    """Execute all directed P2P edges of one geometry class in two GEMMs.

    ``tgt`` (E,) target leaf slots, ``pos_t`` (E, nc, 3) target cell
    positions, ``mass_s`` (E, nc)/``pos_s`` (E, nc, 3) source cells and
    ``inv_dx`` (E,) the per-edge template scale.  Accumulates into the
    stacked leaf fields ``phi_out`` (L, nc) / ``acc_out`` (L, nc, 3).

    ``xp`` is the array namespace the GEMMs run in (an
    :class:`repro.kokkos.backend.ArrayBackend` module); all array inputs
    and the output buffers must live in that namespace.  The default host
    path (``xp is np``) is bit-identical to the pre-dispatch kernel.

    The physical sums factor through the templates:

        phi_a = -G (1/r) m_b          = -G/dx   * T1 @ m_b
        acc_a = -G [p_a * rowsum(W) - W p_b],  W = m_b / r^3
              = -G/dx^3 * [p_a * (T3 @ m_b) - T3 @ (m_b * p_b)]

    so one ``T1`` GEMM and one four-column-per-edge ``T3`` GEMM replace the
    per-pair distance matrices entirely.
    """
    n_edges = tgt.shape[0]
    nc = mass_s.shape[1]
    out1 = t1 @ mass_s.T  # (nc_t, E)
    rhs = xp.concatenate([mass_s[:, :, None], mass_s[:, :, None] * pos_s], axis=2)
    out3 = (t3 @ rhs.transpose(1, 0, 2).reshape(nc, 4 * n_edges)).reshape(
        -1, n_edges, 4
    )
    for e in range(n_edges):
        t = int(tgt[e])
        s1 = g_newton * inv_dx[e]
        s3 = g_newton * inv_dx[e] ** 3
        phi_out[t] -= s1 * out1[:, e]
        acc_out[t] -= s3 * (pos_t[e] * out3[:, e, 0][:, None] - out3[:, e, 1:4])


def direct_field(
    pos: np.ndarray,
    mass: np.ndarray,
    g_newton: float = 1.0,
    block: int = 2048,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact phi (n,) and acceleration (n, 3) of a full particle set,
    computed in row blocks to bound memory at ``block * n`` floats."""
    n = pos.shape[0]
    phi = np.zeros(n)
    acc = np.zeros((n, 3))
    norm = np.einsum("ni,ni->n", pos, pos)
    for lo in range(0, n, block):
        hi = min(lo + block, n)
        r2 = pos[lo:hi] @ pos.T
        r2 *= -2.0
        r2 += norm[lo:hi, None]
        r2 += norm[None, :]
        np.maximum(r2, 0.0, out=r2)
        rows = np.arange(lo, hi)
        r2[rows - lo, rows] = np.inf
        inv_r = np.sqrt(r2)
        np.reciprocal(inv_r, out=inv_r)
        inv_r3 = inv_r * inv_r
        inv_r3 *= inv_r
        phi[lo:hi] = -g_newton * (inv_r @ mass)
        inv_r3 *= mass[None, :]
        acc[lo:hi] = pos[lo:hi] * inv_r3.sum(axis=1)[:, None]
        acc[lo:hi] -= inv_r3 @ pos
        acc[lo:hi] *= -g_newton
    return phi, acc
