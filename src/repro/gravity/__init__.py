"""Fast-multipole-method gravity (Octo-Tiger's FMM analog).

The FMM piggybacks on the hydro octree: every node carries multipole
moments (monopole, quadrupole and — for the angular-momentum machinery —
octupole) about its centre of mass.  A solve is the paper's three phases:

1. **bottom-up** — P2M on leaves, M2M up the tree,
2. **same-level cell-to-cell** — M2L between well-separated node pairs
   found by a dual tree traversal (the Multipole kernel of Fig. 9),
3. **top-down** — L2L down the tree, then per-cell evaluation (L2P) plus
   direct near-field sums (P2P).

Plan / execute split
--------------------
The solve is organised as a cached **plan** phase and a batched **execute**
phase.  Everything derived from the octree topology alone — the dual tree
traversal, far/near/P2P interaction lists, CSR source-index arrays, leaf
cell positions and the P2P geometry-class templates — is captured once in
an :class:`~repro.gravity.plan.FmmPlan` (see :func:`~repro.gravity.plan.build_plan`).
The plan is keyed on ``AmrMesh.topology_version``, a counter bumped by
every :meth:`~repro.octree.mesh.AmrMesh.refine` /
:meth:`~repro.octree.mesh.AmrMesh.derefine`, so
:meth:`~repro.gravity.fmm.FmmSolver.solve` transparently reuses it across
steps between regrids and rebuilds it afterwards (the invalidation
contract is documented on :class:`~repro.octree.mesh.AmrMesh`).  The
execute phase replaces the per-node Python loops with stacked moment
arrays, segmented M2L batches per level and two GEMMs per P2P geometry
class; :meth:`~repro.gravity.fmm.FmmSolver.solve_reference` retains the
per-node implementation as the numerical reference.

Conservation: P2P interactions are pairwise antisymmetric, so the near field
conserves linear and angular momentum identically.  The truncated M2L far
field does not; :mod:`repro.gravity.conservation` restores both with global
projections (a different mechanism from Octo-Tiger's symmetric-kernel +
octupole-correction construction, but delivering the same machine-precision
invariants — see DESIGN.md).
"""

from repro.gravity.multipole import (
    Multipole,
    LocalExpansion,
    stacked_octant_moments,
)
from repro.gravity.kernels import d_tensors, m2l, m2l_batch, m2l_segmented, p2l
from repro.gravity.fmm import FmmSolver, FmmResult
from repro.gravity.plan import FmmPlan, build_plan
from repro.gravity.direct import direct_sum
from repro.gravity.conservation import (
    project_momentum,
    project_angular_momentum,
    total_force,
    total_torque,
)

__all__ = [
    "Multipole",
    "LocalExpansion",
    "stacked_octant_moments",
    "d_tensors",
    "m2l",
    "m2l_batch",
    "m2l_segmented",
    "p2l",
    "FmmSolver",
    "FmmResult",
    "FmmPlan",
    "build_plan",
    "direct_sum",
    "project_momentum",
    "project_angular_momentum",
    "total_force",
    "total_torque",
]
