"""Fast-multipole-method gravity (Octo-Tiger's FMM analog).

The FMM piggybacks on the hydro octree: every node carries multipole
moments (monopole, quadrupole and — for the angular-momentum machinery —
octupole) about its centre of mass.  A solve is the paper's three phases:

1. **bottom-up** — P2M on leaves, M2M up the tree,
2. **same-level cell-to-cell** — M2L between well-separated node pairs
   found by a dual tree traversal (the Multipole kernel of Fig. 9),
3. **top-down** — L2L down the tree, then per-cell evaluation (L2P) plus
   direct near-field sums (P2P).

Conservation: P2P interactions are pairwise antisymmetric, so the near field
conserves linear and angular momentum identically.  The truncated M2L far
field does not; :mod:`repro.gravity.conservation` restores both with global
projections (a different mechanism from Octo-Tiger's symmetric-kernel +
octupole-correction construction, but delivering the same machine-precision
invariants — see DESIGN.md).
"""

from repro.gravity.multipole import (
    Multipole,
    LocalExpansion,
    stacked_octant_moments,
)
from repro.gravity.kernels import d_tensors, m2l, m2l_batch, p2l
from repro.gravity.fmm import FmmSolver, FmmResult
from repro.gravity.direct import direct_sum
from repro.gravity.conservation import (
    project_momentum,
    project_angular_momentum,
    total_force,
    total_torque,
)

__all__ = [
    "Multipole",
    "LocalExpansion",
    "stacked_octant_moments",
    "d_tensors",
    "m2l",
    "m2l_batch",
    "p2l",
    "FmmSolver",
    "FmmResult",
    "direct_sum",
    "project_momentum",
    "project_angular_momentum",
    "total_force",
    "total_torque",
]
