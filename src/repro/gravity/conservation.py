"""Machine-precision conservation projections for the far field.

The P2P near field is pairwise antisymmetric and conserves linear and
angular momentum identically.  The truncated M2L far field does not.
Octo-Tiger restores linear momentum through the symmetry of its interaction
kernels and angular momentum through an octupole correction term; we obtain
the same invariants with two global projections:

* :func:`project_momentum` removes the net force as a uniform acceleration,
* :func:`project_angular_momentum` removes the net torque about the system
  COM as a rigid angular-acceleration field ``alpha x d`` with
  ``alpha = I^-1 tau``.

Both corrections are orthogonal (a uniform field exerts no torque about the
COM; a rigid rotation field exerts no net force) and scale with the M2L
truncation error, i.e. they vanish as the expansion order grows — which the
tests verify.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.octree.node import NodeKey


def total_force(
    masses: Dict[NodeKey, np.ndarray], accel: Dict[NodeKey, np.ndarray]
) -> np.ndarray:
    """Net force sum m_i a_i over all leaves; accel blocks are (3, N, N, N)."""
    force = np.zeros(3)
    for key, m in masses.items():
        a = accel[key].reshape(3, -1)
        force += a @ m
    return force


def total_torque(
    masses: Dict[NodeKey, np.ndarray],
    positions: Dict[NodeKey, np.ndarray],
    accel: Dict[NodeKey, np.ndarray],
    about: np.ndarray = None,  # noqa: RUF013
) -> np.ndarray:
    """Net torque sum m_i r_i x a_i (about ``about`` or the origin)."""
    torque = np.zeros(3)
    for key, m in masses.items():
        pos = positions[key]
        if about is not None:
            pos = pos - about
        a = accel[key].reshape(3, -1).T
        torque += np.einsum("n,ni->i", m, np.cross(pos, a))
    return torque


def _center_of_mass(
    masses: Dict[NodeKey, np.ndarray], positions: Dict[NodeKey, np.ndarray]
) -> Tuple[float, np.ndarray]:
    total = 0.0
    weighted = np.zeros(3)
    for key, m in masses.items():
        total += float(m.sum())
        weighted += m @ positions[key]
    if total <= 0.0:
        return 0.0, np.zeros(3)
    return total, weighted / total


def project_momentum(
    masses: Dict[NodeKey, np.ndarray], accel: Dict[NodeKey, np.ndarray]
) -> np.ndarray:
    """Subtract the uniform acceleration that zeroes the net force.

    Mutates ``accel`` in place; returns the correction applied (per unit
    mass), whose magnitude measures the far-field truncation error.
    """
    total_mass = sum(float(m.sum()) for m in masses.values())
    if total_mass <= 0.0:
        return np.zeros(3)
    correction = total_force(masses, accel) / total_mass
    for key in accel:
        accel[key] -= correction[:, None, None, None]
    return correction


def project_angular_momentum(
    masses: Dict[NodeKey, np.ndarray],
    positions: Dict[NodeKey, np.ndarray],
    accel: Dict[NodeKey, np.ndarray],
) -> np.ndarray:
    """Subtract the rigid field ``alpha x d`` that zeroes the net torque.

    ``I alpha = tau`` with I the inertia tensor about the COM.  Mutates
    ``accel``; returns ``alpha``.  Degenerate inertia tensors (all mass
    collinear) are handled with the pseudo-inverse.
    """
    total_mass, com = _center_of_mass(masses, positions)
    if total_mass <= 0.0:
        return np.zeros(3)
    tau = total_torque(masses, positions, accel, about=com)

    inertia = np.zeros((3, 3))
    for key, m in masses.items():
        d = positions[key] - com
        r2 = np.einsum("ni,ni->n", d, d)
        inertia += np.einsum("n,n->", m, r2) * np.eye(3) - np.einsum(
            "n,ni,nj->ij", m, d, d
        )
    # Solve I alpha = tau; fall back to pinv for degenerate distributions.
    try:
        alpha = np.linalg.solve(inertia, tau)
    except np.linalg.LinAlgError:
        alpha = np.linalg.pinv(inertia) @ tau

    for key in accel:
        d = positions[key] - com
        delta = np.cross(alpha[None, :], d)  # (n, 3)
        accel[key] -= delta.T.reshape(accel[key].shape)
    return alpha
