"""Cached FMM traversal plan: everything that is a pure function of topology.

The FMM solve splits into a **plan** phase and an **execute** phase
(the same reusable-traversal-object design as boxtree's ``Traversal`` and
the work-aggregation strategy of Daiß et al.): the dual tree traversal,
the far/near/P2P interaction lists, CSR-style per-target source-index
arrays, leaf cell positions/volumes, octant cell-index maps and the P2P
geometry-class templates depend only on the octree *topology* — which
changes exactly when :meth:`repro.octree.mesh.AmrMesh.refine` /
:meth:`~repro.octree.mesh.AmrMesh.derefine` run.  :class:`FmmPlan` captures
all of it once and is keyed on ``AmrMesh.topology_version``, so a solver
reuses the plan across every solve between regrids and rebuilds it
automatically afterwards.

The execute phase (:meth:`repro.gravity.fmm.FmmSolver.solve`) then runs a
small number of vectorised batches per level instead of per-node Python
loops; see the module docstring of :mod:`repro.gravity.fmm` and
``docs/gravity_plan.md`` for the full architecture.

P2P geometry classes
--------------------
Touching leaf pairs group into classes of identical relative geometry —
``(level difference, centre offset in half-units of the finer cell
width)``.  All pairs of a class share one unit-distance separation matrix
(cell positions are regular lattices), so the plan caches per class the
``1/|u|`` and ``1/|u|**3`` templates (budget permitting) and the execute
phase runs two GEMMs per class over all of its pairs at once instead of
rebuilding an ``(n^3, n^3)`` distance matrix per pair.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gravity.multipole import octant_ids
from repro.gravity.pairwise import p2p_unit_templates
from repro.octree.mesh import AmrMesh
from repro.octree.node import NodeKey, OctreeNode

#: Default cap on cached P2P template bytes per plan (t1 + t3 across all
#: classes).  Same-level meshes need at most 27 classes; adaptive meshes can
#: produce many more cross-level classes, whose templates are then rebuilt
#: per solve instead of cached once the budget is exhausted.
DEFAULT_TEMPLATE_BUDGET = 192 * 2**20


def is_far(a: OctreeNode, b: OctreeNode, theta: float) -> bool:
    """The opening criterion: separation of at least ``2 / theta`` sizes."""
    dist = float(np.linalg.norm(a.center - b.center))
    return dist * theta >= 2.0 * max(a.node_size, b.node_size) * (1.0 - 1e-12)


def is_touching(a: OctreeNode, b: OctreeNode) -> bool:
    gap = 0.5 * (a.node_size + b.node_size) * (1.0 + 1e-12)
    return bool(np.all(np.abs(a.center - b.center) <= gap))


def traverse(
    mesh: AmrMesh, theta: float
) -> Tuple[
    List[Tuple[NodeKey, NodeKey]],
    List[Tuple[NodeKey, NodeKey]],
    List[Tuple[NodeKey, NodeKey]],
]:
    """Dual tree traversal: returns (far, near, p2p) pairs, each unordered."""
    far: List[Tuple[NodeKey, NodeKey]] = []
    near: List[Tuple[NodeKey, NodeKey]] = []
    p2p: List[Tuple[NodeKey, NodeKey]] = []
    stack: List[Tuple[NodeKey, NodeKey]] = [((0, 0), (0, 0))]
    while stack:
        ka, kb = stack.pop()
        a, b = mesh.nodes[ka], mesh.nodes[kb]
        if ka == kb:
            if a.is_leaf:
                p2p.append((ka, ka))
            else:
                kids = a.children_keys()
                for i in range(8):
                    for j in range(i, 8):
                        stack.append((kids[i], kids[j]))
            continue
        if is_far(a, b, theta):
            far.append((ka, kb))
            continue
        if a.is_leaf and b.is_leaf:
            if is_touching(a, b):
                p2p.append((ka, kb))
            else:
                near.append((ka, kb))
            continue
        # Split the larger node; on a tie split whichever is refined.
        split_a = (not a.is_leaf) and (a.node_size >= b.node_size or b.is_leaf)
        if split_a:
            for kid in a.children_keys():
                stack.append((kid, kb))
        else:
            for kid in b.children_keys():
                stack.append((ka, kid))
    return far, near, p2p


def count_m2l_by_level(far_pairs: List[Tuple[NodeKey, NodeKey]]) -> Dict[int, int]:
    """Per-level M2L interaction counts, counting *both* directions.

    Each far pair feeds two M2L conversions (a's local from b and b's from
    a), so both endpoints' levels are counted — the seed solver counted
    only ``ka``'s level, undercounting the per-level workload the distsim
    gravity model sees by up to 2x.  The sum over levels is therefore
    ``2 * len(far_pairs)``.
    """
    by_level: Dict[int, int] = {}
    for ka, kb in far_pairs:
        by_level[ka[0]] = by_level.get(ka[0], 0) + 1
        by_level[kb[0]] = by_level.get(kb[0], 0) + 1
    return by_level


@dataclass
class P2PClass:
    """All directed P2P edges sharing one relative leaf geometry."""

    key: Tuple[int, Tuple[int, int, int]]
    tgt: np.ndarray  # (E,) target leaf slots
    src: np.ndarray  # (E,) source leaf slots
    inv_dx: np.ndarray  # (E,) template scale (1 / finer cell width)
    upos_t: np.ndarray  # (nc, 3) unit target cell positions
    upos_s: np.ndarray  # (nc, 3) unit source cell positions
    t1: Optional[np.ndarray] = None  # cached 1/|u| template (None: rebuild per solve)
    t3: Optional[np.ndarray] = None

    def templates(self) -> Tuple[np.ndarray, np.ndarray]:
        if self.t1 is not None:
            return self.t1, self.t3
        return p2p_unit_templates(self.upos_t, self.upos_s)


@dataclass
class FarLevel:
    """CSR interaction lists of all far-pair targets at one tree level."""

    tgt_idx: np.ndarray  # (T,) target node indices
    indptr: np.ndarray  # (T+1,)
    src_idx: np.ndarray  # (R,) source node indices, concatenated per target


def _split_far_level(fl: FarLevel, max_rows: int) -> List[FarLevel]:
    """Shard one level's CSR batch into contiguous target slices of at most
    ``max_rows`` interaction rows each (always at least one target).

    Every target appears in exactly one shard with its complete,
    order-preserved source segment, so accumulating the shards is
    bit-identical to executing the unsplit batch.
    """
    n_targets = fl.tgt_idx.size
    if fl.src_idx.size <= max_rows or n_targets <= 1:
        return [fl]
    counts = np.diff(fl.indptr)
    shards: List[FarLevel] = []
    start = 0
    while start < n_targets:
        end = start + 1
        rows = int(counts[start])
        while end < n_targets and rows + int(counts[end]) <= max_rows:
            rows += int(counts[end])
            end += 1
        lo, hi = int(fl.indptr[start]), int(fl.indptr[end])
        shards.append(
            FarLevel(
                tgt_idx=fl.tgt_idx[start:end],
                indptr=fl.indptr[start : end + 1] - lo,
                src_idx=fl.src_idx[lo:hi],
            )
        )
        start = end
    return shards


@dataclass
class FmmPlan:
    """Topology-derived state of one mesh, reused across solves.

    Built by :func:`build_plan`; invalidated by comparing
    ``topology_version`` (and ``theta``) against the live mesh — see the
    invalidation contract on :class:`repro.octree.mesh.AmrMesh`.
    """

    topology_version: int
    theta: float
    n: int
    mesh_ref: "weakref.ReferenceType[AmrMesh]"

    # -- node indexing ------------------------------------------------------
    node_keys: List[NodeKey]
    node_index: Dict[NodeKey, int]
    node_center: np.ndarray  # (N, 3)
    node_level: np.ndarray  # (N,)
    max_level: int

    # -- leaves -------------------------------------------------------------
    leaf_keys: List[NodeKey]
    leaf_node_idx: np.ndarray  # (L,) node index of each leaf slot
    leaf_pos: np.ndarray  # (L, nc, 3) cell centres
    cell_vol: np.ndarray  # (L,)

    # -- per-level tree structure (M2M bottom-up, L2L top-down) -------------
    #: deepest-first [(interior node idx (K,), children node idx (K, 8))]
    level_interiors: List[Tuple[np.ndarray, np.ndarray]]

    # -- far interactions ---------------------------------------------------
    far_levels: List[FarLevel]

    # -- near (octant-resolved) interactions --------------------------------
    part_slots: np.ndarray  # (P,) leaf slots needing octant moments
    part_row: np.ndarray  # (L,) slot -> participant row (-1 if absent)
    oct_cells: np.ndarray  # (8, nc // 8) cell indices per octant
    oct_geo_centers: np.ndarray  # (P, 8, 3) geometric octant centres
    near_tgt_slots: np.ndarray  # (T,) near-target leaf slots
    near_tgt_rows: np.ndarray  # (T,) their participant rows
    near_rows: np.ndarray  # (R,) rows into flattened (P*8) octant arrays
    near_indptr: np.ndarray  # (8T+1,) segment bounds per (target, octant)
    near_center_rows: np.ndarray  # (8T,) rows into flattened (P*8) octant COMs

    # -- P2P ----------------------------------------------------------------
    p2p_classes: List[P2PClass]
    p2p_pair_count: int

    # -- static workload counters ------------------------------------------
    n_p2m: int
    n_m2m: int
    n_l2l: int
    n_m2l_pairs: int
    n_near_pairs: int
    m2l_by_level: Dict[int, int] = field(default_factory=dict)

    #: Memoised :meth:`split` shards, keyed on ``max_rows`` — sharding is a
    #: pure slicing of the CSR arrays, so shards share the plan's storage.
    _split_cache: Dict[int, List[FarLevel]] = field(default_factory=dict)

    def split(self, max_rows: int) -> List[FarLevel]:
        """Far batches sharded to at most ``max_rows`` M2L rows each.

        The paper's multipole work-splitting (SVII-C) at plan level: a
        heavy same-level batch becomes several independent sub-batches a
        scheduler can interleave with communication.  ``max_rows <= 0``
        returns the unsplit levels.  Bit-identical to the unsplit
        execution: each target lives in exactly one shard and its source
        segment order is preserved, so the per-target accumulation is the
        same single vectorised sum either way.
        """
        if max_rows <= 0:
            return self.far_levels
        cached = self._split_cache.get(max_rows)
        if cached is None:
            cached = [
                shard
                for fl in self.far_levels
                for shard in _split_far_level(fl, max_rows)
            ]
            self._split_cache[max_rows] = cached
        return cached

    def matches(self, mesh: AmrMesh, theta: float) -> bool:
        """Whether this plan is still valid for ``mesh`` at ``theta``."""
        return (
            self.mesh_ref() is mesh
            and self.topology_version == mesh.topology_version
            and self.theta == theta
        )


def _leaf_positions(leaf: OctreeNode) -> np.ndarray:
    x, y, z = leaf.cell_centers()
    return np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)


def build_plan(
    mesh: AmrMesh,
    theta: float,
    template_budget_bytes: int = DEFAULT_TEMPLATE_BUDGET,
) -> FmmPlan:
    """Build the full traversal plan of ``mesh`` for opening angle ``theta``."""
    nc = mesh.n**3
    node_keys = sorted(mesh.nodes)
    node_index = {k: i for i, k in enumerate(node_keys)}
    n_nodes = len(node_keys)
    node_center = np.empty((n_nodes, 3))
    node_level = np.empty(n_nodes, dtype=np.intp)
    for i, k in enumerate(node_keys):
        node = mesh.nodes[k]
        node_center[i] = node.center
        node_level[i] = node.level
    max_level = mesh.max_level()

    leaf_keys = [k for k in node_keys if mesh.nodes[k].is_leaf]
    leaf_index = {k: i for i, k in enumerate(leaf_keys)}
    leaf_node_idx = np.array([node_index[k] for k in leaf_keys], dtype=np.intp)
    leaf_pos = np.stack([_leaf_positions(mesh.nodes[k]) for k in leaf_keys])
    cell_vol = np.array([mesh.nodes[k].cell_volume for k in leaf_keys])

    level_interiors: List[Tuple[np.ndarray, np.ndarray]] = []
    for level in range(max_level - 1, -1, -1):
        interiors = [
            k for k in node_keys if k[0] == level and not mesh.nodes[k].is_leaf
        ]
        if not interiors:
            continue
        int_idx = np.array([node_index[k] for k in interiors], dtype=np.intp)
        child_idx = np.array(
            [[node_index[c] for c in mesh.nodes[k].children_keys()] for k in interiors],
            dtype=np.intp,
        )
        level_interiors.append((int_idx, child_idx))

    far_pairs, near_pairs, p2p_pairs = traverse(mesh, theta)

    # Far CSR, grouped per target level (targets keep first-seen order, so
    # per-target source order matches the reference solver's accumulation).
    far_sources: Dict[NodeKey, List[NodeKey]] = {}
    for ka, kb in far_pairs:
        far_sources.setdefault(ka, []).append(kb)
        far_sources.setdefault(kb, []).append(ka)
    far_levels: List[FarLevel] = []
    for level in range(max_level + 1):
        targets = [k for k in far_sources if k[0] == level]
        if not targets:
            continue
        tgt_idx = np.array([node_index[k] for k in targets], dtype=np.intp)
        counts = [len(far_sources[k]) for k in targets]
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.intp)
        src_idx = np.array(
            [node_index[s] for k in targets for s in far_sources[k]], dtype=np.intp
        )
        far_levels.append(FarLevel(tgt_idx, indptr, src_idx))

    # Near (octant-resolved) interactions.
    near_sources: Dict[int, List[int]] = {}
    for ka, kb in near_pairs:
        sa, sb = leaf_index[ka], leaf_index[kb]
        near_sources.setdefault(sa, []).append(sb)
        near_sources.setdefault(sb, []).append(sa)
    participants = sorted(
        set(near_sources) | {s for srcs in near_sources.values() for s in srcs}
    )
    part_slots = np.array(participants, dtype=np.intp)
    part_row = np.full(len(leaf_keys), -1, dtype=np.intp)
    part_row[part_slots] = np.arange(len(participants))

    octant = octant_ids(mesh.n)
    oct_cells = np.stack([np.flatnonzero(octant == o) for o in range(8)])
    oct_geo_centers = np.empty((len(participants), 8, 3))
    offsets = (
        np.stack(
            [[(o >> 0) & 1, (o >> 1) & 1, (o >> 2) & 1] for o in range(8)]
        ).astype(float)
        - 0.5
    )
    for row, slot in enumerate(participants):
        leaf = mesh.nodes[leaf_keys[slot]]
        oct_geo_centers[row] = leaf.center + offsets * (leaf.node_size / 2.0)

    near_tgt_slots = np.array(list(near_sources), dtype=np.intp)
    near_tgt_rows = part_row[near_tgt_slots]
    near_rows_list: List[int] = []
    near_counts: List[int] = []
    near_center_rows_list: List[int] = []
    for t in near_sources:
        # One octant pass gathers all 8 sub-moments of every source leaf
        # (source-major, octant-minor — the reference concatenation order).
        rows_t = [int(part_row[s]) * 8 + o for s in near_sources[t] for o in range(8)]
        for o in range(8):
            near_rows_list.extend(rows_t)
            near_counts.append(len(rows_t))
            near_center_rows_list.append(int(part_row[t]) * 8 + o)
    near_rows = np.array(near_rows_list, dtype=np.intp)
    near_indptr = np.concatenate([[0], np.cumsum(near_counts)]).astype(np.intp)
    near_center_rows = np.array(near_center_rows_list, dtype=np.intp)

    # P2P geometry classes.
    classes: Dict[Tuple[int, Tuple[int, int, int]], Dict[str, list]] = {}
    for ka, kb in p2p_pairs:
        edges = [(ka, kb)] if ka == kb else [(ka, kb), (kb, ka)]
        for kt, ks in edges:
            t, s = mesh.nodes[kt], mesh.nodes[ks]
            dxm = min(t.dx, s.dx)
            off = tuple(int(v) for v in np.rint(2.0 * (t.center - s.center) / dxm))
            key = (t.level - s.level, off)
            entry = classes.get(key)
            if entry is None:
                pos_t = leaf_pos[leaf_index[kt]]
                pos_s = leaf_pos[leaf_index[ks]]
                # Unit positions are exact half-integers on the dxm lattice;
                # rounding makes every class member share identical templates.
                upos_t = np.rint(2.0 * (pos_t - pos_s[0]) / dxm) / 2.0
                upos_s = np.rint(2.0 * (pos_s - pos_s[0]) / dxm) / 2.0
                entry = classes[key] = {
                    "tgt": [],
                    "src": [],
                    "inv_dx": [],
                    "upos_t": upos_t,
                    "upos_s": upos_s,
                }
            entry["tgt"].append(leaf_index[kt])
            entry["src"].append(leaf_index[ks])
            entry["inv_dx"].append(1.0 / dxm)

    p2p_classes = [
        P2PClass(
            key=key,
            tgt=np.array(entry["tgt"], dtype=np.intp),
            src=np.array(entry["src"], dtype=np.intp),
            inv_dx=np.array(entry["inv_dx"]),
            upos_t=entry["upos_t"],
            upos_s=entry["upos_s"],
        )
        for key, entry in classes.items()
    ]
    # Cache templates for the busiest classes within the byte budget; the
    # rest rebuild their templates per solve (still batched per class).
    template_bytes = 2 * nc * nc * 8
    budget = template_budget_bytes
    for cls in sorted(p2p_classes, key=lambda c: -len(c.tgt)):
        if budget < template_bytes:
            continue
        cls.t1, cls.t3 = p2p_unit_templates(cls.upos_t, cls.upos_s)
        budget -= template_bytes

    n_leaves = len(leaf_keys)
    n_interiors = n_nodes - n_leaves
    return FmmPlan(
        topology_version=mesh.topology_version,
        theta=theta,
        n=mesh.n,
        mesh_ref=weakref.ref(mesh),
        node_keys=node_keys,
        node_index=node_index,
        node_center=node_center,
        node_level=node_level,
        max_level=max_level,
        leaf_keys=leaf_keys,
        leaf_node_idx=leaf_node_idx,
        leaf_pos=leaf_pos,
        cell_vol=cell_vol,
        level_interiors=level_interiors,
        far_levels=far_levels,
        part_slots=part_slots,
        part_row=part_row,
        oct_cells=oct_cells,
        oct_geo_centers=oct_geo_centers,
        near_tgt_slots=near_tgt_slots,
        near_tgt_rows=near_tgt_rows,
        near_rows=near_rows,
        near_indptr=near_indptr,
        near_center_rows=near_center_rows,
        p2p_classes=p2p_classes,
        p2p_pair_count=len(p2p_pairs),
        n_p2m=n_leaves,
        n_m2m=n_interiors,
        n_l2l=8 * n_interiors,
        n_m2l_pairs=len(far_pairs),
        n_near_pairs=len(near_pairs),
        m2l_by_level=count_m2l_by_level(far_pairs),
    )
