"""Cached FMM traversal plan: everything that is a pure function of topology.

The FMM solve splits into a **plan** phase and an **execute** phase
(the same reusable-traversal-object design as boxtree's ``Traversal`` and
the work-aggregation strategy of Daiß et al.): the dual tree traversal,
the far/near/P2P interaction lists, CSR-style per-target source-index
arrays, leaf cell positions/volumes, octant cell-index maps and the P2P
geometry-class templates depend only on the octree *topology* — which
changes exactly when :meth:`repro.octree.mesh.AmrMesh.refine` /
:meth:`~repro.octree.mesh.AmrMesh.derefine` run.  :class:`FmmPlan` captures
all of it once and is keyed on the mesh's content
:meth:`~repro.octree.mesh.AmrMesh.fingerprint`, so a solver reuses the plan
across every solve between regrids and rebuilds it automatically afterwards.

The execute phase (:meth:`repro.gravity.fmm.FmmSolver.solve`) then runs a
small number of vectorised batches per level instead of per-node Python
loops; see the module docstring of :mod:`repro.gravity.fmm` and
``docs/gravity_plan.md`` for the full architecture.

Canonical pair state and incremental rebuilds
---------------------------------------------
The traversal's output is normalised into a :class:`PairState` — three
lexsorted ``(P, 2)`` arrays of packed ``(level << 58 | code)`` node keys —
and **every** plan array is assembled from that canonical form by
:func:`_assemble_plan`.  Because cold builds, delta builds
(:func:`update_plan`) and plan-cache hits all assemble from the same
canonical representation, their plans are bit-identical by construction:
``np.array_equal`` holds for every index array, and the solve output is
bit-identical too.

After a regrid, :func:`update_plan` avoids re-traversing the whole tree:
pairs with an endpoint in the :class:`~repro.octree.regrid.RegridDelta`
``drop_set`` are masked out, :func:`traverse_pruned` re-traverses only the
subtrees containing ``emit_set`` nodes, and the merged pair state is
re-assembled — reusing the previous plan's per-leaf cell positions and
per-class P2P templates, which are pure deterministic functions of the
surviving keys.  This is exact (see ``docs/plan_lifecycle.md`` for the
invariance argument), not approximate.

P2P geometry classes
--------------------
Touching leaf pairs group into classes of identical relative geometry —
``(level difference, centre offset in half-units of the finer cell
width)``.  All pairs of a class share one unit-distance separation matrix
(cell positions are regular lattices), so the plan caches per class the
``1/|u|`` and ``1/|u|**3`` templates (budget permitting) and the execute
phase runs two GEMMs per class over all of its pairs at once instead of
rebuilding an ``(n^3, n^3)`` distance matrix per pair.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from repro.gravity.multipole import octant_ids
from repro.gravity.pairwise import p2p_unit_templates
from repro.octree.mesh import AmrMesh, pack_keys
from repro.octree.node import NodeKey, OctreeNode
from repro.octree.regrid import RegridDelta
from repro.util.morton import morton_parent

#: Default cap on cached P2P template bytes per plan (t1 + t3 across all
#: classes).  Same-level meshes need at most 27 classes; adaptive meshes can
#: produce many more cross-level classes, whose templates are then rebuilt
#: per solve instead of cached once the budget is exhausted.
DEFAULT_TEMPLATE_BUDGET = 192 * 2**20

#: Delta rebuilds touching more than this fraction of the new leaves fall
#: back to a cold traversal (the pruned traversal would visit most of the
#: tree anyway).
DELTA_COLD_FRACTION = 0.5

_LEVEL_SHIFT = 58
_CODE_MASK = (1 << _LEVEL_SHIFT) - 1


def is_far(a: OctreeNode, b: OctreeNode, theta: float) -> bool:
    """The opening criterion: separation of at least ``2 / theta`` sizes."""
    dist = float(np.linalg.norm(a.center - b.center))
    return dist * theta >= 2.0 * max(a.node_size, b.node_size) * (1.0 - 1e-12)


def is_touching(a: OctreeNode, b: OctreeNode) -> bool:
    gap = 0.5 * (a.node_size + b.node_size) * (1.0 + 1e-12)
    return bool(np.all(np.abs(a.center - b.center) <= gap))


def traverse(
    mesh: AmrMesh, theta: float
) -> Tuple[
    List[Tuple[NodeKey, NodeKey]],
    List[Tuple[NodeKey, NodeKey]],
    List[Tuple[NodeKey, NodeKey]],
]:
    """Dual tree traversal: returns (far, near, p2p) pairs, each unordered."""
    far: List[Tuple[NodeKey, NodeKey]] = []
    near: List[Tuple[NodeKey, NodeKey]] = []
    p2p: List[Tuple[NodeKey, NodeKey]] = []
    stack: List[Tuple[NodeKey, NodeKey]] = [((0, 0), (0, 0))]
    while stack:
        ka, kb = stack.pop()
        a, b = mesh.nodes[ka], mesh.nodes[kb]
        if ka == kb:
            if a.is_leaf:
                p2p.append((ka, ka))
            else:
                kids = a.children_keys()
                for i in range(8):
                    for j in range(i, 8):
                        stack.append((kids[i], kids[j]))
            continue
        if is_far(a, b, theta):
            far.append((ka, kb))
            continue
        if a.is_leaf and b.is_leaf:
            if is_touching(a, b):
                p2p.append((ka, kb))
            else:
                near.append((ka, kb))
            continue
        # Split the larger node; on a tie split whichever is refined.
        split_a = (not a.is_leaf) and (a.node_size >= b.node_size or b.is_leaf)
        if split_a:
            for kid in a.children_keys():
                stack.append((kid, kb))
        else:
            for kid in b.children_keys():
                stack.append((ka, kid))
    return far, near, p2p


def traverse_pruned(
    mesh: AmrMesh, theta: float, emit_set: FrozenSet[NodeKey]
) -> Tuple[
    List[Tuple[NodeKey, NodeKey]],
    List[Tuple[NodeKey, NodeKey]],
    List[Tuple[NodeKey, NodeKey]],
]:
    """The subset of :func:`traverse` pairs with an endpoint in ``emit_set``.

    A pair node ``(a, b)`` can only yield emitted pairs if the subtree of
    ``a`` or of ``b`` contains an ``emit_set`` node, so the traversal skips
    any pair node whose endpoints both lack a marked descendant-or-self —
    for a localised regrid this visits a small neighbourhood of the changed
    region instead of the whole pair space.  Decisions at visited pairs are
    exactly :func:`traverse`'s, so the emitted pairs match the full
    traversal's classification bit for bit.
    """
    marked: set = set()
    for key in emit_set:
        k = key
        while k not in marked:
            marked.add(k)
            level, code = k
            if level == 0:
                break
            k = (level - 1, morton_parent(code))
    far: List[Tuple[NodeKey, NodeKey]] = []
    near: List[Tuple[NodeKey, NodeKey]] = []
    p2p: List[Tuple[NodeKey, NodeKey]] = []
    if not marked:
        return far, near, p2p
    stack: List[Tuple[NodeKey, NodeKey]] = [((0, 0), (0, 0))]
    while stack:
        ka, kb = stack.pop()
        if ka not in marked and kb not in marked:
            continue
        a, b = mesh.nodes[ka], mesh.nodes[kb]
        if ka == kb:
            if a.is_leaf:
                if ka in emit_set:
                    p2p.append((ka, ka))
            else:
                kids = a.children_keys()
                for i in range(8):
                    for j in range(i, 8):
                        stack.append((kids[i], kids[j]))
            continue
        if is_far(a, b, theta):
            if ka in emit_set or kb in emit_set:
                far.append((ka, kb))
            continue
        if a.is_leaf and b.is_leaf:
            if ka in emit_set or kb in emit_set:
                if is_touching(a, b):
                    p2p.append((ka, kb))
                else:
                    near.append((ka, kb))
            continue
        split_a = (not a.is_leaf) and (a.node_size >= b.node_size or b.is_leaf)
        if split_a:
            for kid in a.children_keys():
                stack.append((kid, kb))
        else:
            for kid in b.children_keys():
                stack.append((ka, kid))
    return far, near, p2p


def count_m2l_by_level(far_pairs: List[Tuple[NodeKey, NodeKey]]) -> Dict[int, int]:
    """Per-level M2L interaction counts, counting *both* directions.

    Each far pair feeds two M2L conversions (a's local from b and b's from
    a), so both endpoints' levels are counted — the seed solver counted
    only ``ka``'s level, undercounting the per-level workload the distsim
    gravity model sees by up to 2x.  The sum over levels is therefore
    ``2 * len(far_pairs)``.
    """
    by_level: Dict[int, int] = {}
    for ka, kb in far_pairs:
        by_level[ka[0]] = by_level.get(ka[0], 0) + 1
        by_level[kb[0]] = by_level.get(kb[0], 0) + 1
    return by_level


# -- canonical pair state ------------------------------------------------------


def _normalize_pairs(pairs: Iterable[Tuple[NodeKey, NodeKey]]) -> np.ndarray:
    """Pack unordered key pairs into ``(P, 2)`` int64 ``(min, max)`` rows."""
    pairs = list(pairs)
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    arr = np.asarray(pairs, dtype=np.int64)  # (P, 2, 2)
    packed = (arr[..., 0] << _LEVEL_SHIFT) | arr[..., 1]  # (P, 2)
    lo = np.minimum(packed[:, 0], packed[:, 1])
    hi = np.maximum(packed[:, 0], packed[:, 1])
    return np.stack([lo, hi], axis=1)


def _canonical_pairs(rows: np.ndarray) -> np.ndarray:
    """Lexsort normalised pair rows by (first, second) endpoint."""
    if rows.shape[0] < 2:
        return rows
    order = np.lexsort((rows[:, 1], rows[:, 0]))
    return rows[order]


@dataclass(frozen=True)
class PairState:
    """Canonical traversal output: lexsorted packed ``(min, max)`` pairs.

    The single source of truth every plan array is assembled from.  Two
    identical topologies produce identical pair states regardless of how
    they were reached (cold traversal, delta splice, cache load), which is
    what makes the three build paths bit-identical.
    """

    far: np.ndarray  # (Pf, 2) int64
    near: np.ndarray  # (Pn, 2)
    p2p: np.ndarray  # (Pp, 2); self pairs appear as (k, k)

    @classmethod
    def from_traversal(cls, far, near, p2p) -> "PairState":
        return cls(
            far=_canonical_pairs(_normalize_pairs(far)),
            near=_canonical_pairs(_normalize_pairs(near)),
            p2p=_canonical_pairs(_normalize_pairs(p2p)),
        )

    def to_payload(self) -> Dict[str, np.ndarray]:
        """Flat array payload for the on-disk plan cache."""
        return {"far": self.far, "near": self.near, "p2p": self.p2p}

    @classmethod
    def from_payload(cls, payload: Dict[str, np.ndarray]) -> "PairState":
        return cls(
            far=np.asarray(payload["far"], dtype=np.int64).reshape(-1, 2),
            near=np.asarray(payload["near"], dtype=np.int64).reshape(-1, 2),
            p2p=np.asarray(payload["p2p"], dtype=np.int64).reshape(-1, 2),
        )


def _m2l_by_level_packed(far: np.ndarray) -> Dict[int, int]:
    if far.size == 0:
        return {}
    levels = np.concatenate([far[:, 0], far[:, 1]]) >> _LEVEL_SHIFT
    vals, counts = np.unique(levels, return_counts=True)
    return {int(v): int(c) for v, c in zip(vals, counts)}


@dataclass
class P2PClass:
    """All directed P2P edges sharing one relative leaf geometry."""

    key: Tuple[int, Tuple[int, int, int]]
    tgt: np.ndarray  # (E,) target leaf slots
    src: np.ndarray  # (E,) source leaf slots
    inv_dx: np.ndarray  # (E,) template scale (1 / finer cell width)
    upos_t: np.ndarray  # (nc, 3) unit target cell positions
    upos_s: np.ndarray  # (nc, 3) unit source cell positions
    t1: Optional[np.ndarray] = None  # cached 1/|u| template (None: rebuild per solve)
    t3: Optional[np.ndarray] = None

    def templates(self) -> Tuple[np.ndarray, np.ndarray]:
        if self.t1 is not None:
            return self.t1, self.t3
        return p2p_unit_templates(self.upos_t, self.upos_s)


@dataclass
class FarLevel:
    """CSR interaction lists of all far-pair targets at one tree level."""

    tgt_idx: np.ndarray  # (T,) target node indices
    indptr: np.ndarray  # (T+1,)
    src_idx: np.ndarray  # (R,) source node indices, concatenated per target


def _split_far_level(fl: FarLevel, max_rows: int) -> List[FarLevel]:
    """Shard one level's CSR batch into contiguous target slices of at most
    ``max_rows`` interaction rows each (always at least one target).

    Every target appears in exactly one shard with its complete,
    order-preserved source segment, so accumulating the shards is
    bit-identical to executing the unsplit batch.
    """
    n_targets = fl.tgt_idx.size
    if fl.src_idx.size <= max_rows or n_targets <= 1:
        return [fl]
    counts = np.diff(fl.indptr)
    shards: List[FarLevel] = []
    start = 0
    while start < n_targets:
        end = start + 1
        rows = int(counts[start])
        while end < n_targets and rows + int(counts[end]) <= max_rows:
            rows += int(counts[end])
            end += 1
        lo, hi = int(fl.indptr[start]), int(fl.indptr[end])
        shards.append(
            FarLevel(
                tgt_idx=fl.tgt_idx[start:end],
                indptr=fl.indptr[start : end + 1] - lo,
                src_idx=fl.src_idx[lo:hi],
            )
        )
        start = end
    return shards


@dataclass
class FmmPlan:
    """Topology-derived state of one mesh, reused across solves.

    Built by :func:`build_plan`; invalidated by comparing the stored
    topology :attr:`fingerprint` (and ``theta``) against the live mesh —
    see the invalidation contract on :class:`repro.octree.mesh.AmrMesh`
    and ``docs/plan_lifecycle.md``.
    """

    topology_version: int
    theta: float
    n: int
    mesh_ref: "weakref.ReferenceType[AmrMesh]"
    #: Content hash of the topology this plan was assembled for.
    fingerprint: str

    # -- canonical traversal output (delta and cache substrate) -------------
    pair_state: PairState

    # -- node indexing ------------------------------------------------------
    node_keys: List[NodeKey]
    node_index: Dict[NodeKey, int]
    node_center: np.ndarray  # (N, 3)
    node_level: np.ndarray  # (N,)
    max_level: int

    # -- leaves -------------------------------------------------------------
    leaf_keys: List[NodeKey]
    leaf_node_idx: np.ndarray  # (L,) node index of each leaf slot
    leaf_pos: np.ndarray  # (L, nc, 3) cell centres
    cell_vol: np.ndarray  # (L,)

    # -- per-level tree structure (M2M bottom-up, L2L top-down) -------------
    #: deepest-first [(interior node idx (K,), children node idx (K, 8))]
    level_interiors: List[Tuple[np.ndarray, np.ndarray]]

    # -- far interactions ---------------------------------------------------
    far_levels: List[FarLevel]

    # -- near (octant-resolved) interactions --------------------------------
    part_slots: np.ndarray  # (P,) leaf slots needing octant moments
    part_row: np.ndarray  # (L,) slot -> participant row (-1 if absent)
    oct_cells: np.ndarray  # (8, nc // 8) cell indices per octant
    oct_geo_centers: np.ndarray  # (P, 8, 3) geometric octant centres
    near_tgt_slots: np.ndarray  # (T,) near-target leaf slots
    near_tgt_rows: np.ndarray  # (T,) their participant rows
    near_rows: np.ndarray  # (R,) rows into flattened (P*8) octant arrays
    near_indptr: np.ndarray  # (8T+1,) segment bounds per (target, octant)
    near_center_rows: np.ndarray  # (8T,) rows into flattened (P*8) octant COMs

    # -- P2P ----------------------------------------------------------------
    p2p_classes: List[P2PClass]
    p2p_pair_count: int

    # -- static workload counters ------------------------------------------
    n_p2m: int
    n_m2m: int
    n_l2l: int
    n_m2l_pairs: int
    n_near_pairs: int
    m2l_by_level: Dict[int, int] = field(default_factory=dict)

    #: Memoised :meth:`split` shards, keyed on ``max_rows`` — sharding is a
    #: pure slicing of the CSR arrays, so shards share the plan's storage.
    _split_cache: Dict[int, List[FarLevel]] = field(default_factory=dict)

    #: Chain-wide P2P template store, shared *by reference* along a
    #: reuse/update chain of plans.  Templates are pure functions of the
    #: class key (level difference + centre offset), independent of the
    #: topology that first produced them — so a regrid churn that revisits
    #: a geometry class never recomputes its template, even when the class
    #: was absent from the immediately preceding plan.  Bounded by the
    #: build's ``template_budget_bytes``; dropped (with the chain) on
    #: :meth:`FmmSolver.invalidate_plan`.
    template_store: Dict[
        Tuple[int, Tuple[int, int, int]], Tuple[np.ndarray, np.ndarray]
    ] = field(default_factory=dict)

    def split(self, max_rows: int) -> List[FarLevel]:
        """Far batches sharded to at most ``max_rows`` M2L rows each.

        The paper's multipole work-splitting (SVII-C) at plan level: a
        heavy same-level batch becomes several independent sub-batches a
        scheduler can interleave with communication.  ``max_rows <= 0``
        returns the unsplit levels.  Bit-identical to the unsplit
        execution: each target lives in exactly one shard and its source
        segment order is preserved, so the per-target accumulation is the
        same single vectorised sum either way.
        """
        if max_rows <= 0:
            return self.far_levels
        cached = self._split_cache.get(max_rows)
        if cached is None:
            cached = [
                shard
                for fl in self.far_levels
                for shard in _split_far_level(fl, max_rows)
            ]
            self._split_cache[max_rows] = cached
        return cached

    def matches(self, mesh: AmrMesh, theta: float) -> bool:
        """Whether this plan is still valid for ``mesh`` at ``theta``.

        The topology comparison is the content fingerprint (memoised on
        the mesh per ``topology_version``, so this stays cheap); the
        identity check keeps plans scoped to their own mesh object —
        cross-mesh sharing of cold-build work goes through the
        content-addressed :mod:`repro.core.plancache` instead.
        """
        return (
            self.mesh_ref() is mesh
            and self.fingerprint == mesh.fingerprint()
            and self.theta == theta
        )

    # -- delta/cache reuse maps ---------------------------------------------
    def leaf_pos_rows(self) -> Dict[NodeKey, np.ndarray]:
        """Per-key cell-centre rows, for reuse by an incremental rebuild
        (cell centres are a pure function of the key, so reuse is exact)."""
        return {k: self.leaf_pos[i] for i, k in enumerate(self.leaf_keys)}

    def template_map(self) -> Dict[Tuple[int, Tuple[int, int, int]], Tuple[np.ndarray, np.ndarray]]:
        """Cached P2P templates by class key (pure functions of the key)."""
        return {
            cls.key: (cls.t1, cls.t3)
            for cls in self.p2p_classes
            if cls.t1 is not None
        }


def _leaf_positions(leaf: OctreeNode) -> np.ndarray:
    x, y, z = leaf.cell_centers()
    return np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)


def _assemble_plan(
    mesh: AmrMesh,
    theta: float,
    state: PairState,
    template_budget_bytes: int,
    reuse: Optional[FmmPlan] = None,
) -> FmmPlan:
    """Assemble every plan array from the canonical pair state.

    Pure vectorised grouping/sorting over the packed-key arrays: identical
    pair states produce bit-identical plans, no matter which path (cold
    traversal, delta splice, cache load) produced the state.  ``reuse``
    donates per-leaf cell positions and per-class P2P templates from a
    previous plan of the same mesh family — both are exact functions of
    the surviving keys, so reuse changes build time, never values.
    """
    nc = mesh.n**3
    node_keys = sorted(mesh.nodes)
    packed_nodes = pack_keys(node_keys)  # sorted: pack is monotone in key order
    node_index = {k: i for i, k in enumerate(node_keys)}
    n_nodes = len(node_keys)
    node_center = np.empty((n_nodes, 3))
    node_level = np.empty(n_nodes, dtype=np.intp)
    for i, k in enumerate(node_keys):
        node = mesh.nodes[k]
        node_center[i] = node.center
        node_level[i] = node.level
    max_level = mesh.max_level()

    leaf_keys = [k for k in node_keys if mesh.nodes[k].is_leaf]
    packed_leaves = pack_keys(leaf_keys)
    leaf_node_idx = np.searchsorted(packed_nodes, packed_leaves).astype(np.intp)
    n_leaves = len(leaf_keys)

    reuse_pos = reuse.leaf_pos_rows() if reuse is not None else {}
    leaf_pos = np.empty((n_leaves, nc, 3))
    for i, k in enumerate(leaf_keys):
        row = reuse_pos.get(k)
        if row is None:
            row = _leaf_positions(mesh.nodes[k])
        leaf_pos[i] = row
    cell_vol = np.array([mesh.nodes[k].cell_volume for k in leaf_keys])
    dx_leaf = np.array([mesh.nodes[k].dx for k in leaf_keys])

    is_leaf_mask = np.zeros(n_nodes, dtype=bool)
    is_leaf_mask[leaf_node_idx] = True
    level_interiors: List[Tuple[np.ndarray, np.ndarray]] = []
    oct8 = np.arange(8, dtype=np.int64)
    for level in range(max_level - 1, -1, -1):
        int_idx = np.flatnonzero((node_level == level) & ~is_leaf_mask)
        if int_idx.size == 0:
            continue
        codes = packed_nodes[int_idx] & _CODE_MASK
        child_packed = (
            np.int64(level + 1) << _LEVEL_SHIFT
        ) | ((codes << 3)[:, None] + oct8)
        child_idx = np.searchsorted(packed_nodes, child_packed).astype(np.intp)
        level_interiors.append((int_idx.astype(np.intp), child_idx))

    # Far CSR, grouped per target level.  Directed edges lexsorted by
    # (target, source) packed key: packed keys sort level-major, so targets
    # come out grouped by level with canonically sorted source segments.
    far_levels: List[FarLevel] = []
    if state.far.size:
        tgt = np.concatenate([state.far[:, 0], state.far[:, 1]])
        src = np.concatenate([state.far[:, 1], state.far[:, 0]])
        order = np.lexsort((src, tgt))
        tgt = tgt[order]
        src = src[order]
        uniq, starts = np.unique(tgt, return_index=True)
        bounds = np.append(starts, tgt.size)
        lev_of = uniq >> _LEVEL_SHIFT
        for level in range(max_level + 1):
            lo = int(np.searchsorted(lev_of, level))
            hi = int(np.searchsorted(lev_of, level + 1))
            if lo == hi:
                continue
            tgt_idx = np.searchsorted(packed_nodes, uniq[lo:hi]).astype(np.intp)
            indptr = (bounds[lo : hi + 1] - bounds[lo]).astype(np.intp)
            src_idx = np.searchsorted(
                packed_nodes, src[bounds[lo] : bounds[hi]]
            ).astype(np.intp)
            far_levels.append(FarLevel(tgt_idx, indptr, src_idx))

    # Near (octant-resolved) interactions, target-major in sorted-slot order.
    octant = octant_ids(mesh.n)
    oct_cells = np.stack([np.flatnonzero(octant == o) for o in range(8)])
    if state.near.size:
        t = np.concatenate([state.near[:, 0], state.near[:, 1]])
        s = np.concatenate([state.near[:, 1], state.near[:, 0]])
        order = np.lexsort((s, t))
        t = t[order]
        s = s[order]
        t_slot = np.searchsorted(packed_leaves, t).astype(np.intp)
        s_slot = np.searchsorted(packed_leaves, s).astype(np.intp)
        part_slots = np.unique(np.concatenate([t_slot, s_slot])).astype(np.intp)
    else:
        t_slot = s_slot = np.empty(0, dtype=np.intp)
        part_slots = np.empty(0, dtype=np.intp)
    part_row = np.full(n_leaves, -1, dtype=np.intp)
    part_row[part_slots] = np.arange(part_slots.size)

    oct_geo_centers = np.empty((part_slots.size, 8, 3))
    offsets = (
        np.stack(
            [[(o >> 0) & 1, (o >> 1) & 1, (o >> 2) & 1] for o in range(8)]
        ).astype(float)
        - 0.5
    )
    for row, slot in enumerate(part_slots):
        leaf = mesh.nodes[leaf_keys[slot]]
        oct_geo_centers[row] = leaf.center + offsets * (leaf.node_size / 2.0)

    if t_slot.size:
        near_tgt_slots, tstarts = np.unique(t_slot, return_index=True)
        near_tgt_slots = near_tgt_slots.astype(np.intp)
        tbounds = np.append(tstarts, t_slot.size)
    else:
        near_tgt_slots = np.empty(0, dtype=np.intp)
        tbounds = np.zeros(1, dtype=np.intp)
    near_tgt_rows = part_row[near_tgt_slots]
    near_rows_parts: List[np.ndarray] = []
    near_counts: List[int] = []
    near_center_parts: List[np.ndarray] = []
    oct8p = np.arange(8, dtype=np.intp)
    for j, tslot in enumerate(near_tgt_slots):
        seg = s_slot[tbounds[j] : tbounds[j + 1]]
        # One octant pass gathers all 8 sub-moments of every source leaf
        # (source-major, octant-minor), repeated for the 8 target octants.
        rows_t = (part_row[seg][:, None] * 8 + oct8p).ravel()
        near_rows_parts.append(np.tile(rows_t, 8))
        near_counts.extend([rows_t.size] * 8)
        near_center_parts.append(part_row[tslot] * 8 + oct8p)
    near_rows = (
        np.concatenate(near_rows_parts) if near_rows_parts else np.empty(0, dtype=np.intp)
    )
    near_indptr = np.concatenate([[0], np.cumsum(near_counts)]).astype(np.intp)
    near_center_rows = (
        np.concatenate(near_center_parts)
        if near_center_parts
        else np.empty(0, dtype=np.intp)
    )

    # P2P geometry classes from directed edges, grouped by packed class key
    # and ordered canonically (class key, then target, then source).
    p2p_classes: List[P2PClass] = []
    if state.p2p.size:
        self_mask = state.p2p[:, 0] == state.p2p[:, 1]
        a, b = state.p2p[:, 0], state.p2p[:, 1]
        dt = np.concatenate([a, b[~self_mask]])
        ds = np.concatenate([b, a[~self_mask]])
        dt_slot = np.searchsorted(packed_leaves, dt).astype(np.intp)
        ds_slot = np.searchsorted(packed_leaves, ds).astype(np.intp)
        dxm = np.minimum(dx_leaf[dt_slot], dx_leaf[ds_slot])
        ct = node_center[leaf_node_idx[dt_slot]]
        cs = node_center[leaf_node_idx[ds_slot]]
        off = np.rint(2.0 * (ct - cs) / dxm[:, None]).astype(np.int64)
        dl = (dt >> _LEVEL_SHIFT) - (ds >> _LEVEL_SHIFT)
        ckey = (
            ((dl + 32) << 45)
            | ((off[:, 0] + 512) << 30)
            | ((off[:, 1] + 512) << 15)
            | (off[:, 2] + 512)
        )
        order = np.lexsort((ds, dt, ckey))
        ckey_s = ckey[order]
        uniq_c, cstarts = np.unique(ckey_s, return_index=True)
        cbounds = np.append(cstarts, ckey_s.size)
        for j in range(uniq_c.size):
            seg = order[cbounds[j] : cbounds[j + 1]]
            rep = seg[0]
            key = (int(dl[rep]), tuple(int(v) for v in off[rep]))
            pos_t = leaf_pos[dt_slot[rep]]
            pos_s = leaf_pos[ds_slot[rep]]
            rep_dxm = dxm[rep]
            # Unit positions are exact half-integers on the dxm lattice;
            # rounding makes every class member share identical templates.
            upos_t = np.rint(2.0 * (pos_t - pos_s[0]) / rep_dxm) / 2.0
            upos_s = np.rint(2.0 * (pos_s - pos_s[0]) / rep_dxm) / 2.0
            p2p_classes.append(
                P2PClass(
                    key=key,
                    tgt=dt_slot[seg],
                    src=ds_slot[seg],
                    inv_dx=1.0 / dxm[seg],
                    upos_t=upos_t,
                    upos_s=upos_s,
                )
            )

    # Cache templates for the busiest classes within the byte budget; ties
    # break on the class key so the selection is canonical.  The store is
    # shared by reference along the reuse chain: a class key ever seen on
    # this chain serves its template for free (templates are pure functions
    # of the key, so cross-topology reuse is exact), and only genuinely new
    # classes charge the budget.
    template_bytes = 2 * nc * nc * 8
    max_cached = max(0, template_budget_bytes // template_bytes)
    store = reuse.template_store if reuse is not None else {}
    for cls in sorted(p2p_classes, key=lambda c: (-c.tgt.size, c.key)):
        cached = store.get(cls.key)
        if cached is not None:
            cls.t1, cls.t3 = cached
            continue
        if len(store) >= max_cached:
            continue
        cls.t1, cls.t3 = p2p_unit_templates(cls.upos_t, cls.upos_s)
        store[cls.key] = (cls.t1, cls.t3)

    n_interiors = n_nodes - n_leaves
    return FmmPlan(
        topology_version=mesh.topology_version,
        theta=theta,
        n=mesh.n,
        mesh_ref=weakref.ref(mesh),
        fingerprint=mesh.fingerprint(),
        pair_state=state,
        node_keys=node_keys,
        node_index=node_index,
        node_center=node_center,
        node_level=node_level,
        max_level=max_level,
        leaf_keys=leaf_keys,
        leaf_node_idx=leaf_node_idx,
        leaf_pos=leaf_pos,
        cell_vol=cell_vol,
        level_interiors=level_interiors,
        far_levels=far_levels,
        part_slots=part_slots,
        part_row=part_row,
        oct_cells=oct_cells,
        oct_geo_centers=oct_geo_centers,
        near_tgt_slots=near_tgt_slots,
        near_tgt_rows=near_tgt_rows,
        near_rows=near_rows,
        near_indptr=near_indptr,
        near_center_rows=near_center_rows,
        p2p_classes=p2p_classes,
        template_store=store,
        p2p_pair_count=int(state.p2p.shape[0]),
        n_p2m=n_leaves,
        n_m2m=n_interiors,
        n_l2l=8 * n_interiors,
        n_m2l_pairs=int(state.far.shape[0]),
        n_near_pairs=int(state.near.shape[0]),
        m2l_by_level=_m2l_by_level_packed(state.far),
    )


def build_plan(
    mesh: AmrMesh,
    theta: float,
    template_budget_bytes: int = DEFAULT_TEMPLATE_BUDGET,
    pair_state: Optional[PairState] = None,
    reuse: Optional[FmmPlan] = None,
) -> FmmPlan:
    """Build the full traversal plan of ``mesh`` for opening angle ``theta``.

    ``pair_state`` short-circuits the traversal with a precomputed
    canonical pair state (the plan-cache hit path); ``reuse`` donates
    recomputable per-key state from a previous plan.  All paths produce
    bit-identical plans for identical topologies.
    """
    if pair_state is None:
        far, near, p2p = traverse(mesh, theta)
        pair_state = PairState.from_traversal(far, near, p2p)
    return _assemble_plan(mesh, theta, pair_state, template_budget_bytes, reuse=reuse)


def update_plan(
    plan: FmmPlan,
    mesh: AmrMesh,
    theta: float,
    template_budget_bytes: int = DEFAULT_TEMPLATE_BUDGET,
    delta: Optional[RegridDelta] = None,
    cold_fraction: float = DELTA_COLD_FRACTION,
) -> Optional[FmmPlan]:
    """Incrementally rebuild ``plan`` for the regridded ``mesh``.

    Computes the :class:`~repro.octree.regrid.RegridDelta` between the
    plan's stored topology and the live mesh (or takes one), drops every
    cached pair with an endpoint in the delta's ``drop_set``, re-traverses
    only the changed subtrees (:func:`traverse_pruned`) and re-assembles —
    the result is bit-identical to a cold :func:`build_plan` because both
    assemble the same canonical pair state.

    Returns ``None`` when the delta path does not apply (different
    ``theta`` or geometry — node keys only identify topology within one
    ``(n, domain_size)`` family) or is not worthwhile (more than
    ``cold_fraction`` of the leaves changed); the caller falls back to a
    cold build.
    """
    if theta != plan.theta or plan.n != mesh.n:
        return None
    old_mesh = plan.mesh_ref()
    if old_mesh is not mesh and (
        old_mesh is None or old_mesh.domain_size != mesh.domain_size
    ):
        return None
    if delta is None:
        delta = RegridDelta.between(
            frozenset(plan.node_keys),
            frozenset(plan.leaf_keys),
            frozenset(mesh.nodes),
            frozenset(mesh.leaf_keys()),
        )
    if delta.changed_fraction > cold_fraction:
        return None
    drop = pack_keys(delta.drop_set)
    drop.sort()

    def retained(rows: np.ndarray) -> np.ndarray:
        if rows.size == 0 or drop.size == 0:
            return rows
        keep = ~(np.isin(rows[:, 0], drop) | np.isin(rows[:, 1], drop))
        return rows[keep]

    far_add, near_add, p2p_add = traverse_pruned(mesh, theta, delta.emit_set)

    def merged(kept: np.ndarray, added) -> np.ndarray:
        add_rows = _normalize_pairs(added)
        if add_rows.size == 0:
            return kept
        return _canonical_pairs(np.concatenate([kept, add_rows]))

    state = PairState(
        far=merged(retained(plan.pair_state.far), far_add),
        near=merged(retained(plan.pair_state.near), near_add),
        p2p=merged(retained(plan.pair_state.p2p), p2p_add),
    )
    return _assemble_plan(mesh, theta, state, template_budget_bytes, reuse=plan)
