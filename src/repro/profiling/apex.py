"""Counter registry and scoped timers.

APEX attaches counters and timers to HPX tasks; here the registry is
explicit: components report named samples (counts and seconds) and the
report renders an aggregate table.  Virtual-time users pass elapsed
durations directly; wall-time users use :class:`ScopedTimer`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class _Counter:
    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class CounterRegistry:
    """Named counters with aggregate statistics."""

    def __init__(self) -> None:
        self._counters: Dict[str, _Counter] = {}

    def sample(self, name: str, value: float) -> None:
        self._counters.setdefault(name, _Counter()).add(value)

    def increment(self, name: str, amount: int = 1) -> None:
        self.sample(name, float(amount))

    def absorb(self, name: str, count: int, total: float, maximum: float = 0.0) -> None:
        """Merge another registry's aggregate for ``name`` losslessly.

        Unlike :meth:`sample` — which would record the merge as a single
        observation — this preserves the source's sample count and sum, so
        counters harvested from worker processes keep their count/total
        semantics (``count()`` stays the number of events, ``total()`` the
        sum across all workers)."""
        if count <= 0:
            return
        c = self._counters.setdefault(name, _Counter())
        c.count += count
        c.total += total
        c.maximum = max(c.maximum, maximum)
        c.minimum = min(c.minimum, total / count)

    def get(self, name: str) -> Optional[_Counter]:
        return self._counters.get(name)

    def count(self, name: str) -> int:
        counter = self._counters.get(name)
        return counter.count if counter else 0

    def total(self, name: str) -> float:
        counter = self._counters.get(name)
        return counter.total if counter else 0.0

    def names(self):  # noqa: ANN201
        return sorted(self._counters)

    def reset(self) -> None:
        self._counters.clear()

    def timer(self, name: str) -> "ScopedTimer":
        return ScopedTimer(self, name)

    def report(self) -> str:
        lines = [f"{'counter':<36} {'count':>8} {'total':>12} {'mean':>12} {'max':>12}"]
        lines.append("-" * 84)
        for name in self.names():
            c = self._counters[name]
            lines.append(
                f"{name:<36} {c.count:>8d} {c.total:>12.6g} {c.mean:>12.6g} "
                f"{c.maximum:>12.6g}"
            )
        return "\n".join(lines)


class ScopedTimer:
    """Wall-clock context manager feeding a registry counter."""

    def __init__(self, registry: CounterRegistry, name: str) -> None:
        self.registry = registry
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "ScopedTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:  # noqa: ANN002
        self.registry.sample(self.name, time.perf_counter() - self._start)


#: Process-wide registry, like APEX's default instance.
_GLOBAL = CounterRegistry()


def global_registry() -> CounterRegistry:
    return _GLOBAL


def report() -> str:
    return _GLOBAL.report()
