"""Task-timeline traces (APEX / Chrome-trace export).

APEX can emit OTF2/Chrome traces of HPX task execution; this module records
(task, worker, start, end) tuples from a virtual-runtime run and exports the
Chrome ``chrome://tracing`` / Perfetto JSON format, so a simulated schedule
can be inspected with the same tools used for real Octo-Tiger runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.amt.locality import Runtime


@dataclass(frozen=True)
class TraceEvent:
    name: str
    kind: str
    locality: int
    worker: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class TaskTrace:
    """A collection of task execution records."""

    events: List[TraceEvent] = field(default_factory=list)

    def add(self, event: TraceEvent) -> None:
        if event.end_s < event.start_s:
            raise ValueError("event ends before it starts")
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    # -- analysis -----------------------------------------------------------
    def span(self) -> float:
        if not self.events:
            return 0.0
        return max(e.end_s for e in self.events) - min(e.start_s for e in self.events)

    def busy_time(self) -> float:
        return sum(e.duration_s for e in self.events)

    def by_kind(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0.0) + e.duration_s
        return out

    def critical_kind(self) -> Optional[str]:
        kinds = self.by_kind()
        if not kinds:
            return None
        return max(kinds, key=kinds.get)  # type: ignore[arg-type]

    # -- export ---------------------------------------------------------------
    def to_chrome_trace(self) -> List[dict]:
        """Chrome-trace 'X' (complete) events, microsecond timestamps."""
        out = []
        for e in self.events:
            out.append(
                {
                    "name": e.name,
                    "cat": e.kind,
                    "ph": "X",
                    "ts": e.start_s * 1e6,
                    "dur": e.duration_s * 1e6,
                    "pid": e.locality,
                    "tid": e.worker,
                }
            )
        return out

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps({"traceEvents": self.to_chrome_trace()}))
        return path


def capture_runtime_trace(runtime: Runtime) -> TaskTrace:
    """Build a trace from a runtime by monkey-free inspection.

    The scheduler stamps ``started_at`` / ``finished_at`` / ``worker`` on
    each task; this helper cannot see tasks after their futures are
    garbage-collected, so production users attach a
    :class:`TraceRecorder` instead.  Kept for ad-hoc inspection.
    """
    trace = TaskTrace()
    # Tasks are not retained by pools; this records only aggregate rows.
    for loc in runtime.localities:
        for kind, total in loc.pool.kind_time.items():
            trace.add(
                TraceEvent(
                    name=f"{kind} (aggregate)",
                    kind=kind,
                    locality=loc.id,
                    worker=-1,
                    start_s=0.0,
                    end_s=total,
                )
            )
    return trace


class TraceRecorder:
    """Hooks a WorkerPool to record every task completion.

    Usage::

        recorder = TraceRecorder()
        recorder.attach(runtime)
        ... run ...
        trace = recorder.trace
    """

    def __init__(self) -> None:
        self.trace = TaskTrace()
        self._detach = []

    def attach(self, runtime: Runtime) -> None:
        for loc in runtime.localities:
            pool = loc.pool
            original = pool._start  # noqa: SLF001

            def wrapped(task, worker, pool=pool, loc=loc, original=original):  # noqa: ANN001
                engine = pool.engine
                start = engine.now
                original(task, worker)

                def record(_f):  # noqa: ANN001
                    self.trace.add(
                        TraceEvent(
                            name=task.name,
                            kind=task.kind,
                            locality=loc.id,
                            worker=worker,
                            start_s=start,
                            end_s=engine.now,
                        )
                    )

                task.future.add_done_callback(record)

            pool._start = wrapped  # noqa: SLF001
            self._detach.append((pool, original))

    def detach(self) -> None:
        for pool, original in self._detach:
            pool._start = original  # noqa: SLF001
        self._detach.clear()
