"""Performance instrumentation (the APEX analog, paper ref. [38]).

Counters aggregate per kernel kind; timers measure wall or virtual time;
the registry renders the same per-kernel tables HPX performance counters
and APEX produce for Octo-Tiger.
"""

from repro.profiling.apex import (
    CounterRegistry,
    ScopedTimer,
    global_registry,
    report,
)
from repro.profiling.trace import (
    TaskTrace,
    TraceEvent,
    TraceRecorder,
    capture_runtime_trace,
)

__all__ = [
    "CounterRegistry",
    "ScopedTimer",
    "global_registry",
    "report",
    "TaskTrace",
    "TraceEvent",
    "TraceRecorder",
    "capture_runtime_trace",
]
