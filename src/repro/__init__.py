"""repro — a Python reproduction of "Simulating Stellar Merger using
HPX/Kokkos on A64FX on Supercomputer Fugaku" (Diehl et al., 2023).

The package rebuilds the paper's full software stack as working systems —
an Octo-Tiger-analog AMR astrophysics code (octree + finite-volume hydro +
FMM gravity + SCF initial models), an HPX-analog asynchronous many-task
runtime on a virtual clock, a Kokkos-analog performance-portability layer,
explicit SIMD types — and substitutes the machines (Fugaku, Ookami, Summit,
Piz Daint, Perlmutter) with calibrated performance models so every table
and figure of the paper's evaluation regenerates on a laptop.

Entry points:

>>> from repro.scenarios import rotating_star
>>> from repro.core import OctoTigerSim
>>> from repro.machines import FUGAKU
>>> scenario = rotating_star(level=2)          # doctest: +SKIP
>>> sim = OctoTigerSim(scenario.mesh, eos=scenario.eos,
...                    omega=scenario.omega, machine=FUGAKU, nodes=4)  # doctest: +SKIP
>>> sim.step()                                  # doctest: +SKIP

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.0.0"

__all__ = [
    "amt",
    "core",
    "distsim",
    "gravity",
    "hydro",
    "ioutil",
    "kokkos",
    "machines",
    "octree",
    "profiling",
    "scenarios",
    "scf",
    "simd",
    "util",
]
