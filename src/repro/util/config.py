"""Typed, validated run configuration.

Octo-Tiger takes its configuration from command-line options and input files;
we use a small validated mapping with dotted-key access so scenario builders,
the driver and the distributed simulator share one configuration object.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional


class ConfigError(KeyError):
    """Raised for unknown keys or invalid values."""


class Config:
    """Immutable-ish configuration mapping with defaults and validation.

    >>> cfg = Config({"hydro.gamma": 5.0 / 3.0})
    >>> cfg["hydro.gamma"]
    1.6666666666666667
    >>> cfg.get("does.not.exist", 42)
    42
    """

    #: Recognised keys and their defaults.  Adding a key here documents it.
    DEFAULTS: Dict[str, Any] = {
        # Mesh
        "mesh.subgrid_n": 8,  # cells per sub-grid edge (Octo-Tiger N)
        "mesh.ghost_width": 2,  # ghost layers for 2nd-order reconstruction
        "mesh.max_level": 3,
        "mesh.refine_density": 1e-4,  # refine where rho exceeds this
        "mesh.domain_size": 2.0,  # cube edge length, code units
        # Hydro
        "hydro.gamma": 5.0 / 3.0,
        "hydro.cfl": 0.4,
        "hydro.reconstruction": "muscl",  # or "constant"
        "hydro.riemann": "hll",
        "hydro.dual_energy_eta": 1e-3,
        # Gravity
        "gravity.enabled": True,
        "gravity.order": 3,  # 1=monopole, 2=+quadrupole, 3=+octupole
        "gravity.theta": 0.5,  # opening criterion for interaction lists
        "gravity.angmom_correction": True,
        # Rotating frame
        "frame.omega": 0.0,
        # Runtime / Kokkos
        "runtime.execution_space": "hpx",  # serial | hpx | device
        "runtime.tasks_per_kernel": 1,
        "runtime.workers": 4,
        "simd.abi": "sve512",  # scalar | neon128 | avx2 | avx512 | sve512
        # Communication
        "comm.local_optimization": True,
        "comm.coalesce": True,  # bundle ghost messages per locality pair
        # Gravity work-splitting: max M2L rows per far batch (0 = unsplit)
        "gravity.m2l_split": 0,
        # Array backend for hot kernels (repro.kokkos.backend registry):
        # numpy (default, bit-identical) | pyjit | numba | cupy | jax
        "kokkos.backend": "numpy",
    }

    def __init__(self, overrides: Optional[Mapping[str, Any]] = None) -> None:
        self._values: Dict[str, Any] = dict(self.DEFAULTS)
        if overrides:
            for key, value in overrides.items():
                if key not in self.DEFAULTS:
                    raise ConfigError(f"unknown configuration key: {key!r}")
                self._values[key] = value
        self._validate()

    def _validate(self) -> None:
        if self["mesh.subgrid_n"] < 2:
            raise ConfigError("mesh.subgrid_n must be >= 2")
        if self["mesh.ghost_width"] < 1:
            raise ConfigError("mesh.ghost_width must be >= 1")
        if not 0 < self["hydro.cfl"] <= 1:
            raise ConfigError("hydro.cfl must be in (0, 1]")
        if self["hydro.gamma"] <= 1:
            raise ConfigError("hydro.gamma must be > 1")
        if self["gravity.order"] not in (1, 2, 3):
            raise ConfigError("gravity.order must be 1, 2 or 3")
        if self["runtime.tasks_per_kernel"] < 1:
            raise ConfigError("runtime.tasks_per_kernel must be >= 1")
        if self["gravity.m2l_split"] < 0:
            raise ConfigError("gravity.m2l_split must be >= 0")
        if self["runtime.workers"] < 1:
            raise ConfigError("runtime.workers must be >= 1")
        from repro.kokkos.backend import registered_backends

        if self["kokkos.backend"] not in registered_backends():
            raise ConfigError(
                f"kokkos.backend must be one of {registered_backends()}"
            )

    def __getitem__(self, key: str) -> Any:
        try:
            return self._values[key]
        except KeyError:
            raise ConfigError(f"unknown configuration key: {key!r}") from None

    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def with_overrides(self, **dotted: Any) -> "Config":
        """Return a new Config with ``key__subkey=value`` style overrides.

        Double underscores map to dots: ``hydro__gamma=1.4`` sets
        ``hydro.gamma``.
        """
        merged = dict(self._values)
        for key, value in dotted.items():
            merged[key.replace("__", ".")] = value
        unknown = set(merged) - set(self.DEFAULTS)
        if unknown:
            raise ConfigError(f"unknown configuration keys: {sorted(unknown)}")
        return Config(merged)

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._values)

    def __repr__(self) -> str:
        changed = {
            k: v for k, v in self._values.items() if v != self.DEFAULTS.get(k)
        }
        return f"Config({changed!r})"
