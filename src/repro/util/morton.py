"""3-D Morton (Z-order) codes for octree addressing and SFC partitioning.

Octo-Tiger distributes its octree across localities along a space-filling
curve; we use the Morton curve.  Codes interleave the bits of the integer
grid coordinates ``(ix, iy, iz)`` of a node at a given refinement level, so
that sorting nodes by code yields spatially compact, contiguous partitions.

All functions accept and return plain Python ints (codes can exceed 64 bits
for deep trees, which Python ints handle natively) and are vectorised where
it matters via :func:`morton_encode3_array`.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

# Offsets of the 26 face/edge/corner neighbours in 3-D.
NEIGHBOR_OFFSETS: Tuple[Tuple[int, int, int], ...] = tuple(
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
    if (dx, dy, dz) != (0, 0, 0)
)

FACE_OFFSETS: Tuple[Tuple[int, int, int], ...] = (
    (-1, 0, 0),
    (1, 0, 0),
    (0, -1, 0),
    (0, 1, 0),
    (0, 0, -1),
    (0, 0, 1),
)


def _part1by2(n: int) -> int:
    """Spread the bits of ``n`` so each lands at position 3*i."""
    result = 0
    i = 0
    while n:
        result |= (n & 1) << (3 * i)
        n >>= 1
        i += 1
    return result


def _compact1by2(n: int) -> int:
    """Inverse of :func:`_part1by2`: collect every third bit."""
    result = 0
    i = 0
    while n:
        result |= (n & 1) << i
        n >>= 3
        i += 1
    return result


def morton_encode3(ix: int, iy: int, iz: int) -> int:
    """Interleave three non-negative integer coordinates into one code.

    Bit layout (LSB first): x0 y0 z0 x1 y1 z1 ...
    """
    if ix < 0 or iy < 0 or iz < 0:
        raise ValueError(f"Morton coordinates must be non-negative, got {(ix, iy, iz)}")
    return _part1by2(ix) | (_part1by2(iy) << 1) | (_part1by2(iz) << 2)


def morton_decode3(code: int) -> Tuple[int, int, int]:
    """Recover ``(ix, iy, iz)`` from a Morton code."""
    if code < 0:
        raise ValueError(f"Morton code must be non-negative, got {code}")
    return (_compact1by2(code), _compact1by2(code >> 1), _compact1by2(code >> 2))


def morton_encode3_array(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
    """Vectorised Morton encode for coordinates < 2**21 (fits in uint64)."""
    ix = np.asarray(ix, dtype=np.uint64)
    iy = np.asarray(iy, dtype=np.uint64)
    iz = np.asarray(iz, dtype=np.uint64)
    if (ix >= (1 << 21)).any() or (iy >= (1 << 21)).any() or (iz >= (1 << 21)).any():
        raise ValueError("vectorised Morton encode supports coordinates < 2**21")

    def spread(v: np.ndarray) -> np.ndarray:
        v = v & np.uint64(0x1FFFFF)
        v = (v | (v << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
        v = (v | (v << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
        v = (v | (v << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
        v = (v | (v << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
        v = (v | (v << np.uint64(2))) & np.uint64(0x1249249249249249)
        return v

    return spread(ix) | (spread(iy) << np.uint64(1)) | (spread(iz) << np.uint64(2))


def morton_parent(code: int) -> int:
    """Code of the parent octant (one level coarser)."""
    return code >> 3


def morton_children(code: int) -> List[int]:
    """Codes of the eight children (one level finer), in Z order."""
    base = code << 3
    return [base | o for o in range(8)]


def morton_level_offset(level: int) -> int:
    """Cumulative number of octants on all levels coarser than ``level``.

    Useful for building globally unique keys: ``offset(level) + code``.
    """
    if level < 0:
        raise ValueError("level must be non-negative")
    # sum_{l=0}^{level-1} 8**l  ==  (8**level - 1) / 7
    return (8**level - 1) // 7


def morton_neighbors(
    code: int, level: int, faces_only: bool = False
) -> List[int]:
    """Codes of in-bounds neighbours of ``code`` at refinement ``level``.

    ``level`` bounds the grid to ``2**level`` octants per dimension; neighbour
    positions falling outside are dropped (non-periodic domain, matching
    Octo-Tiger's isolated-boundary octree).
    """
    n = 1 << level
    ix, iy, iz = morton_decode3(code)
    offsets = FACE_OFFSETS if faces_only else NEIGHBOR_OFFSETS
    out: List[int] = []
    for dx, dy, dz in offsets:
        jx, jy, jz = ix + dx, iy + dy, iz + dz
        if 0 <= jx < n and 0 <= jy < n and 0 <= jz < n:
            out.append(morton_encode3(jx, jy, jz))
    return out
