"""Shared utilities: Morton codes, physical constants, configuration.

These are the substrate-neutral helpers every other subpackage builds on.
Nothing here knows about octrees, hydro, or machines.
"""

from repro.util.constants import (
    G_NEWTON,
    M_SUN,
    R_SUN,
    SECONDS_PER_DAY,
    CodeUnits,
)
from repro.util.morton import (
    morton_decode3,
    morton_encode3,
    morton_neighbors,
    morton_parent,
    morton_children,
    morton_level_offset,
)
from repro.util.config import Config, ConfigError

__all__ = [
    "G_NEWTON",
    "M_SUN",
    "R_SUN",
    "SECONDS_PER_DAY",
    "CodeUnits",
    "morton_decode3",
    "morton_encode3",
    "morton_neighbors",
    "morton_parent",
    "morton_children",
    "morton_level_offset",
    "Config",
    "ConfigError",
]
