"""Physical constants and code-unit conversions.

Octo-Tiger runs in CGS internally; for numerical robustness at unit scale we
work in "code units" where G = 1 and the binary's total mass and initial
separation are O(1).  :class:`CodeUnits` converts between the two.
"""

from __future__ import annotations

from dataclasses import dataclass

# CGS values (2018 CODATA / IAU nominal).
G_NEWTON = 6.674_30e-8  # cm^3 g^-1 s^-2
M_SUN = 1.988_92e33  # g
R_SUN = 6.957e10  # cm
SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class CodeUnits:
    """Conversion between CGS and code units with G = 1.

    Choosing a mass unit ``m_unit`` (g) and length unit ``l_unit`` (cm)
    fixes the time unit through ``G = 1``:

        t_unit = sqrt(l_unit**3 / (G * m_unit))

    All simulation state is stored in code units; scenario builders accept
    astrophysical inputs (solar masses, solar radii) and convert once.
    """

    m_unit: float = M_SUN
    l_unit: float = R_SUN

    @property
    def t_unit(self) -> float:
        return (self.l_unit**3 / (G_NEWTON * self.m_unit)) ** 0.5

    @property
    def rho_unit(self) -> float:
        return self.m_unit / self.l_unit**3

    @property
    def v_unit(self) -> float:
        return self.l_unit / self.t_unit

    @property
    def e_unit(self) -> float:
        """Energy density unit (erg cm^-3)."""
        return self.rho_unit * self.v_unit**2

    def mass_to_code(self, grams: float) -> float:
        return grams / self.m_unit

    def length_to_code(self, cm: float) -> float:
        return cm / self.l_unit

    def time_to_code(self, seconds: float) -> float:
        return seconds / self.t_unit

    def mass_to_cgs(self, code: float) -> float:
        return code * self.m_unit

    def length_to_cgs(self, code: float) -> float:
        return code * self.l_unit

    def time_to_cgs(self, code: float) -> float:
        return code * self.t_unit
