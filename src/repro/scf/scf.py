"""Hachisu self-consistent-field iterations for rotating stars and binaries.

In the frame co-rotating at Omega the hydrostatic equation integrates to

    h(x) + Phi(x) - 1/2 Omega^2 R^2 = C        (R = cylindrical radius)

with h the specific enthalpy.  For a polytrope h = (n+1) K rho^(1/n), so
fixing boundary points where rho = 0 yields algebraic equations for Omega^2
and the constants C, and the density update is an explicit formula — the
classic HSCF scheme (Hachisu 1986), which is also what Octo-Tiger's SCF
module implements, capable of producing detached, semi-detached and contact
binaries.

The iteration runs on a uniform grid with the FFT Poisson solver (dozens of
gravity solves are needed); :meth:`ScfResult.deposit_to_mesh` then samples
the converged model onto the AMR octree for evolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hydro.eos import BipolytropicEOS, IdealGasEOS, PolytropicEOS
from repro.octree.fields import Field
from repro.octree.mesh import AmrMesh
from repro.scf.poisson import FftPoissonSolver


@dataclass
class ScfResult:
    """A converged (or best-effort) SCF model on its uniform grid."""

    n: int
    box_size: float
    rho: np.ndarray  # (n, n, n)
    phi: np.ndarray  # (n, n, n)
    omega: float
    constants: Tuple[float, ...]
    iterations: int
    converged: bool
    polytropes: Tuple[PolytropicEOS, ...]
    star_masses: Tuple[float, ...] = ()
    history: List[Dict[str, float]] = field(default_factory=list)
    x_com: float = 0.0  # rotation-axis x position (binaries)
    split_x: Optional[float] = None  # star-partition plane (binaries)

    @property
    def dx(self) -> float:
        return self.box_size / self.n

    def cell_centers(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        c = -self.box_size / 2.0 + self.dx * (np.arange(self.n) + 0.5)
        return np.meshgrid(c, c, c, indexing="ij")

    def total_mass(self) -> float:
        return float(self.rho.sum()) * self.dx**3

    # -- transfer to the octree --------------------------------------------------
    def deposit_to_mesh(
        self,
        mesh: AmrMesh,
        eos: IdealGasEOS,
        frame_omega: Optional[float] = None,
        region_split_x: Optional[float] = None,
    ) -> None:
        """Sample the model onto every leaf of an AMR mesh.

        ``frame_omega`` selects the frame: if equal to the model's omega the
        gas is static in the rotating frame (Octo-Tiger's choice); if 0 the
        momenta carry rigid rotation in the inertial frame.  ``region_split_x``
        paints the tracer fields (FRAC1/FRAC2) by side of the split plane.
        """
        grid = -self.box_size / 2.0 + self.dx * (np.arange(self.n) + 0.5)
        omega_gas = self.omega - (self.omega if frame_omega is None else frame_omega)
        for leaf in mesh.leaves():
            x, y, z = leaf.cell_centers()
            rho = self._trilinear(grid, self.rho, x, y, z)
            rho = np.maximum(rho, eos.rho_floor)
            # Internal energy density from the structural EOS of the region
            # (eps * rho = n p for polytropes; piecewise for bi-polytropes).
            eint = self.polytropes[0].internal_energy_density(rho)
            if len(self.polytropes) > 1 and region_split_x is not None:
                eint2 = self.polytropes[1].internal_energy_density(rho)
                eint = np.where(x < region_split_x, eint, eint2)
            vx = -omega_gas * y
            vy = omega_gas * (x - self.x_com)
            kinetic = 0.5 * rho * (vx**2 + vy**2)
            sg = leaf.subgrid
            sg.set_interior(Field.RHO, rho)
            sg.set_interior(Field.SX, rho * vx)
            sg.set_interior(Field.SY, rho * vy)
            sg.set_interior(Field.SZ, np.zeros_like(rho))
            sg.set_interior(Field.EGAS, eint + kinetic)
            sg.set_interior(Field.TAU, eos.tau_from_eint(np.maximum(eint, eos.eint_floor)))
            if region_split_x is not None:
                sg.set_interior(Field.FRAC1, np.where(x < region_split_x, rho, 0.0))
                sg.set_interior(Field.FRAC2, np.where(x >= region_split_x, rho, 0.0))
            else:
                sg.set_interior(Field.FRAC1, rho)
                sg.set_interior(Field.FRAC2, np.zeros_like(rho))
        mesh.restrict_all()

    @staticmethod
    def _trilinear(
        grid: np.ndarray, data: np.ndarray, x: np.ndarray, y: np.ndarray, z: np.ndarray
    ) -> np.ndarray:
        """Trilinear interpolation of ``data`` (defined at ``grid`` centres
        along each axis) at arbitrary points; clamps to the box."""
        from scipy.interpolate import RegularGridInterpolator

        interp = RegularGridInterpolator(
            (grid, grid, grid), data, bounds_error=False, fill_value=0.0
        )
        pts = np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)
        return interp(pts).reshape(x.shape)


def _connected_region(mask: np.ndarray, seed: Tuple[int, int, int]) -> np.ndarray:
    """The connected component of ``mask`` containing ``seed`` (all-False if
    the seed itself is outside the mask).

    The centrifugal term makes the SCF enthalpy positive again far from the
    rotation axis, so an unconstrained update grows spurious 'stars' at the
    box corners; keeping only the component attached to the star seed is the
    standard guard.
    """
    from scipy import ndimage

    labels, _count = ndimage.label(mask)
    seed_label = labels[seed]
    if seed_label == 0:
        return np.zeros_like(mask)
    return labels == seed_label


class _ScfBase:
    """Shared grid/solver plumbing for the SCF drivers."""

    def __init__(self, n: int = 64, box_size: float = 2.0, g_newton: float = 1.0) -> None:
        self.n = n
        self.box_size = box_size
        self.g_newton = g_newton
        self.dx = box_size / n
        self.solver = FftPoissonSolver(n, self.dx, g_newton)
        c = -box_size / 2.0 + self.dx * (np.arange(n) + 0.5)
        self.x, self.y, self.z = np.meshgrid(c, c, c, indexing="ij")
        self.r_cyl2 = self.x**2 + self.y**2
        self.axis = c  # 1-D coordinates

    def _probe_axis(self, field3d: np.ndarray, x: float) -> float:
        """Value of a field on the x-axis nearest to coordinate ``x``."""
        i = int(np.clip(np.searchsorted(self.axis, x), 0, self.n - 1))
        if i > 0 and abs(self.axis[i - 1] - x) < abs(self.axis[i] - x):
            i -= 1
        j = self.n // 2  # cells straddle the axis; nearest row
        return float(field3d[i, j, j])


class SingleStarSCF(_ScfBase):
    """A (possibly rotating) polytrope in equilibrium.

    Fixes the equatorial surface radius ``r_equator``, the polar surface
    radius ``r_pole`` (= equator for a non-rotating star) and the maximum
    density; iterates density, Omega^2 and the integration constant.
    """

    def __init__(
        self,
        rho_max: float = 1.0,
        r_equator: float = 0.5,
        r_pole: float = 0.5,
        poly_n: float = 1.5,
        n: int = 64,
        box_size: float = 2.0,
        g_newton: float = 1.0,
        structure: Optional["BipolytropicEOS"] = None,
    ) -> None:
        super().__init__(n=n, box_size=box_size, g_newton=g_newton)
        if r_pole > r_equator:
            raise ValueError("a rotating equilibrium has r_pole <= r_equator")
        self.rho_max = rho_max
        self.r_equator = r_equator
        self.r_pole = r_pole
        self.poly_n = poly_n
        #: Optional bi-polytropic core/envelope structure (paper SIV-C);
        #: its K_env is rescaled every iteration to pin rho_max, the same
        #: normalisation Hachisu applies to the single K.
        self.structure = structure

    def run(
        self, max_iter: int = 60, tol: float = 1e-6, relax: float = 0.6
    ) -> ScfResult:
        n_poly = self.poly_n
        # Initial guess: uniform sphere of the equatorial radius.
        r = np.sqrt(self.x**2 + self.y**2 + self.z**2)
        rho = np.where(r < self.r_equator, self.rho_max, 0.0)

        omega2 = 0.0
        c_const = 0.0
        k_poly = 1.0
        history: List[Dict[str, float]] = []
        converged = False
        spherical = abs(self.r_pole - self.r_equator) < 1e-14

        for iteration in range(1, max_iter + 1):
            phi = self.solver.solve(rho)
            phi_a = self._probe_axis(phi, self.r_equator)  # equator point
            # Polar boundary point: sample along z through the centre.
            j = self.n // 2
            iz = int(
                np.clip(np.searchsorted(self.axis, self.r_pole), 0, self.n - 1)
            )
            phi_b = float(phi[j, j, iz])
            if spherical:
                new_omega2 = 0.0
                new_c = phi_a
            else:
                new_omega2 = 2.0 * (phi_a - phi_b) / self.r_equator**2
                new_omega2 = max(new_omega2, 0.0)
                new_c = phi_b
            h = new_c - phi + 0.5 * new_omega2 * self.r_cyl2
            # Keep only the enthalpy region connected to the stellar centre;
            # the centrifugal term would otherwise grow mass at the corners.
            centre = (self.n // 2,) * 3
            h = np.where(_connected_region(h > 0.0, centre), h, 0.0)
            h_max = float(h.max())
            if h_max <= 0.0:
                raise RuntimeError("SCF enthalpy collapsed; bad geometry")
            if self.structure is not None:
                # Bi-polytrope: h is linear in K_env, so one division pins
                # the maximum density exactly.
                unit = self.structure.with_K_env(1.0)
                k_env = h_max / float(unit.enthalpy(np.array(self.rho_max)))
                scaled = self.structure.with_K_env(k_env)
                rho_new = scaled.rho_from_enthalpy(np.clip(h, 0.0, None))
                k_poly = k_env
            else:
                k_poly = h_max / ((n_poly + 1.0) * self.rho_max ** (1.0 / n_poly))
                rho_new = self.rho_max * np.clip(h / h_max, 0.0, None) ** n_poly
            delta = float(np.abs(rho_new - rho).max() / self.rho_max)
            rho = relax * rho_new + (1.0 - relax) * rho
            d_omega = abs(new_omega2 - omega2) / max(abs(new_omega2), 1e-30)
            d_c = abs(new_c - c_const) / max(abs(new_c), 1e-30)
            omega2, c_const = new_omega2, new_c
            history.append(
                {"iter": iteration, "omega2": omega2, "C": c_const, "drho": delta}
            )
            if delta < tol and d_omega < tol and d_c < tol:
                converged = True
                break

        phi = self.solver.solve(rho)
        if self.structure is not None:
            eos = self.structure.with_K_env(k_poly)
        else:
            eos = PolytropicEOS(K=k_poly, n=n_poly)
        return ScfResult(
            n=self.n,
            box_size=self.box_size,
            rho=rho,
            phi=phi,
            omega=float(np.sqrt(omega2)),
            constants=(c_const,),
            iterations=len(history),
            converged=converged,
            polytropes=(eos,),
            star_masses=(float(rho.sum()) * self.dx**3,),
            history=history,
        )


class BinarySCF(_ScfBase):
    """A synchronously rotating binary in the co-rotating frame.

    Geometry is fixed by the outer edge ``x_a`` and inner edge ``x_b`` of
    star 1 (centred at negative x) and the outer edge ``x_c`` of star 2;
    maximum densities of both stars are prescribed (their ratio sets the
    mass ratio).  ``contact=True`` shares a single constant between the
    stars, producing a common envelope (the v1309 progenitor);
    ``contact=False`` produces detached/semi-detached systems (the DWD
    progenitor).
    """

    def __init__(
        self,
        x_a: float = -0.75,
        x_b: float = -0.15,
        x_c: float = 0.55,
        rho_max_1: float = 1.0,
        rho_max_2: float = 0.7,
        poly_n_1: float = 1.5,
        poly_n_2: float = 1.5,
        contact: bool = False,
        n: int = 64,
        box_size: float = 2.0,
        g_newton: float = 1.0,
    ) -> None:
        super().__init__(n=n, box_size=box_size, g_newton=g_newton)
        if not (x_a < x_b < x_c):
            raise ValueError("boundary points must satisfy x_a < x_b < x_c")
        self.x_a, self.x_b, self.x_c = x_a, x_b, x_c
        self.rho_max_1, self.rho_max_2 = rho_max_1, rho_max_2
        self.poly_n_1, self.poly_n_2 = poly_n_1, poly_n_2
        self.contact = contact

    def _initial_guess(self) -> np.ndarray:
        """Two uniform spheres spanning the prescribed edges."""
        c1 = 0.5 * (self.x_a + self.x_b)
        r1 = 0.5 * (self.x_b - self.x_a)
        # Star 2 must initially *reach* its prescribed outer edge x_c:
        # if the guess stops short, H2 = C2 - phi_eff is negative over the
        # whole blob and the star evaporates in the first iteration.
        r2 = 0.35 * (self.x_c - self.x_b)
        c2 = self.x_c - r2
        d1 = np.sqrt((self.x - c1) ** 2 + self.y**2 + self.z**2)
        d2 = np.sqrt((self.x - c2) ** 2 + self.y**2 + self.z**2)
        return np.where(d1 < r1, self.rho_max_1, 0.0) + np.where(
            d2 < r2, self.rho_max_2, 0.0
        )

    def _seed_index(
        self, h: np.ndarray, x_lo: float, x_hi: float
    ) -> Tuple[int, int, int]:
        """Grid index of the enthalpy maximum within a slab x in (lo, hi)
        near the orbital plane — the star centre on that side."""
        window = (
            (self.x > x_lo)
            & (self.x < x_hi)
            & (np.abs(self.y) < 0.25 * self.box_size)
            & (np.abs(self.z) < 0.25 * self.box_size)
        )
        masked = np.where(window, h, -np.inf)
        flat = int(np.argmax(masked))
        return np.unravel_index(flat, h.shape)  # type: ignore[return-value]

    def _split_x(self, phi_eff_axis: np.ndarray) -> float:
        """x of the effective-potential maximum between the stars (~L1)."""
        inner = (self.axis > self.x_b) & (self.axis < self.x_c)
        if not inner.any():
            return 0.5 * (self.x_b + self.x_c)
        idx = np.argmax(phi_eff_axis[inner])
        return float(self.axis[inner][idx])

    def run(
        self, max_iter: int = 200, tol: float = 1e-4, relax: float = 0.5
    ) -> ScfResult:
        rho = self._initial_guess()
        omega2 = 0.0
        c1 = c2 = 0.0
        converged = False
        history: List[Dict[str, float]] = []
        j = self.n // 2
        k1 = k2 = 1.0
        grace1 = grace2 = 0

        x_com = 0.0
        for iteration in range(1, max_iter + 1):
            phi = self.solver.solve(rho)
            # The rotation axis passes through the current centre of mass
            # (Hachisu re-centres each iteration; a fixed axis converges to
            # an unphysical configuration whenever the mass ratio != 1).
            total = float(rho.sum())
            if total > 0.0:
                x_com = float((rho * self.x).sum() / total)
            r2a = (self.x_a - x_com) ** 2
            r2b = (self.x_b - x_com) ** 2
            r2c = (self.x_c - x_com) ** 2
            phi_a = self._probe_axis(phi, self.x_a)
            phi_b = self._probe_axis(phi, self.x_b)
            phi_c = self._probe_axis(phi, self.x_c)

            if self.contact:
                # Shared envelope: one constant from the two outer edges.
                new_omega2 = 2.0 * (phi_a - phi_c) / (r2a - r2c)
                new_omega2 = max(new_omega2, 0.0)
                new_c1 = phi_a - 0.5 * new_omega2 * r2a
                new_c2 = new_c1
            else:
                new_omega2 = 2.0 * (phi_a - phi_b) / (r2a - r2b)
                new_omega2 = max(new_omega2, 0.0)
                new_c1 = phi_a - 0.5 * new_omega2 * r2a
                new_c2 = phi_c - 0.5 * new_omega2 * r2c
            if iteration > 1:
                # Omega^2 feeds back through the centrifugal term and
                # overshoots, so it is always damped.  The constants are
                # damped only in contact mode: a shared envelope is
                # neutrally stable against sloshing between the lobes and
                # needs the damping, while in detached mode the constants
                # must track the current potential or the enthalpy goes
                # negative wholesale when the mass changes between
                # iterations.
                new_omega2 = relax * new_omega2 + (1.0 - relax) * omega2
                if self.contact:
                    new_c1 = relax * new_c1 + (1.0 - relax) * c1
                    new_c2 = new_c1

            r_cyl2 = (self.x - x_com) ** 2 + self.y**2
            phi_eff = phi - 0.5 * new_omega2 * r_cyl2
            phi_eff_axis = phi_eff[:, j, j]
            split = self._split_x(phi_eff_axis)

            region1 = self.x < split
            h1 = np.where(region1, new_c1 - phi_eff, 0.0)
            h2 = np.where(~region1, new_c2 - phi_eff, 0.0)
            # No mass beyond the outermost prescribed stellar edge: the
            # centrifugal term turns H positive again at large cylindrical
            # radius, and that spurious region can connect to a star along
            # the equator, so a connectivity test alone is not enough.
            r_max = max(abs(self.x_a - x_com), abs(self.x_c - x_com))
            outside = (self.x - x_com) ** 2 + self.y**2 + self.z**2 > r_max**2
            h1[outside] = 0.0
            h2[outside] = 0.0
            # Constrain each star to the enthalpy region connected to its
            # seed (the effective-potential minimum on its side); the
            # centrifugal term would otherwise grow mass at the box corners.
            seed1 = self._seed_index(h1, self.x_a, split)
            seed2 = self._seed_index(h2, split, self.x_c + 2 * self.dx)
            h1 = np.where(_connected_region(h1 > 0.0, seed1), h1, 0.0)
            h2 = np.where(_connected_region(h2 > 0.0, seed2), h2, 0.0)
            h1_max = float(h1.max())
            h2_max = float(h2.max())
            # Grace handling: a star whose enthalpy went non-positive this
            # iteration keeps its previous density instead of evaporating;
            # the boundary-condition damping normally recovers it within a
            # few iterations.  Persistent collapse means bad geometry.
            if h1_max > 0.0:
                k1 = h1_max / (
                    (self.poly_n_1 + 1.0) * self.rho_max_1 ** (1.0 / self.poly_n_1)
                )
                rho1_new = self.rho_max_1 * np.clip(h1 / h1_max, 0.0, None) ** self.poly_n_1
                grace1 = 0
            else:
                rho1_new = np.where(region1, rho, 0.0)
                grace1 += 1
            if h2_max > 0.0:
                k2 = h2_max / (
                    (self.poly_n_2 + 1.0) * self.rho_max_2 ** (1.0 / self.poly_n_2)
                )
                rho2_new = self.rho_max_2 * np.clip(h2 / h2_max, 0.0, None) ** self.poly_n_2
                grace2 = 0
            else:
                rho2_new = np.where(~region1, rho, 0.0)
                grace2 += 1
            if grace1 > 25 or grace2 > 25:
                raise RuntimeError(
                    "SCF enthalpy of one star stayed non-positive for 25 "
                    "iterations; adjust boundary points"
                )
            rho_new = rho1_new + rho2_new

            delta = float(
                np.abs(rho_new - rho).max() / max(self.rho_max_1, self.rho_max_2)
            )
            rho = relax * rho_new + (1.0 - relax) * rho
            d_omega = abs(new_omega2 - omega2) / max(abs(new_omega2), 1e-30)
            omega2, c1, c2 = new_omega2, new_c1, new_c2
            history.append(
                {
                    "iter": iteration,
                    "omega2": omega2,
                    "C1": c1,
                    "C2": c2,
                    "split_x": split,
                    "drho": delta,
                }
            )
            if delta < tol and d_omega < tol:
                converged = True
                break

        phi = self.solver.solve(rho)
        phi_eff = phi - 0.5 * omega2 * ((self.x - x_com) ** 2 + self.y**2)
        split = self._split_x(phi_eff[:, j, j])
        region1 = self.x < split
        m1 = float(rho[region1].sum()) * self.dx**3
        m2 = float(rho[~region1].sum()) * self.dx**3
        return ScfResult(
            n=self.n,
            box_size=self.box_size,
            rho=rho,
            phi=phi,
            omega=float(np.sqrt(omega2)),
            constants=(c1, c2),
            iterations=len(history),
            converged=converged,
            polytropes=(
                PolytropicEOS(K=k1, n=self.poly_n_1),
                PolytropicEOS(K=k2, n=self.poly_n_2),
            ),
            star_masses=(m1, m2),
            history=history,
            x_com=x_com,
            split_x=split,
        )
