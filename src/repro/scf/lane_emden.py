"""Lane-Emden equation solver.

The dimensionless structure of a polytrope of index n obeys

    (1/xi^2) d/dxi (xi^2 dtheta/dxi) = -theta^n,  theta(0)=1, theta'(0)=0.

The first zero xi_1 marks the stellar surface.  Analytic solutions exist for
n = 0 (theta = 1 - xi^2/6), n = 1 (sin xi / xi) and n = 5 (no finite
surface); the tests pin the solver against them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp


@dataclass(frozen=True)
class LaneEmdenSolution:
    """Surface values and an interpolant for theta(xi)."""

    n: float
    xi1: float  # first zero of theta
    dtheta_dxi_at_xi1: float  # theta'(xi_1), negative
    xi: np.ndarray
    theta: np.ndarray

    def theta_of(self, xi: np.ndarray) -> np.ndarray:
        """theta at arbitrary radii (0 outside the surface)."""
        xi = np.asarray(xi, dtype=np.float64)
        out = np.interp(xi, self.xi, self.theta, right=0.0)
        return np.clip(out, 0.0, 1.0)

    @property
    def mass_coefficient(self) -> float:
        """-xi_1^2 theta'(xi_1), the dimensionless mass integral."""
        return -(self.xi1**2) * self.dtheta_dxi_at_xi1


def lane_emden(n: float, xi_max: float = 50.0, rtol: float = 1e-10) -> LaneEmdenSolution:
    """Integrate the Lane-Emden equation for polytropic index ``n``.

    Raises for n >= 5 (no finite surface) and n < 0.
    """
    if n < 0:
        raise ValueError("polytropic index must be non-negative")
    if n >= 5:
        raise ValueError("polytropes with n >= 5 have no finite surface")

    def rhs(xi: float, y: np.ndarray) -> np.ndarray:
        theta, dtheta = y
        # theta can graze tiny negatives near the surface between steps.
        theta_n = max(theta, 0.0) ** n
        if xi == 0.0:
            return np.array([dtheta, -theta_n / 3.0])
        return np.array([dtheta, -theta_n - 2.0 * dtheta / xi])

    def surface(xi: float, y: np.ndarray) -> float:
        return y[0]

    surface.terminal = True
    surface.direction = -1

    # Start slightly off-centre with the series expansion
    # theta = 1 - xi^2/6 + n xi^4 / 120.
    xi0 = 1e-6
    y0 = np.array([1.0 - xi0**2 / 6.0, -xi0 / 3.0])
    sol = solve_ivp(
        rhs,
        (xi0, xi_max),
        y0,
        events=surface,
        rtol=rtol,
        atol=1e-12,
        dense_output=True,
        max_step=0.01 if n > 4 else 0.1,
    )
    if not sol.t_events[0].size:
        raise RuntimeError(f"no Lane-Emden surface found for n={n} below xi={xi_max}")
    xi1 = float(sol.t_events[0][0])
    dtheta = float(sol.y_events[0][0][1])

    xi_grid = np.linspace(0.0, xi1, 2048)
    theta_grid = np.empty_like(xi_grid)
    theta_grid[0] = 1.0
    inside = (xi_grid > 0) & (xi_grid <= sol.t[-1])
    theta_grid[inside] = np.clip(sol.sol(xi_grid[inside])[0], 0.0, 1.0)
    theta_grid[xi_grid > sol.t[-1]] = 0.0
    theta_grid[-1] = 0.0
    return LaneEmdenSolution(n, xi1, dtheta, xi_grid, theta_grid)
