"""Spherical polytropic star models.

Maps a (mass, radius, index) triple to the physical structure via the
Lane-Emden solution:

    a     = R / xi_1                          (length scale)
    rho_c = M xi_1 / (4 pi R^3 |theta'(xi_1)|)
    K     = 4 pi G a^2 rho_c^((n-1)/n) / (n+1)
    rho(r) = rho_c theta(r / a)^n

Main-sequence stars in the v1309 scenario use n = 3; white dwarfs in the
DWD scenario use n = 1.5 (non-relativistic degenerate electrons).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.hydro.eos import PolytropicEOS
from repro.scf.lane_emden import LaneEmdenSolution, lane_emden


@lru_cache(maxsize=16)
def _cached_lane_emden(n: float) -> LaneEmdenSolution:
    return lane_emden(n)


@dataclass(frozen=True)
class PolytropeModel:
    """A spherical polytrope of given total mass and radius (code units,
    G = 1 unless overridden)."""

    mass: float
    radius: float
    n: float = 1.5
    g_newton: float = 1.0

    @property
    def lane_emden_solution(self) -> LaneEmdenSolution:
        return _cached_lane_emden(self.n)

    @property
    def length_scale(self) -> float:
        return self.radius / self.lane_emden_solution.xi1

    @property
    def rho_c(self) -> float:
        le = self.lane_emden_solution
        return self.mass * le.xi1 / (4.0 * np.pi * self.radius**3 * abs(le.dtheta_dxi_at_xi1))

    @property
    def K(self) -> float:
        a = self.length_scale
        return (
            4.0
            * np.pi
            * self.g_newton
            * a**2
            * self.rho_c ** ((self.n - 1.0) / self.n)
            / (self.n + 1.0)
        )

    @property
    def eos(self) -> PolytropicEOS:
        return PolytropicEOS(K=self.K, n=self.n)

    def density(self, r: np.ndarray) -> np.ndarray:
        """rho at radii ``r`` from the centre (0 outside the surface)."""
        le = self.lane_emden_solution
        theta = le.theta_of(np.asarray(r, dtype=np.float64) / self.length_scale)
        return self.rho_c * theta**self.n

    def pressure(self, r: np.ndarray) -> np.ndarray:
        return self.eos.pressure(self.density(r))

    def central_pressure(self) -> float:
        return float(self.eos.pressure(np.array(self.rho_c)))

    def integrated_mass(self, n_samples: int = 4096) -> float:
        """Numerical check: 4 pi integral rho r^2 dr (should equal mass)."""
        r = np.linspace(0.0, self.radius, n_samples)
        rho = self.density(r)
        return float(4.0 * np.pi * np.trapezoid(rho * r**2, r))
