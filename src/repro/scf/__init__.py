"""Self-consistent-field (SCF) initial models.

Octo-Tiger initialises its binaries with an iterative SCF technique: the
hydrostatic equilibrium equation in the rotating frame reduces to an
algebraic relation between the effective potential and the enthalpy, which
is iterated against the gravity solver until the structure converges.  The
module builds:

* spherical polytropes via the Lane-Emden equation
  (:mod:`~repro.scf.lane_emden`, :mod:`~repro.scf.polytrope`),
* rotating single stars (:class:`~repro.scf.scf.SingleStarSCF`),
* detached / contact binaries (:class:`~repro.scf.scf.BinarySCF`) — the
  progenitors of the paper's v1309 and DWD scenarios,
* Roche geometry helpers (:mod:`~repro.scf.roche`).
"""

from repro.scf.lane_emden import lane_emden, LaneEmdenSolution
from repro.scf.polytrope import PolytropeModel
from repro.scf.roche import roche_lobe_radius, lagrange_l1, keplerian_omega
from repro.scf.scf import SingleStarSCF, BinarySCF, ScfResult

__all__ = [
    "lane_emden",
    "LaneEmdenSolution",
    "PolytropeModel",
    "roche_lobe_radius",
    "lagrange_l1",
    "keplerian_omega",
    "SingleStarSCF",
    "BinarySCF",
    "ScfResult",
]
