"""Roche geometry of a binary in the co-rotating frame.

Used to place SCF boundary points and to diagnose mass transfer: a donor
filling its Roche lobe sheds mass through the inner Lagrange point L1 —
the paper's DWD scenario (Fig. 1) is exactly such dynamical mass transfer.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import brentq


def keplerian_omega(m1: float, m2: float, separation: float, g_newton: float = 1.0) -> float:
    """Orbital angular velocity of a point-mass binary: Kepler's third law."""
    if separation <= 0:
        raise ValueError("separation must be positive")
    return float(np.sqrt(g_newton * (m1 + m2) / separation**3))


def roche_lobe_radius(q: float, separation: float = 1.0) -> float:
    """Eggleton's (1983) volume-equivalent Roche lobe radius of the star
    with mass ratio ``q = m_star / m_companion``."""
    if q <= 0:
        raise ValueError("mass ratio must be positive")
    q13 = q ** (1.0 / 3.0)
    return separation * 0.49 * q13**2 / (0.6 * q13**2 + np.log(1.0 + q13))


def lagrange_l1(m1: float, m2: float, separation: float = 1.0) -> float:
    """Distance of the inner Lagrange point from star 1 (on the line of
    centres, with star 2 at ``separation``).

    Solves the co-rotating-frame force balance with the COM at the origin
    of rotation.
    """
    if m1 <= 0 or m2 <= 0:
        raise ValueError("masses must be positive")
    a = separation
    mu = m2 / (m1 + m2)

    def force(x: float) -> float:
        # x measured from star 1 towards star 2, 0 < x < a.
        # Effective potential gradient along the axis (G(m1+m2)/a^3 = omega^2).
        return (
            -m1 / x**2
            + m2 / (a - x) ** 2
            + (m1 + m2) / a**3 * (x - mu * a)
        )

    return float(brentq(force, 1e-6 * a, a * (1 - 1e-6), xtol=1e-14))
