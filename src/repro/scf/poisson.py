"""FFT Poisson solver with isolated boundary conditions.

The SCF iteration needs dozens of gravity solves on a uniform grid; the
Hockney-Eastwood zero-padding trick turns the open-boundary convolution

    phi(x) = -G sum_y rho(y) dV / |x - y|

into an FFT product on a doubled grid.  The singular self-cell kernel value
uses the exact mean of 1/|r| over a cube, computed once by quadrature, so a
point mass and its immediate neighbourhood carry the right monopole weight.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as sp_fft


def _mean_inverse_distance_unit_cube(samples: int = 48) -> float:
    """Mean of 1/|r| over the unit cube centred on the origin (~2.38)."""
    # Gauss-Legendre quadrature per axis on [-1/2, 1/2].
    nodes, weights = np.polynomial.legendre.leggauss(samples)
    nodes *= 0.5
    weights *= 0.5
    x, y, z = np.meshgrid(nodes, nodes, nodes, indexing="ij")
    w = (
        weights[:, None, None]
        * weights[None, :, None]
        * weights[None, None, :]
    )
    r = np.sqrt(x**2 + y**2 + z**2)
    return float((w / r).sum())


class FftPoissonSolver:
    """Open-boundary Poisson solver on an ``n^3`` grid of spacing ``dx``.

    ``solve(rho)`` returns the potential phi with G from the constructor;
    ``gradient(phi)`` returns the acceleration components by second-order
    central differences (one-sided at the box faces).
    """

    def __init__(self, n: int, dx: float, g_newton: float = 1.0) -> None:
        if n < 4:
            raise ValueError("grid too small")
        self.n = n
        self.dx = dx
        self.g_newton = g_newton
        m = 2 * n
        # Green's function on the doubled, wrapped grid.
        idx = np.arange(m)
        idx = np.minimum(idx, m - idx)  # wrapped distance in cells
        ix, iy, iz = np.meshgrid(idx, idx, idx, indexing="ij")
        r = dx * np.sqrt(ix**2 + iy**2 + iz**2, dtype=np.float64)
        with np.errstate(divide="ignore"):
            green = -1.0 / r
        green[0, 0, 0] = -_mean_inverse_distance_unit_cube() / dx
        self._green_hat = sp_fft.rfftn(green)
        self._m = m

    def solve(self, rho: np.ndarray) -> np.ndarray:
        """Potential of the density field ``rho`` (n, n, n)."""
        if rho.shape != (self.n,) * 3:
            raise ValueError(f"expected shape {(self.n,)*3}, got {rho.shape}")
        m = self._m
        padded = np.zeros((m, m, m))
        padded[: self.n, : self.n, : self.n] = rho
        phi = sp_fft.irfftn(sp_fft.rfftn(padded) * self._green_hat, s=(m, m, m))
        return self.g_newton * self.dx**3 * phi[: self.n, : self.n, : self.n]

    def gradient(self, phi: np.ndarray) -> np.ndarray:
        """Acceleration a = -grad phi, shape (3, n, n, n)."""
        acc = np.empty((3,) + phi.shape)
        for axis in range(3):
            acc[axis] = -np.gradient(phi, self.dx, axis=axis, edge_order=2)
        return acc
