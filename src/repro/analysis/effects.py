"""Declared effect sets: the footprint a task touches.

A *resource* is one piece of simulation state identified by
``(subgrid, field, space)`` — e.g. the conserved variables ``U`` of
sub-grid 12 in the Host space, or the generation-2 ghost band a neighbour
donates.  A task's :class:`EffectSet` partitions its footprint into

* **reads** — the task observes the resource,
* **writes** — the task replaces the resource (exclusive access required),
* **accums** — the task accumulates into the resource with a commutative
  reduction (Kokkos atomics / ``+=`` of M2L contributions): accumulations
  commute with each other but conflict with plain reads and writes.

Two effect sets *conflict* when they touch overlapping resources and at
least one side needs exclusivity the other violates (write/write,
write/read, write/accum, read/accum).  Conflicting tasks are only legal
when a happens-before edge orders them — that check is
:mod:`repro.analysis.race`'s job; this module only describes footprints.

Effects attach to callables with :func:`declare_effects` (kernels change
minimally: one decorator line) or to task *kinds* through
:class:`EffectRegistry`, so graph builders that create pure-cost
placeholder tasks can still declare what the real kernel would touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

#: Wildcard marker matching any subgrid / field / space.
ANY = "*"


@dataclass(frozen=True)
class Resource:
    """One addressable piece of state: ``(subgrid, field, space)``.

    ``subgrid`` is whatever identifies the data owner (an int sub-grid id,
    a :class:`~repro.octree.node.NodeKey`, a label...); ``field`` names the
    array within it; ``space`` the memory space holding it.  Any component
    may be the wildcard :data:`ANY`, which overlaps everything.
    """

    subgrid: Any = ANY
    field: str = ANY
    space: str = "Host"

    def overlaps(self, other: "Resource") -> bool:
        """True when the two resources can alias."""
        return (
            (self.subgrid == ANY or other.subgrid == ANY or self.subgrid == other.subgrid)
            and (self.field == ANY or other.field == ANY or self.field == other.field)
            and (self.space == ANY or other.space == ANY or self.space == other.space)
        )

    @property
    def is_concrete(self) -> bool:
        return ANY not in (self.subgrid, self.field, self.space)

    def __str__(self) -> str:
        return f"{self.subgrid}.{self.field}@{self.space}"


def _as_resources(items: Optional[Iterable]) -> FrozenSet[Resource]:
    out = set()
    for item in items or ():
        if isinstance(item, Resource):
            out.add(item)
        elif isinstance(item, tuple):
            out.add(Resource(*item))
        else:
            raise TypeError(f"not a resource: {item!r}")
    return frozenset(out)


#: One conflicting access pair: (my resource, my mode, their resource, their mode).
Conflict = Tuple[Resource, str, Resource, str]

_READ, _WRITE, _ACCUM = "read", "write", "accum"
#: Access-mode pairs that commute (everything else conflicts on overlap).
_COMMUTING = {(_READ, _READ), (_ACCUM, _ACCUM)}


@dataclass(frozen=True)
class EffectSet:
    """The declared footprint of one task or kernel."""

    reads: FrozenSet[Resource] = field(default_factory=frozenset)
    writes: FrozenSet[Resource] = field(default_factory=frozenset)
    accums: FrozenSet[Resource] = field(default_factory=frozenset)

    @classmethod
    def make(
        cls,
        reads: Optional[Iterable] = None,
        writes: Optional[Iterable] = None,
        accums: Optional[Iterable] = None,
    ) -> "EffectSet":
        """Build from iterables of :class:`Resource` or plain tuples."""
        return cls(_as_resources(reads), _as_resources(writes), _as_resources(accums))

    def accesses(self) -> List[Tuple[Resource, str]]:
        """Every (resource, mode) pair this set declares."""
        return (
            [(r, _READ) for r in self.reads]
            + [(r, _WRITE) for r in self.writes]
            + [(r, _ACCUM) for r in self.accums]
        )

    def conflicts_with(self, other: "EffectSet") -> List[Conflict]:
        """All overlapping, non-commuting access pairs between the two sets."""
        out: List[Conflict] = []
        for mine, my_mode in self.accesses():
            for theirs, their_mode in other.accesses():
                if (my_mode, their_mode) in _COMMUTING:
                    continue
                if mine.overlaps(theirs):
                    out.append((mine, my_mode, theirs, their_mode))
        return out

    def is_empty(self) -> bool:
        return not (self.reads or self.writes or self.accums)

    def __str__(self) -> str:
        parts = []
        if self.reads:
            parts.append("R{" + ", ".join(sorted(map(str, self.reads))) + "}")
        if self.writes:
            parts.append("W{" + ", ".join(sorted(map(str, self.writes))) + "}")
        if self.accums:
            parts.append("A{" + ", ".join(sorted(map(str, self.accums))) + "}")
        return " ".join(parts) or "∅"


EMPTY_EFFECTS = EffectSet()

_EFFECTS_ATTR = "__effects__"


def declare_effects(
    reads: Optional[Iterable] = None,
    writes: Optional[Iterable] = None,
    accums: Optional[Iterable] = None,
) -> Callable[[Callable], Callable]:
    """Decorator attaching an :class:`EffectSet` to a callable.

    The callable is returned unchanged (no wrapper, no call overhead); the
    effect set rides along as ``fn.__effects__`` for schedulers and the
    race detector to pick up.
    """
    effects = EffectSet.make(reads, writes, accums)

    def attach(fn: Callable) -> Callable:
        setattr(fn, _EFFECTS_ATTR, effects)
        return fn

    return attach


def effects_of(fn: Callable) -> Optional[EffectSet]:
    """The effect set declared on ``fn``, or None."""
    return getattr(fn, _EFFECTS_ATTR, None)


class EffectRegistry:
    """Task-kind → effect-set-factory registry.

    Graph builders that submit pure-cost placeholder tasks (no payload to
    decorate) register a factory per *kind*; the factory receives the task
    parameters and returns the footprint the real kernel would have.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., EffectSet]] = {}

    def register(self, kind: str, factory: Callable[..., EffectSet]) -> None:
        if kind in self._factories:
            raise ValueError(f"effects for kind {kind!r} already registered")
        self._factories[kind] = factory

    def effects_for(self, kind: str, *args: Any, **kwargs: Any) -> Optional[EffectSet]:
        factory = self._factories.get(kind)
        return factory(*args, **kwargs) if factory else None

    def __contains__(self, kind: str) -> bool:
        return kind in self._factories
