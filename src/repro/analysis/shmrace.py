"""Dynamic shm race detection for the process backend.

The vector-clock detector of :mod:`repro.analysis.race` watches the DES
world, where every access is a task with declared effects and causality
rides the future layer.  The process backend
(:mod:`repro.hydro.process_backend`) has neither: forked workers touch
:class:`~repro.amt.shm.ShmArena` pages directly, and the only ordering
primitive is the BSP barrier of :meth:`repro.amt.parallel.ParallelEngine.round`.
This module is the equivalent checker for that world:

* each worker appends
  ``(epoch, mode, segment, slot_lo, slot_hi, region, phase)``
  access events to its own block of a shared-memory event log
  (:class:`ShmEventLog` / :class:`ShmEventWriter`) — the *epoch* is the
  worker's dispatch counter, which advances identically on every rank
  because BSP rounds deliver the same command sequence everywhere;
* after each round the parent's :class:`ShmRaceDetector` replays the
  logs.  The happens-before relation is exactly the barrier structure:
  events in **different** epochs are ordered by the barrier between them,
  events in the **same** epoch on **different** ranks are concurrent —
  unless an explicitly sanctioned message-grained happens-before edge
  (the overlap schedule's ``round_async`` note→route chain, declared as
  an ordered ``(phase, phase)`` pair) orders them.  Two
  concurrent events conflict when they touch the same segment, their leaf
  slot ranges intersect, their regions can alias, and their access modes
  do not commute under the PR 2 effect vocabulary
  (:data:`repro.analysis.effects._COMMUTING` — ``read``/``read`` and
  ``accum``/``accum`` commute, everything else conflicts).

Events are *descriptors*, not per-element traces: a worker precomputes a
handful of ``(mode, segment, slot_lo, slot_hi, region)`` rows per phase
from the live index arrays of its plan (see :func:`field_access_rows`),
so logging a phase is one bounded shm append — cheap enough to leave on
(overhead numbers in ``EXPERIMENTS.md``).  Region codes split each leaf
chunk into its interior and ghost bands, because the ghost exchange
legitimately has two ranks in the same chunk at once: the donor reading
the interior, the owner writing the ghost band.

Findings reuse :class:`~repro.analysis.race.RaceFinding` with
``kind="shm-race"`` and resources in the ``shm`` space, so both backends
report violations of the same correctness contract in the same shape.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.amt.shm import ShmArena
from repro.analysis.effects import _ACCUM, _COMMUTING, _READ, _WRITE, Resource
from repro.analysis.race import RaceError, RaceFinding

#: Access-mode codes (event word 1) -> PR 2 effect-vocabulary names.
MODE_READ, MODE_WRITE, MODE_ACCUM = 0, 1, 2
MODE_NAMES = {MODE_READ: _READ, MODE_WRITE: _WRITE, MODE_ACCUM: _ACCUM}

#: Segment codes (event word 2): which shm arena the slot range indexes.
SEG_FIELDS, SEG_ACCEL, SEG_FLUX = 0, 1, 2
SEG_NAMES = {SEG_FIELDS: "fields", SEG_ACCEL: "accel", SEG_FLUX: "flux"}

#: Region codes (event word 5): which part of each leaf chunk is touched.
#: ``ALL`` aliases both; ``INTERIOR`` and ``GHOST`` are disjoint — the
#: refinement that lets a donor's interior read coexist with the owner's
#: ghost write inside the same chunk during a ghost round.
REGION_ALL, REGION_INTERIOR, REGION_GHOST = 0, 1, 2
REGION_NAMES = {REGION_ALL: "all", REGION_INTERIOR: "interior",
                REGION_GHOST: "ghost"}

#: Event-log wire format: per-rank header words, words per event row.
_HEADER = 2  # [count, dropped]
_WORDS = 7   # (epoch, mode, segment, slot_lo, slot_hi, region, phase)

#: Default phase stamp: plain barrier-ordered events.  The overlap
#: schedule stamps its events with protocol phases so the detector can
#: honour message-grained happens-before edges *within* an epoch (see
#: :class:`ShmRaceDetector` ``ordered_phases``).
PHASE_NONE = 0
#: Overlap-protocol phase stamps.  The futurized process backend tags the
#: events of a fused exchange/compute/update epoch with these so the
#: detector can recognise the message-grained happens-before edges the
#: protocol establishes (see ``ordered_phases`` on :class:`ShmRaceDetector`).
PHASE_EXCHANGE = 1
PHASE_COMPUTE = 2
PHASE_UPDATE = 3


class ShmRaceError(RaceError):
    """Raised by a :class:`ShmRaceDetector` in raise-on-finding mode."""


def slot_range_rows(
    lo: int, hi: int, mode: int, segment: int, region: int = REGION_ALL
) -> np.ndarray:
    """One descriptor row for a contiguous leaf-slot range ``[lo, hi)``."""
    return np.array([[mode, segment, lo, hi, region]], dtype=np.int64)


def field_access_rows(
    indices: Sequence[np.ndarray],
    mode: int,
    n: int,
    ghost: int,
    nfields: int,
) -> np.ndarray:
    """Descriptor rows covering flat field-arena element indices.

    Classifies every index into its leaf slot and region (interior vs
    ghost band of the ``(nfields, M, M, M)`` chunk, ``M = n + 2*ghost``),
    then compresses consecutive same-region slots into ranges.  Run once
    at plan time over a bundle's live gather/scatter arrays — the rows,
    not the indices, are what the worker logs each epoch, so an injected
    index pointing into a foreign slot shows up as a foreign-slot event.
    """
    m = n + 2 * ghost
    cells = m**3
    chunk = nfields * cells
    flat = [np.asarray(a).ravel() for a in indices if np.asarray(a).size]
    if not flat:
        return np.empty((0, 5), dtype=np.int64)
    idx = np.concatenate(flat)
    slot = idx // chunk
    cell = idx % cells  # chunk is a multiple of cells: the field collapses
    i = cell // (m * m)
    j = (cell // m) % m
    k = cell % m
    interior = (
        (i >= ghost) & (i < ghost + n)
        & (j >= ghost) & (j < ghost + n)
        & (k >= ghost) & (k < ghost + n)
    )
    region = np.where(interior, REGION_INTERIOR, REGION_GHOST)
    tagged = np.unique(slot * 4 + region)
    rows: List[Tuple[int, int, int, int, int]] = []
    for t in tagged.tolist():
        s, r = t // 4, t % 4
        if rows and rows[-1][4] == r and rows[-1][3] == s:
            rows[-1] = (mode, SEG_FIELDS, rows[-1][2], s + 1, r)
        else:
            rows.append((mode, SEG_FIELDS, s, s + 1, r))
    return np.array(rows, dtype=np.int64)


class ShmEventLog:
    """Per-rank access-event blocks in one shared-memory segment.

    The parent creates the log before forking; each worker's inherited
    mapping gives it lock-free append access to its own block (no other
    rank ever writes it).  Layout per rank: ``[count, dropped]`` header
    followed by ``capacity`` rows of :data:`_WORDS` int64 words.
    """

    def __init__(self, nranks: int, capacity: int = 4096) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.nranks = nranks
        self.capacity = capacity
        per = _HEADER + capacity * _WORDS
        self.arena = ShmArena(nranks * per * 8, label="shm-race-log")
        self._table = self.arena.ndarray((nranks, per), dtype=np.int64)
        self._table[:, :_HEADER] = 0

    def writer(self, rank: int) -> "ShmEventWriter":
        """The append handle for one rank (used child-side after fork)."""
        return ShmEventWriter(self._table[rank], self.capacity)

    def events(self, rank: int) -> np.ndarray:
        """A copy of rank's logged rows: ``(count, 6)`` int64."""
        count = min(int(self._table[rank, 0]), self.capacity)
        block = self._table[rank, _HEADER : _HEADER + count * _WORDS]
        return block.reshape(count, _WORDS).copy()

    def dropped(self, rank: int) -> int:
        """Events lost to a full block since creation (cumulative)."""
        return int(self._table[rank, 1])

    def reset(self) -> None:
        """Clear every rank's cursor (call only at a barrier)."""
        self._table[:, 0] = 0

    def unlink(self) -> None:
        self.arena.unlink()

    def __enter__(self) -> "ShmEventLog":
        return self

    def __exit__(self, *exc) -> None:  # noqa: ANN002
        self.unlink()


class ShmEventWriter:
    """One rank's append handle into the shared event log."""

    def __init__(self, block: np.ndarray, capacity: int) -> None:
        self._block = block
        self.capacity = capacity
        self._rows = block[_HEADER:].reshape(capacity, _WORDS)

    def log(self, epoch: int, rows: np.ndarray, phase: int = PHASE_NONE) -> None:
        """Append precomputed ``(mode, segment, lo, hi, region)`` rows,
        stamped with ``epoch`` and the protocol ``phase`` (overlap rounds
        tag each schedule stage so the detector can apply message-grained
        ordering).  Overflow is counted, never blocks."""
        n = len(rows)
        if not n:
            return
        count = int(self._block[0])
        take = min(n, self.capacity - count)
        if take:
            dst = self._rows[count : count + take]
            dst[:, 0] = epoch
            dst[:, 1:6] = rows[:take]
            dst[:, 6] = phase
            self._block[0] = count + take
        if take < n:
            self._block[1] += n - take


class ShmRaceDetector:
    """Replays the event log at each barrier and flags concurrent conflicts.

    ``scan()`` is called parent-side while every worker is parked at the
    barrier (the :attr:`repro.amt.parallel.ParallelEngine.round_observer`
    hook), so reading and resetting the log is race-free by construction.
    Epochs partition happens-before exactly: the barrier after epoch ``e``
    orders all of ``e`` before all of ``e+1``, and nothing orders two
    same-epoch events on different ranks.
    """

    def __init__(
        self,
        log: ShmEventLog,
        raise_on_finding: bool = True,
        ordered_phases: Optional[set] = None,
    ) -> None:
        #: Sanctioned message-grained happens-before edges *within* an
        #: epoch: a set of ``(phase_a, phase_b)`` pairs meaning "events
        #: stamped ``phase_a`` are ordered before cross-rank events
        #: stamped ``phase_b`` by an explicit routed message" (the
        #: ``round_async`` note→route chain).  Pairs of events joined by
        #: such an edge are not concurrent and are skipped; the empty
        #: default reproduces pure barrier-epoch semantics.
        self.ordered_phases = frozenset(ordered_phases or ())
        self.log = log
        self.raise_on_finding = raise_on_finding
        self.findings: List[RaceFinding] = []
        self.events_seen = 0
        self.scans = 0

    @property
    def dropped(self) -> int:
        return sum(self.log.dropped(r) for r in range(self.log.nranks))

    def scan(self) -> List[RaceFinding]:
        """Drain the log, check same-epoch cross-rank pairs, reset."""
        per_rank = [self.log.events(r) for r in range(self.log.nranks)]
        self.log.reset()
        self.scans += 1
        self.events_seen += sum(len(e) for e in per_rank)
        new: List[RaceFinding] = []
        seen = set()
        for a in range(len(per_rank)):
            for b in range(a + 1, len(per_rank)):
                new.extend(
                    self._check_pair(a, per_rank[a], b, per_rank[b], seen)
                )
        self.findings.extend(new)
        if new and self.raise_on_finding:
            raise ShmRaceError(
                f"{len(new)} shm race(s) detected; first: {new[0]}"
            )
        return new

    def _check_pair(
        self,
        rank_a: int,
        ea: np.ndarray,
        rank_b: int,
        eb: np.ndarray,
        seen: set,
    ) -> List[RaceFinding]:
        out: List[RaceFinding] = []
        if not len(ea) or not len(eb):
            return out
        same_epoch = ea[:, 0:1] == eb[:, 0]
        same_seg = ea[:, 2:3] == eb[:, 2]
        overlap = (ea[:, 3:4] < eb[:, 4]) & (eb[:, 3] < ea[:, 4:5])
        region_ok = (
            (ea[:, 5:6] == REGION_ALL)
            | (eb[:, 5] == REGION_ALL)
            | (ea[:, 5:6] == eb[:, 5])
        )
        ia, ib = np.nonzero(same_epoch & same_seg & overlap & region_ok)
        for i, j in zip(ia.tolist(), ib.tolist()):
            mode_a = MODE_NAMES[int(ea[i, 1])]
            mode_b = MODE_NAMES[int(eb[j, 1])]
            if (mode_a, mode_b) in _COMMUTING:
                continue
            phase_a, phase_b = int(ea[i, 6]), int(eb[j, 6])
            if (phase_a, phase_b) in self.ordered_phases \
                    or (phase_b, phase_a) in self.ordered_phases:
                # A sanctioned routed-message edge orders these two
                # phases across ranks within the epoch: not concurrent.
                continue
            epoch, seg = int(ea[i, 0]), int(ea[i, 2])
            lo = max(int(ea[i, 3]), int(eb[j, 3]))
            hi = min(int(ea[i, 4]), int(eb[j, 4]))
            key = (epoch, seg, mode_a, mode_b, lo, hi,
                   int(ea[i, 5]), int(eb[j, 5]))
            if key in seen:
                continue
            seen.add(key)
            out.append(
                RaceFinding(
                    task_a=f"rank{rank_a}@epoch{epoch}",
                    task_b=f"rank{rank_b}@epoch{epoch}",
                    resource_a=Resource(
                        subgrid=f"{SEG_NAMES[seg]}[{int(ea[i, 3])}:{int(ea[i, 4])})",
                        field=REGION_NAMES[int(ea[i, 5])],
                        space="shm",
                    ),
                    mode_a=mode_a,
                    resource_b=Resource(
                        subgrid=f"{SEG_NAMES[seg]}[{int(eb[j, 3])}:{int(eb[j, 4])})",
                        field=REGION_NAMES[int(eb[j, 5])],
                        space="shm",
                    ),
                    mode_b=mode_b,
                    kind="shm-race",
                )
            )
        return out
