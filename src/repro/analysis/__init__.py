"""Correctness tooling for the asynchronous runtime.

The paper's port lives or dies on two disciplines: no two tasks may touch
the same sub-grid data without a happens-before edge (the futurized task
graph issues >10 kernels per sub-grid per step), and data may only cross
memory spaces through ``deep_copy``.  This package proves both:

* :mod:`repro.analysis.effects` — declared read/write/accumulate
  footprints over ``(subgrid, field, space)`` resources,
* :mod:`repro.analysis.race` — the dynamic vector-clock race detector
  (hooks the AMT scheduler) and the static task-graph checker,
* :mod:`repro.analysis.shmrace` — the same contract for the *process*
  backend: per-rank shm access-event logs replayed against the BSP
  barrier structure after every round,
* :mod:`repro.analysis.planverify` — static pre-launch verification that
  the parallel plans' index arrays are disjoint covers (bundle scatter
  targets, rank partitions, FMM split shards),
* :mod:`repro.analysis.spacesan` — the memory-space sanitizer mode that
  :class:`repro.kokkos.view.View` consults on every access.

The repo-invariant AST linter lives in ``tools/reprolint.py`` (run as
``python -m tools.reprolint src/``); see ``docs/analysis.md`` for the
model and worked examples.
"""

from repro.analysis.effects import (
    ANY,
    EMPTY_EFFECTS,
    EffectRegistry,
    EffectSet,
    Resource,
    declare_effects,
    effects_of,
)
from repro.analysis.race import (
    GraphTask,
    RaceDetector,
    RaceError,
    RaceFinding,
    check_graph,
    check_space_discipline,
)
from repro.analysis.planverify import (
    PlanVerificationError,
    PlanViolation,
    require_verified,
    verify_bundle_plan,
    verify_fmm_split,
    verify_mesh_plans,
    verify_partition,
    verify_process_plan,
)
from repro.analysis.shmrace import (
    ShmEventLog,
    ShmEventWriter,
    ShmRaceDetector,
    ShmRaceError,
)
from repro.analysis.spacesan import (
    MemorySpaceViolation,
    SpaceFinding,
    sanitizer_mode,
    space_checks_enabled,
)

__all__ = [
    "PlanVerificationError",
    "PlanViolation",
    "require_verified",
    "verify_bundle_plan",
    "verify_fmm_split",
    "verify_mesh_plans",
    "verify_partition",
    "verify_process_plan",
    "ShmEventLog",
    "ShmEventWriter",
    "ShmRaceDetector",
    "ShmRaceError",
    "ANY",
    "EMPTY_EFFECTS",
    "EffectRegistry",
    "EffectSet",
    "Resource",
    "declare_effects",
    "effects_of",
    "GraphTask",
    "RaceDetector",
    "RaceError",
    "RaceFinding",
    "check_graph",
    "check_space_discipline",
    "MemorySpaceViolation",
    "SpaceFinding",
    "sanitizer_mode",
    "space_checks_enabled",
]
