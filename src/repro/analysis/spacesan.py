"""Memory-space sanitizer mode: a process-wide switch plus findings.

The Kokkos analog (:mod:`repro.kokkos.view`) consults this module on every
View access.  Outside sanitizer mode the checks cost one dict lookup and a
falsy test; inside, host access to a device-tagged View — the bug class
``deep_copy`` discipline exists to prevent — either raises
:class:`MemorySpaceViolation` immediately or is recorded on a collector
list, depending on how :func:`sanitizer_mode` was entered.

This module deliberately imports nothing from the rest of ``repro`` so the
lowest layers (``kokkos``, ``amt``) can depend on it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional


class MemorySpaceViolation(RuntimeError):
    """Host code touched device-resident data (or vice versa) without a
    sanctioned ``deep_copy``."""


@dataclass(frozen=True)
class SpaceFinding:
    """One recorded space violation (collecting mode)."""

    label: str  # View label
    space: str  # the View's memory space
    op: str  # "read" | "write" | "raw-data"
    detail: str = ""

    def __str__(self) -> str:
        return f"space-mismatch: {self.op} of View {self.label!r} @{self.space} ({self.detail})"


_state = {"enabled": False, "collector": None}


def space_checks_enabled() -> bool:
    """True while a :func:`sanitizer_mode` context is active."""
    return _state["enabled"]


def report_violation(label: str, space: str, op: str, detail: str = "") -> None:
    """Record or raise one violation; no-op outside sanitizer mode."""
    if not _state["enabled"]:
        return
    finding = SpaceFinding(label=label, space=space, op=op, detail=detail)
    collector: Optional[List[SpaceFinding]] = _state["collector"]
    if collector is not None:
        collector.append(finding)
    else:
        raise MemorySpaceViolation(str(finding))


@contextmanager
def sanitizer_mode(collect: bool = False) -> Iterator[List[SpaceFinding]]:
    """Enable space checks within the block.

    With ``collect=False`` (default) the first violation raises; with
    ``collect=True`` violations append to the yielded list so a full run
    can be audited in one pass.  Contexts nest; the innermost wins.
    """
    findings: List[SpaceFinding] = []
    prev = dict(_state)
    _state["enabled"] = True
    _state["collector"] = findings if collect else None
    try:
        yield findings
    finally:
        _state["enabled"] = prev["enabled"]
        _state["collector"] = prev["collector"]
