"""Static plan verification: prove the parallel plans race-free pre-launch.

The SIMD-merging companion work leans on one enabling invariant — per-task
index sets are disjoint — and the process backend inherits it everywhere:
ranks write only their own slot runs, ghost scatters write only their own
ghost bands, every ghost cell has exactly one donor, FMM shards own
disjoint target slices.  All of those sets exist as concrete index arrays
inside the plans (:class:`~repro.comms.bundle.GhostBundlePlan` scatter
arrays, executor slot runs, :meth:`~repro.gravity.plan.FmmPlan.split` CSR
slices), so instead of *trusting* the planners we can check the invariant
in closed form before a single worker forks:

* :func:`verify_partition` — rank slot runs are in-bounds, pairwise
  disjoint, cover every slot, and agree with the leaf localities;
* :func:`verify_bundle_plan` — scatter targets are globally unique and
  exactly cover every face ghost band (each target has exactly one
  donor), writes land only in ghost bands of leaves owned by the
  applying rank, reads come only from donor interiors of the declared
  source rank;
* :func:`verify_fmm_split` — sharded M2L batches preserve the unsplit
  target/source order, keep CSR bounds consistent, and own pairwise
  disjoint target sets (``np.intersect1d`` on every shard pair);
* :func:`verify_process_plan` — the executor-level bundle of the above.

Checks are pure ``numpy`` set algebra over the live index arrays (the
ones the workers will actually use — an injected overlap *is* the checked
array), cost one plan-build's worth of work, run once per topology, and
return :class:`PlanViolation` records; callers in raise mode get a
:class:`PlanVerificationError` naming every violated invariant.

``ProcessHydroExecutor`` and ``FmmSolver`` run these on every plan
(re)build and refuse unverified plans unless constructed with
``verify_plans=False`` (CLI: ``--no-verify-plans``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from repro.octree.fields import NFIELDS
from repro.octree.mesh import AmrMesh

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.comms.bundle import GhostBundlePlan
    from repro.gravity.plan import FmmPlan


@dataclass(frozen=True)
class PlanViolation:
    """One violated plan invariant."""

    check: str  # stable identifier, e.g. "bundle-dst-overlap"
    detail: str

    def __str__(self) -> str:
        return f"{self.check}: {self.detail}"


class PlanVerificationError(RuntimeError):
    """A plan failed static verification; carries every violation."""

    def __init__(self, violations: Sequence[PlanViolation]) -> None:
        self.violations = tuple(violations)
        lines = "\n".join(f"  - {v}" for v in self.violations)
        super().__init__(
            f"plan failed static verification "
            f"({len(self.violations)} violation(s)):\n{lines}"
        )


def _classify(
    idx: np.ndarray, n: int, ghost: int, nfields: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Leaf slot and interior-mask of flat field-arena element indices."""
    m = n + 2 * ghost
    cells = m**3
    chunk = nfields * cells
    slot = idx // chunk
    cell = idx % cells
    i = cell // (m * m)
    j = (cell // m) % m
    k = cell % m
    interior = (
        (i >= ghost) & (i < ghost + n)
        & (j >= ghost) & (j < ghost + n)
        & (k >= ghost) & (k < ghost + n)
    )
    return slot, interior


def verify_partition(
    runs: Sequence[Sequence[Tuple[int, int, float]]],
    n_slots: int,
    localities: Sequence[int],
) -> List[PlanViolation]:
    """Per-rank slot runs partition ``[0, n_slots)`` and match localities.

    ``runs[rank]`` holds ``(lo, hi, dx)`` ranges; every slot must appear
    in exactly one rank's runs (the per-rank interior/flux/accel write
    sets are these ranges, so disjoint cover == race-free writes), and
    each covered slot's leaf locality must equal the covering rank.
    """
    out: List[PlanViolation] = []
    owner = np.full(n_slots, -1, dtype=np.int64)
    for rank, rank_runs in enumerate(runs):
        for lo, hi, _dx in rank_runs:
            if not (0 <= lo < hi <= n_slots):
                out.append(PlanViolation(
                    "partition-bounds",
                    f"rank {rank} run [{lo}, {hi}) outside [0, {n_slots})",
                ))
                continue
            taken = owner[lo:hi]
            clash = np.nonzero(taken >= 0)[0]
            if clash.size:
                s = lo + int(clash[0])
                out.append(PlanViolation(
                    "partition-overlap",
                    f"slot {s} claimed by both rank {int(taken[clash[0]])} "
                    f"and rank {rank}",
                ))
            owner[lo:hi] = rank
    holes = np.nonzero(owner < 0)[0]
    if holes.size:
        out.append(PlanViolation(
            "partition-hole",
            f"{holes.size} slot(s) owned by no rank (first: {int(holes[0])})",
        ))
    loc = np.asarray(localities, dtype=np.int64)
    if loc.size == n_slots:
        covered = owner >= 0
        wrong = np.nonzero(covered & (owner != loc))[0]
        if wrong.size:
            s = int(wrong[0])
            out.append(PlanViolation(
                "partition-locality",
                f"slot {s} is leaf locality {int(loc[s])} but assigned to "
                f"rank {int(owner[s])}",
            ))
    return out


def _expected_ghost_targets(
    mesh: AmrMesh, nfields: int
) -> np.ndarray:
    """Every face ghost-band element index of every leaf, sorted.

    The reference exchange fills exactly the six face bands
    (:meth:`~repro.octree.subgrid.SubGrid.ghost_slices`) of every leaf —
    this is the "covered by exactly one donor" target set the bundle
    scatter arrays must equal.
    """
    n, g = mesh.n, mesh.ghost
    m = n + 2 * g
    chunk = nfields * m**3
    cube = np.arange(chunk, dtype=np.intp).reshape(nfields, m, m, m)
    leaves = sorted(mesh.leaves(), key=lambda nd: nd.key)
    bands = [
        cube[(slice(None),) + leaves[0].subgrid.ghost_slices(axis, side)].ravel()
        for axis in range(3)
        for side in (0, 1)
    ]
    per_leaf = np.sort(np.concatenate(bands))
    slots = np.arange(len(leaves), dtype=np.intp) * chunk
    return (slots[:, None] + per_leaf[None, :]).ravel()


def verify_bundle_plan(
    mesh: AmrMesh, plan: "GhostBundlePlan", nfields: int = NFIELDS
) -> List[PlanViolation]:
    """Ghost-exchange scatter/gather index arrays are race-free.

    Checked in closed form over the live arrays:

    * every scatter target (``copy_dst``/``fine_dst``) is written by
      exactly one donor — globally unique *and* exactly equal to the set
      of face ghost-band cells the reference exchange fills;
    * writes land only in ghost regions of leaves whose locality is the
      bundle's ``dst_locality`` (the rank that applies it);
    * reads (``copy_src``/``fine_src``) come only from interiors, owned
      by the bundle's ``src_locality``;
    * all indices are in-bounds for the arena.
    """
    out: List[PlanViolation] = []
    n, g = mesh.n, mesh.ghost
    m = n + 2 * g
    leaves = sorted(mesh.leaves(), key=lambda nd: nd.key)
    n_slots = len(leaves)
    total = n_slots * nfields * m**3
    loc = np.array([leaf.locality for leaf in leaves], dtype=np.int64)

    all_dst: List[np.ndarray] = []
    for pair in sorted(plan.bundles):
        b = plan.bundles[pair]
        dst = np.concatenate([b.copy_dst, b.fine_dst]) if b.fine_dst.size \
            else b.copy_dst
        src = np.concatenate([b.copy_src, b.fine_src.ravel()]) \
            if b.fine_dst.size else b.copy_src
        for name, idx in (("dst", dst), ("src", src)):
            if idx.size and (idx.min() < 0 or idx.max() >= total):
                out.append(PlanViolation(
                    "bundle-bounds",
                    f"bundle {pair} {name} index outside [0, {total})",
                ))
        dst = dst[(dst >= 0) & (dst < total)]
        src = src[(src >= 0) & (src < total)]
        if dst.size:
            slot, interior = _classify(dst, n, g, nfields)
            if interior.any():
                out.append(PlanViolation(
                    "bundle-dst-interior",
                    f"bundle {pair} scatters {int(interior.sum())} "
                    f"element(s) into leaf interiors (ghost bands only)",
                ))
            wrong = np.unique(slot[loc[slot] != b.dst_locality])
            if wrong.size:
                out.append(PlanViolation(
                    "bundle-dst-ownership",
                    f"bundle {pair} writes slot(s) {wrong.tolist()[:4]} "
                    f"owned by rank(s) "
                    f"{np.unique(loc[wrong]).tolist()[:4]}, "
                    f"not dst rank {b.dst_locality}",
                ))
        if src.size:
            slot, interior = _classify(src, n, g, nfields)
            if not interior.all():
                out.append(PlanViolation(
                    "bundle-src-ghost",
                    f"bundle {pair} reads {int((~interior).sum())} "
                    f"element(s) outside donor interiors",
                ))
            wrong = np.unique(slot[loc[slot] != b.src_locality])
            if wrong.size:
                out.append(PlanViolation(
                    "bundle-src-ownership",
                    f"bundle {pair} reads slot(s) {wrong.tolist()[:4]} not "
                    f"owned by src rank {b.src_locality}",
                ))
        if b.fine_dst.size and b.fine_src.shape != (8, b.fine_dst.size):
            out.append(PlanViolation(
                "bundle-fine-shape",
                f"bundle {pair} fine_src {b.fine_src.shape} does not match "
                f"fine_dst ({b.fine_dst.size},)",
            ))
        all_dst.append(dst)

    targets = np.sort(np.concatenate(all_dst)) if all_dst else \
        np.empty(0, dtype=np.intp)
    dup_mask = targets[1:] == targets[:-1]
    if dup_mask.any():
        dup = int(targets[1:][dup_mask][0])
        slot, _ = _classify(np.array([dup]), n, g, nfields)
        out.append(PlanViolation(
            "bundle-dst-overlap",
            f"{int(dup_mask.sum())} scatter target(s) written by more than "
            f"one donor (first: element {dup} in slot {int(slot[0])})",
        ))
    expected = _expected_ghost_targets(mesh, nfields)
    if targets.size != expected.size or not np.array_equal(
        np.unique(targets), expected
    ):
        missing = np.setdiff1d(expected, targets).size
        extra = np.setdiff1d(targets, expected).size
        out.append(PlanViolation(
            "bundle-dst-coverage",
            f"scatter targets != face ghost bands: {missing} band cell(s) "
            f"with no donor, {extra} target(s) outside any band",
        ))
    return out


def verify_fmm_split(plan: "FmmPlan", max_rows: int) -> List[PlanViolation]:
    """``FmmPlan.split`` shards are a disjoint, order-preserving cover.

    Bit-identical accumulation needs each target in exactly one shard
    with its complete source segment in original order.  Checked against
    the unsplit levels: concatenated shard targets/sources reproduce the
    level arrays exactly, shard CSR bounds are consistent, and every
    shard pair has an empty ``np.intersect1d`` of targets.
    """
    out: List[PlanViolation] = []
    shards = plan.split(max_rows)
    for s, fl in enumerate(shards):
        if fl.indptr.size != fl.tgt_idx.size + 1:
            out.append(PlanViolation(
                "fmm-shard-csr",
                f"shard {s}: indptr has {fl.indptr.size} entries for "
                f"{fl.tgt_idx.size} target(s)",
            ))
            continue
        if fl.indptr[0] != 0 or fl.indptr[-1] != fl.src_idx.size:
            out.append(PlanViolation(
                "fmm-shard-csr",
                f"shard {s}: indptr spans [{int(fl.indptr[0])}, "
                f"{int(fl.indptr[-1])}) for {fl.src_idx.size} source row(s)",
            ))
        if np.any(np.diff(fl.indptr) < 0):
            out.append(PlanViolation(
                "fmm-shard-csr", f"shard {s}: indptr not monotone"
            ))
    for a in range(len(shards)):
        for b in range(a + 1, len(shards)):
            shared = np.intersect1d(shards[a].tgt_idx, shards[b].tgt_idx)
            if shared.size:
                out.append(PlanViolation(
                    "fmm-shard-overlap",
                    f"shards {a} and {b} both accumulate into target(s) "
                    f"{shared.tolist()[:4]}",
                ))
    split_tgt = np.concatenate([fl.tgt_idx for fl in shards]) if shards \
        else np.empty(0, dtype=np.intp)
    split_src = np.concatenate([fl.src_idx for fl in shards]) if shards \
        else np.empty(0, dtype=np.intp)
    full_tgt = np.concatenate([fl.tgt_idx for fl in plan.far_levels]) \
        if plan.far_levels else np.empty(0, dtype=np.intp)
    full_src = np.concatenate([fl.src_idx for fl in plan.far_levels]) \
        if plan.far_levels else np.empty(0, dtype=np.intp)
    if not np.array_equal(split_tgt, full_tgt):
        out.append(PlanViolation(
            "fmm-shard-targets",
            f"shard targets ({split_tgt.size}) do not reproduce the "
            f"unsplit target order ({full_tgt.size})",
        ))
    if not np.array_equal(split_src, full_src):
        out.append(PlanViolation(
            "fmm-shard-sources",
            f"shard source segments ({split_src.size} row(s)) do not "
            f"reproduce the unsplit source order ({full_src.size})",
        ))
    return out


def verify_region_split(split, n: int, ghost: int) -> List[PlanViolation]:  # noqa: ANN001
    """The interior/halo split is an exact, overlap-safe partition.

    The overlap schedule computes ``interior_box`` *before* the ghost
    exchange has drained, so its safety rests on four closed-form facts,
    each checked against the live box arrays
    (:class:`~repro.hydro.plan.RegionSplit`):

    * **cover** — interior ∪ halo boxes hit every cell of ``[0, n)^3``;
    * **disjoint** — no cell is in two boxes (each cell's dudt is written
      by exactly one region pass);
    * **width** — on every face of the cube the halo band is exactly
      ``split.width`` cells deep, and ``width`` equals the kernel stencil
      radius (a thinner band would let an interior stencil reach a ghost;
      a wider one silently shrinks the overlap win);
    * **closure** — every interior-box cell's stencil, ``width`` cells
      each way per axis, stays inside ``[0, n)`` (never reads a ghost),
      and the ghost margin is at least the stencil radius so halo
      sub-views are well formed.
    """
    from repro.hydro.plan import STENCIL_RADIUS

    out: List[PlanViolation] = []
    boxes = list(split.boxes)
    count = np.zeros((n, n, n), dtype=np.int64)
    for box in boxes:
        x0, x1, y0, y1, z0, z1 = box
        if not (0 <= x0 <= x1 <= n and 0 <= y0 <= y1 <= n and 0 <= z0 <= z1 <= n):
            out.append(PlanViolation(
                "split-bounds", f"box {box} outside [0, {n})^3"
            ))
            continue
        count[x0:x1, y0:y1, z0:z1] += 1
    over = np.nonzero(count > 1)
    if over[0].size:
        c = tuple(int(a[0]) for a in over)
        out.append(PlanViolation(
            "split-disjoint",
            f"{over[0].size} cell(s) covered by more than one region "
            f"(first: {c})",
        ))
    holes = np.nonzero(count == 0)
    if holes[0].size:
        c = tuple(int(a[0]) for a in holes)
        out.append(PlanViolation(
            "split-cover",
            f"{holes[0].size} cell(s) in no region (first: {c})",
        ))
    if split.width != STENCIL_RADIUS:
        out.append(PlanViolation(
            "split-width",
            f"halo width {split.width} != stencil radius {STENCIL_RADIUS}",
        ))
    if ghost < STENCIL_RADIUS:
        out.append(PlanViolation(
            "split-closure",
            f"ghost margin {ghost} below stencil radius {STENCIL_RADIUS}",
        ))
    if split.has_interior:
        x0, x1, y0, y1, z0, z1 = split.interior_box
        w = split.width
        for name, lo, hi in (("x", x0, x1), ("y", y0, y1), ("z", z0, z1)):
            if lo - w < 0 or hi + w > n:
                out.append(PlanViolation(
                    "split-closure",
                    f"interior box {split.interior_box} stencil leaves "
                    f"[0, {n}) along {name}",
                ))
            if lo != w or hi != n - w:
                out.append(PlanViolation(
                    "split-width",
                    f"halo band along {name} is [{0}, {lo}) / [{hi}, {n}), "
                    f"not {w} cells deep",
                ))
    elif n > 2 * split.width:
        out.append(PlanViolation(
            "split-width",
            f"empty interior box for n={n}, width={split.width} "
            f"(interior [{split.width}, {n - split.width}) expected)",
        ))
    return out


def verify_process_plan(executor) -> List[PlanViolation]:  # noqa: ANN001
    """Executor-level pass: partition + ghost bundles + interior/halo
    split of a built
    :class:`~repro.hydro.process_backend.ProcessHydroExecutor` plan."""
    mesh = executor.mesh
    leaves = sorted(mesh.leaves(), key=lambda nd: nd.key)
    out = verify_partition(
        executor.runs, len(leaves), [leaf.locality for leaf in leaves]
    )
    out.extend(verify_bundle_plan(mesh, executor.bundle_plan))
    split = getattr(executor, "split", None)
    if split is not None:
        out.extend(verify_region_split(split, mesh.n, mesh.ghost))
    return out


def verify_mesh_plans(mesh: AmrMesh, nprocs: int) -> List[PlanViolation]:
    """Scenario-level pass without forking anything: partition a mesh,
    rebuild the executor's slot runs and ghost bundle plan, verify both.

    Used by the ``repro verify-plans`` CLI gate — deterministically
    reconstructs the exact plan :class:`ProcessHydroExecutor` would build
    (same SFC partition, same sorted-key arena layout, same maximal
    contiguous same-level run decomposition) and checks it statically.
    """
    from repro.comms.bundle import build_bundle_plan
    from repro.octree.partition import sfc_partition

    sfc_partition(mesh, nprocs)
    leaves = sorted(mesh.leaves(), key=lambda nd: nd.key)
    m = mesh.n + 2 * mesh.ghost
    chunk = NFIELDS * m**3
    offsets: Dict = {leaf.key: i * chunk for i, leaf in enumerate(leaves)}
    plan = build_bundle_plan(mesh, offsets)
    runs: List[List[Tuple[int, int, float]]] = [[] for _ in range(nprocs)]
    start = 0
    while start < len(leaves):
        rank = leaves[start].locality
        level = leaves[start].level
        stop = start
        while (
            stop < len(leaves)
            and leaves[stop].locality == rank
            and leaves[stop].level == level
        ):
            stop += 1
        runs[rank].append((start, stop, leaves[start].dx))
        start = stop
    out = verify_partition(
        runs, len(leaves), [leaf.locality for leaf in leaves]
    )
    out.extend(verify_bundle_plan(mesh, plan))
    return out


def require_verified(violations: Sequence[PlanViolation]) -> None:
    """Raise :class:`PlanVerificationError` when any violation exists."""
    if violations:
        raise PlanVerificationError(violations)
