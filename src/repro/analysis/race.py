"""Race detection over declared effect sets.

Two entry points share one conflict engine:

* :class:`RaceDetector` — a *dynamic* observer for
  :class:`repro.amt.scheduler.WorkerPool`.  It maintains a happens-before
  relation over tasks as they execute on the virtual runtime and flags any
  pair of tasks with conflicting effects that no dependency path orders.
* :func:`check_graph` — the *static* checker: the same analysis over a
  declarative task graph (:class:`GraphTask` nodes, e.g. from
  :meth:`repro.distsim.taskgraph.TaskGraphSimulator.build_step_graph`)
  without executing anything.

Happens-before is tracked as a vector clock compressed into Python's
arbitrary-precision integers: task *i* owns bit *i*; a task's clock is the
OR of ``clock | bit`` over all its ancestors.  Ordering tests and clock
merges are single integer operations.  Clocks propagate through the future
layer (``Future._origin``): a task future carries its task's clock, and
``then`` / ``when_all`` / ``when_any`` combine origins, so ``hpx::dataflow``
chains and barrier futures transport causality exactly.

The detector flags *schedules*, not *interleavings*: a conflicting pair
with no ordering edge is reported even when this particular virtual-time
run happened to serialise it — the next run, or the real machine, may not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.effects import ANY, EffectSet, Resource


class RaceError(RuntimeError):
    """Raised by a :class:`RaceDetector` in raise-on-finding mode."""


@dataclass(frozen=True)
class RaceFinding:
    """A pair of unordered tasks with conflicting effects."""

    task_a: str
    task_b: str
    resource_a: Resource
    mode_a: str
    resource_b: Resource
    mode_b: str
    kind: str = "race"  # "race" | "space-mismatch"

    def __str__(self) -> str:
        return (
            f"{self.kind}: {self.task_a} [{self.mode_a} {self.resource_a}] vs "
            f"{self.task_b} [{self.mode_b} {self.resource_b}] — no happens-before edge"
        )


@dataclass
class _Record:
    """One effect-carrying task the conflict index has seen."""

    bit: int  # 1 << index, this task's own clock bit
    name: str
    effects: EffectSet


class _ConflictIndex:
    """Resource-keyed index of effect-carrying tasks, shared by the dynamic
    and static checkers.

    Concrete resources overlap iff equal, so exact-key buckets prune the
    pairwise check; wildcard resources live in a catch-all bucket matched
    against everything.
    """

    def __init__(self) -> None:
        self._records: List[_Record] = []
        self._exact: Dict[Tuple[Any, str, str], Set[int]] = {}
        self._wild: Set[int] = set()

    def candidates(self, effects: EffectSet) -> Set[int]:
        """Indexes of prior records that may share a resource."""
        out: Set[int] = set(self._wild)
        for res, _mode in effects.accesses():
            if res.is_concrete:
                out |= self._exact.get((res.subgrid, res.field, res.space), set())
            else:
                return set(range(len(self._records)))
        return out

    def check(self, name: str, effects: EffectSet, clock: int) -> List[RaceFinding]:
        """Conflicts between the new task and every unordered prior record."""
        findings: List[RaceFinding] = []
        for idx in sorted(self.candidates(effects)):
            prior = self._records[idx]
            if prior.bit & clock:  # ordered: prior happens-before the new task
                continue
            conflicts = effects.conflicts_with(prior.effects)
            if conflicts:
                mine, my_mode, theirs, their_mode = conflicts[0]
                findings.append(
                    RaceFinding(
                        task_a=prior.name,
                        task_b=name,
                        resource_a=theirs,
                        mode_a=their_mode,
                        resource_b=mine,
                        mode_b=my_mode,
                    )
                )
        return findings

    def add(self, bit: int, name: str, effects: EffectSet) -> None:
        idx = len(self._records)
        self._records.append(_Record(bit=bit, name=name, effects=effects))
        for res, _mode in effects.accesses():
            if res.is_concrete:
                self._exact.setdefault((res.subgrid, res.field, res.space), set()).add(idx)
            else:
                self._wild.add(idx)


class RaceDetector:
    """Dynamic happens-before race detector for the AMT worker pools.

    Install with :meth:`repro.amt.locality.Runtime.install_observer` (or by
    assigning ``pool.observer``); the scheduler then reports task lifecycle
    events here.  Only tasks carrying a declared
    :class:`~repro.analysis.effects.EffectSet` participate in conflict
    checking; undeclared tasks still propagate causality.
    """

    def __init__(self, raise_on_finding: bool = False) -> None:
        self.raise_on_finding = raise_on_finding
        self.findings: List[RaceFinding] = []
        self.tasks_seen = 0
        self.tasks_checked = 0
        self._index = _ConflictIndex()
        self._next_bit = 0
        self._deps: Dict[int, Sequence[Any]] = {}  # task.id -> dep futures
        self._clock: Dict[int, int] = {}  # task.id -> ancestor clock
        self._bit: Dict[int, int] = {}  # task.id -> own bit
        self._stack: List[int] = []  # task.ids of nested payload execution

    # -- WorkerPool observer protocol -------------------------------------
    def on_submit(self, task: Any, deps: Sequence[Any]) -> None:
        """A task entered the scheduler with explicit dependency futures."""
        self._deps.setdefault(task.id, list(deps))

    def on_start(self, task: Any) -> None:
        """The task was picked up: its deps are resolved — merge their
        clocks, assign its bit, and race-check its effects."""
        self.tasks_seen += 1
        clock = 0
        for dep in self._deps.pop(task.id, ()):
            clock |= getattr(dep, "_origin", 0)
        if self._stack:
            # Spawned from inside a running payload: fork edge from parent.
            parent = self._stack[-1]
            clock |= self._clock[parent] | self._bit[parent]
        bit = 1 << self._next_bit
        self._next_bit += 1
        self._bit[task.id] = bit
        self._clock[task.id] = clock
        effects: Optional[EffectSet] = getattr(task, "effects", None)
        if effects is not None and not effects.is_empty():
            self.tasks_checked += 1
            found = self._index.check(task.name, effects, clock)
            self._index.add(bit, task.name, effects)
            if found:
                self.findings.extend(found)
                if self.raise_on_finding:
                    raise RaceError(str(found[0]))
        self._stack.append(task.id)

    def on_executed(self, task: Any) -> None:
        """The task's payload returned (still occupying its worker)."""
        if self._stack and self._stack[-1] == task.id:
            self._stack.pop()

    def on_finish(self, task: Any) -> None:
        """The task's virtual cost elapsed; stamp its future's origin
        *before* the future resolves so dependents inherit the clock."""
        clock = self._clock.get(task.id, 0) | self._bit.get(task.id, 0)
        task.future._origin = clock  # noqa: SLF001 - detector owns provenance


# -- static checking ---------------------------------------------------------


@dataclass(frozen=True)
class GraphTask:
    """One node of a declarative task graph.

    ``deps`` are ids of earlier nodes (builders emit in topological order).
    ``exec_space`` is where the task runs ("Host" / "Device"); the space
    checker flags any effect resource living in the other space unless the
    node's ``kind`` is ``"deep_copy"`` — the one sanctioned crossing.
    """

    id: int
    name: str
    deps: Tuple[int, ...] = ()
    effects: Optional[EffectSet] = None
    exec_space: str = "Host"
    kind: str = ""


def check_space_discipline(nodes: Sequence[GraphTask]) -> List[RaceFinding]:
    """Static memory-space check: a host node touching a device resource
    (or vice versa) is a violation unless it *is* the deep_copy."""
    findings: List[RaceFinding] = []
    for node in nodes:
        if node.effects is None or node.kind == "deep_copy":
            continue
        for res, mode in node.effects.accesses():
            if res.space in (ANY, node.exec_space):
                continue
            findings.append(
                RaceFinding(
                    task_a=node.name,
                    task_b=f"<{node.exec_space} execution space>",
                    resource_a=res,
                    mode_a=mode,
                    resource_b=res,
                    mode_b="resides",
                    kind="space-mismatch",
                )
            )
    return findings


def check_graph(nodes: Sequence[GraphTask]) -> List[RaceFinding]:
    """Static race + space analysis of a task graph, without executing it.

    Computes every node's ancestor clock by propagation over the dependency
    edges, then runs the same unordered-conflict check the dynamic detector
    applies — so a race the static pass finds is exactly one the dynamic
    detector would flag on some schedule, and vice versa for declared
    effects.
    """
    index = _ConflictIndex()
    clocks: Dict[int, int] = {}
    findings = check_space_discipline(nodes)
    for position, node in enumerate(nodes):
        clock = 0
        for dep in node.deps:
            if dep not in clocks:
                raise ValueError(
                    f"graph node {node.name!r} depends on {dep} which does not "
                    "precede it; emit nodes in topological order"
                )
            clock |= clocks[dep]
        bit = 1 << position
        clocks[node.id] = clock | bit
        if node.effects is not None and not node.effects.is_empty():
            findings.extend(index.check(node.name, node.effects, clock))
            index.add(bit, node.name, node.effects)
    return findings
