"""Hardware specifications and the five machine presets.

Peak numbers are from public system documentation.  The ``*_efficiency``
fields are the only free parameters; they represent the sustained fraction
of peak an Octo-Tiger-like AMR code achieves and are calibrated against the
relative performance the paper reports (see module docstring of
:mod:`repro.machines`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.machines.power import PowerModel
from repro.simd.abi import get_abi


@dataclass(frozen=True)
class GpuSpec:
    """One accelerator."""

    name: str
    fp64_tflops: float
    memory_gb: float
    kernel_launch_latency_us: float = 10.0
    #: Sustained fraction of peak for Octo-Tiger's aggregated kernels.
    efficiency: float = 0.10

    @property
    def sustained_flops(self) -> float:
        return self.fp64_tflops * 1e12 * self.efficiency


@dataclass(frozen=True)
class NodeSpec:
    """One compute node."""

    name: str
    cores: int
    freq_ghz: float
    flops_per_cycle_per_core: float  # peak DP flops per cycle per core
    memory_gb: float  # usable memory (the paper quotes 28 GB on Fugaku)
    memory_bw_gbs: float
    simd_abi: str  # the widest SIMD ISA the node supports
    #: Sustained fraction of peak for *scalar* (non-SIMD-typed) kernels;
    #: explicit SIMD types multiply this by the ABI speedup factor.
    scalar_efficiency: float = 0.015
    boost_freq_ghz: Optional[float] = None
    gpus: Tuple[GpuSpec, ...] = ()

    def peak_flops(self, boost: bool = False) -> float:
        freq = (self.boost_freq_ghz or self.freq_ghz) if boost else self.freq_ghz
        return self.cores * freq * 1e9 * self.flops_per_cycle_per_core

    def sustained_cpu_flops(self, simd: bool = True, boost: bool = False) -> float:
        """Node-level sustained flop rate of the CPU cores.

        ``simd=True`` models kernels built with the explicit SIMD types
        (the paper's SVE build); ``simd=False`` the scalar build.
        """
        factor = get_abi(self.simd_abi).speedup_factor() if simd else 1.0
        return self.peak_flops(boost=boost) * self.scalar_efficiency * factor

    def sustained_gpu_flops(self) -> float:
        return sum(g.sustained_flops for g in self.gpus)


@dataclass(frozen=True)
class InterconnectSpec:
    """Network fabric between nodes."""

    name: str
    latency_us: float
    bandwidth_gbs: float  # per-node injection bandwidth
    #: Per-message software overhead (HPX action/serialization path).
    action_overhead_us: float = 1.0


@dataclass(frozen=True)
class MachineModel:
    name: str
    node: NodeSpec
    interconnect: InterconnectSpec
    power: PowerModel
    max_nodes: int = 1024


# --------------------------------------------------------------------------
# A64FX machines.  48 compute cores, 2x 512-bit SVE FMA pipes -> 32 DP
# flops/cycle/core.  Fugaku: 2.0 GHz nominal silicon run at 1.8 GHz default
# with a 2.2 GHz boost mode (paper SVI-A); Tofu-D interconnect.  The paper
# quotes 28 GB usable per node.  scalar_efficiency = 0.013 calibrated so a
# non-SVE Fugaku node lands just below a CPU-only Perlmutter node (Fig. 5).
_A64FX = dict(
    cores=48,
    flops_per_cycle_per_core=32.0,
    memory_bw_gbs=1024.0,
    simd_abi="sve512",
    scalar_efficiency=0.013,
)

FUGAKU = MachineModel(
    name="Fugaku",
    node=NodeSpec(
        name="A64FX (Fugaku)",
        freq_ghz=1.8,
        boost_freq_ghz=2.2,
        memory_gb=28.0,
        **_A64FX,
    ),
    interconnect=InterconnectSpec(
        name="Tofu-D", latency_us=0.9, bandwidth_gbs=40.8, action_overhead_us=1.4
    ),
    power=PowerModel(idle_w=35.0, peak_w=110.0, reference_freq_ghz=1.8),
    max_nodes=158_976,
)

OOKAMI = MachineModel(
    name="Ookami",
    node=NodeSpec(
        name="A64FX (FX700)",
        freq_ghz=1.8,
        memory_gb=32.0,
        **_A64FX,
    ),
    # HDR-100 InfiniBand; lower per-message software overhead with OpenMPI
    # than the paper observed with Fujitsu MPI (their Fig. 10 discussion).
    interconnect=InterconnectSpec(
        name="InfiniBand HDR100", latency_us=1.1, bandwidth_gbs=12.5,
        action_overhead_us=0.9,
    ),
    power=PowerModel(idle_w=40.0, peak_w=120.0, reference_freq_ghz=1.8),
    max_nodes=174,
)

# GPU machines.  GPU efficiency 0.10 calibrated to put Summit ~an order of
# magnitude over Piz Daint per node (6x V100 vs 1x P100) with Fugaku close
# behind Piz Daint (Fig. 4).
SUMMIT = MachineModel(
    name="Summit",
    node=NodeSpec(
        name="POWER9 + 6x V100",
        cores=42,
        freq_ghz=3.1,
        flops_per_cycle_per_core=8.0,
        memory_gb=512.0,
        memory_bw_gbs=340.0,
        simd_abi="scalar",  # VSX kernels ran scalar in these builds
        scalar_efficiency=0.02,
        gpus=tuple(
            GpuSpec("V100", fp64_tflops=7.8, memory_gb=16.0) for _ in range(6)
        ),
    ),
    interconnect=InterconnectSpec(
        name="EDR InfiniBand (dual rail)", latency_us=1.0, bandwidth_gbs=25.0
    ),
    power=PowerModel(idle_w=500.0, peak_w=2200.0, reference_freq_ghz=3.1),
    max_nodes=4608,
)

PIZ_DAINT = MachineModel(
    name="Piz Daint",
    node=NodeSpec(
        name="Xeon E5-2690v3 + 1x P100",
        cores=12,
        freq_ghz=2.6,
        flops_per_cycle_per_core=16.0,
        memory_gb=64.0,
        memory_bw_gbs=68.0,
        simd_abi="avx2",
        scalar_efficiency=0.02,
        # P100 efficiency 0.055: the Piz Daint results predate the GPU work
        # aggregation of paper ref. [9]; calibrated so a Fugaku node (SVE)
        # lands "close to" a Piz Daint node (Fig. 4).
        gpus=(GpuSpec("P100", fp64_tflops=4.7, memory_gb=16.0, efficiency=0.055),),
    ),
    interconnect=InterconnectSpec(name="Aries", latency_us=1.3, bandwidth_gbs=10.2),
    power=PowerModel(idle_w=100.0, peak_w=450.0, reference_freq_ghz=2.6),
    max_nodes=5704,
)

# Perlmutter phase 1 (the paper's disclaimer).  scalar_efficiency 0.018 and
# the A100 efficiency 0.18 put the CPU-only node roughly two orders of
# magnitude below the 4x A100 configuration, with a non-SVE Fugaku node
# slightly below the CPU-only Perlmutter node (Fig. 5).
PERLMUTTER = MachineModel(
    name="Perlmutter",
    node=NodeSpec(
        name="EPYC 7763 + 4x A100",
        cores=64,
        freq_ghz=2.45,
        flops_per_cycle_per_core=16.0,
        memory_gb=256.0,
        memory_bw_gbs=204.8,
        simd_abi="avx2",
        scalar_efficiency=0.018,
        gpus=tuple(
            GpuSpec("A100", fp64_tflops=9.7, memory_gb=40.0, efficiency=0.18)
            for _ in range(4)
        ),
    ),
    interconnect=InterconnectSpec(
        name="Slingshot-10", latency_us=1.1, bandwidth_gbs=12.5
    ),
    power=PowerModel(idle_w=300.0, peak_w=1800.0, reference_freq_ghz=2.45),
    max_nodes=1536,
)

MACHINES: Dict[str, MachineModel] = {
    m.name: m for m in (FUGAKU, OOKAMI, SUMMIT, PIZ_DAINT, PERLMUTTER)
}
