"""Software-stack manifest (the paper's Table I).

Octo-Tiger 6848ea1/8e42394 was built against these compiler and library
versions on Fugaku and Ookami; the manifest is data so the Table I bench can
print it and the tests can assert its integrity (every entry versioned, the
two-machine split preserved).
"""

from __future__ import annotations

from typing import Dict, Tuple

#: (fugaku_version, ookami_version); identical strings where Table I lists
#: a single version for both machines.
_STACK: Dict[str, Tuple[str, str]] = {
    "gcc": ("11.2.0", "12.1.0"),
    "hwloc": ("1.11.12", "2.8.0"),
    "boost": ("1.79.0", "1.78.0"),
    "mpi": ("Fujitsu MPI 3.0", "Fujitsu MPI 3.1"),
    "hdf5": ("1.8.12", "1.8.12"),
    "cmake": ("3.19.5", "3.24.2"),
    "Vc": ("1.4.1", "1.4.1"),
    "hpx": ("1.7.1", "1.8.1/b25e70b17c"),
    "kokkos": ("2640cf70d", "7658a1136"),
    "hpx-kokkos": ("20a4496", "8ec88ae"),
    "sve": ("a058275", "a058275"),
    "silo": ("4.10.2", "4.10.2"),
    "cppuddle": ("8ccd07a16e1715c", "8ccd07a16e1715c"),
    "gperftools": ("bf8b714", "bf8b714"),
    "openmpi": ("4.1.4", "4.1.4"),
    "jemalloc": ("5.1.0", "5.1.0"),
    "octo-tiger": ("6848ea1", "8e4239411cfc36e9"),
}


def software_manifest(machine: str = "Fugaku") -> Dict[str, str]:
    """The component -> version map for ``machine`` ("Fugaku" or "Ookami")."""
    if machine not in ("Fugaku", "Ookami"):
        raise KeyError(f"manifest covers Fugaku and Ookami, not {machine!r}")
    column = 0 if machine == "Fugaku" else 1
    return {component: versions[column] for component, versions in _STACK.items()}


def format_manifest() -> str:
    """Render the two-machine manifest as an aligned text table."""
    lines = [f"{'component':<12} {'Fugaku':<24} {'Ookami':<24}"]
    lines.append("-" * 60)
    for component, (fugaku, ookami) in sorted(_STACK.items()):
        lines.append(f"{component:<12} {fugaku:<24} {ookami:<24}")
    return "\n".join(lines)
