"""Node power model (the PowerAPI measurement analog, Table II).

Per-node power is idle plus a dynamic part proportional to utilisation and
to the cube of the clock relative to the reference frequency (the classic
P ~ C V^2 f with voltage scaling ~ f).  Fugaku's power-control function — the
default 1.8 GHz "eco" clock versus the 2.2 GHz boost the paper discusses in
SVI-A — enters through the frequency term.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PowerModel:
    idle_w: float
    peak_w: float
    reference_freq_ghz: float

    def node_power(self, utilization: float, freq_ghz: float = None) -> float:  # noqa: RUF013
        """Average node power (W) at a given core utilisation and clock."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        freq = self.reference_freq_ghz if freq_ghz is None else freq_ghz
        scale = (freq / self.reference_freq_ghz) ** 3
        return self.idle_w + (self.peak_w - self.idle_w) * utilization * scale

    def job_power(
        self, nodes: int, utilization: float, freq_ghz: float = None  # noqa: RUF013
    ) -> float:
        """Aggregate power of a job (what Table II tabulates)."""
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        return nodes * self.node_power(utilization, freq_ghz)

    def energy_joules(
        self, nodes: int, utilization: float, seconds: float, freq_ghz: float = None  # noqa: RUF013
    ) -> float:
        return self.job_power(nodes, utilization, freq_ghz) * seconds
