"""Machine models of the five systems in the paper's evaluation.

Hardware parameters (cores, frequencies, peak flops, memory capacity and
bandwidth, GPU counts, interconnect latency/bandwidth) come from the
published system descriptions; *sustained efficiency* parameters are
calibrated so the cross-machine orderings the paper reports reproduce
(Summit > Piz Daint >~ Fugaku for v1309; Perlmutter-GPU ~ two orders above
Perlmutter-CPU >~ Fugaku for the DWD).  Every calibrated constant lives in
:mod:`repro.machines.specs` with a comment saying what pinned it.
"""

from repro.machines.specs import (
    GpuSpec,
    NodeSpec,
    InterconnectSpec,
    MachineModel,
    FUGAKU,
    OOKAMI,
    SUMMIT,
    PIZ_DAINT,
    PERLMUTTER,
    MACHINES,
)
from repro.machines.power import PowerModel
from repro.machines.manifest import software_manifest, format_manifest
from repro.machines.topology import (
    TorusTopology,
    FatTreeTopology,
    effective_interconnect,
)

__all__ = [
    "GpuSpec",
    "NodeSpec",
    "InterconnectSpec",
    "MachineModel",
    "PowerModel",
    "FUGAKU",
    "OOKAMI",
    "SUMMIT",
    "PIZ_DAINT",
    "PERLMUTTER",
    "MACHINES",
    "software_manifest",
    "format_manifest",
    "TorusTopology",
    "FatTreeTopology",
    "effective_interconnect",
]
