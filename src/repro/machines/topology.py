"""Topology-aware interconnect latency (the paper's Fig. 10 open question).

The paper closes its Ookami/Fugaku comparison with "Fugaku uses the
Fujitsu Tofu-D interconnect and Ookami uses Infiniband... further
investigations are needed".  This module supplies the missing piece: hop
counts.  Tofu-D is a 6-D torus whose diameter grows with the allocation's
extent (~N^(1/3) for compact jobs on the 3 large axes); a fat tree's hop
count is bounded by its tier count regardless of node count.

Effective per-message latency = base latency + hops * per-hop latency.
Default machine presets keep the flat model (hop latency folded into the
calibrated base); the topology model is opt-in for the ablation bench and
for sensitivity studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machines.specs import InterconnectSpec


@dataclass(frozen=True)
class TorusTopology:
    """k-ary torus: average hop count grows with the allocation size.

    For ``nodes`` placed compactly in a d-dimensional torus, the expected
    Manhattan distance between two random nodes is ~ (d/4) * nodes^(1/d).
    Tofu-D exposes 6 dimensions but jobs extend mostly along 3 of them,
    so ``effective_dims`` defaults to 3.
    """

    effective_dims: int = 3
    per_hop_latency_us: float = 0.10

    def mean_hops(self, nodes: int) -> float:
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        if nodes == 1:
            return 0.0
        side = nodes ** (1.0 / self.effective_dims)
        return self.effective_dims * side / 4.0

    def latency_us(self, base_us: float, nodes: int) -> float:
        return base_us + self.mean_hops(nodes) * self.per_hop_latency_us


@dataclass(frozen=True)
class FatTreeTopology:
    """Folded-Clos fat tree: hop count is ~ 2 * tiers, size-independent
    once past a switch radix boundary."""

    radix: int = 40
    per_hop_latency_us: float = 0.12

    def tiers(self, nodes: int) -> int:
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        tiers = 1
        capacity = self.radix
        while capacity < nodes:
            capacity *= self.radix // 2
            tiers += 1
        return tiers

    def mean_hops(self, nodes: int) -> float:
        if nodes == 1:
            return 0.0
        return 2.0 * self.tiers(nodes)

    def latency_us(self, base_us: float, nodes: int) -> float:
        return base_us + self.mean_hops(nodes) * self.per_hop_latency_us


def effective_interconnect(
    spec: InterconnectSpec, topology, nodes: int  # noqa: ANN001
) -> InterconnectSpec:
    """A copy of ``spec`` with topology-resolved latency for a job size."""
    from dataclasses import replace

    return replace(spec, latency_us=topology.latency_us(spec.latency_us, nodes))
