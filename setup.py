"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs fail; this file lets ``pip install -e .`` fall back
to the setuptools develop path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
