"""CI gate for the persistent plan cache (``repro.core.plancache``).

    PYTHONPATH=src python tools/plancache_ci.py [--cache-dir DIR]

Three checks, exit non-zero on any violation:

1. **Cold seed** — a blast run with an empty cache performs only cold
   plan builds and stores an entry per (layer, topology).
2. **Zero-cold rerun** — a fresh process over the same run performs
   **zero** cold plan builds (asserted from the ``plan.*.cold_builds``
   counters, not from timing) and its fields are bit-identical to the
   cold run's.
3. **Corruption recovery** — every cache entry is truncated in place;
   the next run must fall back to cold builds (misses, never a wrong
   plan), overwrite the bad entries, and still produce bit-identical
   fields; a final run must then hit cleanly again.
"""

from __future__ import annotations

import argparse
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.plancache import PlanCache  # noqa: E402
from repro.gravity.fmm import FmmSolver  # noqa: E402
from repro.hydro import HydroIntegrator  # noqa: E402
from repro.profiling.apex import CounterRegistry  # noqa: E402
from repro.scenarios.blast import sedov_blast  # noqa: E402

STEPS = 2
DT = 1e-4
LAYERS = ("hydro", "fmm")


def run(cache_dir: Path):
    """One blast run with self-gravity; returns (registry, cache, fields)."""
    scenario = sedov_blast(levels=1)
    mesh = scenario.mesh
    reg = CounterRegistry()
    cache = PlanCache(cache_dir)
    solver = FmmSolver(empty_mass_threshold=1e-12, plan_cache=cache)
    solver.registry = reg
    integ = HydroIntegrator(
        mesh,
        eos=scenario.eos,
        gravity=solver.as_gravity_callback(),
        plan_cache=cache,
    )
    integ.registry = reg
    try:
        for _ in range(STEPS):
            integ.step(DT)
    finally:
        integ.close()
    fields = {
        key: mesh.nodes[key].subgrid.data.copy()
        for key in sorted(mesh.leaf_keys())
    }
    return reg, cache, fields


def counts(reg: CounterRegistry, tier: str) -> int:
    return sum(reg.count(f"plan.{layer}.{tier}_builds") for layer in LAYERS)


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)


def assert_fields_equal(a, b, label: str) -> None:
    check(sorted(a) == sorted(b), f"{label}: leaf sets differ")
    for key in a:
        check(
            np.array_equal(a[key], b[key]),
            f"{label}: fields differ at leaf {key}",
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cache-dir", default="/tmp/repro-plancache-ci", metavar="DIR"
    )
    args = parser.parse_args(argv)
    cache_dir = Path(args.cache_dir)
    if cache_dir.exists():
        shutil.rmtree(cache_dir)

    reg, cache, fields_cold = run(cache_dir)
    cold = counts(reg, "cold")
    check(cold >= 2, f"cold seed run built only {cold} cold plan(s)")
    check(cache.stats.stores >= 2, "cold seed run stored no entries")
    entries = sorted(cache_dir.glob("*.npz"))
    check(bool(entries), "no cache entries on disk after the seed run")
    print(f"seed: {cold} cold build(s), {len(entries)} entr(ies) stored")

    reg, cache, fields_hit = run(cache_dir)
    check(
        counts(reg, "cold") == 0,
        f"warmed rerun performed {counts(reg, 'cold')} cold build(s)",
    )
    check(counts(reg, "cache_hit") >= 2, "warmed rerun recorded no cache hits")
    assert_fields_equal(fields_cold, fields_hit, "cold vs cache-hit rerun")
    print(
        f"rerun: 0 cold builds, {counts(reg, 'cache_hit')} cache hit(s), "
        "fields bit-identical"
    )

    for entry in entries:
        entry.write_bytes(entry.read_bytes()[: max(1, entry.stat().st_size // 3)])
    reg, cache, fields_rec = run(cache_dir)
    check(
        counts(reg, "cold") >= 2,
        "corrupted entries did not fall back to cold builds",
    )
    assert_fields_equal(fields_cold, fields_rec, "recovery run")
    print(
        f"corruption: {counts(reg, 'cold')} cold rebuild(s), "
        f"{cache.stats.misses} miss(es), fields bit-identical"
    )

    reg, cache, fields_again = run(cache_dir)
    check(
        counts(reg, "cold") == 0,
        "cache not repaired after corruption recovery",
    )
    assert_fields_equal(fields_cold, fields_again, "post-recovery rerun")
    print("repair: corrupted entries overwritten, rerun hits cleanly")
    print("plan-cache CI gate: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
